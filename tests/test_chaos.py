"""Chaos tests: the in-process service under seeded fault injection.

Each scenario boots a real :class:`~repro.service.server.JobServer` with a
deterministic :class:`~repro.faults.FaultPlan` active and asserts the
reliability invariants of :mod:`repro.chaos`: no lost or duplicated jobs, no
temp/lock orphans, quarantine accounting, and result parity with a
fault-free run.  ``-k smoke`` selects the fast fixed-seed subset CI runs.
"""

import json

import pytest

from repro import chaos, faults
from repro.chaos import OTHER_SPEC, SCENARIOS, TINY_SPEC
from repro.errors import CorruptArtifactError, WorkerStalledError
from repro.service import JobServer, JobStore, ServiceClient
from repro.utils.serialization import count_quarantined, load_json

SEED = 1


@pytest.fixture(scope="module")
def baselines():
    """Fault-free ground-truth results, computed once for every scenario."""
    return chaos._baseline_results([TINY_SPEC, OTHER_SPEC])


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test must leave the process without an active fault plan."""
    yield
    assert faults.active_plan() is None, "a test leaked an active fault plan"
    faults.deactivate()


def _run(scenario, tmp_path, baselines, seed=SEED):
    report = chaos.run_scenario(
        scenario,
        seed=seed,
        store_dir=tmp_path / scenario,
        baselines=baselines,
    )
    assert report.ok, f"{scenario}: {report.violations}"
    return report


class TestScenarios:
    def test_smoke_torn_write(self, tmp_path, baselines):
        report = _run("torn-write", tmp_path, baselines)
        assert report.fired, "the torn-write scenario never injected a fault"
        assert any(event["kind"] == "torn_write" for event in report.fired)

    def test_smoke_worker_crash(self, tmp_path, baselines):
        report = _run("worker-crash", tmp_path, baselines)
        assert any(event["kind"] == "crash" for event in report.fired)
        # The crashed attempt was retried: at least one job completed.
        assert "done" in report.final_states.values()

    def test_enospc(self, tmp_path, baselines):
        report = _run("enospc", tmp_path, baselines)
        assert any(event["kind"] in ("enospc", "eio") for event in report.fired)
        assert "done" in report.final_states.values()

    def test_worker_hang_is_reaped_by_watchdog(self, tmp_path, baselines):
        report = _run("worker-hang", tmp_path, baselines)
        assert any(event["kind"] == "hang" for event in report.fired)
        # The watchdog reaped the stalled execution and the retry finished.
        assert report.stats["restart"]["jobs"].get("done", 0) >= 1
        server_stats = report.stats["server"]
        assert server_stats["stalls"] >= 1
        assert server_stats["watchdog"]["reaped"] >= 1

    def test_solver_transient(self, tmp_path, baselines):
        report = _run("solver-transient", tmp_path, baselines)
        assert any(event["kind"] == "transient" for event in report.fired)
        assert "done" in report.final_states.values()

    def test_every_registered_scenario_has_rules(self):
        for name in SCENARIOS:
            plan = chaos.scenario_plan(name, seed=3)
            assert plan.rules, name
            assert plan.seed == 3
        with pytest.raises(ValueError, match="unknown chaos scenario"):
            chaos.scenario_plan("meteor-strike")


class TestKillNineRecovery:
    """Torn on-disk state (as after ``kill -9``) must quarantine + recover."""

    def test_torn_job_record_is_quarantined_on_restart(self, tmp_path, baselines):
        store_dir = tmp_path / "store"
        store = JobStore(store_dir)
        from repro.api import SimulationSpec

        job, created = store.submit(SimulationSpec.from_dict(TINY_SPEC))
        assert created
        record_path = store_dir / "jobs" / f"{job.id}.json"
        payload = record_path.read_bytes()
        record_path.write_bytes(payload[: len(payload) // 2])  # tear it

        reopened = JobStore(store_dir)
        assert reopened.quarantined == 1
        assert count_quarantined(store_dir) == 1
        assert job.id not in {j.id for j in reopened.list()}
        # The torn record is preserved for inspection, with its reason.
        quarantine_dir = store_dir / "jobs" / ".quarantine"
        sidecars = list(quarantine_dir.glob("*.reason.json"))
        assert len(sidecars) == 1
        assert "failed to load" in json.loads(sidecars[0].read_text())["reason"]

    def test_checksum_flip_is_quarantined_on_restart(self, tmp_path):
        store_dir = tmp_path / "store"
        store = JobStore(store_dir)
        from repro.api import SimulationSpec

        job, _ = store.submit(SimulationSpec.from_dict(TINY_SPEC))
        record_path = store_dir / "jobs" / f"{job.id}.json"
        document = json.loads(record_path.read_text())
        document["state"] = "done"  # silent bit-flip: checksum now stale
        record_path.write_text(json.dumps(document))

        with pytest.raises(CorruptArtifactError):
            load_json(record_path)
        reopened = JobStore(store_dir)
        assert reopened.quarantined == 1
        assert reopened.stats()["quarantined"] == 1

    def test_server_boots_and_serves_over_torn_store(self, tmp_path, baselines):
        store_dir = tmp_path / "store"
        store = JobStore(store_dir)
        from repro.api import SimulationSpec

        job, _ = store.submit(SimulationSpec.from_dict(OTHER_SPEC))
        record_path = store_dir / "jobs" / f"{job.id}.json"
        record_path.write_text("{not json")

        server = JobServer(store_dir, port=0, workers=1, circuit_threshold=None)
        try:
            server.start()
            client = ServiceClient(server.url, timeout_seconds=30.0)
            assert client.health()["status"] == "ok"
            assert client.stats()["quarantined_files"] == 1
            # The healed service still takes and finishes work.
            record = client.submit(TINY_SPEC)
            final = client.wait(record["id"], timeout=120.0)
            assert final["state"] == "done"
        finally:
            server.stop()

    def test_torn_checkpoint_is_quarantined_and_resolved(self, tmp_path):
        from repro.api import SimulationSpec, run

        spec = SimulationSpec.from_dict(
            {**TINY_SPEC, "name": "chaos-checkpoint"}
        )
        checkpoint_dir = tmp_path / "checkpoints"
        result = run(spec, checkpoint_dir=checkpoint_dir)
        paths = sorted(checkpoint_dir.rglob("*.npz"))
        assert paths, "the run wrote no checkpoints"
        payload = paths[0].read_bytes()
        paths[0].write_bytes(payload[: len(payload) // 2])  # tear it

        rerun = run(spec, checkpoint_dir=checkpoint_dir)
        assert count_quarantined(checkpoint_dir) == 1
        assert rerun.case(result.cases[0].name).peak_von_mises == pytest.approx(
            result.cases[0].peak_von_mises
        )


class TestWatchdogAndBreaker:
    def test_stalled_job_exhausting_budget_fails_typed(self, tmp_path):
        plan = faults.FaultPlan(
            seed=0,
            rules=(
                {
                    "site": "service.pool.worker",
                    "kind": "hang",
                    "max_triggers": 5,
                    "hang_seconds": 30.0,
                },
            ),
        )
        server = JobServer(
            tmp_path / "store",
            port=0,
            workers=1,
            retry_backoff_seconds=0.05,
            stall_timeout_seconds=0.6,
            circuit_threshold=None,
            fault_plan=plan,
        )
        try:
            server.start()
            client = ServiceClient(server.url, timeout_seconds=30.0)
            record = client.submit(TINY_SPEC, max_attempts=1)
            final = client.wait(record["id"], timeout=60.0)
            assert final["state"] == "failed"
            assert final["error"]["code"] == "worker_stalled"
            rebuilt_detail = final["error"]["detail"]
            assert rebuilt_detail["heartbeat_age"] >= 0.6
        finally:
            server.stop()
        assert issubclass(WorkerStalledError, Exception)

    def test_circuit_breaker_fails_fast_after_repeated_failures(self, tmp_path):
        # A spec that always crashes its worker trips the breaker; further
        # submissions of the same spec are rejected with circuit_open.
        plan = faults.FaultPlan(
            seed=0,
            rules=({"site": "service.pool.worker", "kind": "crash"},),
        )
        server = JobServer(
            tmp_path / "store",
            port=0,
            workers=1,
            retry_backoff_seconds=0.02,
            circuit_threshold=2,
            circuit_reset_seconds=60.0,
            fault_plan=plan,
        )
        try:
            server.start()
            client = ServiceClient(server.url, timeout_seconds=30.0)
            from repro.errors import CircuitOpenError

            document = {**TINY_SPEC, "name": "breaker"}
            # Failed jobs never dedup, so each submission is a fresh job for
            # the same spec hash — two failures reach the threshold.
            for _ in range(2):
                record = client.submit(document, max_attempts=1)
                final = client.wait(record["id"], timeout=60.0)
                assert final["state"] == "failed"
            with pytest.raises(CircuitOpenError) as excinfo:
                client.submit(document)
            assert excinfo.value.retry_after > 0  # carried via Retry-After
            breaker = client.stats()["circuit_breaker"]
            assert breaker["open_circuits"] >= 1
            assert breaker["trips"] >= 1
        finally:
            server.stop()
