"""Property-based tests (hypothesis) for the core numerical building blocks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis.metrics import normalized_mae
from repro.fem.element import element_stiffness, shape_function_gradients, shape_functions
from repro.fem.fields import von_mises
from repro.materials.material import IsotropicMaterial, lame_parameters
from repro.mesh.grading import geometric_interval, tsv_inplane_coordinates
from repro.rom.interpolation import InterpolationScheme, lagrange_1d_values

# Keep hypothesis fast and deterministic for CI-style runs.
DEFAULT_SETTINGS = settings(max_examples=25, deadline=None)

finite_floats = st.floats(
    min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False
)


class TestLameProperties:
    @DEFAULT_SETTINGS
    @given(
        young=st.floats(min_value=1.0, max_value=1e6),
        poisson=st.floats(min_value=-0.45, max_value=0.45),
    )
    def test_roundtrip_to_engineering_constants(self, young, poisson):
        lam, mu = lame_parameters(young, poisson)
        recovered_young = mu * (3 * lam + 2 * mu) / (lam + mu)
        recovered_poisson = lam / (2 * (lam + mu))
        assert recovered_young == pytest.approx(young, rel=1e-9)
        assert recovered_poisson == pytest.approx(poisson, abs=1e-9)

    @DEFAULT_SETTINGS
    @given(
        young=st.floats(min_value=1.0, max_value=1e6),
        poisson=st.floats(min_value=0.0, max_value=0.45),
        cte=st.floats(min_value=0.0, max_value=1e-4),
    )
    def test_elasticity_matrix_always_positive_definite(self, young, poisson, cte):
        material = IsotropicMaterial("prop", young, poisson, cte)
        eigenvalues = np.linalg.eigvalsh(material.elasticity_matrix())
        assert np.all(eigenvalues > 0.0)


class TestVonMisesProperties:
    @DEFAULT_SETTINGS
    @given(stress=arrays(float, (7, 6), elements=finite_floats))
    def test_non_negative(self, stress):
        assert np.all(von_mises(stress) >= 0.0)

    @DEFAULT_SETTINGS
    @given(
        stress=arrays(float, 6, elements=finite_floats),
        pressure=st.floats(min_value=-500, max_value=500),
    )
    def test_invariant_under_hydrostatic_shift(self, stress, pressure):
        shifted = stress.copy()
        shifted[:3] += pressure
        assert von_mises(shifted[None, :])[0] == pytest.approx(
            von_mises(stress[None, :])[0], abs=1e-6
        )

    @DEFAULT_SETTINGS
    @given(
        stress=arrays(float, 6, elements=finite_floats),
        factor=st.floats(min_value=0.0, max_value=10.0),
    )
    def test_positive_homogeneity(self, stress, factor):
        assert von_mises((factor * stress)[None, :])[0] == pytest.approx(
            factor * von_mises(stress[None, :])[0], rel=1e-9, abs=1e-6
        )


class TestShapeFunctionProperties:
    @DEFAULT_SETTINGS
    @given(points=arrays(float, (5, 3), elements=st.floats(min_value=-1, max_value=1)))
    def test_partition_of_unity(self, points):
        values = shape_functions(points)
        np.testing.assert_allclose(values.sum(axis=1), 1.0, atol=1e-12)
        assert np.all(values >= -1e-12)

    @DEFAULT_SETTINGS
    @given(
        points=arrays(float, (4, 3), elements=st.floats(min_value=-1, max_value=1)),
        sizes=arrays(float, 3, elements=st.floats(min_value=0.1, max_value=100.0)),
    )
    def test_gradients_sum_to_zero(self, points, sizes):
        grads = shape_function_gradients(points, sizes)
        np.testing.assert_allclose(grads.sum(axis=1), 0.0, atol=1e-10)


class TestElementStiffnessProperties:
    @DEFAULT_SETTINGS
    @given(
        dx=st.floats(min_value=0.1, max_value=50.0),
        dy=st.floats(min_value=0.1, max_value=50.0),
        dz=st.floats(min_value=0.1, max_value=50.0),
    )
    def test_rigid_translations_in_nullspace(self, dx, dy, dz):
        material = IsotropicMaterial("prop", 1.0e5, 0.3, 1e-6)
        ke = element_stiffness((dx, dy, dz), material.elasticity_matrix())
        for component in range(3):
            translation = np.zeros(24)
            translation[component::3] = 1.0
            assert np.abs(ke @ translation).max() < 1e-6 * np.abs(ke).max()


class TestLagrangeProperties:
    @DEFAULT_SETTINGS
    @given(
        n_nodes=st.integers(min_value=2, max_value=7),
        length=st.floats(min_value=0.5, max_value=100.0),
    )
    def test_partition_of_unity_and_delta(self, n_nodes, length):
        nodes = np.linspace(0.0, length, n_nodes)
        points = np.linspace(0.0, length, 13)
        values = lagrange_1d_values(points, nodes)
        np.testing.assert_allclose(values.sum(axis=1), 1.0, atol=1e-8)
        at_nodes = lagrange_1d_values(nodes, nodes)
        np.testing.assert_allclose(at_nodes, np.eye(n_nodes), atol=1e-8)

    @DEFAULT_SETTINGS
    @given(
        nx=st.integers(min_value=2, max_value=5),
        ny=st.integers(min_value=2, max_value=5),
        nz=st.integers(min_value=2, max_value=5),
    )
    def test_equation_16_dof_count(self, nx, ny, nz):
        scheme = InterpolationScheme((nx, ny, nz))
        brute_force = sum(
            1
            for i in range(nx)
            for j in range(ny)
            for k in range(nz)
            if i in (0, nx - 1) or j in (0, ny - 1) or k in (0, nz - 1)
        )
        assert scheme.num_surface_nodes == brute_force
        assert scheme.num_element_dofs == 3 * brute_force
        assert scheme.surface_node_indices().shape[0] == brute_force


class TestGradingProperties:
    @DEFAULT_SETTINGS
    @given(
        length=st.floats(min_value=0.1, max_value=1e3),
        n_cells=st.integers(min_value=1, max_value=30),
        ratio=st.floats(min_value=0.3, max_value=3.0),
    )
    def test_geometric_interval_monotone_and_exact_length(self, length, n_cells, ratio):
        coords = geometric_interval(length, n_cells, ratio=ratio)
        assert coords.shape == (n_cells + 1,)
        assert np.all(np.diff(coords) > 0)
        assert coords[0] == pytest.approx(0.0, abs=1e-12)
        assert coords[-1] == pytest.approx(length, rel=1e-9)

    @DEFAULT_SETTINGS
    @given(
        pitch=st.floats(min_value=8.0, max_value=40.0),
        n_core=st.integers(min_value=1, max_value=6),
        n_liner=st.integers(min_value=1, max_value=3),
        n_outer=st.integers(min_value=1, max_value=6),
    )
    def test_tsv_coordinates_monotone_and_symmetric(self, pitch, n_core, n_liner, n_outer):
        coords = tsv_inplane_coordinates(
            pitch=pitch,
            radius=2.5,
            outer_radius=3.0,
            n_core=n_core,
            n_liner=n_liner,
            n_outer=n_outer,
        )
        assert np.all(np.diff(coords) > 0)
        np.testing.assert_allclose(coords + coords[::-1], pitch, atol=1e-8)


class TestMetricProperties:
    @DEFAULT_SETTINGS
    @given(
        reference=arrays(
            float, (4, 5), elements=st.floats(min_value=0.5, max_value=100.0)
        ),
        noise=arrays(float, (4, 5), elements=st.floats(min_value=-1.0, max_value=1.0)),
        scale=st.floats(min_value=0.1, max_value=100.0),
    )
    def test_scale_invariance_and_nonnegativity(self, reference, noise, scale):
        predicted = reference + noise
        error = normalized_mae(predicted, reference)
        assert error >= 0.0
        assert normalized_mae(scale * predicted, scale * reference) == pytest.approx(
            error, rel=1e-9
        )

    @DEFAULT_SETTINGS
    @given(
        reference=arrays(
            float, 12, elements=st.floats(min_value=1.0, max_value=50.0)
        )
    )
    def test_identity_gives_zero(self, reference):
        assert normalized_mae(reference, reference) == 0.0
