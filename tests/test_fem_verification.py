"""Verification problems for the FEM kernel (manufactured / analytical solutions).

These tests exercise the whole kernel chain (meshing, assembly, boundary
conditions, solve, stress recovery) against problems with known solutions:

* free thermal expansion of a homogeneous block reproduces the exact linear
  displacement field and zero stress;
* a clamped homogeneous slab under uniform cool-down develops the classical
  equi-biaxial stress state ``sigma_xx = sigma_yy = E alpha dT / (1 - nu)``;
* stress scales linearly with the thermal load (Eq. 1 is linear).
"""

import numpy as np
import pytest

from repro.fem.assembly import assemble_stiffness, assemble_thermal_load
from repro.fem.boundary import DirichletBC, reduce_system
from repro.fem.fields import FieldEvaluator
from repro.fem.solver import FactorizedOperator
from repro.geometry.unit_block import UnitBlockGeometry
from repro.materials.library import ROLE_SILICON
from repro.mesh.block_mesher import mesh_unit_block

DELTA_T = -250.0


def _solve(mesh, materials, bc, delta_t):
    stiffness = assemble_stiffness(mesh, materials)
    load = delta_t * assemble_thermal_load(mesh, materials)
    a_ff, rhs, split = reduce_system(stiffness, load, bc)
    return split.expand(FactorizedOperator(a_ff).solve(rhs), bc.values)


@pytest.fixture(scope="module")
def silicon_mesh(dummy_block):
    """A homogeneous (pure silicon) block mesh."""
    return mesh_unit_block(dummy_block, "tiny")


class TestFreeThermalExpansion:
    """Prescribing the exact free-expansion field on the boundary must
    reproduce it in the interior with (numerically) zero stress."""

    def test_displacement_and_stress(self, silicon_mesh, materials):
        silicon = materials[ROLE_SILICON]
        coords = silicon_mesh.node_coordinates()
        reference_point = coords.mean(axis=0)
        exact = silicon.cte * DELTA_T * (coords - reference_point)

        boundary_nodes = silicon_mesh.all_boundary_node_ids()
        bc = DirichletBC.from_nodes(boundary_nodes, exact[boundary_nodes])
        displacement = _solve(silicon_mesh, materials, bc, DELTA_T)

        np.testing.assert_allclose(
            displacement.reshape(-1, 3), exact, atol=1e-12 + 1e-9 * np.abs(exact).max()
        )
        evaluator = FieldEvaluator(silicon_mesh, materials)
        vm = evaluator.von_mises_at(silicon_mesh.element_centroids(), displacement, DELTA_T)
        assert vm.max() < 1e-6  # MPa — essentially zero


class TestFullyConstrainedBlock:
    """With u = 0 prescribed on the whole boundary of a homogeneous block the
    exact solution is u = 0 everywhere, so the stress is purely the (hydro-
    static) thermal stress ``sigma = -alpha (3 lambda + 2 mu) dT I`` and the
    von Mises stress vanishes identically."""

    def test_hydrostatic_thermal_stress(self, materials, dummy_block):
        mesh = mesh_unit_block(dummy_block, "tiny")
        silicon = materials[ROLE_SILICON]
        bc = DirichletBC.from_nodes(mesh.all_boundary_node_ids())
        displacement = _solve(mesh, materials, bc, DELTA_T)

        # The exact solution is zero displacement everywhere.
        np.testing.assert_allclose(displacement, 0.0, atol=1e-12)

        evaluator = FieldEvaluator(mesh, materials)
        points = np.array([[7.5, 7.5, 25.0], [3.0, 11.0, 40.0]])
        stress = evaluator.stress_at(points, displacement, DELTA_T)

        expected = -silicon.thermal_stress_coefficient() * DELTA_T
        np.testing.assert_allclose(stress[:, 0], expected, rtol=1e-9)
        np.testing.assert_allclose(stress[:, 1], expected, rtol=1e-9)
        np.testing.assert_allclose(stress[:, 2], expected, rtol=1e-9)
        np.testing.assert_allclose(stress[:, 3:], 0.0, atol=1e-9)
        assert expected > 0.0  # cooling a constrained block puts it in tension

    def test_clamped_column_is_axially_stressed_at_mid_height(self, materials, dummy_block):
        """A homogeneous column clamped at both ends and cooled cannot contract
        axially, so away from the ends it approaches the classical uniaxial
        state ``sigma_zz = -E alpha dT`` with nearly free lateral stresses."""
        mesh = mesh_unit_block(dummy_block, "coarse")
        silicon = materials[ROLE_SILICON]
        clamped = np.unique(
            np.concatenate([mesh.boundary_node_ids("z-"), mesh.boundary_node_ids("z+")])
        )
        bc = DirichletBC.from_nodes(clamped)
        displacement = _solve(mesh, materials, bc, DELTA_T)
        evaluator = FieldEvaluator(mesh, materials)
        stress = evaluator.stress_at(np.array([[7.5, 7.5, 25.0]]), displacement, DELTA_T)[0]

        axial_expected = -silicon.young_modulus * silicon.cte * DELTA_T  # > 0 (tension)
        assert stress[2] == pytest.approx(axial_expected, rel=0.25)
        # Lateral stresses are an order of magnitude smaller than the axial one.
        assert abs(stress[0]) < 0.2 * stress[2]
        assert abs(stress[1]) < 0.2 * stress[2]


class TestLinearity:
    def test_solution_scales_with_load(self, silicon_mesh, materials):
        clamped = np.unique(
            np.concatenate(
                [
                    silicon_mesh.boundary_node_ids("z-"),
                    silicon_mesh.boundary_node_ids("z+"),
                ]
            )
        )
        bc = DirichletBC.from_nodes(clamped)
        full = _solve(silicon_mesh, materials, bc, DELTA_T)
        half = _solve(silicon_mesh, materials, bc, DELTA_T / 2)
        np.testing.assert_allclose(half, 0.5 * full, atol=1e-12 + 1e-9 * np.abs(full).max())


class TestMeshConvergenceOfPeakStress:
    """Refining the unit-block mesh must not change the copper-core stress
    much (sanity check that the discretisation behaves consistently)."""

    def test_copper_core_stress_stable_under_refinement(self, materials, tsv15):
        values = []
        for preset in ("coarse", "medium"):
            block = UnitBlockGeometry(tsv=tsv15, has_tsv=True)
            mesh = mesh_unit_block(block, preset)
            clamped = np.unique(
                np.concatenate(
                    [mesh.boundary_node_ids("z-"), mesh.boundary_node_ids("z+")]
                )
            )
            bc = DirichletBC.from_nodes(clamped)
            displacement = _solve(mesh, materials, bc, DELTA_T)
            evaluator = FieldEvaluator(mesh, materials)
            # Stress at the centre of the copper core at mid-height: dominated
            # by the CTE mismatch, well away from singular corners.
            core = np.array([[7.5, 7.5, 25.0]])
            values.append(evaluator.von_mises_at(core, displacement, DELTA_T)[0])
        assert values[0] == pytest.approx(values[1], rel=0.20)
