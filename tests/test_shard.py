"""Tests of the out-of-core sharded global stage (:mod:`repro.rom.shard`).

The equivalence tests certify the subsystem's core promise: a converged
sharded solve satisfies exactly the lifted equations the monolithic
``GlobalStage.solve`` factorises, so displacements and stresses match to the
Schwarz tolerance — on pure-TSV layouts, dummy-padded layouts and prescribed
(sub-model style) boundaries alike.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fem.solver import SolverOptions
from repro.geometry.array_layout import BlockKind, TSVArrayLayout
from repro.rom.global_dofs import GlobalDofManager
from repro.rom.global_stage import GlobalStage
from repro.rom.shard import (
    ShardRunStats,
    estimate_assembly_bytes,
    plan_for,
    plan_shards,
    solve_sharded,
)
from repro.utils.validation import ValidationError

DELTA_T = -250.0


@pytest.fixture(scope="module")
def stage(materials, rom_tsv_tiny, rom_dummy_tiny) -> GlobalStage:
    """Global stage over the session ROMs (tiny mesh, (3,3,3) nodes)."""
    return GlobalStage(
        roms={BlockKind.TSV: rom_tsv_tiny, BlockKind.DUMMY: rom_dummy_tiny},
        materials=materials,
        solver_options=SolverOptions(method="direct"),
    )


def relative_error(result: np.ndarray, reference: np.ndarray) -> float:
    scale = float(np.linalg.norm(reference)) or 1.0
    return float(np.linalg.norm(result - reference)) / scale


# --------------------------------------------------------------------------- #
# planner
# --------------------------------------------------------------------------- #
class TestPlanner:
    def test_cores_partition_the_layout_exactly(self):
        plan = plan_shards(7, 5, (3, 2), overlap=1)
        covered = np.zeros((7, 5), dtype=int)
        for tile in plan.tiles:
            (r0, r1), (c0, c1) = tile.core_rows, tile.core_cols
            covered[r0:r1, c0:c1] += 1
        assert (covered == 1).all()

    def test_solve_region_is_core_plus_clipped_overlap(self):
        plan = plan_shards(6, 6, (2, 2), overlap=2)
        for tile in plan.tiles:
            (cr0, cr1), (cc0, cc1) = tile.core_rows, tile.core_cols
            assert tile.solve_rows == (max(0, cr0 - 2), min(6, cr1 + 2))
            assert tile.solve_cols == (max(0, cc0 - 2), min(6, cc1 + 2))
            assert tile.num_solve_blocks >= (cr1 - cr0) * (cc1 - cc0)

    def test_single_tile_covers_everything(self):
        plan = plan_shards(4, 4, (1, 1))
        assert plan.num_shards == 1
        tile = plan.tiles[0]
        assert tile.solve_rows == (0, 4) and tile.solve_cols == (0, 4)

    def test_plan_to_dict(self):
        plan = plan_shards(6, 4, (2, 2), overlap=1)
        assert plan.to_dict() == {
            "layout_shape": [6, 4],
            "grid": [2, 2],
            "overlap": 1,
            "num_shards": 4,
        }

    def test_validation(self):
        with pytest.raises(ValidationError, match="grid"):
            plan_shards(4, 4, (5, 2))
        with pytest.raises(ValidationError, match="overlap"):
            plan_shards(4, 4, (2, 2), overlap=0)
        with pytest.raises(ValidationError, match="grid"):
            plan_shards(4, 4, (2,))
        with pytest.raises(ValidationError, match=">= 1"):
            plan_shards(4, 4, (0, 2))

    def test_estimate_scales_with_layout_and_dofs(self):
        small = estimate_assembly_bytes(10, 10, 48)
        assert estimate_assembly_bytes(20, 10, 48) == 2 * small
        assert estimate_assembly_bytes(10, 10, 96) == 4 * small


class TestPlanFor:
    def test_explicit_grid_always_shards(self):
        plan = plan_for(8, 8, 48, grid=(2, 2))
        assert plan is not None and plan.grid == (2, 2)

    def test_explicit_grid_clamped_to_layout(self):
        plan = plan_for(3, 3, 48, grid=(5, 5))
        assert plan is not None and plan.grid == (3, 3)

    def test_no_budget_no_grid_means_monolithic(self):
        assert plan_for(100, 100, 48) is None

    def test_budget_that_fits_keeps_monolithic(self):
        budget = estimate_assembly_bytes(10, 10, 48) + 1
        assert plan_for(10, 10, 48, memory_budget_bytes=budget) is None

    def test_budget_overflow_auto_shards(self):
        monolithic = estimate_assembly_bytes(20, 20, 48)
        plan = plan_for(20, 20, 48, memory_budget_bytes=monolithic // 4)
        assert plan is not None
        assert plan.grid[0] >= 2
        # The chosen per-shard estimate honours the half-budget headroom.
        tile = plan.tiles[0]
        shard_rows = tile.solve_rows[1] - tile.solve_rows[0]
        shard_cols = tile.solve_cols[1] - tile.solve_cols[0]
        assert (
            estimate_assembly_bytes(shard_rows, shard_cols, 48)
            <= monolithic // 4 // 2
        )


# --------------------------------------------------------------------------- #
# global key lookup (the shard-to-parent DoF mapping primitive)
# --------------------------------------------------------------------------- #
class TestNodeKeyLookup:
    def test_roundtrip_identity(self, tsv15, scheme_333):
        layout = TSVArrayLayout.full(tsv15, rows=3)
        manager = GlobalDofManager(layout, scheme_333)
        ids = manager.lookup_node_ids(manager.node_keys())
        assert np.array_equal(ids, np.arange(manager.num_global_nodes))

    def test_missing_key_raises(self, tsv15, scheme_333):
        layout = TSVArrayLayout.full(tsv15, rows=2)
        manager = GlobalDofManager(layout, scheme_333)
        bogus = np.array([[999, 0, 0]], dtype=np.int64)
        with pytest.raises(ValidationError, match="not global nodes"):
            manager.lookup_node_ids(bogus)

    def test_shape_validation(self, tsv15, scheme_333):
        layout = TSVArrayLayout.full(tsv15, rows=2)
        manager = GlobalDofManager(layout, scheme_333)
        with pytest.raises(ValidationError):
            manager.lookup_node_ids(np.zeros((3, 2), dtype=np.int64))


# --------------------------------------------------------------------------- #
# sharded-vs-monolithic equivalence
# --------------------------------------------------------------------------- #
class TestShardedEquivalence:
    def test_matches_monolithic_on_clamped_array(self, stage, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=6)
        reference = stage.solve(layout, delta_t=DELTA_T)
        solution, stats = solve_sharded(
            stage, layout, DELTA_T, grid=(2, 2), overlap=2
        )
        assert stats.converged
        assert (
            relative_error(
                solution.nodal_displacement, reference.nodal_displacement
            )
            < 1e-8
        )
        vm_ref = reference.von_mises_midplane(points_per_block=6)
        vm = solution.von_mises_midplane(points_per_block=6)
        assert relative_error(vm, vm_ref) < 1e-8
        assert abs(solution.max_von_mises(6) - reference.max_von_mises(6)) <= (
            1e-8 * abs(reference.max_von_mises(6))
        )

    def test_single_shard_is_exact_in_one_iteration(self, stage, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=4)
        reference = stage.solve(layout, delta_t=DELTA_T)
        solution, stats = solve_sharded(stage, layout, DELTA_T, grid=(1, 1))
        assert stats.iterations == 1 and stats.converged
        assert (
            relative_error(
                solution.nodal_displacement, reference.nodal_displacement
            )
            < 1e-12
        )

    def test_matches_monolithic_with_dummy_ring(self, stage, tsv15):
        layout = TSVArrayLayout.with_dummy_ring(tsv15, rows=4, cols=4, ring_width=1)
        reference = stage.solve(layout, delta_t=DELTA_T)
        solution, stats = solve_sharded(
            stage, layout, DELTA_T, grid=(2, 2), overlap=2
        )
        assert stats.converged
        assert (
            relative_error(
                solution.nodal_displacement, reference.nodal_displacement
            )
            < 1e-8
        )

    def test_matches_monolithic_with_prescribed_boundary(self, stage, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=6)

        def field(points: np.ndarray) -> np.ndarray:
            # A smooth, non-trivial displacement field (linear + bilinear).
            u = np.empty_like(points)
            u[:, 0] = 1e-3 * points[:, 0] - 2e-4 * points[:, 1]
            u[:, 1] = 5e-4 * points[:, 1] + 1e-4 * points[:, 2]
            u[:, 2] = -1e-4 * points[:, 0] * 1e-2
            return u

        reference = stage.solve(
            layout,
            delta_t=DELTA_T,
            boundary_condition="submodel",
            displacement_field=field,
        )
        solution, stats = solve_sharded(
            stage,
            layout,
            DELTA_T,
            grid=(2, 2),
            overlap=2,
            boundary_condition="submodel",
            displacement_field=field,
        )
        assert stats.converged
        assert (
            relative_error(
                solution.nodal_displacement, reference.nodal_displacement
            )
            < 1e-8
        )

    def test_non_square_grid_and_layout(self, stage, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=5, cols=7)
        reference = stage.solve(layout, delta_t=DELTA_T)
        solution, stats = solve_sharded(
            stage, layout, DELTA_T, grid=(2, 3), overlap=2
        )
        assert stats.converged
        assert (
            relative_error(
                solution.nodal_displacement, reference.nodal_displacement
            )
            < 1e-8
        )

    def test_bounded_window_does_not_change_the_result(self, stage, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=6)
        full, _ = solve_sharded(stage, layout, DELTA_T, grid=(2, 2), overlap=2)
        windowed, stats = solve_sharded(
            stage, layout, DELTA_T, grid=(2, 2), overlap=2, max_inflight=1
        )
        assert stats.max_inflight == 1
        assert np.allclose(
            windowed.nodal_displacement, full.nodal_displacement, atol=1e-12
        )


# --------------------------------------------------------------------------- #
# control flow: stats, cancellation, validation
# --------------------------------------------------------------------------- #
class TestShardedControl:
    def test_stats_provenance(self, stage, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=6)
        _, stats = solve_sharded(stage, layout, DELTA_T, grid=(2, 2), overlap=2)
        assert stats.grid == (2, 2)
        assert stats.overlap == 2
        assert stats.num_shards == 4
        assert stats.iterations >= 1
        assert len(stats.shard_dofs) == 4
        assert len(stats.shard_peak_rss_bytes) == 4
        assert all(d > 0 for d in stats.shard_dofs)
        assert 1 <= stats.max_inflight <= 4
        again = ShardRunStats.from_dict(stats.to_dict())
        assert again == stats

    def test_solver_stats_record_shard_method(self, stage, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=6)
        solution, _ = solve_sharded(stage, layout, DELTA_T, grid=(2, 2))
        assert solution.solver_stats.method == "shard-2x2-schwarz"
        assert solution.solver_stats.converged

    def test_heartbeat_abort_at_shard_boundary(self, stage, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=6)

        class Cancelled(Exception):
            pass

        calls = []

        def heartbeat():
            calls.append(None)
            if len(calls) >= 2:
                raise Cancelled()

        with pytest.raises(Cancelled):
            solve_sharded(
                stage, layout, DELTA_T, grid=(2, 2), heartbeat=heartbeat
            )
        assert len(calls) == 2

    def test_max_iterations_exhaustion_reports_not_converged(self, stage, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=6)
        solution, stats = solve_sharded(
            stage, layout, DELTA_T, grid=(3, 3), overlap=1, max_iterations=1
        )
        assert stats.iterations == 1
        assert not stats.converged
        assert not solution.solver_stats.converged
        assert stats.residual > stats.tolerance

    def test_mismatched_plan_rejected(self, stage, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=4)
        plan = plan_shards(6, 6, (2, 2))
        with pytest.raises(ValidationError, match="plan"):
            solve_sharded(stage, layout, DELTA_T, plan=plan)

    def test_requires_plan_or_grid(self, stage, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=4)
        with pytest.raises(ValidationError, match="plan or a shard grid"):
            solve_sharded(stage, layout, DELTA_T)

    def test_invalid_tolerance_rejected(self, stage, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=4)
        with pytest.raises(ValidationError, match="tolerance"):
            solve_sharded(stage, layout, DELTA_T, grid=(2, 2), tolerance=2.0)
