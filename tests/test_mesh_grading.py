"""Unit tests for 1-D mesh grading functions."""

import numpy as np
import pytest

from repro.mesh.grading import (
    geometric_interval,
    symmetric_graded_interval,
    tsv_inplane_coordinates,
    uniform_interval,
)
from repro.utils.validation import ValidationError


class TestUniformInterval:
    def test_basic(self):
        coords = uniform_interval(10.0, 5)
        assert coords.shape == (6,)
        np.testing.assert_allclose(np.diff(coords), 2.0)

    def test_start_offset(self):
        coords = uniform_interval(4.0, 2, start=1.0)
        np.testing.assert_allclose(coords, [1.0, 3.0, 5.0])

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            uniform_interval(-1.0, 3)
        with pytest.raises(ValidationError):
            uniform_interval(1.0, 0)


class TestGeometricInterval:
    def test_ratio_one_is_uniform(self):
        np.testing.assert_allclose(
            geometric_interval(10.0, 4, ratio=1.0), uniform_interval(10.0, 4)
        )

    def test_total_length_preserved(self):
        coords = geometric_interval(7.0, 6, ratio=1.5)
        assert coords[0] == pytest.approx(0.0)
        assert coords[-1] == pytest.approx(7.0)

    def test_growth_direction(self):
        sizes = np.diff(geometric_interval(10.0, 5, ratio=1.4))
        assert np.all(np.diff(sizes) > 0)  # growing cells
        sizes = np.diff(geometric_interval(10.0, 5, ratio=1 / 1.4))
        assert np.all(np.diff(sizes) < 0)  # shrinking cells

    def test_cell_ratio_matches(self):
        sizes = np.diff(geometric_interval(10.0, 5, ratio=1.3))
        np.testing.assert_allclose(sizes[1:] / sizes[:-1], 1.3)


class TestSymmetricGradedInterval:
    def test_uniform_when_refinement_one(self):
        np.testing.assert_allclose(
            symmetric_graded_interval(10.0, 4, 1.0), uniform_interval(10.0, 4)
        )

    def test_symmetric_and_refined_at_ends(self):
        coords = symmetric_graded_interval(10.0, 8, boundary_refinement=2.0)
        sizes = np.diff(coords)
        np.testing.assert_allclose(sizes, sizes[::-1], rtol=1e-10)
        assert sizes[0] < sizes[len(sizes) // 2]
        assert coords[0] == pytest.approx(0.0)
        assert coords[-1] == pytest.approx(10.0)

    def test_single_cell(self):
        np.testing.assert_allclose(symmetric_graded_interval(5.0, 1, 3.0), [0.0, 5.0])


class TestTSVInplaneCoordinates:
    def test_mesh_lines_hit_material_interfaces(self):
        coords = tsv_inplane_coordinates(
            pitch=15.0, radius=2.5, outer_radius=3.0, n_core=4, n_liner=1, n_outer=3
        )
        center = 7.5
        for feature in (center - 3.0, center - 2.5, center, center + 2.5, center + 3.0):
            assert np.any(np.isclose(coords, feature, atol=1e-9)), feature

    def test_count_and_bounds(self):
        coords = tsv_inplane_coordinates(
            pitch=10.0, radius=2.5, outer_radius=3.0, n_core=4, n_liner=2, n_outer=3
        )
        assert coords.shape == (4 + 2 * (2 + 3) + 1,)
        assert coords[0] == pytest.approx(0.0)
        assert coords[-1] == pytest.approx(10.0)
        assert np.all(np.diff(coords) > 0)

    def test_symmetry_about_center(self):
        coords = tsv_inplane_coordinates(
            pitch=12.0, radius=2.0, outer_radius=2.4, n_core=4, n_liner=1, n_outer=4
        )
        np.testing.assert_allclose(coords + coords[::-1], 12.0, atol=1e-9)

    def test_tsv_must_fit(self):
        with pytest.raises(ValidationError):
            tsv_inplane_coordinates(
                pitch=5.0, radius=2.5, outer_radius=3.0, n_core=2, n_liner=1, n_outer=2
            )

    def test_outer_radius_must_exceed_radius(self):
        with pytest.raises(ValidationError):
            tsv_inplane_coordinates(
                pitch=15.0, radius=3.0, outer_radius=2.5, n_core=2, n_liner=1, n_outer=2
            )
