"""Unit tests for error metrics and result reporting."""

import numpy as np
import pytest

from repro.analysis.metrics import error_map, normalized_mae, relative_max_error
from repro.analysis.reporting import ResultTable, format_bytes, format_seconds
from repro.utils.validation import ValidationError


class TestNormalizedMAE:
    def test_zero_for_identical_fields(self):
        field = np.random.default_rng(0).uniform(1, 2, size=(4, 4))
        assert normalized_mae(field, field) == 0.0

    def test_known_value(self):
        reference = np.array([0.0, 0.0, 10.0])
        predicted = np.array([1.0, -1.0, 10.0])
        # MAE = 2/3, max reference = 10 -> 0.0667
        assert normalized_mae(predicted, reference) == pytest.approx(2.0 / 30.0)

    def test_scale_invariance(self):
        rng = np.random.default_rng(1)
        reference = rng.uniform(1, 5, size=(3, 7))
        predicted = reference + rng.normal(scale=0.1, size=reference.shape)
        assert normalized_mae(predicted, reference) == pytest.approx(
            normalized_mae(13.7 * predicted, 13.7 * reference)
        )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            normalized_mae(np.zeros(3), np.zeros(4))

    def test_zero_reference_rejected(self):
        with pytest.raises(ValidationError):
            normalized_mae(np.ones(3), np.zeros(3))

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            normalized_mae(np.zeros(0), np.zeros(0))


class TestOtherMetrics:
    def test_relative_max_error(self):
        reference = np.array([2.0, 4.0])
        predicted = np.array([2.0, 5.0])
        assert relative_max_error(predicted, reference) == pytest.approx(0.25)

    def test_error_map_shape_and_values(self):
        reference = np.array([[1.0, 2.0], [3.0, 4.0]])
        predicted = reference + 0.4
        emap = error_map(predicted, reference)
        assert emap.shape == reference.shape
        np.testing.assert_allclose(emap, 0.1)


class TestNonFiniteRejection:
    """NaN/Inf used to flow silently through every metric; now they fail loudly."""

    @pytest.mark.parametrize("metric", [normalized_mae, relative_max_error, error_map])
    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_non_finite_prediction_rejected(self, metric, bad):
        reference = np.array([1.0, 2.0, 3.0])
        predicted = np.array([1.0, bad, 3.0])
        with pytest.raises(ValidationError, match="prediction"):
            metric(predicted, reference)

    @pytest.mark.parametrize("metric", [normalized_mae, relative_max_error, error_map])
    def test_non_finite_reference_rejected(self, metric):
        reference = np.array([1.0, np.nan, 3.0])
        predicted = np.array([1.0, 2.0, 3.0])
        with pytest.raises(ValidationError, match="reference"):
            metric(predicted, reference)

    def test_finite_fields_unaffected(self):
        reference = np.array([1.0, 2.0, 4.0])
        predicted = np.array([1.0, 2.5, 4.0])
        assert normalized_mae(predicted, reference) == pytest.approx(0.5 / 12.0)


class TestFormatting:
    def test_format_seconds(self):
        assert format_seconds(0.0421).endswith("ms")
        assert format_seconds(12.3) == "12.30 s"

    def test_format_seconds_minutes_and_hours(self):
        # Paper Table 2 reference runs land in minute/hour territory; they
        # used to print as e.g. "5400.00 s".
        assert format_seconds(90.0) == "1.5 min"
        assert format_seconds(59.99) == "59.99 s"
        assert format_seconds(3599.0) == "60.0 min"
        assert format_seconds(5400.0) == "1.50 h"
        assert format_seconds(36000.0) == "10.00 h"

    def test_format_bytes(self):
        assert format_bytes(512) == "512.00 B"
        assert format_bytes(2048) == "2.00 KiB"
        assert format_bytes(3 * 2**30) == "3.00 GiB"

    def test_format_bytes_rejects_negative(self):
        with pytest.raises(ValidationError):
            format_bytes(-5)


class TestResultTable:
    def test_add_rows_and_render(self):
        table = ResultTable(columns=["case", "time"], title="demo")
        table.add_row(case="a", time="1 s")
        table.add_rows([{"case": "b", "time": "2 s"}])
        text = table.to_text()
        assert "demo" in text
        assert "case" in text and "b" in text
        assert len(table) == 2

    def test_unknown_column_rejected(self):
        table = ResultTable(columns=["a"])
        with pytest.raises(KeyError):
            table.add_row(b=1)

    def test_column_accessor(self):
        table = ResultTable(columns=["a", "b"])
        table.add_row(a=1)
        table.add_row(a=2, b=3)
        assert table.column("a") == [1, 2]
        assert table.column("b") == [None, 3]
        with pytest.raises(KeyError):
            table.column("c")

    def test_markdown_output(self):
        table = ResultTable(columns=["x"], title="t")
        table.add_row(x="v")
        markdown = table.to_markdown()
        assert "| x |" in markdown
        assert "| v |" in markdown

    def test_empty_table_renders_header(self):
        table = ResultTable(columns=["only"])
        assert "only" in table.to_text()
