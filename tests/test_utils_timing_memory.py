"""Unit tests for timing and memory utilities."""

import time

import numpy as np
import pytest

from repro.utils.memory import MemoryReport, PeakMemoryTracker, measure_peak_memory
from repro.utils.timing import StageTimings, Timer, timed


class TestTimer:
    def test_context_manager_accumulates(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.01

    def test_multiple_intervals_accumulate(self):
        timer = Timer()
        with timer:
            time.sleep(0.005)
        first = timer.elapsed
        with timer:
            time.sleep(0.005)
        assert timer.elapsed > first

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0


class TestStageTimings:
    def test_measure_and_total(self):
        timings = StageTimings()
        with timings.measure("a"):
            time.sleep(0.005)
        timings.add("b", 1.5)
        assert timings.get("a") > 0.0
        assert timings.get("b") == 1.5
        assert timings.total() == pytest.approx(timings.get("a") + 1.5)

    def test_repeated_stage_accumulates(self):
        timings = StageTimings()
        timings.add("solve", 1.0)
        timings.add("solve", 2.0)
        assert timings.get("solve") == 3.0

    def test_merge_keeps_both(self):
        a = StageTimings({"x": 1.0})
        b = StageTimings({"x": 2.0, "y": 3.0})
        merged = a.merge(b)
        assert merged.get("x") == 3.0
        assert merged.get("y") == 3.0
        # originals untouched
        assert a.get("x") == 1.0

    def test_get_default(self):
        assert StageTimings().get("missing", 7.0) == 7.0

    def test_as_dict_is_copy(self):
        timings = StageTimings({"x": 1.0})
        d = timings.as_dict()
        d["x"] = 99.0
        assert timings.get("x") == 1.0


class TestTimedDecorator:
    def test_returns_result_and_elapsed(self):
        @timed
        def add(a, b):
            return a + b

        result, elapsed = add(2, 3)
        assert result == 5
        assert elapsed >= 0.0


class TestPeakMemoryTracker:
    def test_tracks_allocation(self):
        with PeakMemoryTracker() as tracker:
            _ = np.zeros(500_000)  # ~4 MB
        assert tracker.peak_bytes > 1_000_000

    def test_report_units(self):
        report = MemoryReport(peak_traced_bytes=2**30, rss_delta_bytes=None)
        assert report.peak_traced_gb == pytest.approx(1.0)
        assert report.peak_traced_mb == pytest.approx(1024.0)

    def test_peak_bytes_before_exit_raises(self):
        tracker = PeakMemoryTracker()
        with pytest.raises(RuntimeError):
            _ = tracker.peak_bytes

    def test_measure_peak_memory_helper(self):
        result, report = measure_peak_memory(lambda: np.ones(100_000).sum())
        assert result == pytest.approx(100_000.0)
        assert report.peak_traced_bytes > 0
