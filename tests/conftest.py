"""Shared fixtures for the test suite.

Expensive objects (meshes, reduced order models, reference solutions) are
session-scoped so the suite stays fast: they are built once on the smallest
("tiny") mesh preset and reused by many tests.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Allow running the tests without installing the package (e.g. straight from
# a source checkout on a machine where editable installs are unavailable).
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.baselines.full_fem import FullFEMReference  # noqa: E402
from repro.geometry.array_layout import TSVArrayLayout  # noqa: E402
from repro.geometry.tsv import TSVGeometry  # noqa: E402
from repro.geometry.unit_block import UnitBlockGeometry  # noqa: E402
from repro.materials.library import MaterialLibrary  # noqa: E402
from repro.mesh.block_mesher import mesh_unit_block  # noqa: E402
from repro.mesh.resolution import MeshResolution  # noqa: E402
from repro.rom.interpolation import InterpolationScheme  # noqa: E402
from repro.rom.local_stage import LocalStage  # noqa: E402
from repro.rom.workflow import MoreStressSimulator  # noqa: E402

#: Thermal load used across the tests (the paper's fabrication cool-down).
DELTA_T = -250.0


@pytest.fixture(scope="session")
def materials() -> MaterialLibrary:
    """The default Cu/Si/SiO2 material library."""
    return MaterialLibrary.default()


@pytest.fixture(scope="session")
def tsv15() -> TSVGeometry:
    """Paper TSV at 15 um pitch."""
    return TSVGeometry.paper_default(pitch=15.0)


@pytest.fixture(scope="session")
def tsv10() -> TSVGeometry:
    """Paper TSV at 10 um pitch."""
    return TSVGeometry.paper_default(pitch=10.0)


@pytest.fixture(scope="session")
def tiny_resolution() -> MeshResolution:
    """The smallest mesh preset (used for fast solves)."""
    return MeshResolution.preset("tiny")


@pytest.fixture(scope="session")
def tsv_block(tsv15) -> UnitBlockGeometry:
    """A TSV unit block at 15 um pitch."""
    return UnitBlockGeometry(tsv=tsv15, has_tsv=True)


@pytest.fixture(scope="session")
def dummy_block(tsv15) -> UnitBlockGeometry:
    """A dummy (pure silicon) unit block at 15 um pitch."""
    return UnitBlockGeometry(tsv=tsv15, has_tsv=False)


@pytest.fixture(scope="session")
def tiny_block_mesh(tsv_block, tiny_resolution):
    """Fine mesh of one TSV unit block at tiny resolution."""
    return mesh_unit_block(tsv_block, tiny_resolution)


@pytest.fixture(scope="session")
def scheme_333() -> InterpolationScheme:
    """A small interpolation scheme used for fast ROM tests."""
    return InterpolationScheme((3, 3, 3))


@pytest.fixture(scope="session")
def rom_tsv_tiny(materials, tsv_block, tiny_resolution, scheme_333):
    """ROM of the TSV block (tiny mesh, (3,3,3) nodes)."""
    stage = LocalStage(materials=materials, resolution=tiny_resolution, scheme=scheme_333)
    return stage.build(tsv_block)


@pytest.fixture(scope="session")
def rom_dummy_tiny(materials, dummy_block, tiny_resolution, scheme_333):
    """ROM of the dummy block (tiny mesh, (3,3,3) nodes)."""
    stage = LocalStage(materials=materials, resolution=tiny_resolution, scheme=scheme_333)
    return stage.build(dummy_block)


@pytest.fixture(scope="session")
def simulator_tiny(tsv15, materials) -> MoreStressSimulator:
    """A MORE-Stress simulator on the tiny mesh with (4,4,4) nodes."""
    return MoreStressSimulator(
        tsv15, materials, mesh_resolution="tiny", nodes_per_axis=(4, 4, 4)
    )


@pytest.fixture(scope="session")
def reference_2x2(materials, tsv15):
    """Reference full-FEM solution of a clamped 2x2 array (tiny mesh)."""
    reference = FullFEMReference(materials, resolution="tiny")
    layout = TSVArrayLayout.full(tsv15, rows=2)
    return reference.solve_array(layout, DELTA_T)


@pytest.fixture(scope="session")
def rom_result_2x2(simulator_tiny):
    """MORE-Stress solution of the same clamped 2x2 array (tiny mesh)."""
    return simulator_tiny.simulate_array(rows=2, delta_t=DELTA_T)
