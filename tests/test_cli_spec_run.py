"""Tests for the spec-driven CLI surface: ``repro spec``, ``repro run``,
``--material`` overrides, ``--json`` manifests and the table ``--preset`` flag."""

import json
from pathlib import Path

import pytest

from repro.api import SCHEMA_VERSION, SimulationSpec
from repro.cli import main

FAST = [
    "--rows",
    "1",
    "--resolution",
    "tiny",
    "--nodes",
    "3",
    "--points-per-block",
    "5",
]


class TestSpecCommand:
    def test_spec_emits_valid_document_to_stdout(self, capsys):
        assert main(["spec", *FAST]) == 0
        out = capsys.readouterr().out
        spec = SimulationSpec.from_json(out)
        assert spec.geometry.rows == 1
        assert spec.mesh.resolution == "tiny"

    def test_spec_writes_file_and_run_executes_it(self, tmp_path, capsys):
        spec_path = tmp_path / "run.json"
        assert main(["spec", *FAST, "-o", str(spec_path)]) == 0
        assert main(["run", str(spec_path)]) == 0
        out = capsys.readouterr().out
        assert "peak von Mises" in out
        assert "execution groups  : 1" in out

    def test_spec_records_material_overrides(self, capsys):
        assert main(["spec", *FAST, "--material", "copper:120,0.34,16.5"]) == 0
        spec = SimulationSpec.from_json(capsys.readouterr().out)
        assert spec.materials.overrides[0].role == "copper"
        assert spec.materials.overrides[0].young_modulus_gpa == 120.0


class TestSimulateMaterials:
    def test_material_override_changes_the_result(self, capsys):
        assert main(["simulate", *FAST]) == 0
        baseline = capsys.readouterr().out
        assert main(["simulate", *FAST, "--material", "copper:220,0.30,25"]) == 0
        overridden = capsys.readouterr().out

        def peak(output: str) -> float:
            line = next(
                row for row in output.splitlines() if "peak von Mises" in row
            )
            return float(line.split(":")[1].replace("MPa", "").strip())

        assert peak(baseline) != peak(overridden)

    def test_malformed_material_flag_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", *FAST, "--material", "copper=120"])
        with pytest.raises(SystemExit):
            main(["simulate", *FAST, "--material", "copper:banana,0.3,17"])
        with pytest.raises(SystemExit):
            main(["simulate", *FAST, "--material", "kryptonite:100,0.3,17"])

    def test_duplicate_material_role_is_a_clean_error(self, capsys):
        code = main(
            [
                "simulate",
                *FAST,
                "--material",
                "copper:120,0.34,16.5",
                "--material",
                "copper:110,0.35,17",
            ]
        )
        assert code == 2
        assert "overridden twice" in capsys.readouterr().err


class TestJsonManifest:
    def test_simulate_json_manifest_reloads(self, tmp_path, capsys):
        manifest_path = tmp_path / "manifest.json"
        assert main(["simulate", *FAST, "--json", str(manifest_path)]) == 0
        manifest = json.loads(manifest_path.read_text())
        assert manifest["schema_version"] == SCHEMA_VERSION
        assert manifest["num_case_groups"] == 1
        # the embedded spec is itself a loadable document...
        spec = SimulationSpec.from_dict(manifest["spec"])
        # ...and the hash proves which spec produced this result
        assert manifest["spec_hash"] == spec.spec_hash()
        assert manifest["cases"][0]["peak_von_mises"] > 0.0

    def test_run_json_manifest_reloads(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        manifest_path = tmp_path / "manifest.json"
        assert main(["spec", *FAST, "-o", str(spec_path)]) == 0
        assert main(["run", str(spec_path), "--json", str(manifest_path)]) == 0
        manifest = json.loads(manifest_path.read_text())
        assert SimulationSpec.from_dict(manifest["spec"]).geometry.rows == 1
        assert manifest["backends_used"]

    def test_run_save_directory_reloads(self, tmp_path, capsys):
        from repro.api import RunResult

        spec_path = tmp_path / "spec.json"
        assert main(["spec", *FAST, "-o", str(spec_path)]) == 0
        out_dir = tmp_path / "result"
        assert main(["run", str(spec_path), "--save", str(out_dir)]) == 0
        loaded = RunResult.load(out_dir)
        assert loaded.cases[0].von_mises.shape == (1, 1, 5, 5)


class TestRunExampleSpecs:
    """The shipped example specs execute end to end through ``repro run``."""

    EXAMPLES = Path(__file__).resolve().parent.parent / "examples" / "specs"

    def test_load_sweep_spec_batches(self, capsys):
        assert main(["run", str(self.EXAMPLES / "load_sweep.json")]) == 0
        out = capsys.readouterr().out
        # three same-layout loads share one factorisation; the extra 5x5
        # case is its own group
        assert "execution groups  : 2" in out
        assert out.count("-batched") == 3

    def test_submodel_spec_runs(self, capsys):
        assert main(["run", str(self.EXAMPLES / "submodel.json")]) == 0
        out = capsys.readouterr().out
        assert "at loc1" in out and "at loc3" in out


class TestRunErrors:
    def test_missing_spec_file(self, capsys):
        assert main(["run", "/nonexistent/spec.json"]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_malformed_spec_file_names_field(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"geometry": {"pitch": -1.0}}))
        assert main(["run", str(bad)]) == 2
        assert "pitch" in capsys.readouterr().err


class TestTablePresets:
    @pytest.mark.parametrize("table", ["table2", "table3"])
    def test_medium_rejected_where_missing(self, table, capsys):
        assert main([table, "--preset", "medium"]) == 2
        err = capsys.readouterr().err
        assert "medium" in err and "preset" in err

    def test_unknown_preset_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["table1", "--preset", "galactic"])
