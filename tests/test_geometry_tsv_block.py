"""Unit tests for TSV geometry and unit blocks."""

import math

import numpy as np
import pytest

from repro.geometry.tsv import TSVGeometry
from repro.geometry.unit_block import UnitBlockGeometry
from repro.materials.library import ROLE_COPPER, ROLE_LINER, ROLE_SILICON
from repro.utils.validation import ValidationError


class TestTSVGeometry:
    def test_paper_default_values(self):
        tsv = TSVGeometry.paper_default()
        assert tsv.diameter == 5.0
        assert tsv.height == 50.0
        assert tsv.liner_thickness == 0.5
        assert tsv.pitch == 15.0

    def test_derived_quantities(self):
        tsv = TSVGeometry(diameter=4.0, height=40.0, liner_thickness=0.5, pitch=12.0)
        assert tsv.radius == 2.0
        assert tsv.outer_radius == 2.5
        assert tsv.outer_diameter == 5.0
        assert tsv.aspect_ratio == pytest.approx(10.0)

    def test_fill_factor(self):
        tsv = TSVGeometry(diameter=4.0, height=40.0, liner_thickness=0.5, pitch=10.0)
        expected = math.pi * 2.5**2 / 100.0
        assert tsv.fill_factor == pytest.approx(expected)

    def test_with_pitch(self):
        tsv = TSVGeometry.paper_default(pitch=15.0).with_pitch(10.0)
        assert tsv.pitch == 10.0
        assert tsv.diameter == 5.0

    def test_tsv_must_fit_in_cell(self):
        with pytest.raises(ValidationError):
            TSVGeometry(diameter=10.0, height=50.0, liner_thickness=0.5, pitch=10.0)

    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(ValidationError):
            TSVGeometry(diameter=-1.0, height=50.0, liner_thickness=0.5, pitch=15.0)
        with pytest.raises(ValidationError):
            TSVGeometry(diameter=5.0, height=0.0, liner_thickness=0.5, pitch=15.0)


class TestUnitBlockGeometry:
    def test_dimensions(self, tsv15):
        block = UnitBlockGeometry(tsv=tsv15)
        assert block.dimensions == (15.0, 15.0, 50.0)
        assert block.center_xy == (7.5, 7.5)

    def test_material_classification_center_is_copper(self, tsv15):
        block = UnitBlockGeometry(tsv=tsv15)
        role = block.material_role_at(np.array([7.5]), np.array([7.5]))
        assert role[0] == ROLE_COPPER

    def test_material_classification_liner_ring(self, tsv15):
        block = UnitBlockGeometry(tsv=tsv15)
        # radius 2.5, liner to 3.0: a point at r = 2.75 from the centre is liner
        role = block.material_role_at(np.array([7.5 + 2.75]), np.array([7.5]))
        assert role[0] == ROLE_LINER

    def test_material_classification_corner_is_silicon(self, tsv15):
        block = UnitBlockGeometry(tsv=tsv15)
        role = block.material_role_at(np.array([0.5]), np.array([0.5]))
        assert role[0] == ROLE_SILICON

    def test_dummy_block_is_all_silicon(self, tsv15):
        block = UnitBlockGeometry(tsv=tsv15, has_tsv=False)
        xs = np.linspace(0, 15, 7)
        roles = block.material_role_at(*np.meshgrid(xs, xs, indexing="ij"))
        assert np.all(roles == ROLE_SILICON)

    def test_as_dummy(self, tsv15):
        block = UnitBlockGeometry(tsv=tsv15, has_tsv=True)
        assert block.as_dummy().has_tsv is False

    def test_volume_fractions_sum_to_one(self, tsv15):
        block = UnitBlockGeometry(tsv=tsv15)
        fractions = block.volume_fractions(samples_per_axis=100)
        assert sum(fractions.values()) == pytest.approx(1.0)
        # Copper area fraction should be close to pi r^2 / p^2.
        expected_copper = math.pi * 2.5**2 / 15.0**2
        assert fractions[ROLE_COPPER] == pytest.approx(expected_copper, rel=0.1)

    def test_dummy_volume_fraction_all_silicon(self, tsv15):
        fractions = UnitBlockGeometry(tsv=tsv15, has_tsv=False).volume_fractions(50)
        assert fractions[ROLE_SILICON] == pytest.approx(1.0)
