"""Tests for the pluggable sparse-solver backends and their selection."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.fem.backends import (
    BACKEND_ALIASES,
    CholmodBackend,
    FactorizedOperator,
    JacobiCGBackend,
    JacobiGMRESBackend,
    PyAMGBackend,
    available_backends,
    backend_names,
    canonical_backend_name,
    get_backend,
    resolve_backend,
)
from repro.fem.solver import LinearSolver, SolverOptions
from repro.utils.validation import ValidationError


def _spd_system(n: int = 40):
    diagonals = [-np.ones(n - 1), 4.0 * np.ones(n), -np.ones(n - 1)]
    matrix = sp.diags(diagonals, offsets=(-1, 0, 1)).tocsr()
    rhs = np.linspace(1.0, 2.0, n)
    return matrix, rhs


class TestRegistry:
    def test_core_backends_registered(self):
        names = backend_names()
        for name in ("direct-splu", "cg", "gmres", "cholmod", "pyamg"):
            assert name in names

    def test_direct_always_available(self):
        assert "direct-splu" in available_backends()

    def test_aliases_resolve_to_canonical_names(self):
        for alias, canonical in BACKEND_ALIASES.items():
            assert canonical_backend_name(alias) == canonical

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError, match="unknown solver backend"):
            canonical_backend_name("petsc")
        with pytest.raises(ValidationError):
            get_backend("petsc")
        with pytest.raises(ValidationError):
            resolve_backend("petsc")

    def test_get_backend_accepts_aliases(self):
        assert get_backend("direct").name == "direct-splu"
        assert get_backend("cg+jacobi").name == "cg"


class TestFallback:
    def test_unavailable_backend_falls_back_along_chain(self, monkeypatch):
        monkeypatch.setattr(CholmodBackend, "is_available", classmethod(lambda cls: False))
        backend, requested = resolve_backend("cholmod")
        assert requested == "cholmod"
        assert backend.name == "direct-splu"

    def test_pyamg_falls_back_to_cg_first(self, monkeypatch):
        monkeypatch.setattr(PyAMGBackend, "is_available", classmethod(lambda cls: False))
        backend, requested = resolve_backend("pyamg")
        assert requested == "pyamg"
        assert backend.name == "cg"

    def test_available_backend_resolves_to_itself(self):
        backend, requested = resolve_backend("direct-splu")
        assert backend.name == requested == "direct-splu"

    def test_fallback_recorded_in_solve_stats(self, monkeypatch):
        monkeypatch.setattr(CholmodBackend, "is_available", classmethod(lambda cls: False))
        matrix, rhs = _spd_system()
        solver = LinearSolver(SolverOptions(backend="cholmod"))
        solution = solver.solve(matrix, rhs)
        assert np.allclose(matrix @ solution, rhs)
        assert solver.last_stats.method == "cholmod->direct-splu"
        assert solver.last_stats.converged

    def test_iterative_fallback_label_preserved_through_substitution(self, monkeypatch):
        monkeypatch.setattr(PyAMGBackend, "is_available", classmethod(lambda cls: False))
        matrix, rhs = _spd_system()
        solver = LinearSolver(SolverOptions(backend="pyamg", rtol=1e-10))
        solution = solver.solve(matrix, rhs)
        assert np.allclose(matrix @ solution, rhs)
        assert solver.last_stats.method.startswith("pyamg->cg")


class TestSolveStatsLabels:
    def test_direct_method_labeled_with_backend_name(self):
        matrix, rhs = _spd_system()
        solver = LinearSolver(SolverOptions(method="direct"))
        solver.solve(matrix, rhs)
        assert solver.last_stats.method == "direct-splu"
        assert solver.last_stats.iterations == 1

    def test_explicit_backend_overrides_method(self):
        matrix, rhs = _spd_system()
        solver = LinearSolver(SolverOptions(method="gmres", backend="direct-splu"))
        solver.solve(matrix, rhs)
        assert solver.last_stats.method == "direct-splu"

    def test_cg_backend_label(self):
        matrix, rhs = _spd_system()
        solver = LinearSolver(SolverOptions(backend="cg", rtol=1e-10))
        solution = solver.solve(matrix, rhs)
        assert np.allclose(matrix @ solution, rhs, atol=1e-6)
        assert solver.last_stats.method == "cg"
        assert solver.last_stats.iterations >= 1


class TestSolverOptionsBackendField:
    def test_backend_alias_normalized(self):
        assert SolverOptions(backend="direct").backend == "direct-splu"
        assert SolverOptions(backend="cg+jacobi").backend == "cg"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError):
            SolverOptions(backend="petsc")

    def test_effective_backend_derived_from_method(self):
        assert SolverOptions(method="direct").effective_backend == "direct-splu"
        assert SolverOptions(method="cg").effective_backend == "cg"
        assert SolverOptions(method="gmres").effective_backend == "gmres"
        assert SolverOptions(method="gmres", backend="cholmod").effective_backend == "cholmod"


class TestFactorization:
    def test_iterative_backends_delegate_factorization_to_superlu(self):
        matrix, rhs = _spd_system()
        for backend_cls in (JacobiCGBackend, JacobiGMRESBackend):
            operator = backend_cls().factorize(matrix)
            assert isinstance(operator, FactorizedOperator)
            assert np.allclose(matrix @ operator.solve(rhs), rhs)

    def test_factorized_operator_handles_rhs_blocks(self):
        matrix, rhs = _spd_system()
        operator = FactorizedOperator(matrix)
        block = np.column_stack([rhs, 2.0 * rhs])
        solution = operator.solve(block)
        assert solution.shape == block.shape
        assert np.allclose(matrix @ solution, block)

    def test_factorize_rejects_non_square(self):
        with pytest.raises(ValidationError):
            FactorizedOperator(sp.csr_matrix(np.ones((3, 4))))
