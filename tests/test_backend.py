"""Tests for the pluggable array backend (:mod:`repro.backend`)."""

import importlib.util
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
import scipy.sparse as sp

import repro
from repro.api.executor import _requested_array_backend
from repro.api.spec import SCHEMA_VERSION, SUPPORTED_SCHEMA_VERSIONS, SimulationSpec, SolverSpec
from repro.backend import (
    ARRAY_BACKEND_ALIASES,
    ARRAY_BACKEND_ENV_VAR,
    ArrayBackend,
    BackendManager,
    CupyArrayBackend,
    TorchArrayBackend,
    array_backend_names,
    available_array_backends,
    bm,
    canonical_array_backend_name,
    get_array_backend,
    register_array_backend,
    resolve_array_backend,
    unregister_array_backend,
    use_array_backend,
)
from repro.fem.element import element_stiffness, element_thermal_load
from repro.fem.solver import LinearSolver, SolverOptions
from repro.utils.validation import ValidationError

SRC_DIR = Path(repro.__file__).resolve().parents[1]
REPO_ROOT = SRC_DIR.parent


def _isotropic_d_matrix() -> np.ndarray:
    lam, mu = 2.0, 1.5
    d = np.zeros((6, 6))
    d[:3, :3] = lam
    d[np.arange(3), np.arange(3)] += 2.0 * mu
    d[np.arange(3, 6), np.arange(3, 6)] = mu
    return d


class TestRegistry:
    def test_core_backends_registered(self):
        names = array_backend_names()
        for name in ("numpy", "torch", "cupy"):
            assert name in names

    def test_numpy_always_available(self):
        assert "numpy" in available_array_backends()

    def test_aliases_resolve_to_canonical_names(self):
        for alias, canonical in ARRAY_BACKEND_ALIASES.items():
            assert canonical_array_backend_name(alias) == canonical

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError, match="unknown array backend"):
            canonical_array_backend_name("jax")
        with pytest.raises(ValidationError):
            get_array_backend("jax")
        with pytest.raises(ValidationError):
            resolve_array_backend("jax")

    def test_get_backend_accepts_aliases(self):
        assert get_array_backend("np").name == "numpy"
        assert get_array_backend("pytorch").name == "torch"


class TestFallback:
    def test_unavailable_torch_falls_back_to_numpy(self, monkeypatch):
        monkeypatch.setattr(
            TorchArrayBackend, "is_available", classmethod(lambda cls: False)
        )
        backend, requested = resolve_array_backend("torch")
        assert requested == "torch"
        assert backend.name == "numpy"

    def test_unavailable_cupy_falls_back_to_numpy(self, monkeypatch):
        monkeypatch.setattr(
            CupyArrayBackend, "is_available", classmethod(lambda cls: False)
        )
        backend, requested = resolve_array_backend("cupy")
        assert requested == "cupy"
        assert backend.name == "numpy"

    def test_numpy_resolves_to_itself(self):
        backend, requested = resolve_array_backend("numpy")
        assert backend.name == requested == "numpy"

    def test_set_backend_records_request_and_resolution(self, monkeypatch):
        monkeypatch.setattr(
            TorchArrayBackend, "is_available", classmethod(lambda cls: False)
        )
        manager = BackendManager()
        resolved = manager.set_backend("torch")
        assert resolved == "numpy"
        assert manager.active_name == "numpy"
        assert manager.requested_name == "torch"


class TestBackendManager:
    def test_default_backend_is_numpy(self):
        manager = BackendManager()
        assert manager.active_name == "numpy"

    def test_numpy_namespace_forwards_to_numpy(self):
        manager = BackendManager()
        assert manager.einsum is np.einsum
        assert manager.ftype is np.float64
        assert manager.itype is np.int64

    def test_asnumpy_is_identity_on_numpy(self):
        array = np.arange(3.0)
        assert bm.asnumpy(array) is array

    def test_private_attributes_not_forwarded(self):
        with pytest.raises(AttributeError):
            bm.__wrapped__

    def test_env_var_selects_initial_backend(self, monkeypatch):
        monkeypatch.setenv(ARRAY_BACKEND_ENV_VAR, "np")
        manager = BackendManager()
        assert manager.active_name == "numpy"
        assert manager.requested_name == "numpy"

    def test_unknown_env_var_rejected_on_first_use(self, monkeypatch):
        monkeypatch.setenv(ARRAY_BACKEND_ENV_VAR, "jax")
        manager = BackendManager()
        with pytest.raises(ValidationError, match="unknown array backend"):
            manager.active_name


class _FakeNamespace:
    """Numpy in disguise: proves a third-party namespace can be plugged in."""

    name = "fake"
    ftype = np.float64
    itype = np.int64

    def __init__(self):
        self.calls = []

    def asnumpy(self, array):
        return np.asarray(array)

    def from_numpy(self, array):
        return np.asarray(array)

    def __getattr__(self, attr):
        self.calls.append(attr)
        return getattr(np, attr)


class _FakeArrayBackend(ArrayBackend):
    name = "fake"
    fallback = ("numpy",)

    def __init__(self):
        self.namespace = _FakeNamespace()

    @classmethod
    def is_available(cls) -> bool:
        return True

    def create_namespace(self):
        return self.namespace


class TestThirdPartyBackend:
    def test_register_swap_and_restore(self):
        backend = _FakeArrayBackend()
        register_array_backend(backend)
        try:
            assert "fake" in array_backend_names()
            assert "fake" in available_array_backends()
            before = bm.active_name
            with use_array_backend("fake") as resolved:
                assert resolved == "fake"
                assert bm.active_name == "fake"
                # Kernel calls route through the fake namespace.
                ke = element_stiffness((1.0, 1.0, 1.0), _isotropic_d_matrix())
                assert ke.shape == (24, 24)
                assert backend.namespace.calls  # the namespace was exercised
            assert bm.active_name == before
        finally:
            unregister_array_backend("fake")
        assert "fake" not in array_backend_names()

    def test_duplicate_registration_rejected(self):
        backend = _FakeArrayBackend()
        register_array_backend(backend)
        try:
            with pytest.raises(ValidationError):
                register_array_backend(_FakeArrayBackend())
            register_array_backend(_FakeArrayBackend(), replace=True)
        finally:
            unregister_array_backend("fake")

    def test_numpy_cannot_be_unregistered(self):
        with pytest.raises(ValidationError):
            unregister_array_backend("numpy")

    def test_fake_backend_matches_numpy_results(self):
        d_matrix = _isotropic_d_matrix()
        ke_numpy = element_stiffness((1.0, 2.0, 3.0), d_matrix)
        register_array_backend(_FakeArrayBackend())
        try:
            with use_array_backend("fake"):
                ke_fake = element_stiffness((1.0, 2.0, 3.0), d_matrix)
        finally:
            unregister_array_backend("fake")
        np.testing.assert_array_equal(ke_numpy, ke_fake)


class TestUseArrayBackendContext:
    def test_restores_on_exception(self):
        before = bm.active_name
        with pytest.raises(RuntimeError):
            with use_array_backend("numpy"):
                raise RuntimeError("boom")
        assert bm.active_name == before

    def test_unknown_backend_raises_before_entering(self):
        with pytest.raises(ValidationError):
            with use_array_backend("jax"):
                pass  # pragma: no cover


class TestLazyImport:
    def test_importing_repro_backend_does_not_import_torch_or_cupy(self):
        code = (
            "import sys\n"
            "import repro.backend\n"
            "from repro.backend import bm\n"
            "bm.zeros(3)\n"  # activate the default backend too
            "assert 'torch' not in sys.modules, 'torch imported eagerly'\n"
            "assert 'cupy' not in sys.modules, 'cupy imported eagerly'\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR)
        env.pop(ARRAY_BACKEND_ENV_VAR, None)
        result = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True
        )
        assert result.returncode == 0, result.stderr


class TestEquivalenceSuiteSkipsCleanly:
    @pytest.mark.skipif(
        importlib.util.find_spec("torch") is not None,
        reason="torch is installed; the equivalence tests run for real",
    )
    def test_equivalence_tests_skip_cleanly_without_torch(self):
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                "-q",
                str(REPO_ROOT / "tests" / "test_backend_equivalence.py"),
            ],
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "skipped" in result.stdout


class TestSelectionPrecedence:
    def test_override_beats_everything(self, monkeypatch):
        monkeypatch.setenv(ARRAY_BACKEND_ENV_VAR, "torch")
        assert _requested_array_backend("numpy", "cupy") == "numpy"

    def test_explicit_spec_value_beats_env(self, monkeypatch):
        monkeypatch.setenv(ARRAY_BACKEND_ENV_VAR, "cupy")
        assert _requested_array_backend(None, "torch") == "torch"

    def test_env_beats_spec_default(self, monkeypatch):
        monkeypatch.setenv(ARRAY_BACKEND_ENV_VAR, "torch")
        assert _requested_array_backend(None, "numpy") == "torch"

    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv(ARRAY_BACKEND_ENV_VAR, raising=False)
        assert _requested_array_backend(None, "numpy") == "numpy"


class TestProvenance:
    def test_solve_stats_record_array_backend(self):
        n = 20
        matrix = sp.diags(
            [-np.ones(n - 1), 4.0 * np.ones(n), -np.ones(n - 1)], offsets=(-1, 0, 1)
        ).tocsr()
        rhs = np.linspace(1.0, 2.0, n)
        solver = LinearSolver(SolverOptions(method="direct"))
        solver.solve(matrix, rhs)
        assert solver.last_stats.array_backend == "numpy"


class TestDtypePolicy:
    def test_element_stiffness_promotes_float32_inputs(self):
        d32 = _isotropic_d_matrix().astype(np.float32)
        ke = element_stiffness((1.0, 1.0, 1.0), d32)
        assert ke.dtype == np.float64

    def test_element_thermal_load_promotes_float32_inputs(self):
        d32 = _isotropic_d_matrix().astype(np.float32)
        strain32 = np.array([1.0, 1.0, 1.0, 0.0, 0.0, 0.0], dtype=np.float32)
        fe = element_thermal_load((1.0, 1.0, 1.0), d32, strain32)
        assert fe.dtype == np.float64


class TestSpecIntegration:
    def test_solver_spec_default_and_alias(self):
        assert SolverSpec().array_backend == "numpy"
        assert SolverSpec(array_backend="pytorch").array_backend == "torch"

    def test_unknown_array_backend_names_the_field(self):
        with pytest.raises(ValidationError, match="array_backend"):
            SolverSpec(array_backend="jax")

    def test_schema_version_bumped_and_supported(self):
        assert SCHEMA_VERSION == 3
        assert set(SUPPORTED_SCHEMA_VERSIONS) == {1, 2, 3}
        assert SimulationSpec().to_dict()["schema_version"] == 3

    def test_v1_document_without_array_backend_still_loads(self):
        document = SimulationSpec().to_dict()
        document["schema_version"] = 1
        del document["solver"]["array_backend"]
        del document["solver"]["shard"]
        spec = SimulationSpec.from_dict(document)
        assert spec.solver.array_backend == "numpy"
        assert spec.solver.shard is None

    def test_future_schema_version_rejected(self):
        document = SimulationSpec().to_dict()
        document["schema_version"] = 99
        from repro.api.spec import SpecError

        with pytest.raises(SpecError, match="schema_version"):
            SimulationSpec.from_dict(document)

    def test_round_trip_preserves_array_backend(self):
        spec = SimulationSpec(solver=SolverSpec(array_backend="torch"))
        again = SimulationSpec.from_json(spec.to_json())
        assert again.solver.array_backend == "torch"
