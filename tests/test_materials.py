"""Unit tests for the material models and library."""

import numpy as np
import pytest

from repro.materials.library import (
    ROLE_COPPER,
    ROLE_LINER,
    ROLE_SILICON,
    MaterialAssignment,
    MaterialLibrary,
)
from repro.materials.material import IsotropicMaterial, lame_parameters
from repro.materials.temperature import ThermalLoad
from repro.utils.units import GPA
from repro.utils.validation import ValidationError


class TestLameParameters:
    def test_known_values(self):
        # E = 1, nu = 0.25 -> lambda = 0.4, mu = 0.4
        lam, mu = lame_parameters(1.0, 0.25)
        assert lam == pytest.approx(0.4)
        assert mu == pytest.approx(0.4)

    def test_copper_values(self):
        lam, mu = lame_parameters(110.0 * GPA, 0.35)
        # Standard formulas: mu = E / (2 (1 + nu)); lambda = E nu / ((1+nu)(1-2nu))
        assert mu == pytest.approx(110.0e3 / 2.7, rel=1e-12)
        assert lam == pytest.approx(110.0e3 * 0.35 / (1.35 * 0.3), rel=1e-12)

    def test_invalid_poisson_rejected(self):
        with pytest.raises(ValidationError):
            lame_parameters(100.0, 0.5)
        with pytest.raises(ValidationError):
            lame_parameters(100.0, -1.0)

    def test_invalid_modulus_rejected(self):
        with pytest.raises(ValidationError):
            lame_parameters(-5.0, 0.3)


class TestIsotropicMaterial:
    def test_elasticity_matrix_structure(self):
        material = IsotropicMaterial("test", 100.0 * GPA, 0.3, 3e-6)
        d = material.elasticity_matrix()
        assert d.shape == (6, 6)
        np.testing.assert_allclose(d, d.T)
        lam, mu = material.lame_lambda, material.lame_mu
        assert d[0, 0] == pytest.approx(lam + 2 * mu)
        assert d[0, 1] == pytest.approx(lam)
        assert d[3, 3] == pytest.approx(mu)
        # no normal-shear coupling for isotropy
        assert np.all(d[:3, 3:] == 0.0)

    def test_elasticity_matrix_positive_definite(self):
        material = IsotropicMaterial("test", 130.0 * GPA, 0.28, 2.3e-6)
        eigenvalues = np.linalg.eigvalsh(material.elasticity_matrix())
        assert np.all(eigenvalues > 0.0)

    def test_thermal_strain(self):
        material = IsotropicMaterial("test", 100.0, 0.3, 2e-6)
        eps = material.thermal_strain(-250.0)
        np.testing.assert_allclose(eps[:3], -250.0 * 2e-6)
        np.testing.assert_allclose(eps[3:], 0.0)

    def test_thermal_stress_coefficient_matches_definition(self):
        material = IsotropicMaterial("test", 100.0, 0.3, 2e-6)
        expected = 2e-6 * (3 * material.lame_lambda + 2 * material.lame_mu)
        assert material.thermal_stress_coefficient() == pytest.approx(expected)

    def test_bulk_modulus(self):
        material = IsotropicMaterial("test", 100.0, 0.25, 1e-6)
        k_expected = 100.0 / (3 * (1 - 2 * 0.25))
        assert material.bulk_modulus == pytest.approx(k_expected)

    def test_with_name(self):
        material = IsotropicMaterial("a", 10.0, 0.3, 1e-6)
        renamed = material.with_name("b")
        assert renamed.name == "b"
        assert renamed.young_modulus == material.young_modulus

    def test_invalid_cte_rejected(self):
        with pytest.raises(ValidationError):
            IsotropicMaterial("bad", 10.0, 0.3, -1e-6)


class TestMaterialLibrary:
    def test_default_contains_tsv_roles(self):
        library = MaterialLibrary.default()
        for role in (ROLE_SILICON, ROLE_COPPER, ROLE_LINER):
            assert role in library
            assert library[role].young_modulus > 0

    def test_copper_cte_exceeds_silicon(self):
        # The CTE mismatch is the physical driver of TSV stress.
        library = MaterialLibrary.default()
        assert library[ROLE_COPPER].cte > 5 * library[ROLE_SILICON].cte

    def test_unknown_role_raises_keyerror(self):
        with pytest.raises(KeyError, match="not found"):
            MaterialLibrary.default()["adamantium"]

    def test_add_and_subset(self):
        library = MaterialLibrary.default()
        library.add("custom", IsotropicMaterial("custom", 1.0, 0.3, 0.0))
        subset = library.subset([ROLE_SILICON, "custom"])
        assert subset.roles() == ["custom", ROLE_SILICON] or set(subset.roles()) == {
            "custom",
            ROLE_SILICON,
        }
        with pytest.raises(KeyError):
            subset[ROLE_COPPER]

    def test_roles_sorted(self):
        roles = MaterialLibrary.default().roles()
        assert roles == sorted(roles)


class TestMaterialAssignment:
    def test_roundtrip(self):
        assignment = MaterialAssignment.from_dict({0: "silicon", 1: "copper"})
        assert assignment.as_dict() == {0: "silicon", 1: "copper"}
        assert assignment.role_of(1) == "copper"

    def test_missing_tag_raises(self):
        assignment = MaterialAssignment.from_dict({0: "silicon"})
        with pytest.raises(KeyError):
            assignment.role_of(5)


class TestThermalLoad:
    def test_paper_default(self):
        load = ThermalLoad.paper_default()
        assert load.delta_t == pytest.approx(-250.0)

    def test_from_delta(self):
        load = ThermalLoad.from_delta(-100.0)
        assert load.delta_t == pytest.approx(-100.0)
        assert load.target_temperature == pytest.approx(175.0)

    def test_scaled(self):
        load = ThermalLoad.paper_default().scaled(0.5)
        assert load.delta_t == pytest.approx(-125.0)
