"""Integration tests: MORE-Stress against the reference full FEM.

These are the repository's core correctness claims, mirroring the paper's
evaluation at reduced scale:

* the ROM mid-plane von Mises field matches the reference within a small
  normalized MAE,
* the error decreases as the number of interpolation nodes grows (Fig. 6),
* the ROM is much cheaper than the reference in both global DoFs and runtime,
* the linear superposition baseline is less accurate than the ROM at the
  converged node count.
"""

import numpy as np
import pytest

from repro.analysis.metrics import normalized_mae
from repro.baselines.full_fem import FullFEMReference
from repro.baselines.linear_superposition import LinearSuperpositionMethod
from repro.geometry.array_layout import TSVArrayLayout
from repro.rom.workflow import MoreStressSimulator

DELTA_T = -250.0
POINTS = 15


@pytest.fixture(scope="module")
def reference_vm(reference_2x2):
    return reference_2x2.von_mises_midplane(points_per_block=POINTS)


class TestAccuracy:
    def test_rom_matches_reference_within_one_percent(self, rom_result_2x2, reference_vm):
        vm_rom = rom_result_2x2.von_mises_midplane(points_per_block=POINTS)
        error = normalized_mae(vm_rom, reference_vm)
        assert error < 0.01, f"ROM error {100 * error:.2f}% exceeds 1%"

    def test_rom_peak_stress_close_to_reference(self, rom_result_2x2, reference_vm):
        vm_rom = rom_result_2x2.von_mises_midplane(points_per_block=POINTS)
        assert vm_rom.max() == pytest.approx(reference_vm.max(), rel=0.05)

    def test_rom_beats_linear_superposition(
        self, rom_result_2x2, reference_vm, materials, tsv15
    ):
        superposition = LinearSuperpositionMethod(materials, resolution="tiny", window_blocks=3)
        layout = TSVArrayLayout.full(tsv15, rows=2)
        estimate = superposition.estimate(layout, DELTA_T, points_per_block=POINTS)
        superposition_error = normalized_mae(estimate.von_mises_midplane(), reference_vm)
        rom_error = normalized_mae(
            rom_result_2x2.von_mises_midplane(points_per_block=POINTS), reference_vm
        )
        assert rom_error < superposition_error

    def test_rom_displacement_matches_reference_at_interpolation_nodes(
        self, rom_result_2x2, reference_2x2
    ):
        manager = rom_result_2x2.solution.manager
        positions = manager.node_positions()
        # Compare away from the clamped faces where both are exactly zero.
        interior = (positions[:, 2] > 1.0) & (positions[:, 2] < 49.0)
        u_reference = reference_2x2.displacement_at(positions[interior])
        u_rom = rom_result_2x2.solution.nodal_displacement.reshape(-1, 3)[interior]
        scale = np.abs(u_reference).max()
        assert np.abs(u_rom - u_reference).max() < 0.15 * scale


class TestEfficiency:
    def test_rom_has_far_fewer_unknowns(self, rom_result_2x2, reference_2x2):
        # On the deliberately small test meshes the reduction factor is a few
        # x; at paper-scale meshes it is orders of magnitude (see benchmarks).
        assert rom_result_2x2.num_global_dofs * 5 < reference_2x2.num_dofs

    def test_global_stage_faster_than_reference(self, rom_result_2x2, reference_2x2):
        # At this tiny scale the gap is modest; at paper scale it is 150-500x.
        assert rom_result_2x2.global_stage_seconds < reference_2x2.total_time()


class TestConvergenceWithNodes:
    def test_error_decreases_with_node_count(self, materials, tsv15, reference_vm):
        errors = []
        for nodes in [(2, 2, 2), (3, 3, 3), (4, 4, 4)]:
            simulator = MoreStressSimulator(
                tsv15, materials, mesh_resolution="tiny", nodes_per_axis=nodes
            )
            result = simulator.simulate_array(rows=2, delta_t=DELTA_T)
            errors.append(
                normalized_mae(
                    result.von_mises_midplane(points_per_block=POINTS), reference_vm
                )
            )
        assert errors[0] > errors[1] > errors[2]
        assert errors[2] < 0.01


class TestPitchSensitivity:
    def test_rom_accuracy_robust_to_small_pitch(self, materials, tsv10):
        """At 10 um pitch the coupling is stronger; the ROM must stay accurate
        while superposition degrades (paper Table 1, bottom half)."""
        layout = TSVArrayLayout.full(tsv10, rows=2)
        reference = FullFEMReference(materials, resolution="tiny")
        vm_reference = reference.solve_array(layout, DELTA_T).von_mises_midplane(POINTS)

        simulator = MoreStressSimulator(
            tsv10, materials, mesh_resolution="tiny", nodes_per_axis=(4, 4, 4)
        )
        result = simulator.simulate_array(rows=2, delta_t=DELTA_T)
        rom_error = normalized_mae(result.von_mises_midplane(POINTS), vm_reference)

        superposition = LinearSuperpositionMethod(materials, resolution="tiny", window_blocks=3)
        estimate = superposition.estimate(layout, DELTA_T, points_per_block=POINTS)
        superposition_error = normalized_mae(estimate.von_mises_midplane(), vm_reference)

        assert rom_error < 0.02
        assert superposition_error > 2.0 * rom_error
