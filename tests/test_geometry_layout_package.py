"""Unit tests for array layouts and the chiplet package geometry."""

import numpy as np
import pytest

from repro.geometry.array_layout import BlockKind, TSVArrayLayout
from repro.geometry.package import ChipletPackage, PackageLayer
from repro.materials.library import ROLE_SILICON, ROLE_SUBSTRATE
from repro.utils.validation import ValidationError


class TestTSVArrayLayoutFull:
    def test_full_layout_counts(self, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=3, cols=4)
        assert layout.shape == (3, 4)
        assert layout.num_blocks == 12
        assert layout.num_tsv_blocks == 12
        assert layout.num_dummy_blocks == 0

    def test_square_default(self, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=5)
        assert layout.shape == (5, 5)

    def test_extent(self, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=2, cols=3)
        assert layout.extent == (45.0, 30.0, 50.0)

    def test_block_origin_and_centers(self, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=2, cols=2, origin=(100.0, 200.0, 5.0))
        assert layout.block_origin(1, 0) == (100.0, 215.0, 5.0)
        centers = layout.tsv_centers()
        assert centers.shape == (4, 2)
        np.testing.assert_allclose(centers[0], [107.5, 207.5])

    def test_tsv_region_full(self, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=3)
        rows, cols = layout.tsv_region()
        assert (rows.start, rows.stop) == (0, 3)
        assert (cols.start, cols.stop) == (0, 3)

    def test_translated(self, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=2).translated((1.0, 2.0, 3.0))
        assert layout.origin == (1.0, 2.0, 3.0)


class TestTSVArrayLayoutDummyRing:
    def test_ring_counts(self, tsv15):
        layout = TSVArrayLayout.with_dummy_ring(tsv15, rows=3, cols=3, ring_width=2)
        assert layout.shape == (7, 7)
        assert layout.num_tsv_blocks == 9
        assert layout.num_dummy_blocks == 49 - 9

    def test_ring_zero_is_full(self, tsv15):
        layout = TSVArrayLayout.with_dummy_ring(tsv15, rows=2, cols=2, ring_width=0)
        assert layout.num_dummy_blocks == 0

    def test_tsv_region_excludes_ring(self, tsv15):
        layout = TSVArrayLayout.with_dummy_ring(tsv15, rows=2, cols=3, ring_width=1)
        rows, cols = layout.tsv_region()
        assert (rows.start, rows.stop) == (1, 3)
        assert (cols.start, cols.stop) == (1, 4)

    def test_kind_at_positions(self, tsv15):
        layout = TSVArrayLayout.with_dummy_ring(tsv15, rows=1, cols=1, ring_width=1)
        assert layout.kind_at(0, 0) is BlockKind.DUMMY
        assert layout.kind_at(1, 1) is BlockKind.TSV
        assert layout.block_at(1, 1).has_tsv is True
        assert layout.block_at(0, 0).has_tsv is False

    def test_centers_only_for_tsv_blocks(self, tsv15):
        layout = TSVArrayLayout.with_dummy_ring(tsv15, rows=1, cols=1, ring_width=1)
        centers = layout.tsv_centers()
        assert centers.shape == (1, 2)
        np.testing.assert_allclose(centers[0], [22.5, 22.5])

    def test_invalid_kinds_rejected(self, tsv15):
        with pytest.raises(TypeError):
            TSVArrayLayout(tsv=tsv15, kinds=np.array([["tsv"]], dtype=object))
        with pytest.raises(ValueError):
            TSVArrayLayout(tsv=tsv15, kinds=np.array([BlockKind.TSV], dtype=object))


class TestPackageLayer:
    def test_contains(self):
        layer = PackageLayer("die", ROLE_SILICON, (-1.0, 1.0), (-1.0, 1.0), (0.0, 2.0))
        assert layer.thickness == 2.0
        inside = layer.contains(np.array([0.0]), np.array([0.0]), np.array([1.0]))
        outside = layer.contains(np.array([2.0]), np.array([0.0]), np.array([1.0]))
        assert bool(inside[0]) and not bool(outside[0])

    def test_invalid_range_rejected(self):
        with pytest.raises(ValidationError):
            PackageLayer("bad", ROLE_SILICON, (1.0, -1.0), (-1.0, 1.0), (0.0, 1.0))


class TestChipletPackage:
    def test_layer_stack_order_and_heights(self):
        package = ChipletPackage()
        layers = package.layers()
        assert [layer.name for layer in layers] == [
            "substrate",
            "underfill",
            "interposer",
            "die",
        ]
        # contiguous stacking
        for below, above in zip(layers, layers[1:]):
            assert below.z_range[1] == pytest.approx(above.z_range[0])
        assert package.total_height == pytest.approx(
            package.substrate_thickness
            + package.underfill_thickness
            + package.interposer_thickness
            + package.die_thickness
        )

    def test_interposer_thickness_matches_tsv_height(self):
        package = ChipletPackage()
        z0, z1 = package.interposer_z_range
        assert (z1 - z0) == pytest.approx(50.0)

    def test_material_classification(self):
        package = ChipletPackage()
        # centre of the substrate
        role = package.material_role_at(
            np.array([0.0]), np.array([0.0]), np.array([10.0])
        )
        assert role[0] == ROLE_SUBSTRATE
        # far corner above the substrate is void (outside interposer/die)
        z_die = package.layers()[-1].z_range[0] + 1.0
        role = package.material_role_at(
            np.array([0.49 * package.substrate_size]),
            np.array([0.49 * package.substrate_size]),
            np.array([z_die]),
        )
        assert role[0] == "void"

    def test_die_must_fit_on_interposer(self):
        with pytest.raises(ValidationError):
            ChipletPackage(die_size=2000.0, interposer_size=900.0)

    def test_paper_locations_inside_interposer(self, tsv15):
        package = ChipletPackage()
        layout = TSVArrayLayout.with_dummy_ring(tsv15, rows=3, cols=3, ring_width=1)
        locations = package.paper_locations(layout)
        assert [loc.name for loc in locations] == ["loc1", "loc2", "loc3", "loc4", "loc5"]
        half = 0.5 * package.interposer_size
        size_x, size_y = package.submodel_footprint(layout)
        for loc in locations:
            ox, oy, oz = loc.origin
            assert -half <= ox and ox + size_x <= half
            assert -half <= oy and oy + size_y <= half
            assert oz == pytest.approx(package.interposer_z_range[0])

    def test_location_lookup(self, tsv15):
        package = ChipletPackage()
        layout = TSVArrayLayout.with_dummy_ring(tsv15, rows=2, cols=2, ring_width=1)
        loc3 = package.location("loc3", layout)
        assert loc3.name == "loc3"
        with pytest.raises(KeyError):
            package.location("loc99", layout)

    def test_scaled_default(self):
        package = ChipletPackage.scaled_default(scale=2.0)
        assert package.substrate_size == pytest.approx(3000.0)
        assert package.interposer_thickness == pytest.approx(50.0)
