"""Migration tests for the schema-versioned surfaces (REP006 evidence).

Two literals promise backwards compatibility: ``SCHEMA_VERSION`` in
``repro.api.spec`` (spec documents) and ``ENVELOPE_VERSION`` in
``repro.api.envelope`` (response envelopes / persisted manifests).  These
tests load documents written by the *older* supported versions and assert
the migration branches actually work — the REP006 lint rule fails the build
if the literals move without tests like these keeping up.
"""

from __future__ import annotations

import pytest

from repro.api.envelope import (
    ENVELOPE_VERSION,
    SUPPORTED_ENVELOPE_VERSIONS,
    unwrap,
    wrap,
)
from repro.api.spec import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    SimulationSpec,
    SpecError,
)


def _v1_spec_document() -> dict:
    """A spec document as the version-1 layout wrote it.

    Version 1 predates the array-backend seam (PR 6) and sharding (PR 8):
    its solver section has neither ``array_backend`` nor ``shard``.
    """
    document = SimulationSpec().to_dict()
    document["schema_version"] = 1
    del document["solver"]["array_backend"]
    del document["solver"]["shard"]
    return document


def _v2_spec_document() -> dict:
    """Version 2 added ``array_backend`` but not ``shard``."""
    document = SimulationSpec().to_dict()
    document["schema_version"] = 2
    del document["solver"]["shard"]
    return document


class TestSpecMigration:
    def test_migration_branch_exists(self):
        # The guarantee REP006 enforces: the current version is supported
        # and at least one older version still has a read path.
        assert SCHEMA_VERSION in SUPPORTED_SCHEMA_VERSIONS
        assert any(v < SCHEMA_VERSION for v in SUPPORTED_SCHEMA_VERSIONS)

    def test_v1_document_migration(self):
        spec = SimulationSpec.from_dict(_v1_spec_document())
        # Fields that post-date v1 come back as their defaults.
        assert spec.solver.array_backend == "numpy"
        assert spec.solver.shard is None
        # Re-serializing writes the *current* version: migration is one-way.
        assert spec.to_dict()["schema_version"] == SCHEMA_VERSION

    def test_v2_document_migration(self):
        spec = SimulationSpec.from_dict(_v2_spec_document())
        assert spec.solver.shard is None
        assert spec.to_dict()["schema_version"] == SCHEMA_VERSION

    def test_migrated_spec_solves_the_same_hash_space(self):
        # A migrated v1 document and a natively-built spec of the same
        # parameters must agree on identity (hash), or dedup would split.
        migrated = SimulationSpec.from_dict(_v1_spec_document())
        native = SimulationSpec()
        assert migrated.spec_hash() == native.spec_hash()

    def test_unsupported_version_fails_with_migration_pointer(self):
        document = SimulationSpec().to_dict()
        document["schema_version"] = 99
        with pytest.raises(SpecError) as excinfo:
            SimulationSpec.from_dict(document)
        message = str(excinfo.value)
        assert "99" in message
        assert str(list(SUPPORTED_SCHEMA_VERSIONS)) in message


class TestEnvelopeMigration:
    def test_migration_branch_exists(self):
        assert ENVELOPE_VERSION in SUPPORTED_ENVELOPE_VERSIONS
        assert any(v < ENVELOPE_VERSION for v in SUPPORTED_ENVELOPE_VERSIONS)

    @pytest.mark.parametrize("legacy_version", [1, 2])
    def test_legacy_flat_manifest_migration(self, legacy_version):
        # Envelope versions 1 and 2 wrote RunResult manifests *flat*: the
        # payload fields live at the top level next to schema_version, and
        # the document is recognised by its spec_hash.
        legacy = {
            "schema_version": legacy_version,
            "spec_hash": "abc123",
            "cases": [{"name": "cooldown", "peak_von_mises": 1.0}],
        }
        data = unwrap(legacy, expected_kind="run_result")
        assert data["spec_hash"] == "abc123"
        assert data["cases"][0]["name"] == "cooldown"

    def test_current_envelope_round_trip(self):
        document = wrap("run_result", {"spec_hash": "abc123", "cases": []})
        assert document["schema_version"] == ENVELOPE_VERSION
        data = unwrap(document, expected_kind="run_result")
        assert data == {"spec_hash": "abc123", "cases": []}

    def test_unsupported_envelope_version_fails(self):
        document = wrap("run_result", {"spec_hash": "x"})
        document["schema_version"] = 99
        with pytest.raises(SpecError):
            unwrap(document)
