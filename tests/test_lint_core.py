"""Framework-level tests for repro.lint: suppressions, baseline, driver."""

from __future__ import annotations

import json

import pytest

from repro.lint import (
    Baseline,
    Finding,
    LintUsageError,
    META_RULE_ID,
    Project,
    rules_by_id,
    run_lint,
)
from repro.lint.core import Suppressions


def _write_module(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


#: One REP001 violation at a known line, used throughout.
_VIOLATION = (
    '"""Module with one durable-write violation."""\n'
    "\n"
    "\n"
    "def save(path, text):\n"
    '    with open(path, "w") as handle:\n'
    "        handle.write(text)\n"
)


class TestSuppressions:
    def test_trailing_comment_suppresses_its_own_line(self):
        lines = [
            "def f(path):",
            '    open(path, "w")  # repro-lint: disable=REP001 -- test stream',
        ]
        sup = Suppressions("m.py", lines)
        finding = Finding("REP001", "error", "m.py", 2, "x")
        entry = sup.match(finding)
        assert entry is not None
        assert entry.justification == "test stream"

    def test_standalone_comment_suppresses_next_code_line(self):
        lines = [
            "# repro-lint: disable=REP001 -- covered elsewhere",
            "",
            "# an unrelated comment",
            'open(path, "w")',
        ]
        sup = Suppressions("m.py", lines)
        assert sup.match(Finding("REP001", "error", "m.py", 4, "x")) is not None
        # The comment lines themselves are not suppression targets.
        assert sup.match(Finding("REP001", "error", "m.py", 1, "x")) is None

    def test_multiple_rules_in_one_comment(self):
        lines = ["x = 1  # repro-lint: disable=REP001, REP005 -- shared fixture"]
        sup = Suppressions("m.py", lines)
        assert sup.match(Finding("REP001", "error", "m.py", 1, "x")) is not None
        assert sup.match(Finding("REP005", "error", "m.py", 1, "x")) is not None
        assert sup.match(Finding("REP002", "error", "m.py", 1, "x")) is None

    def test_missing_justification_is_inert_and_reported(self):
        lines = ['open(path, "w")  # repro-lint: disable=REP001']
        sup = Suppressions("m.py", lines)
        assert sup.match(Finding("REP001", "error", "m.py", 1, "x")) is None
        assert len(sup.meta_findings) == 1
        meta = sup.meta_findings[0]
        assert meta.rule == META_RULE_ID
        assert "without justification" in meta.message

    def test_unjustified_suppression_surfaces_in_run_lint(self, tmp_path):
        _write_module(
            tmp_path,
            "src/repro/util.py",
            _VIOLATION.replace(
                'open(path, "w")',
                'open(path, "w")',  # keep the violation
            ).replace(
                "        handle.write(text)\n",
                "        handle.write(text)\n"
                "    # repro-lint: disable=REP001\n"
                '    open(path, "a").close()\n',
            ),
        )
        report = run_lint(tmp_path, rule_ids=["REP001"])
        rules = sorted(f.rule for f in report.findings)
        # Both REP001 violations survive (suppression inert) plus the REP000.
        assert rules == [META_RULE_ID, "REP001", "REP001"]

    def test_meta_findings_cannot_be_suppressed(self, tmp_path):
        _write_module(
            tmp_path,
            "src/repro/util.py",
            "# repro-lint: disable=REP000 -- trying to silence the meta rule\n"
            "# repro-lint: disable=REP001\n"
            "x = 1\n",
        )
        report = run_lint(tmp_path, rule_ids=["REP001"])
        assert [f.rule for f in report.findings] == [META_RULE_ID]


class TestBaseline:
    def _finding_report(self, tmp_path, baseline=None):
        _write_module(tmp_path, "src/repro/util.py", _VIOLATION)
        return run_lint(tmp_path, rule_ids=["REP001"], baseline=baseline)

    def test_baseline_swallows_matching_finding(self, tmp_path):
        report = self._finding_report(tmp_path)
        assert len(report.findings) == 1
        finding = report.findings[0]

        baseline_doc = {
            "version": 1,
            "findings": [
                {
                    "rule": finding.rule,
                    "path": finding.path,
                    "message": finding.message,
                    "justification": "grandfathered pending rewrite",
                }
            ],
        }
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps(baseline_doc))
        baseline = Baseline.load(baseline_path)

        report2 = self._finding_report(tmp_path, baseline=baseline)
        assert report2.findings == []
        assert len(report2.baselined) == 1
        assert report2.baselined[0][1] == "grandfathered pending rewrite"
        assert report2.stale_baseline == []
        assert report2.ok

    def test_baseline_match_is_line_independent(self, tmp_path):
        report = self._finding_report(tmp_path)
        finding = report.findings[0]
        assert finding.key() == f"{finding.rule}:{finding.path}:{finding.message}"
        shifted = Finding(
            finding.rule,
            finding.severity,
            finding.path,
            finding.line + 40,
            finding.message,
        )
        assert shifted.key() == finding.key()

    def test_stale_entries_are_reported(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "findings": [
                        {
                            "rule": "REP001",
                            "path": "src/repro/gone.py",
                            "message": "no longer exists",
                            "justification": "was real once",
                        }
                    ],
                }
            )
        )
        baseline = Baseline.load(baseline_path)
        report = self._finding_report(tmp_path, baseline=baseline)
        assert len(report.stale_baseline) == 1
        assert report.stale_baseline[0].path == "src/repro/gone.py"
        assert "stale baseline entries" in report.render_text()

    def test_entry_without_justification_is_rejected(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "findings": [
                        {"rule": "REP001", "path": "a.py", "message": "m"}
                    ],
                }
            )
        )
        with pytest.raises(LintUsageError, match="no justification"):
            Baseline.load(baseline_path)

    def test_malformed_baseline_is_rejected(self, tmp_path):
        bad_json = tmp_path / "bad.json"
        bad_json.write_text("{not json")
        with pytest.raises(LintUsageError, match="not valid JSON"):
            Baseline.load(bad_json)

        wrong_version = tmp_path / "wrong.json"
        wrong_version.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(LintUsageError, match="version"):
            Baseline.load(wrong_version)

        missing = tmp_path / "missing.json"
        with pytest.raises(LintUsageError, match="cannot read"):
            Baseline.load(missing)


class TestDriver:
    def test_unknown_rule_is_a_usage_error(self):
        with pytest.raises(LintUsageError, match="unknown rule 'NOPE'"):
            rules_by_id(["NOPE"])

    def test_rule_selection_is_case_insensitive(self):
        (rule,) = rules_by_id(["rep001"])
        assert rule.id == "REP001"

    def test_missing_default_target_is_a_usage_error(self, tmp_path):
        with pytest.raises(LintUsageError, match="does not exist"):
            run_lint(tmp_path)

    def test_missing_explicit_target_is_a_usage_error(self, tmp_path):
        with pytest.raises(LintUsageError, match="does not exist"):
            run_lint(tmp_path, paths=[tmp_path / "nowhere"])

    def test_findings_sorted_by_path_line_rule(self, tmp_path):
        _write_module(
            tmp_path,
            "src/repro/b.py",
            'open("x", "w")\nopen("y", "w")\n',
        )
        _write_module(tmp_path, "src/repro/a.py", 'open("z", "w")\n')
        report = run_lint(tmp_path, rule_ids=["REP001"])
        locations = [(f.path, f.line) for f in report.findings]
        assert locations == sorted(locations)

    def test_syntax_error_files_are_skipped(self, tmp_path):
        _write_module(tmp_path, "src/repro/broken.py", "def broken(:\n")
        _write_module(tmp_path, "src/repro/fine.py", "x = 1\n")
        report = run_lint(tmp_path)
        assert report.files_checked == 1

    def test_pycache_is_skipped(self, tmp_path):
        _write_module(tmp_path, "src/repro/mod.py", "x = 1\n")
        _write_module(tmp_path, "src/repro/__pycache__/mod.py", 'open("f", "w")\n')
        report = run_lint(tmp_path, rule_ids=["REP001"])
        assert report.findings == []
        assert report.files_checked == 1

    def test_payload_shape(self, tmp_path):
        _write_module(tmp_path, "src/repro/util.py", _VIOLATION)
        report = run_lint(tmp_path, rule_ids=["REP001"])
        payload = report.to_payload()
        assert payload["ok"] is False
        assert payload["files_checked"] == 1
        assert {r["id"] for r in payload["rules"]} == {"REP001"}
        (finding,) = payload["findings"]
        assert set(finding) == {"rule", "severity", "path", "line", "message"}
        assert payload["suppressed"] == []
        assert payload["baselined"] == []
        assert payload["stale_baseline"] == []

    def test_render_text_shows_source_line_and_summary(self, tmp_path):
        _write_module(tmp_path, "src/repro/util.py", _VIOLATION)
        report = run_lint(tmp_path, rule_ids=["REP001"])
        text = report.render_text()
        assert "src/repro/util.py:5: REP001 error:" in text
        assert '> with open(path, "w") as handle:' in text
        assert "1 finding(s) (0 suppressed, 0 baselined) across 1 file(s)" in text


class TestProject:
    def test_tests_tree_is_evidence_not_target(self, tmp_path):
        _write_module(tmp_path, "src/repro/mod.py", "x = 1\n")
        _write_module(tmp_path, "tests/test_mod.py", 'open("f", "w")\n')
        project = Project.from_paths(tmp_path, [tmp_path / "src" / "repro"])
        assert len(project.modules) == 1
        assert len(project.test_modules) == 1
        report = run_lint(tmp_path, rule_ids=["REP001"])
        assert report.findings == []

    def test_module_at_suffix_matching(self, tmp_path):
        _write_module(tmp_path, "src/repro/fem/element.py", "x = 1\n")
        project = Project.from_paths(tmp_path, [tmp_path / "src"])
        assert project.module_at("repro/fem/element.py") is not None
        assert project.module_at("repro/fem/missing.py") is None
