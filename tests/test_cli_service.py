"""Tests for the service CLI (``repro serve``/``repro submit``) and for the
uniform ``--json`` envelope mode across the other subcommands."""

import json
from pathlib import Path

import pytest

from repro.analysis import ResultTable
from repro.api.envelope import ENVELOPE_VERSION, is_envelope
from repro.cli import _build_parser, main
from repro.service import JobServer
from repro.service.protocol import DEFAULT_PORT

FAST = [
    "--rows",
    "1",
    "--resolution",
    "tiny",
    "--nodes",
    "3",
    "--points-per-block",
    "5",
]


class FakeResult:
    cases = ()
    num_case_groups = 1
    backends_used = ["fake"]
    array_backend = "numpy"
    local_stage_seconds = 0.0
    total_global_stage_seconds = 0.0
    rom_cache_stats = None

    def save(self, directory):
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "manifest.json").write_text(
            json.dumps(
                {
                    "schema_version": ENVELOPE_VERSION,
                    "kind": "run_result",
                    "repro_version": "test",
                    "data": {
                        "spec_hash": "cafe",
                        "spec": {"name": "faked"},
                        "cases": [],
                    },
                }
            )
        )


class TestJsonEnvelopeMode:
    def test_simulate_bare_json_emits_envelope_only(self, capsys):
        assert main(["simulate", *FAST, "--json"]) == 0
        out = capsys.readouterr().out
        document = json.loads(out)  # the whole stdout is one JSON document
        assert is_envelope(document)
        assert document["kind"] == "run_result"
        assert document["schema_version"] == ENVELOPE_VERSION
        assert document["data"]["spec_hash"]
        assert document["data"]["cases"][0]["peak_von_mises"] > 0

    def test_simulate_json_path_still_writes_flat_manifest(self, tmp_path, capsys):
        manifest_path = tmp_path / "m.json"
        assert main(["simulate", *FAST, "--json", str(manifest_path)]) == 0
        out = capsys.readouterr().out
        assert "peak von Mises" in out  # human output kept in PATH mode
        flat = json.loads(manifest_path.read_text())
        assert not is_envelope(flat)  # historical flat shape
        assert "spec_hash" in flat

    def test_run_bare_json_matches_direct_manifest(self, tmp_path, capsys):
        spec_path = tmp_path / "run.json"
        assert main(["spec", *FAST, "-o", str(spec_path)]) == 0
        capsys.readouterr()
        assert main(["run", str(spec_path), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["kind"] == "run_result"
        assert document["data"]["spec"]["mesh"]["resolution"] == "tiny"

    def test_export_json_envelope(self, tmp_path, capsys):
        spec_path = tmp_path / "run.json"
        saved = tmp_path / "saved"
        assert main(["spec", *FAST, "-o", str(spec_path), "--export-field"]) == 0
        assert main(["run", str(spec_path), "--save", str(saved)]) == 0
        capsys.readouterr()
        assert main(["export", str(saved), "--format", "npz", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["kind"] == "export"
        assert document["data"]["files"]
        assert document["data"]["spec_hash"]

    def test_table_json_envelope(self, capsys, monkeypatch):
        import repro.cli as cli

        table = ResultTable(columns=["case", "time"], title="Table 1 (faked)")
        table.add_row(case="2x2", time="0.1 s")
        monkeypatch.setattr(cli, "run_scenario1", lambda config, jobs=None: [])
        monkeypatch.setattr(cli, "scenario1_table", lambda records: table)
        assert main(["table1", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["kind"] == "table"
        assert document["data"]["title"] == "Table 1 (faked)"
        assert document["data"]["rows"] == [{"case": "2x2", "time": "0.1 s"}]


class TestServeParser:
    def test_serve_defaults(self):
        args = _build_parser().parse_args(["serve"])
        assert args.port == DEFAULT_PORT
        assert args.store == "service-data"
        assert args.max_queued == 256
        assert args.json_path is None

    def test_submit_defaults(self):
        args = _build_parser().parse_args(["submit", "spec.json"])
        assert args.url == f"http://127.0.0.1:{DEFAULT_PORT}"
        assert args.timeout == 600.0
        assert not args.no_wait


@pytest.fixture()
def live_server(tmp_path):
    def run_fn(spec, rom_cache=None, progress=None):
        return FakeResult()

    with JobServer(tmp_path / "store", workers=1, run_fn=run_fn) as server:
        yield server


@pytest.fixture()
def spec_file(tmp_path):
    path = tmp_path / "spec.json"
    assert main(["spec", *FAST, "-o", str(path)]) == 0
    return path


class TestSubmitCommand:
    def test_submit_waits_and_prints_summary(self, live_server, spec_file, capsys):
        capsys.readouterr()
        rc = main(["submit", str(spec_file), "--url", live_server.url])
        out = capsys.readouterr().out
        assert rc == 0
        assert "job               :" in out
        assert "(cafe)" in out  # the served manifest's spec hash

    def test_submit_json_emits_result_envelope(self, live_server, spec_file, capsys):
        capsys.readouterr()
        rc = main(["submit", str(spec_file), "--url", live_server.url, "--json"])
        assert rc == 0
        document = json.loads(capsys.readouterr().out)
        assert document["kind"] == "run_result"
        assert document["data"]["spec_hash"] == "cafe"

    def test_submit_no_wait_returns_job_envelope(self, live_server, spec_file, capsys):
        capsys.readouterr()
        rc = main(
            ["submit", str(spec_file), "--url", live_server.url, "--no-wait", "--json"]
        )
        assert rc == 0
        document = json.loads(capsys.readouterr().out)
        assert document["kind"] == "job"
        assert document["data"]["job"]["state"] in ("queued", "running", "done")

    def test_submit_missing_spec_file_is_usage_error(self, live_server, capsys):
        rc = main(["submit", "no-such.json", "--url", live_server.url])
        assert rc == 2
        assert "does not exist" in capsys.readouterr().err

    def test_submit_unreachable_server_fails_cleanly(self, spec_file, capsys):
        rc = main(["submit", str(spec_file), "--url", "http://127.0.0.1:1", "--json"])
        assert rc == 1
        document = json.loads(capsys.readouterr().out)
        assert document["error"]["code"] == "job_error"

    def test_submit_reports_failed_job(self, tmp_path, spec_file, capsys):
        def run_fn(spec, rom_cache=None, progress=None):
            raise RuntimeError("solver exploded")

        with JobServer(tmp_path / "store-f", workers=1, run_fn=run_fn) as server:
            capsys.readouterr()
            rc = main(["submit", str(spec_file), "--url", server.url])
            captured = capsys.readouterr()
        assert rc == 1
        assert "failed" in captured.err
