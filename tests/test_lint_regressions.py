"""Regression tests for the violations the analyzer surfaced in this tree.

Running ``repro lint`` over the source found real gaps — a spec written with
a bare ``write_text``, a torn-download window in the service client, and
shared pool/watchdog/store counters touched outside their locks.  These tests
pin the fixed behaviour so the analyzer's findings stay fixed.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

import pytest

from repro.api import SimulationSpec
from repro.cli import main
from repro.faults import FaultPlan, FaultRule, SimulatedCrashError, injected_faults
from repro.service.client import ServiceClient
from repro.service.jobs import JobStore
from repro.service.pool import WorkerPool
from repro.service.watchdog import WorkerWatchdog

FAST = [
    "--rows",
    "1",
    "--resolution",
    "tiny",
    "--nodes",
    "3",
    "--points-per-block",
    "5",
]


def _no_tmp_orphans(directory: Path) -> bool:
    return not list(directory.glob(".tmp-*"))


class TestSpecWriteAtomicity:
    """``repro spec -o`` goes through atomic_write_bytes (site cli.spec.write).

    The atomic helper's contract is "complete old or complete new, never
    torn": ``crash`` fires *after* the rename (the new document is fully in
    place), ``enospc`` fires before any byte lands (the old document — or
    nothing — survives).
    """

    def test_spec_output_written_and_valid(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        assert main(["spec", *FAST, "-o", str(spec_path)]) == 0
        SimulationSpec.from_dict(json.loads(spec_path.read_text()))
        assert _no_tmp_orphans(tmp_path)

    def test_crash_after_rename_leaves_complete_new_spec(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        assert main(["spec", *FAST, "-o", str(spec_path)]) == 0

        plan = FaultPlan(rules=(FaultRule(site="cli.spec.write", kind="crash"),))
        with injected_faults(plan):
            with pytest.raises(SimulatedCrashError):
                main(["spec", *FAST, "--rows", "2", "-o", str(spec_path)])

        # Rename-then-crash: the replacement document is complete, not torn.
        spec = SimulationSpec.from_dict(json.loads(spec_path.read_text()))
        assert spec.geometry.rows == 2
        assert _no_tmp_orphans(tmp_path)

    def test_enospc_leaves_previous_spec_intact(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        assert main(["spec", *FAST, "-o", str(spec_path)]) == 0
        before = spec_path.read_text()

        plan = FaultPlan(rules=(FaultRule(site="cli.spec.write", kind="enospc"),))
        with injected_faults(plan):
            with pytest.raises(OSError):
                main(["spec", *FAST, "--rows", "2", "-o", str(spec_path)])

        assert spec_path.read_text() == before
        assert _no_tmp_orphans(tmp_path)


class TestClientFetchFieldsAtomicity:
    """fetch_fields lands the bundle atomically (site client.fetch_fields)."""

    def _client_returning(self, payload: bytes) -> ServiceClient:
        client = ServiceClient("http://127.0.0.1:1")
        client._request = lambda *args, **kwargs: payload  # type: ignore[method-assign]
        return client

    def test_download_lands_complete(self, tmp_path):
        client = self._client_returning(b"npz-bytes")
        destination = tmp_path / "out" / "fields.npz"
        returned = client.fetch_fields("job-1", destination)
        assert returned == destination
        assert destination.read_bytes() == b"npz-bytes"
        assert _no_tmp_orphans(destination.parent)

    def test_crash_lands_complete_new_bundle_never_torn(self, tmp_path):
        destination = tmp_path / "fields.npz"
        destination.write_bytes(b"previous-good-bundle")

        client = self._client_returning(b"new-bundle")
        plan = FaultPlan(rules=(FaultRule(site="client.fetch_fields", kind="crash"),))
        with injected_faults(plan):
            with pytest.raises(SimulatedCrashError):
                client.fetch_fields("job-1", destination)

        # Rename-then-crash: the full replacement landed, nothing is torn.
        assert destination.read_bytes() == b"new-bundle"
        assert _no_tmp_orphans(tmp_path)

    def test_enospc_keeps_previous_bundle(self, tmp_path):
        destination = tmp_path / "fields.npz"
        destination.write_bytes(b"previous-good-bundle")

        client = self._client_returning(b"new-bundle")
        plan = FaultPlan(rules=(FaultRule(site="client.fetch_fields", kind="enospc"),))
        with injected_faults(plan):
            with pytest.raises(OSError):
                client.fetch_fields("job-1", destination)

        assert destination.read_bytes() == b"previous-good-bundle"
        assert _no_tmp_orphans(tmp_path)


class TestPoolLifecycleLocking:
    """Worker bookkeeping survives concurrent spawns and reap counting."""

    def _pool(self, tmp_path) -> WorkerPool:
        return WorkerPool(
            JobStore(tmp_path), workers=1, run_fn=lambda spec, **kwargs: None
        )

    def test_concurrent_spawns_get_unique_names(self, tmp_path):
        pool = self._pool(tmp_path)
        with pool._lifecycle_lock:
            pool._started = True

        spawners = [threading.Thread(target=pool._spawn_worker) for _ in range(12)]
        for thread in spawners:
            thread.start()
        for thread in spawners:
            thread.join()

        names = [thread.name for thread in pool._threads]
        assert len(names) == 12
        assert len(set(names)) == 12, f"duplicate worker names: {sorted(names)}"
        assert pool._worker_serial == 12
        pool.shutdown()

    def test_concurrent_stall_counting_loses_no_updates(self, tmp_path):
        pool = self._pool(tmp_path)

        def bump():
            for _ in range(500):
                with pool._lifecycle_lock:
                    pool.stalls += 1

        bumpers = [threading.Thread(target=bump) for _ in range(8)]
        for thread in bumpers:
            thread.start()
        for thread in bumpers:
            thread.join()
        assert pool.stats()["stalls"] == 8 * 500


class TestWatchdogReapCounter:
    """watchdog.reaped is bumped under its lock; concurrent scans add up."""

    class _StalledToken:
        def __init__(self):
            self.job = None

        def heartbeat_age(self):
            return 1e9

    class _FakePool:
        def __init__(self, per_scan):
            self._per_scan = per_scan

        def active_executions(self):
            return [TestWatchdogReapCounter._StalledToken() for _ in range(self._per_scan)]

        def reap_execution(self, token, age):
            return True

    def test_concurrent_scans_count_every_reap(self):
        watchdog = WorkerWatchdog(self._FakePool(per_scan=5), stall_timeout_seconds=0.01)
        scanners = [
            threading.Thread(target=lambda: [watchdog.scan_once() for _ in range(20)])
            for _ in range(8)
        ]
        for thread in scanners:
            thread.start()
        for thread in scanners:
            thread.join()
        assert watchdog.stats()["reaped"] == 8 * 20 * 5


class TestJobStoreQuarantineCounter:
    def test_corrupt_record_counted_and_skipped(self, tmp_path):
        store = JobStore(tmp_path)
        jobs_dir = store.directory / "jobs"
        jobs_dir.mkdir(parents=True, exist_ok=True)
        (jobs_dir / "corrupt.json").write_text("{definitely not json")

        reloaded = JobStore(tmp_path)
        assert reloaded.quarantined == 1
        assert all(job.id != "corrupt" for job in reloaded.list())
