"""Unit tests for the one-shot local stage and the reduced order model."""

import numpy as np
import pytest

from repro.fem.assembly import assemble_stiffness, assemble_thermal_load
from repro.rom.interpolation import InterpolationScheme
from repro.rom.local_stage import LocalStage
from repro.rom.rom_model import ReducedOrderModel
from repro.utils.validation import ValidationError


class TestLocalStageBuild:
    def test_basis_shape_and_reduction(self, rom_tsv_tiny):
        rom = rom_tsv_tiny
        n = rom.scheme.num_element_dofs
        assert rom.basis.shape == (rom.mesh.num_dofs, n + 1)
        assert rom.element_stiffness.shape == (n, n)
        assert rom.element_load.shape == (n,)
        assert rom.reduction_factor > 1.0
        assert rom.local_stage_seconds > 0.0

    def test_element_stiffness_symmetric_positive_semidefinite(self, rom_tsv_tiny):
        ke = rom_tsv_tiny.element_stiffness
        np.testing.assert_allclose(ke, ke.T, atol=1e-6 * np.abs(ke).max())
        eigenvalues = np.linalg.eigvalsh(ke)
        assert np.all(eigenvalues > -1e-8 * eigenvalues.max())

    def test_element_stiffness_has_rigid_body_modes(self, rom_tsv_tiny):
        """Rigid translations of the interpolation nodes produce zero energy."""
        rom = rom_tsv_tiny
        ns = rom.scheme.num_surface_nodes
        for component in range(3):
            translation = np.zeros(rom.num_element_dofs)
            translation[component::3] = 1.0
            force = rom.element_stiffness @ translation
            assert np.abs(force).max() < 1e-6 * np.abs(rom.element_stiffness).max()

    def test_thermal_coupling_negligible(self, rom_tsv_tiny):
        """a(f_T, f_i) = 0 analytically (see DESIGN.md); check it numerically."""
        rom = rom_tsv_tiny
        scale = np.abs(rom.element_load).max()
        assert np.abs(rom.thermal_coupling).max() < 1e-6 * scale

    def test_boundary_values_of_basis_match_interpolation(self, rom_tsv_tiny):
        """Each basis column equals its Lagrange function on the block boundary."""
        rom = rom_tsv_tiny
        mesh = rom.mesh
        boundary_nodes = mesh.all_boundary_node_ids()
        coords = mesh.node_coordinates()[boundary_nodes]
        basis_at_boundary = rom.scheme.basis_at_points(coords, rom.block.dimensions)
        # x-components of boundary DoFs for basis column of node m, component x
        for m in (0, rom.scheme.num_surface_nodes // 2):
            column = rom.basis[:, 3 * m + 0].reshape(-1, 3)
            np.testing.assert_allclose(
                column[boundary_nodes, 0], basis_at_boundary[:, m], atol=1e-9
            )
            # y and z components of an x-basis column vanish on the boundary
            np.testing.assert_allclose(column[boundary_nodes, 1], 0.0, atol=1e-12)

    def test_thermal_basis_zero_on_boundary(self, rom_tsv_tiny):
        rom = rom_tsv_tiny
        boundary_dofs = rom.mesh.dof_ids(rom.mesh.all_boundary_node_ids())
        np.testing.assert_allclose(rom.thermal_basis()[boundary_dofs], 0.0, atol=1e-12)

    def test_basis_functions_satisfy_interior_equilibrium(self, rom_tsv_tiny, materials):
        """A_ff alpha_f = -A_fb u_bc for a displacement basis function (Eq. 14)."""
        rom = rom_tsv_tiny
        stiffness = assemble_stiffness(rom.mesh, materials)
        column = rom.basis[:, 5]
        residual = stiffness @ column
        interior = np.setdiff1d(
            np.arange(rom.mesh.num_dofs),
            rom.mesh.dof_ids(rom.mesh.all_boundary_node_ids()),
        )
        assert np.abs(residual[interior]).max() < 1e-6 * np.abs(residual).max()

    def test_thermal_basis_satisfies_thermal_equilibrium(self, rom_tsv_tiny, materials):
        rom = rom_tsv_tiny
        stiffness = assemble_stiffness(rom.mesh, materials)
        load = assemble_thermal_load(rom.mesh, materials)
        residual = stiffness @ rom.thermal_basis() - load
        interior = np.setdiff1d(
            np.arange(rom.mesh.num_dofs),
            rom.mesh.dof_ids(rom.mesh.all_boundary_node_ids()),
        )
        assert np.abs(residual[interior]).max() < 1e-6 * np.abs(load).max()

    def test_dummy_rom_differs_from_tsv_rom(self, rom_tsv_tiny, rom_dummy_tiny):
        assert rom_dummy_tiny.block.has_tsv is False
        # The thermal load vectors differ because the dummy block has no CTE
        # mismatch; the element stiffness differs because copper != silicon.
        assert not np.allclose(rom_dummy_tiny.element_load, rom_tsv_tiny.element_load)
        assert not np.allclose(
            rom_dummy_tiny.element_stiffness, rom_tsv_tiny.element_stiffness
        )

    def test_build_pair(self, materials, tsv_block, tiny_resolution, scheme_333):
        stage = LocalStage(materials, tiny_resolution, scheme_333)
        tsv_rom, dummy_rom = stage.build_pair(tsv_block)
        assert tsv_rom.block.has_tsv and not dummy_rom.block.has_tsv

    def test_batched_rhs_matches_unbatched(self, materials, tsv_block, tiny_resolution, scheme_333):
        small_batch = LocalStage(materials, tiny_resolution, scheme_333, rhs_batch_size=7)
        rom_small = small_batch.build(tsv_block)
        big_batch = LocalStage(materials, tiny_resolution, scheme_333, rhs_batch_size=10_000)
        rom_big = big_batch.build(tsv_block)
        np.testing.assert_allclose(rom_small.basis, rom_big.basis, atol=1e-10)
        np.testing.assert_allclose(
            rom_small.element_stiffness, rom_big.element_stiffness, atol=1e-8
        )


class TestReducedOrderModel:
    def test_reconstruct_displacement_with_zero_nodal_values(self, rom_tsv_tiny):
        rom = rom_tsv_tiny
        reconstruction = rom.reconstruct_displacement(
            np.zeros(rom.num_element_dofs), delta_t=-250.0
        )
        np.testing.assert_allclose(reconstruction, -250.0 * rom.thermal_basis())

    def test_reconstruct_displacement_linearity(self, rom_tsv_tiny):
        rom = rom_tsv_tiny
        rng = np.random.default_rng(0)
        u = rng.normal(size=rom.num_element_dofs)
        a = rom.reconstruct_displacement(u, 0.0)
        b = rom.reconstruct_displacement(2 * u, 0.0)
        np.testing.assert_allclose(b, 2 * a)

    def test_reconstruct_rejects_wrong_size(self, rom_tsv_tiny):
        with pytest.raises(ValidationError):
            rom_tsv_tiny.reconstruct_displacement(np.zeros(3), 0.0)

    def test_element_rhs_scales_with_load(self, rom_tsv_tiny):
        rom = rom_tsv_tiny
        np.testing.assert_allclose(rom.element_rhs(-250.0), -250.0 * rom.element_rhs(1.0))

    def test_save_and_load_roundtrip(self, rom_tsv_tiny, tmp_path):
        path = rom_tsv_tiny.save(tmp_path / "rom_tsv")
        loaded = ReducedOrderModel.load(path)
        assert loaded.scheme.nodes_per_axis == rom_tsv_tiny.scheme.nodes_per_axis
        assert loaded.block.has_tsv == rom_tsv_tiny.block.has_tsv
        assert loaded.block.tsv.pitch == rom_tsv_tiny.block.tsv.pitch
        np.testing.assert_allclose(loaded.basis, rom_tsv_tiny.basis)
        np.testing.assert_allclose(
            loaded.element_stiffness, rom_tsv_tiny.element_stiffness
        )
        np.testing.assert_allclose(loaded.element_load, rom_tsv_tiny.element_load)
        assert loaded.mesh.num_dofs == rom_tsv_tiny.mesh.num_dofs

    def test_shape_validation_on_construction(self, rom_tsv_tiny):
        with pytest.raises(ValidationError):
            ReducedOrderModel(
                block=rom_tsv_tiny.block,
                scheme=rom_tsv_tiny.scheme,
                resolution=rom_tsv_tiny.resolution,
                mesh=rom_tsv_tiny.mesh,
                basis=rom_tsv_tiny.basis[:, :-1],  # wrong number of columns
                element_stiffness=rom_tsv_tiny.element_stiffness,
                element_load=rom_tsv_tiny.element_load,
                thermal_coupling=rom_tsv_tiny.thermal_coupling,
            )


class TestLocalStageConfiguration:
    def test_scheme_tuple_coerced(self, materials, tiny_resolution):
        stage = LocalStage(materials, tiny_resolution, scheme=(3, 3, 3))
        assert isinstance(stage.scheme, InterpolationScheme)

    def test_resolution_preset_coerced(self, materials, scheme_333):
        stage = LocalStage(materials, "tiny", scheme_333)
        assert stage.resolution.n_z >= 1

    def test_invalid_jobs_rejected(self, materials, scheme_333):
        with pytest.raises(ValidationError):
            LocalStage(materials, "tiny", scheme_333, jobs=0)

    def test_unknown_solver_backend_rejected_eagerly(
        self, materials, tiny_resolution, scheme_333
    ):
        # Eager: a typo must not survive until (or be masked by) a warm
        # cache hit.
        with pytest.raises(ValidationError, match="unknown solver backend"):
            LocalStage(materials, tiny_resolution, scheme_333, solver_backend="petsc")

    def test_solver_backend_alias_normalized(self, materials, tiny_resolution, scheme_333):
        stage = LocalStage(
            materials, tiny_resolution, scheme_333, solver_backend="direct"
        )
        assert stage.solver_backend == "direct-splu"


class TestParallelLocalStage:
    """The parallel schedule must never change the numbers (ISSUE 2)."""

    def test_parallel_basis_bit_identical_to_serial(
        self, materials, tsv_block, tiny_resolution, scheme_333
    ):
        serial = LocalStage(
            materials, tiny_resolution, scheme_333, rhs_batch_size=16, jobs=1
        ).build(tsv_block)
        parallel = LocalStage(
            materials, tiny_resolution, scheme_333, rhs_batch_size=16, jobs=4
        ).build(tsv_block)
        assert np.array_equal(serial.basis, parallel.basis)
        assert np.array_equal(serial.element_stiffness, parallel.element_stiffness)
        assert np.array_equal(serial.element_load, parallel.element_load)
        assert np.array_equal(serial.thermal_coupling, parallel.thermal_coupling)

    def test_build_many_matches_individual_builds(
        self, materials, tsv_block, tiny_resolution, scheme_333
    ):
        stage = LocalStage(materials, tiny_resolution, scheme_333, jobs=2)
        tsv_rom, dummy_rom = stage.build_many([tsv_block, tsv_block.as_dummy()])
        assert tsv_rom.block.has_tsv and not dummy_rom.block.has_tsv
        reference = LocalStage(materials, tiny_resolution, scheme_333, jobs=1).build(
            tsv_block
        )
        assert np.array_equal(tsv_rom.basis, reference.basis)

    def test_explicit_direct_backend_matches_default(
        self, materials, tsv_block, tiny_resolution, scheme_333
    ):
        default = LocalStage(materials, tiny_resolution, scheme_333).build(tsv_block)
        explicit = LocalStage(
            materials, tiny_resolution, scheme_333, solver_backend="direct-splu"
        ).build(tsv_block)
        assert np.array_equal(default.basis, explicit.basis)
