"""Integration test of the sub-modeling flow (paper scenario 2, reduced scale).

The full chain is exercised: coarse chiplet model -> boundary displacement
extraction -> MORE-Stress sub-model solve with dummy padding -> comparison
against a fine FEM sub-model with the same boundary data.
"""

import numpy as np
import pytest

from repro.analysis.metrics import normalized_mae
from repro.baselines.coarse_model import CoarseChipletModel
from repro.baselines.full_fem import FullFEMReference
from repro.geometry.package import ChipletPackage
from repro.materials.library import MaterialLibrary
from repro.rom.submodeling import SubModelingDriver
from repro.rom.workflow import MoreStressSimulator

DELTA_T = -250.0


@pytest.fixture(scope="module")
def submodeling_setup(tsv15):
    materials = MaterialLibrary.default()
    package = ChipletPackage()
    coarse = CoarseChipletModel(package, materials, inplane_cells=12).solve(DELTA_T)
    simulator = MoreStressSimulator(
        tsv15, materials, mesh_resolution="tiny", nodes_per_axis=(4, 4, 4)
    )
    driver = SubModelingDriver(
        simulator=simulator, package=package, coarse_solution=coarse, dummy_ring_width=1
    )
    reference = FullFEMReference(materials, resolution="tiny")
    return driver, reference, coarse


class TestSubmodelAccuracy:
    @pytest.mark.parametrize("location", ["loc1", "loc5"])
    def test_rom_matches_fine_submodel(self, submodeling_setup, location):
        driver, reference, coarse = submodeling_setup
        rows = cols = 2
        resolved = driver.location(location, rows, cols)
        layout = driver.padded_layout(rows, cols, resolved)

        reference_solution = reference.solve_array(
            layout,
            DELTA_T,
            boundary="submodel",
            displacement_field=coarse.displacement_field(),
        )
        vm_reference = reference_solution.von_mises_midplane(points_per_block=12)

        result = driver.simulate(rows=rows, cols=cols, location=location)
        vm_rom = result.von_mises_midplane(points_per_block=12)

        error = normalized_mae(vm_rom, vm_reference)
        assert error < 0.015, f"{location}: error {100 * error:.2f}%"

    def test_background_warpage_shifts_stress(self, submodeling_setup):
        """The embedded array's stress field differs from the standalone case
        because the package warpage couples in (paper §5.2)."""
        driver, _, _ = submodeling_setup
        embedded = driver.simulate(rows=2, cols=2, location="loc5")
        standalone = driver.simulator.simulate_array(rows=2, delta_t=DELTA_T)
        vm_embedded = embedded.von_mises_midplane(points_per_block=10)
        vm_standalone = standalone.von_mises_midplane(points_per_block=10)
        relative_shift = np.abs(vm_embedded - vm_standalone).max() / vm_standalone.max()
        assert relative_shift > 0.01
