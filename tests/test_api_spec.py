"""Tests for the declarative spec layer (repro.api.spec).

Covers lossless serialization round trips (example-based and property-based)
and the failure modes: every malformed document must fail with a
:class:`SpecError` whose message names the offending field.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    GeometrySpec,
    LoadCase,
    MaterialOverride,
    MaterialsSpec,
    MeshSpec,
    OutputSpec,
    SCHEMA_VERSION,
    SimulationSpec,
    SolverSpec,
    SpecError,
    SubModelSpec,
)
from repro.mesh.resolution import MeshResolution
from repro.utils.validation import ValidationError

DEFAULT_SETTINGS = settings(max_examples=25, deadline=None)


def array_spec() -> SimulationSpec:
    return SimulationSpec(
        name="array",
        geometry=GeometrySpec(pitch=12.0, rows=3, cols=2),
        materials=MaterialsSpec(
            overrides=(
                MaterialOverride(
                    role="copper", young_modulus_gpa=120.0, poisson_ratio=0.34, cte_ppm=16.5
                ),
            )
        ),
        mesh=MeshSpec(resolution="tiny", nodes_per_axis=(3, 3, 3), points_per_block=7),
        solver=SolverSpec(backend="direct-splu", jobs=2),
        load_cases=(LoadCase(name="cooldown", delta_t=-250.0),),
    )


def sweep_spec() -> SimulationSpec:
    return SimulationSpec(
        name="sweep",
        geometry=GeometrySpec(pitch=15.0, rows=2),
        mesh=MeshSpec(
            resolution=MeshResolution(n_core=2, n_liner=1, n_outer=2, n_z=3),
            nodes_per_axis=(3, 3, 3),
            points_per_block=5,
        ),
        load_cases=tuple(
            LoadCase(name=f"dt{i}", delta_t=-50.0 * (i + 1)) for i in range(4)
        ),
    )


def submodel_spec() -> SimulationSpec:
    return SimulationSpec(
        name="submodel",
        geometry=GeometrySpec(pitch=15.0, rows=2),
        mesh=MeshSpec(resolution="tiny", nodes_per_axis=(3, 3, 3), points_per_block=5),
        load_cases=(
            LoadCase(name="centre", delta_t=-250.0, location="loc1"),
            LoadCase(name="corner", delta_t=-250.0, location="loc3"),
        ),
        submodel=SubModelSpec(dummy_ring_width=1, coarse_inplane_cells=10),
    )


def output_spec() -> SimulationSpec:
    return SimulationSpec(
        name="with-output",
        geometry=GeometrySpec(pitch=15.0, rows=2),
        mesh=MeshSpec(resolution="tiny", nodes_per_axis=(3, 3, 3), points_per_block=5),
        load_cases=(LoadCase(name="cooldown", delta_t=-250.0),),
        output=OutputSpec(
            formats=("npz",),
            points_per_block=4,
            z_planes=3,
            hotspots=True,
            hotspot_threshold_fraction=0.6,
            top_k=3,
        ),
    )


class TestRoundTrip:
    @pytest.mark.parametrize("factory", [array_spec, sweep_spec, submodel_spec, output_spec])
    def test_json_round_trip_is_lossless(self, factory):
        spec = factory()
        assert SimulationSpec.from_json(spec.to_json()) == spec

    @pytest.mark.parametrize("factory", [array_spec, sweep_spec, submodel_spec, output_spec])
    def test_dict_round_trip_is_lossless(self, factory):
        spec = factory()
        assert SimulationSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("factory", [array_spec, sweep_spec, submodel_spec, output_spec])
    def test_spec_hash_stable_across_round_trip(self, factory):
        spec = factory()
        assert SimulationSpec.from_json(spec.to_json()).spec_hash() == spec.spec_hash()

    def test_document_carries_schema_version(self):
        data = array_spec().to_dict()
        assert data["schema_version"] == SCHEMA_VERSION

    def test_terse_document_fills_defaults(self):
        spec = SimulationSpec.from_dict({"geometry": {"rows": 2}})
        assert spec.geometry.rows == 2
        assert spec.mesh.resolution == "coarse"
        assert len(spec.load_cases) == 1

    @DEFAULT_SETTINGS
    @given(
        pitch=st.floats(min_value=10.0, max_value=40.0),
        diameter=st.floats(min_value=2.0, max_value=6.0),
        rows=st.integers(min_value=1, max_value=50),
        nodes=st.integers(min_value=2, max_value=6),
        delta_ts=st.lists(
            st.floats(min_value=-400.0, max_value=400.0), min_size=1, max_size=5
        ),
    )
    def test_property_round_trip(self, pitch, diameter, rows, nodes, delta_ts):
        spec = SimulationSpec(
            geometry=GeometrySpec(pitch=pitch, diameter=diameter, rows=rows),
            mesh=MeshSpec(nodes_per_axis=(nodes, nodes, nodes)),
            load_cases=tuple(
                LoadCase(name=f"c{i}", delta_t=dt) for i, dt in enumerate(delta_ts)
            ),
        )
        restored = SimulationSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.spec_hash() == spec.spec_hash()

    def test_resolved_cases_terminate_on_colliding_explicit_names(self):
        # regression: unnamed case whose default names are all taken must
        # still resolve (and terminate) with a fresh unique name
        spec = SimulationSpec(
            geometry=GeometrySpec(rows=2),
            load_cases=(
                LoadCase(delta_t=-10.0),
                LoadCase(name="case0", delta_t=-20.0),
                LoadCase(name="case0_1", delta_t=-30.0),
            ),
        )
        names = [case.name for case in spec.resolved_cases()]
        assert len(set(names)) == 3
        assert names[1:] == ["case0", "case0_1"]

    def test_resolved_cases_fill_names_sizes_locations(self):
        spec = SimulationSpec(
            geometry=GeometrySpec(rows=3),
            load_cases=(LoadCase(delta_t=-100.0), LoadCase(delta_t=-50.0, rows=5)),
        )
        resolved = spec.resolved_cases()
        assert [case.name for case in resolved] == ["case0", "case1"]
        assert (resolved[0].rows, resolved[0].cols) == (3, 3)
        assert (resolved[1].rows, resolved[1].cols) == (5, 5)
        sub = submodel_spec()
        assert [case.location for case in sub.resolved_cases()] == ["loc1", "loc3"]


class TestFailureModesNameTheField:
    @pytest.mark.parametrize(
        "document, field",
        [
            ({"geometry": {"pitch": -3.0}}, "pitch"),
            ({"geometry": {"warp": 1.0}}, "geometry.warp"),
            ({"mesh": {"resolution": "galactic"}}, "resolution"),
            ({"mesh": {"nodes_per_axis": [4, 4]}}, "mesh.nodes_per_axis"),
            ({"solver": {"method": "quantum"}}, "method"),
            ({"solver": {"jobs": 0}}, "jobs"),
            ({"load_cases": [{"delta_t": "cold"}]}, "load_cases[0].delta_t"),
            ({"load_cases": [{"rows": -1}]}, "rows"),
            ({"load_cases": [{"name": "a"}, {"name": "a"}]}, "load_cases[1].name"),
            ({"submodel": {"dummy_ring_width": -1}}, "dummy_ring_width"),
            ({"submodel": {"location": "loc9"}}, "location"),
            (
                {
                    "submodel": {},
                    "load_cases": [{"location": "centre"}],
                },
                "location",
            ),
            ({"materials": {"base": "exotic"}}, "base"),
            (
                {
                    "materials": {
                        "overrides": [
                            {
                                "role": "kryptonite",
                                "young_modulus_gpa": 1.0,
                                "poisson_ratio": 0.3,
                                "cte_ppm": 1.0,
                            }
                        ]
                    }
                },
                "role",
            ),
            (
                {
                    "materials": {
                        "overrides": [
                            {
                                "role": "copper",
                                "young_modulus_gpa": 100.0,
                                "poisson_ratio": 0.7,
                                "cte_ppm": 1.0,
                            }
                        ]
                    }
                },
                "poisson_ratio",
            ),
        ],
    )
    def test_bad_value_names_field(self, document, field):
        with pytest.raises(SpecError) as excinfo:
            SimulationSpec.from_dict(document)
        assert field in str(excinfo.value)

    def test_unknown_top_level_key(self):
        with pytest.raises(SpecError, match="spec.turbo"):
            SimulationSpec.from_dict({"turbo": True})

    def test_unknown_schema_version(self):
        with pytest.raises(SpecError, match="schema_version"):
            SimulationSpec.from_dict({"schema_version": 99})

    def test_invalid_json_document(self):
        with pytest.raises(SpecError, match="invalid JSON"):
            SimulationSpec.from_json("{not json")

    def test_location_without_submodel_rejected(self):
        with pytest.raises(ValidationError, match=r"load_cases\[0\].location"):
            SimulationSpec(
                geometry=GeometrySpec(rows=2),
                load_cases=(LoadCase(location="loc1"),),
            )

    def test_empty_load_cases_rejected(self):
        with pytest.raises(ValidationError, match="load_cases"):
            SimulationSpec(geometry=GeometrySpec(rows=2), load_cases=())

    def test_submodel_height_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="geometry.height"):
            SimulationSpec(
                geometry=GeometrySpec(rows=2, height=40.0),
                submodel=SubModelSpec(),
            )

    def test_duplicate_material_override_rejected(self):
        with pytest.raises(ValidationError, match="copper"):
            MaterialsSpec(
                overrides=(
                    MaterialOverride("copper", 100.0, 0.3, 17.0),
                    MaterialOverride("copper", 90.0, 0.3, 17.0),
                )
            )

    def test_load_cases_must_be_list(self):
        with pytest.raises(SpecError, match="load_cases"):
            SimulationSpec.from_dict({"load_cases": {"delta_t": -1.0}})


class TestBuildHelpers:
    def test_materials_spec_builds_overridden_library(self):
        spec = array_spec()
        library = spec.materials.build_library()
        assert library["copper"].young_modulus == pytest.approx(120.0e3)
        assert library["copper"].cte == pytest.approx(16.5e-6)
        # untouched roles keep their defaults
        assert library["silicon"].young_modulus == pytest.approx(130.0e3)

    def test_mesh_spec_builds_resolution_and_scheme(self):
        spec = sweep_spec()
        resolution = spec.mesh.build_resolution()
        assert resolution.n_core == 2
        assert spec.mesh.build_scheme().nodes_per_axis == (3, 3, 3)

    def test_solver_spec_builds_options(self):
        options = array_spec().solver.build_options()
        assert options.backend == "direct-splu"

    def test_geometry_spec_builds_tsv(self):
        tsv = array_spec().geometry.build_tsv()
        assert tsv.pitch == 12.0

    def test_canonical_json_is_deterministic(self):
        spec = sweep_spec()
        assert spec.to_json() == spec.to_json()
        parsed = json.loads(spec.to_json())
        assert parsed["name"] == "sweep"


class TestOutputSpec:
    def test_defaults(self):
        output = OutputSpec()
        assert output.formats == ("vtk", "npz")
        assert output.z_planes % 2 == 1
        assert output.hotspots is True

    def test_points_per_block_defaults_to_mesh(self):
        spec = output_spec()
        assert spec.output.resolved_points_per_block(spec.mesh) == 4
        assert OutputSpec().resolved_points_per_block(spec.mesh) == 5

    def test_documents_without_output_parse(self):
        # Pre-output documents (and terse ones) must keep parsing: the field
        # is optional and defaults to null.
        spec = SimulationSpec.from_dict({"geometry": {"rows": 2}})
        assert spec.output is None
        assert spec.to_dict()["output"] is None

    @pytest.mark.parametrize(
        "document, field",
        [
            ({"output": {"formats": []}}, "formats"),
            ({"output": {"formats": ["stl"]}}, "formats"),
            ({"output": {"formats": ["vtk", "vtk"]}}, "vtk"),
            ({"output": {"formats": "vtk"}}, "output.formats"),
            ({"output": {"z_planes": 4}}, "z_planes"),
            ({"output": {"z_planes": 0}}, "z_planes"),
            ({"output": {"points_per_block": 1}}, "points_per_block"),
            ({"output": {"hotspot_threshold_fraction": 1.5}}, "hotspot_threshold_fraction"),
            ({"output": {"top_k": 0}}, "top_k"),
            ({"output": {"hotspots": "yes"}}, "output.hotspots"),
            ({"output": {"paraview": True}}, "output.paraview"),
        ],
    )
    def test_bad_output_documents_name_the_field(self, document, field):
        with pytest.raises(SpecError, match=field):
            SimulationSpec.from_dict(document)

    def test_even_z_planes_rejected_eagerly(self):
        with pytest.raises(ValidationError, match="odd"):
            OutputSpec(z_planes=2)

    def test_output_must_be_output_spec(self):
        with pytest.raises(ValidationError, match="OutputSpec"):
            SimulationSpec(output="vtk")
