"""CLI contract tests for ``repro lint``: exit codes, envelope, registry."""

from __future__ import annotations

import json
import shutil

import pytest

from repro.api.envelope import ENVELOPE_VERSION, unwrap
from repro.cli import main
from tests.lint_fixtures import FIXTURES_DIR


@pytest.fixture
def clean_tree(tmp_path, monkeypatch):
    """A project tree with no violations, cwd'd into."""
    module = tmp_path / "src" / "repro" / "mod.py"
    module.parent.mkdir(parents=True)
    module.write_text('"""Clean."""\n\nx = 1\n')
    monkeypatch.chdir(tmp_path)
    return tmp_path


@pytest.fixture
def dirty_tree(tmp_path, monkeypatch):
    """A project tree with REP001 violations, cwd'd into."""
    destination = tmp_path / "src" / "repro" / "reporting.py"
    destination.parent.mkdir(parents=True)
    shutil.copyfile(FIXTURES_DIR / "rep001_bad.py", destination)
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, clean_tree):
        assert main(["lint"]) == 0

    def test_findings_exit_one(self, dirty_tree):
        assert main(["lint"]) == 1

    def test_unknown_rule_exits_two(self, clean_tree, capsys):
        assert main(["lint", "--rule", "NOPE"]) == 2
        assert "unknown rule 'NOPE'" in capsys.readouterr().err

    def test_missing_target_exits_two(self, clean_tree, capsys):
        assert main(["lint", "does/not/exist"]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_bad_baseline_exits_two(self, dirty_tree, capsys):
        (dirty_tree / "broken.json").write_text("{not json")
        assert main(["lint", "--baseline", "broken.json"]) == 2
        assert "not valid JSON" in capsys.readouterr().err


class TestTextOutput:
    def test_findings_render_with_location_and_summary(self, dirty_tree, capsys):
        main(["lint"])
        out = capsys.readouterr().out
        assert "src/repro/reporting.py:" in out
        assert "REP001 error:" in out
        assert "file(s)" in out

    def test_rule_filter_limits_findings(self, dirty_tree, capsys):
        assert main(["lint", "--rule", "REP005"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out


class TestJsonEnvelope:
    def test_envelope_schema_on_dirty_tree(self, dirty_tree, capsys):
        assert main(["lint", "--json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["schema_version"] == ENVELOPE_VERSION
        assert document["kind"] == "lint"
        data = unwrap(document, expected_kind="lint")
        assert data["ok"] is False
        assert data["files_checked"] == 1
        assert {r["id"] for r in data["rules"]} >= {
            "REP001",
            "REP002",
            "REP003",
            "REP004",
            "REP005",
            "REP006",
        }
        for finding in data["findings"]:
            assert set(finding) == {"rule", "severity", "path", "line", "message"}

    def test_envelope_on_clean_tree(self, clean_tree, capsys):
        assert main(["lint", "--json"]) == 0
        data = unwrap(json.loads(capsys.readouterr().out), expected_kind="lint")
        assert data["ok"] is True
        assert data["findings"] == []

    def test_envelope_to_file(self, clean_tree, capsys):
        assert main(["lint", "--json", "report.json"]) == 0
        document = json.loads((clean_tree / "report.json").read_text())
        assert document["kind"] == "lint"


class TestBaselineFlow:
    def _baseline_for(self, tree, capsys) -> dict:
        main(["lint", "--json"])
        data = unwrap(json.loads(capsys.readouterr().out), expected_kind="lint")
        return {
            "version": 1,
            "findings": [
                dict(
                    rule=f["rule"],
                    path=f["path"],
                    message=f["message"],
                    justification="grandfathered in the CLI round-trip test",
                )
                for f in data["findings"]
            ],
        }

    def test_default_baseline_is_picked_up_from_cwd(self, dirty_tree, capsys):
        document = self._baseline_for(dirty_tree, capsys)
        (dirty_tree / ".repro-lint-baseline.json").write_text(json.dumps(document))
        assert main(["lint"]) == 0
        assert "baselined" in capsys.readouterr().out

    def test_no_baseline_flag_ignores_default(self, dirty_tree, capsys):
        document = self._baseline_for(dirty_tree, capsys)
        (dirty_tree / ".repro-lint-baseline.json").write_text(json.dumps(document))
        assert main(["lint", "--no-baseline"]) == 1

    def test_explicit_baseline_path(self, dirty_tree, capsys):
        document = self._baseline_for(dirty_tree, capsys)
        (dirty_tree / "custom.json").write_text(json.dumps(document))
        assert main(["lint", "--baseline", "custom.json"]) == 0


class TestListRules:
    def test_text_listing(self, clean_tree, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006"):
            assert rule_id in out

    def test_json_listing(self, clean_tree, capsys):
        assert main(["lint", "--list-rules", "--json"]) == 0
        data = unwrap(json.loads(capsys.readouterr().out), expected_kind="lint")
        assert len(data["rules"]) >= 6


class TestWriteRegistry:
    def test_registry_files_written(self, tmp_path, monkeypatch, capsys):
        module = tmp_path / "src" / "repro" / "store.py"
        module.parent.mkdir(parents=True)
        module.write_text(
            "from repro.faults import fault_point\n\n\n"
            "def persist():\n"
            '    fault_point("store.persist")\n'
        )
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "--write-registry", "docs"]) == 0
        registry = json.loads((tmp_path / "docs" / "fault_sites.json").read_text())
        assert registry["version"] == 1
        assert [s["site"] for s in registry["sites"]] == ["store.persist"]
        markdown = (tmp_path / "docs" / "fault_sites.md").read_text()
        assert "store.persist" in markdown

    def test_registry_on_missing_tree_exits_two(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "--write-registry", "docs"]) == 2
        assert "does not exist" in capsys.readouterr().err
