"""Unit tests for the persistent ROM cache and the material fingerprint."""

import dataclasses

import numpy as np
import pytest

from repro.geometry.unit_block import UnitBlockGeometry
from repro.materials.library import MaterialLibrary
from repro.materials.material import IsotropicMaterial
from repro.mesh.resolution import MeshResolution
from repro.rom.cache import ROMCache, rom_cache_key
from repro.rom.interpolation import InterpolationScheme
from repro.rom.local_stage import LocalStage
from repro.rom.rom_model import ReducedOrderModel
from repro.rom.workflow import MoreStressSimulator
from repro.utils.validation import ValidationError

SCHEME_222 = InterpolationScheme((2, 2, 2))


@pytest.fixture()
def altered_materials() -> MaterialLibrary:
    """Default library with a stiffer copper (a different technology)."""
    library = MaterialLibrary.default()
    library.add(
        "copper",
        IsotropicMaterial(
            name="copper", young_modulus=150.0e3, poisson_ratio=0.35, cte=17.0e-6
        ),
    )
    return library


@pytest.fixture(scope="module")
def fast_rom(materials, tsv15, tiny_resolution):
    """A ROM cheap enough to rebuild inside individual tests."""
    stage = LocalStage(materials=materials, resolution=tiny_resolution, scheme=SCHEME_222)
    return stage.build(UnitBlockGeometry(tsv=tsv15, has_tsv=True))


class TestMaterialFingerprint:
    def test_deterministic(self, materials):
        assert materials.fingerprint() == MaterialLibrary.default().fingerprint()

    def test_sensitive_to_constants(self, materials, altered_materials):
        assert materials.fingerprint() != altered_materials.fingerprint()

    def test_sensitive_to_roles(self, materials):
        subset = materials.subset(["silicon", "copper", "liner"])
        assert subset.fingerprint() != materials.fingerprint()

    def test_rom_records_fingerprint(self, fast_rom, materials):
        assert fast_rom.material_fingerprint == materials.fingerprint()

    def test_fingerprint_survives_save_load(self, fast_rom, tmp_path):
        path = fast_rom.save(tmp_path / "rom")
        loaded = ReducedOrderModel.load(path)
        assert loaded.material_fingerprint == fast_rom.material_fingerprint

    def test_check_materials_accepts_match(self, fast_rom, materials):
        fast_rom.check_materials(materials)

    def test_check_materials_rejects_mismatch(self, fast_rom, altered_materials):
        with pytest.raises(ValidationError, match="different material library"):
            fast_rom.check_materials(altered_materials)

    def test_legacy_rom_without_fingerprint_passes(self, fast_rom, tmp_path, altered_materials):
        legacy = dataclasses.replace(fast_rom, material_fingerprint=None)
        path = legacy.save(tmp_path / "legacy")
        loaded = ReducedOrderModel.load(path)
        assert loaded.material_fingerprint is None
        loaded.check_materials(altered_materials)  # nothing to compare: no raise


class TestRomCacheKey:
    def test_stable(self, tsv15, tiny_resolution, materials):
        block = UnitBlockGeometry(tsv=tsv15)
        fingerprint = materials.fingerprint()
        assert rom_cache_key(block, tiny_resolution, SCHEME_222, fingerprint) == (
            rom_cache_key(block, tiny_resolution, SCHEME_222, fingerprint)
        )

    def test_sensitive_to_configuration(self, tsv15, tsv10, tiny_resolution, materials, altered_materials):
        block = UnitBlockGeometry(tsv=tsv15)
        fingerprint = materials.fingerprint()
        base = rom_cache_key(block, tiny_resolution, SCHEME_222, fingerprint)
        variants = [
            rom_cache_key(block.as_dummy(), tiny_resolution, SCHEME_222, fingerprint),
            rom_cache_key(
                UnitBlockGeometry(tsv=tsv10), tiny_resolution, SCHEME_222, fingerprint
            ),
            rom_cache_key(
                block, MeshResolution.preset("coarse"), SCHEME_222, fingerprint
            ),
            rom_cache_key(
                block, tiny_resolution, InterpolationScheme((3, 3, 3)), fingerprint
            ),
            rom_cache_key(
                block, tiny_resolution, SCHEME_222, altered_materials.fingerprint()
            ),
        ]
        assert len({base, *variants}) == len(variants) + 1


class TestROMCache:
    def test_miss_then_hit(self, materials, tsv15, tiny_resolution, tmp_path):
        cache = ROMCache(tmp_path / "cache")
        stage = LocalStage(
            materials=materials,
            resolution=tiny_resolution,
            scheme=SCHEME_222,
            cache=cache,
        )
        block = UnitBlockGeometry(tsv=tsv15)
        built = stage.build(block)
        assert (cache.misses, cache.hits) == (1, 0)
        assert len(cache) == 1

        cached = stage.build(block)
        assert (cache.misses, cache.hits) == (1, 1)
        np.testing.assert_array_equal(cached.basis, built.basis)
        np.testing.assert_array_equal(cached.element_stiffness, built.element_stiffness)
        assert cached.material_fingerprint == built.material_fingerprint

    def test_cache_shared_across_simulators(self, materials, tsv15, tmp_path):
        cache_dir = tmp_path / "shared_cache"
        first = MoreStressSimulator(
            tsv15, materials, mesh_resolution="tiny", nodes_per_axis=(2, 2, 2),
            rom_cache=cache_dir,
        )
        first.build_roms()
        assert first.rom_cache.misses == 1

        second = MoreStressSimulator(
            tsv15, materials, mesh_resolution="tiny", nodes_per_axis=(2, 2, 2),
            rom_cache=cache_dir,
        )
        second.build_roms()
        assert second.rom_cache.hits == 1
        assert second.rom_cache.misses == 0

    def test_different_materials_do_not_hit(
        self, materials, altered_materials, tsv15, tiny_resolution, tmp_path
    ):
        cache = ROMCache(tmp_path / "cache")
        block = UnitBlockGeometry(tsv=tsv15)
        LocalStage(
            materials=materials, resolution=tiny_resolution, scheme=SCHEME_222,
            cache=cache,
        ).build(block)
        assert cache.get(block, tiny_resolution, SCHEME_222, altered_materials) is None

    def test_put_requires_fingerprint(self, fast_rom, tmp_path):
        cache = ROMCache(tmp_path / "cache")
        with pytest.raises(ValidationError, match="material fingerprint"):
            cache.put(dataclasses.replace(fast_rom, material_fingerprint=None))

    def test_clear(self, fast_rom, tmp_path):
        cache = ROMCache(tmp_path / "cache")
        cache.put(fast_rom)
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_corrupt_bundle_degrades_to_miss(
        self, materials, tsv15, tiny_resolution, fast_rom, tmp_path
    ):
        cache = ROMCache(tmp_path / "cache")
        path = cache.put(fast_rom)
        path.write_bytes(b"not a zip archive")  # e.g. a killed writer's leftovers
        block = UnitBlockGeometry(tsv=tsv15)
        assert cache.get(block, tiny_resolution, SCHEME_222, materials) is None
        assert cache.misses == 1
        # A subsequent put atomically replaces the corrupt bundle and heals it.
        cache.put(fast_rom)
        assert cache.get(block, tiny_resolution, SCHEME_222, materials) is not None

    def test_rejects_file_as_directory(self, tmp_path):
        file_path = tmp_path / "not_a_dir"
        file_path.write_text("")
        with pytest.raises(ValidationError, match="not a directory"):
            ROMCache(file_path)

    def test_from_spec(self, tmp_path):
        assert ROMCache.from_spec(None) is None
        cache = ROMCache(tmp_path)
        assert ROMCache.from_spec(cache) is cache
        coerced = ROMCache.from_spec(tmp_path / "dir")
        assert isinstance(coerced, ROMCache)


class TestMismatchedLibraryRejection:
    def test_load_roms_rejects_mismatched_library(
        self, materials, altered_materials, tsv15, tmp_path
    ):
        builder = MoreStressSimulator(
            tsv15, materials, mesh_resolution="tiny", nodes_per_axis=(2, 2, 2)
        )
        builder.build_roms()
        builder.save_roms(tmp_path / "roms")

        consumer = MoreStressSimulator(
            tsv15, altered_materials, mesh_resolution="tiny", nodes_per_axis=(2, 2, 2)
        )
        with pytest.raises(ValidationError, match="different material library"):
            consumer.load_roms(tmp_path / "roms")

    def test_global_stage_rejects_mismatched_library(
        self, fast_rom, altered_materials, tsv15
    ):
        from repro.geometry.array_layout import BlockKind, TSVArrayLayout
        from repro.rom.global_stage import GlobalStage

        layout = TSVArrayLayout.full(tsv15, rows=1, cols=1)
        stage = GlobalStage({BlockKind.TSV: fast_rom}, altered_materials)
        with pytest.raises(ValidationError, match="different material library"):
            stage.assemble(layout, -250.0)


class TestConcurrentCacheWrites:
    """Concurrent writers must never corrupt entries (atomic rename + lock)."""

    def test_many_threads_storing_same_rom(self, fast_rom, materials, tmp_path):
        import threading

        cache = ROMCache(tmp_path / "cache")
        errors: list[Exception] = []

        def writer():
            try:
                for _ in range(5):
                    cache.put(fast_rom)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        assert len(cache) == 1
        loaded = cache.get(
            fast_rom.block, fast_rom.resolution, fast_rom.scheme, materials
        )
        assert loaded is not None
        np.testing.assert_array_equal(loaded.basis, fast_rom.basis)
        # No lockfiles or temporaries left behind.
        leftovers = [p.name for p in (tmp_path / "cache").iterdir() if p.name.startswith(".")]
        assert leftovers == []

    def test_concurrent_writers_of_distinct_keys(self, materials, tsv15, tsv10, tiny_resolution, tmp_path):
        import threading

        cache = ROMCache(tmp_path / "cache")
        stage = LocalStage(
            materials=materials, resolution=tiny_resolution, scheme=SCHEME_222
        )
        roms = [
            stage.build(UnitBlockGeometry(tsv=tsv15, has_tsv=True)),
            stage.build(UnitBlockGeometry(tsv=tsv10, has_tsv=True)),
        ]
        threads = [
            threading.Thread(target=cache.put, args=(rom,)) for rom in roms for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(cache) == 2
        for rom in roms:
            loaded = cache.get(rom.block, rom.resolution, rom.scheme, materials)
            assert loaded is not None
            np.testing.assert_array_equal(loaded.element_stiffness, rom.element_stiffness)

    def test_stale_lock_is_broken(self, fast_rom, tmp_path):
        cache = ROMCache(tmp_path / "cache")
        key = rom_cache_key(
            fast_rom.block,
            fast_rom.resolution,
            fast_rom.scheme,
            fast_rom.material_fingerprint,
        )
        (tmp_path / "cache").mkdir(parents=True, exist_ok=True)
        stale = tmp_path / "cache" / f".lock-{key}"
        stale.touch()
        import os

        old = 10_000.0
        os.utime(stale, (old, old))
        path = cache.put(fast_rom)  # must not dead-wait on the stale lock
        assert path.exists()
        assert not stale.exists()


class TestLRUEviction:
    """Size-capped LRU eviction for long-lived shard fleets."""

    @staticmethod
    def _variant(fast_rom, pitch: float):
        """A ROM with a distinct cache key (different pitch), same payload."""
        from repro.geometry.tsv import TSVGeometry

        block = UnitBlockGeometry(
            tsv=TSVGeometry.paper_default(pitch=pitch), has_tsv=True
        )
        return dataclasses.replace(fast_rom, block=block)

    def test_no_cap_never_evicts(self, fast_rom, tmp_path):
        cache = ROMCache(tmp_path / "cache")
        for pitch in (11.0, 12.0, 13.0):
            cache.put(self._variant(fast_rom, pitch))
        assert len(cache) == 3
        assert cache.evictions == 0
        assert cache.stats()["max_bytes"] is None

    def test_invalid_cap_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="max_bytes"):
            ROMCache(tmp_path / "cache", max_bytes=0)

    def test_oldest_entry_evicted_first(self, fast_rom, tmp_path):
        import os

        probe = ROMCache(tmp_path / "probe")
        size = probe.put(fast_rom).stat().st_size
        cache = ROMCache(tmp_path / "cache", max_bytes=2 * size + size // 2)
        path_a = cache.put(self._variant(fast_rom, 11.0))
        path_b = cache.put(self._variant(fast_rom, 12.0))
        os.utime(path_a, (100.0, 100.0))
        os.utime(path_b, (200.0, 200.0))
        path_c = cache.put(self._variant(fast_rom, 13.0))
        assert not path_a.exists()  # oldest went first
        assert path_b.exists() and path_c.exists()
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert abs(stats["evicted_bytes"] - size) <= 16  # metadata length varies
        assert stats["entries"] == 2
        assert cache.total_bytes() <= cache.max_bytes

    def test_hit_touches_entry_and_protects_it(self, fast_rom, materials, tmp_path):
        import os

        probe = ROMCache(tmp_path / "probe")
        size = probe.put(fast_rom).stat().st_size
        cache = ROMCache(tmp_path / "cache", max_bytes=2 * size + size // 2)
        rom_a = self._variant(fast_rom, 11.0)
        path_a = cache.put(rom_a)
        path_b = cache.put(self._variant(fast_rom, 12.0))
        os.utime(path_a, (100.0, 100.0))
        os.utime(path_b, (200.0, 200.0))
        # A hit refreshes the entry's recency, so B is now the LRU victim.
        loaded = cache.get(rom_a.block, rom_a.resolution, rom_a.scheme, materials)
        assert loaded is not None
        cache.put(self._variant(fast_rom, 13.0))
        assert path_a.exists()
        assert not path_b.exists()

    def test_just_written_bundle_survives_a_tiny_cap(self, fast_rom, tmp_path):
        probe = ROMCache(tmp_path / "probe")
        size = probe.put(fast_rom).stat().st_size
        cache = ROMCache(tmp_path / "cache", max_bytes=max(1, size // 2))
        path_a = cache.put(self._variant(fast_rom, 11.0))
        assert path_a.exists()  # cap smaller than one bundle: still serves
        path_b = cache.put(self._variant(fast_rom, 12.0))
        assert path_b.exists()
        assert not path_a.exists()  # but the previous entry is evicted
        assert cache.evictions == 1

    def test_from_spec_applies_cap_to_paths_only(self, tmp_path):
        coerced = ROMCache.from_spec(tmp_path / "dir", max_bytes=4096)
        assert coerced.max_bytes == 4096
        existing = ROMCache(tmp_path / "other")
        assert ROMCache.from_spec(existing, max_bytes=4096) is existing
        assert existing.max_bytes is None  # an instance keeps its own cap

    def test_stats_surface_eviction_counters(self, fast_rom, tmp_path):
        cache = ROMCache(tmp_path / "cache")
        stats = cache.stats()
        for key in ("hits", "misses", "hit_rate", "entries", "bytes",
                    "max_bytes", "evictions", "evicted_bytes"):
            assert key in stats
        assert stats["evictions"] == 0 and stats["evicted_bytes"] == 0
        cache.put(fast_rom)
        assert cache.stats()["bytes"] > 0
