"""REP005 negative fixture: consistent locking, consistent order."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0
        self.items = []
        self.label = "counter"

    def record(self):
        with self._lock:
            self.hits += 1
            self.items.append(1)

    def snapshot(self):
        with self._lock:
            return {"hits": self.hits, "items": len(self.items)}

    def name(self):
        return self.label  # unguarded attribute: no lock required


class Orderly:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()
        self.n = 0

    def forward(self):
        with self._a:
            with self._b:
                self.n += 1

    def also_forward(self):
        with self._a:
            with self._b:
                self.n -= 1
