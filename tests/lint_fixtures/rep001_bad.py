"""REP001 positive fixture: every non-atomic durable-write shape."""

import json
from pathlib import Path

import numpy as np


def write_report(path, payload):
    with open(path, "w") as handle:
        handle.write(payload)


def append_log(path, line):
    with Path(path).open("a") as handle:
        handle.write(line)


def dump_config(handle, document):
    json.dump(document, handle)


def save_arrays(path, arrays):
    np.savez(path, **arrays)


def save_table(table):
    np.savetxt("table.txt", table)


def note(path, text):
    Path(path).write_text(text)


def blob(path, data):
    Path(path).write_bytes(data)
