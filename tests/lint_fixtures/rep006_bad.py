"""REP006 positive fixture: a bumped version with no migration branch."""

SCHEMA_VERSION = 2
