"""Fixture modules for the ``repro.lint`` rule tests.

Each ``repNNN_bad.py`` module contains known violations of one rule
(positive cases) and each ``repNNN_good.py`` module contains near-miss
code that must stay clean (negative cases).  The tests copy these files
into a temporary project tree laid out like the real repository and run
the analyzer over it — the fixtures are never imported or executed.
"""

from pathlib import Path

FIXTURES_DIR = Path(__file__).resolve().parent
