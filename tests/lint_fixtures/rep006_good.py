"""REP006 negative fixture: migration branch present (test added by harness)."""

SCHEMA_VERSION = 2
SUPPORTED_SCHEMA_VERSIONS = (1, 2)
