"""REP003 positive fixture: raw numpy mixed into a bm-using kernel."""

import numpy as np

from repro.backend import backend_manager as bm


def kernel(values):
    device = bm.asarray(values, dtype=bm.ftype)
    return bm.asnumpy(device) * np.sqrt(2.0)
