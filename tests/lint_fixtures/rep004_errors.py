"""REP004 fixture taxonomy: one registered class, one orphan."""


class ReproError(Exception):
    code = "internal"
    http_status = 500


class GoodError(ReproError):
    code = "good"
    http_status = 400


class OrphanError(ReproError):
    code = "orphan"
    http_status = 400


_ERROR_CLASSES = (GoodError,)
ERROR_CLASSES_BY_CODE = {cls.code: cls for cls in _ERROR_CLASSES}
