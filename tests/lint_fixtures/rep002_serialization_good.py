"""REP002 negative fixture: the commit step exposes a fault site."""

import os

from repro import faults


def commit(temporary, final, *, fault_site: str = "serialization.dump_json"):
    if fault_site:
        faults.fault_point(fault_site)
    os.replace(temporary, final)
