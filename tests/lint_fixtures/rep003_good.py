"""REP003 negative fixture: seams annotated, host helpers left alone."""

import numpy as np

from repro.backend import backend_manager as bm


def kernel(points):
    # backend-seam: host-side points enter the device here
    host = np.asarray(points, dtype=float)
    device = bm.asarray(host, dtype=bm.ftype)
    return bm.asnumpy(device)


def host_helper(values: np.ndarray) -> np.ndarray:
    return np.asarray(values, dtype=float)
