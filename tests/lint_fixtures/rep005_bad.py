"""REP005 positive fixture: guarded state touched outside its lock."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0
        self.items = []
        self.misses = 0

    def record(self):
        with self._lock:
            self.hits += 1
            self.items.append(1)

    def snapshot(self):
        return self.hits  # guarded read outside the lock

    def drop(self):
        self.items.clear()  # guarded mutation outside the lock

    def miss(self):
        self.misses += 1  # unprotected counter in a threaded class


class Deadlocker:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()
        self.n = 0

    def forward(self):
        with self._a:
            with self._b:
                self.n += 1

    def backward(self):
        with self._b:
            with self._a:
                self.n += 1
