"""REP002 positive fixture: a chaos glob that matches no registered site."""

SCENARIOS = {
    "covered": [{"site": "serialization.dump_json", "kind": "enospc", "nth": 1}],
    "typo": [{"site": "serialisation.dump_jsonn", "kind": "crash", "nth": 1}],
}
