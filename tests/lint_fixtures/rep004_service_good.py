"""REP004 negative fixture: taxonomy raises, re-raises, argparse errors."""

from argparse import ArgumentTypeError

from repro.errors import GoodError


def handle(flag, error):
    if flag == "taxonomy":
        raise GoodError("bad input")
    if flag == "reraise":
        raise error
    raise ArgumentTypeError("usage")
