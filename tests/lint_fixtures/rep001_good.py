"""REP001 negative fixture: reads, atomic helpers, streams, suppressions."""

import json
from pathlib import Path

import numpy as np

from repro.utils.serialization import atomic_write_bytes, dump_json


def read_config(path):
    with open(path) as handle:
        return json.load(handle)


def read_text(path):
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def write_config(path, document):
    dump_json(Path(path), document)


def write_blob(path, data):
    atomic_write_bytes(path, data, fault_site="fixture.write")


def encode(document):
    return json.dumps(document)


def stream_into_open_handle(handle, table):
    np.savetxt(handle, table)


def stream_export(path, text):
    # repro-lint: disable=REP001 -- export stream fixture: regenerable output, streamed to bound memory
    with open(path, "w") as handle:
        handle.write(text)
