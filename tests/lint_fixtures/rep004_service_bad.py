"""REP004 positive fixture: a bare raise on a service-reachable path."""


def handle(flag):
    if flag:
        raise RuntimeError("boom")
    return {"status": "ok"}
