"""REP002 positive fixture: a durable-write commit with no fault site."""

import os


def commit(temporary, final):
    os.replace(temporary, final)
