"""Tests of the top-level package API surface."""

import repro


class TestPublicAPI:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_key_classes_importable_from_top_level(self):
        assert repro.TSVGeometry is not None
        assert repro.MoreStressSimulator is not None
        assert repro.FullFEMReference is not None
        assert repro.LinearSuperpositionMethod is not None
        assert callable(repro.normalized_mae)

    def test_quickstart_pattern(self):
        """The README / docstring quickstart must stay valid."""
        geometry = repro.TSVGeometry(
            diameter=5.0, height=50.0, liner_thickness=0.5, pitch=15.0
        )
        simulator = repro.MoreStressSimulator(
            geometry,
            repro.MaterialLibrary.default(),
            mesh_resolution="tiny",
            nodes_per_axis=(3, 3, 3),
        )
        result = simulator.simulate_array(rows=2, delta_t=-250.0)
        assert result.von_mises_midplane(points_per_block=5).shape == (2, 2, 5, 5)
