"""Unit tests for the sparse solvers, field evaluation and plane sampling."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.fem.assembly import assemble_stiffness, assemble_thermal_load
from repro.fem.boundary import DirichletBC, reduce_system
from repro.fem.fields import FieldEvaluator, von_mises
from repro.fem.sampling import PlaneSampler, midplane_grid_points
from repro.fem.solver import (
    FactorizedOperator,
    LinearSolver,
    SolverOptions,
    _jacobi_preconditioner,
)
from repro.geometry.array_layout import TSVArrayLayout
from repro.utils.validation import ValidationError


def _spd_system(size: int = 30, seed: int = 0):
    rng = np.random.default_rng(seed)
    dense = rng.normal(size=(size, size))
    matrix = sp.csr_matrix(dense @ dense.T + size * np.eye(size))
    rhs = rng.normal(size=size)
    return matrix, rhs


class TestSolverOptions:
    def test_defaults(self):
        options = SolverOptions()
        assert options.method == "direct"

    def test_invalid_method(self):
        with pytest.raises(ValidationError):
            SolverOptions(method="multigrid")

    def test_invalid_tolerance(self):
        with pytest.raises(ValidationError):
            SolverOptions(rtol=2.0)
        with pytest.raises(ValidationError):
            SolverOptions(max_iterations=0)


class TestFactorizedOperator:
    def test_single_and_block_rhs(self):
        matrix, rhs = _spd_system()
        operator = FactorizedOperator(matrix)
        x = operator.solve(rhs)
        np.testing.assert_allclose(matrix @ x, rhs, atol=1e-8)
        block = np.column_stack([rhs, 2 * rhs, -rhs])
        x_block = operator.solve(block)
        np.testing.assert_allclose(matrix @ x_block, block, atol=1e-8)

    def test_dimension_mismatch(self):
        matrix, _ = _spd_system()
        with pytest.raises(ValidationError):
            FactorizedOperator(matrix).solve(np.ones(5))

    def test_non_square_rejected(self):
        with pytest.raises(ValidationError):
            FactorizedOperator(sp.csr_matrix(np.ones((3, 4))))


class TestLinearSolver:
    @pytest.mark.parametrize("method", ["direct", "cg", "gmres"])
    def test_all_methods_solve_spd(self, method):
        matrix, rhs = _spd_system()
        solver = LinearSolver(SolverOptions(method=method, rtol=1e-10))
        x = solver.solve(matrix, rhs)
        np.testing.assert_allclose(matrix @ x, rhs, atol=1e-6 * np.linalg.norm(rhs))
        assert solver.last_stats is not None
        assert solver.last_stats.converged
        assert solver.last_stats.unknowns == rhs.size

    def test_gmres_handles_nonsymmetric(self):
        rng = np.random.default_rng(5)
        matrix = sp.csr_matrix(rng.normal(size=(25, 25)) + 25 * np.eye(25))
        rhs = rng.normal(size=25)
        solver = LinearSolver(SolverOptions(method="gmres", rtol=1e-12))
        x = solver.solve(matrix, rhs)
        np.testing.assert_allclose(matrix @ x, rhs, atol=1e-6)

    def test_shape_mismatch(self):
        matrix, _ = _spd_system()
        with pytest.raises(ValidationError):
            LinearSolver().solve(matrix, np.ones(3))

    def test_gmres_fallback_stats_describe_returned_solution(self):
        """A failed iterative solve falls back to direct — and says so."""
        rng = np.random.default_rng(7)
        matrix = sp.csr_matrix(rng.normal(size=(60, 60)) + 60 * np.eye(60))
        rhs = rng.normal(size=60)
        solver = LinearSolver(
            SolverOptions(method="gmres", rtol=1e-13, max_iterations=1, gmres_restart=2)
        )
        solution = solver.solve(matrix, rhs)
        stats = solver.last_stats
        assert stats.method == "gmres+direct-fallback"
        assert stats.converged
        # The recorded residual belongs to the direct solution, not the
        # aborted iterative attempt.
        np.testing.assert_allclose(matrix @ solution, rhs, atol=1e-8)
        assert stats.residual_norm <= 1e-8 * np.linalg.norm(rhs)

    def test_cg_fallback_stats_describe_returned_solution(self):
        matrix, rhs = _spd_system(size=80, seed=3)
        solver = LinearSolver(SolverOptions(method="cg", rtol=1e-13, max_iterations=1))
        solution = solver.solve(matrix, rhs)
        stats = solver.last_stats
        assert stats.method == "cg+direct-fallback"
        assert stats.converged
        np.testing.assert_allclose(matrix @ solution, rhs, atol=1e-8)

    def test_converged_iterative_stats_unchanged(self):
        matrix, rhs = _spd_system()
        solver = LinearSolver(SolverOptions(method="gmres", rtol=1e-10))
        solver.solve(matrix, rhs)
        assert solver.last_stats.method == "gmres"
        assert solver.last_stats.converged


class TestJacobiPreconditioner:
    def test_near_zero_diagonal_clamped_relative_to_mean(self):
        """A nearly singular row must not blow up the preconditioner."""
        diagonal = np.full(10, 1e8)
        diagonal[-1] = 1e-12  # tiny but nonzero: the old absolute threshold missed it
        matrix = sp.diags(diagonal).tocsr()
        preconditioner = _jacobi_preconditioner(matrix)
        applied = preconditioner.matvec(np.ones(10))
        # Healthy rows are scaled by their true inverse ...
        np.testing.assert_allclose(applied[:-1], 1e-8)
        # ... and the degenerate row gets the neutral mean-diagonal scaling
        # instead of an ~1e12 amplification.
        assert abs(applied[-1]) < 1e-6

    def test_exact_zero_diagonal_clamped(self):
        diagonal = np.array([2.0, 0.0, 4.0])
        matrix = sp.diags(diagonal).tocsr()
        applied = _jacobi_preconditioner(matrix).matvec(np.ones(3))
        assert np.all(np.isfinite(applied))
        np.testing.assert_allclose(applied[0], 0.5)

    def test_all_zero_diagonal_falls_back_to_identity(self):
        matrix = sp.csr_matrix((3, 3))
        applied = _jacobi_preconditioner(matrix).matvec(np.arange(3.0))
        np.testing.assert_allclose(applied, np.arange(3.0))


class TestVonMises:
    def test_pure_hydrostatic_is_zero(self):
        stress = np.array([[5.0, 5.0, 5.0, 0.0, 0.0, 0.0]])
        np.testing.assert_allclose(von_mises(stress), 0.0, atol=1e-12)

    def test_uniaxial(self):
        stress = np.array([[100.0, 0.0, 0.0, 0.0, 0.0, 0.0]])
        np.testing.assert_allclose(von_mises(stress), 100.0)

    def test_pure_shear(self):
        stress = np.array([[0.0, 0.0, 0.0, 0.0, 0.0, 10.0]])
        np.testing.assert_allclose(von_mises(stress), 10.0 * np.sqrt(3.0))

    def test_shape_preserved(self):
        stress = np.zeros((4, 5, 6))
        assert von_mises(stress).shape == (4, 5)

    def test_invalid_last_axis(self):
        with pytest.raises(ValidationError):
            von_mises(np.zeros((3, 5)))


class TestFieldEvaluator:
    @pytest.fixture(scope="class")
    def solved_block(self, tiny_block_mesh, materials):
        """Clamped TSV block solved under the paper's thermal load."""
        delta_t = -250.0
        stiffness = assemble_stiffness(tiny_block_mesh, materials)
        load = delta_t * assemble_thermal_load(tiny_block_mesh, materials)
        clamped = np.unique(
            np.concatenate(
                [
                    tiny_block_mesh.boundary_node_ids("z-"),
                    tiny_block_mesh.boundary_node_ids("z+"),
                ]
            )
        )
        bc = DirichletBC.from_nodes(clamped)
        a_ff, rhs, split = reduce_system(stiffness, load, bc)
        displacement = split.expand(FactorizedOperator(a_ff).solve(rhs), bc.values)
        return displacement, delta_t

    def test_displacement_zero_on_clamped_faces(self, tiny_block_mesh, materials, solved_block):
        displacement, _ = solved_block
        evaluator = FieldEvaluator(tiny_block_mesh, materials)
        points = np.array([[1.0, 1.0, 0.0], [14.0, 7.0, 50.0]])
        values = evaluator.displacement_at(points, displacement)
        np.testing.assert_allclose(values, 0.0, atol=1e-12)

    def test_displacement_interpolates_nodal_values(self, tiny_block_mesh, materials, solved_block):
        displacement, _ = solved_block
        evaluator = FieldEvaluator(tiny_block_mesh, materials)
        coords = tiny_block_mesh.node_coordinates()
        node = tiny_block_mesh.num_nodes // 2
        value = evaluator.displacement_at(coords[node][None, :], displacement)[0]
        np.testing.assert_allclose(value, displacement.reshape(-1, 3)[node], atol=1e-9)

    def test_stress_higher_in_copper_than_far_silicon(self, tiny_block_mesh, materials, solved_block):
        displacement, delta_t = solved_block
        evaluator = FieldEvaluator(tiny_block_mesh, materials)
        center = np.array([[7.5, 7.5, 25.0]])
        corner = np.array([[1.0, 1.0, 25.0]])
        vm_center = evaluator.von_mises_at(center, displacement, delta_t)[0]
        vm_corner = evaluator.von_mises_at(corner, displacement, delta_t)[0]
        assert vm_center > vm_corner
        assert vm_center > 100.0  # hundreds of MPa expected in the via

    def test_stress_scales_linearly_with_load(self, tiny_block_mesh, materials, solved_block):
        displacement, delta_t = solved_block
        evaluator = FieldEvaluator(tiny_block_mesh, materials)
        points = np.array([[7.5, 7.5, 25.0], [3.0, 3.0, 25.0]])
        full = evaluator.stress_at(points, displacement, delta_t)
        half = evaluator.stress_at(points, 0.5 * displacement, 0.5 * delta_t)
        np.testing.assert_allclose(half, 0.5 * full, rtol=1e-9)

    def test_wrong_displacement_size(self, tiny_block_mesh, materials):
        evaluator = FieldEvaluator(tiny_block_mesh, materials)
        with pytest.raises(ValidationError):
            evaluator.displacement_at(np.zeros((1, 3)), np.zeros(5))

    def test_stress_at_centroids_shape(self, tiny_block_mesh, materials, solved_block):
        displacement, delta_t = solved_block
        evaluator = FieldEvaluator(tiny_block_mesh, materials)
        stress = evaluator.stress_at_centroids(displacement, delta_t)
        assert stress.shape == (tiny_block_mesh.num_elements, 6)


class TestPlaneSampling:
    def test_grid_point_count_and_plane(self, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=2, cols=3)
        points = midplane_grid_points(layout, points_per_block=5)
        assert points.shape == (2 * 3 * 25, 3)
        np.testing.assert_allclose(points[:, 2], 25.0)
        assert points[:, 0].min() > 0.0 and points[:, 0].max() < 45.0

    def test_restricted_rows_cols(self, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=3, cols=3)
        points = midplane_grid_points(
            layout, points_per_block=4, rows=slice(1, 2), cols=slice(0, 2)
        )
        assert points.shape == (2 * 16, 3)
        assert points[:, 1].min() > 15.0 and points[:, 1].max() < 30.0

    def test_plane_sampler_restricts_to_tsv_region(self, tsv15):
        layout = TSVArrayLayout.with_dummy_ring(tsv15, rows=1, cols=2, ring_width=1)
        sampler = PlaneSampler(layout, points_per_block=3)
        assert sampler.sampled_block_shape() == (1, 2)
        points = sampler.sample_points()
        assert points.shape == (2 * 9, 3)
        # All sample points lie inside the TSV region (not in the dummy ring).
        assert points[:, 0].min() > 15.0
        assert points[:, 0].max() < 45.0

    def test_origin_respected(self, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=1, cols=1, origin=(100.0, 0.0, 7.0))
        points = midplane_grid_points(layout, points_per_block=2)
        assert points[:, 0].min() > 100.0
        np.testing.assert_allclose(points[:, 2], 7.0 + 25.0)
