"""Tests for the full-field post-processing subsystem (repro.postprocess)."""

import tracemalloc

import numpy as np
import pytest

from repro.fem.fields import von_mises
from repro.geometry.array_layout import BlockKind
from repro.geometry.tsv import TSVGeometry
from repro.postprocess import (
    ArrayField,
    HotspotReport,
    TSVHotspot,
    analyze_hotspots,
    read_vtk_rectilinear,
    reconstruct_array_field,
    write_vtk_rectilinear,
)
from repro.rom.reconstruction import BlockFieldSampler, block_volume_points
from repro.rom.workflow import MoreStressSimulator
from repro.utils.validation import ValidationError


@pytest.fixture(scope="module")
def solution_2x2(rom_result_2x2):
    return rom_result_2x2.solution


@pytest.fixture(scope="module")
def field_2x2(solution_2x2):
    return reconstruct_array_field(solution_2x2, points_per_block=5, z_planes=3, jobs=1)


class TestReconstruction:
    def test_shapes_and_metadata(self, field_2x2):
        assert field_2x2.shape == (10, 10, 3)
        assert field_2x2.displacement.shape == (10, 10, 3, 3)
        assert field_2x2.stress.shape == (10, 10, 3, 6)
        assert field_2x2.block_rows == field_2x2.block_cols == 2
        assert field_2x2.tsv_mask.all()
        assert field_2x2.delta_t == -250.0
        assert np.isfinite(field_2x2.von_mises).all()
        assert np.isfinite(field_2x2.displacement).all()
        assert np.isfinite(field_2x2.stress).all()

    def test_midplane_bit_identical_to_reference_sampler(self, solution_2x2, field_2x2):
        reference = solution_2x2.von_mises_midplane_flat(5)
        np.testing.assert_array_equal(field_2x2.midplane_von_mises_flat(), reference)
        blocks = field_2x2.midplane_von_mises_blocks()
        np.testing.assert_array_equal(blocks, solution_2x2.von_mises_midplane(5))

    def test_parallel_reconstruction_bit_identical(self, solution_2x2, field_2x2):
        parallel = reconstruct_array_field(
            solution_2x2, points_per_block=5, z_planes=3, jobs=4
        )
        np.testing.assert_array_equal(parallel.von_mises, field_2x2.von_mises)
        np.testing.assert_array_equal(parallel.displacement, field_2x2.displacement)
        np.testing.assert_array_equal(parallel.stress, field_2x2.stress)

    def test_blocks_match_direct_sampler(self, solution_2x2, field_2x2):
        # Independent path: evaluate one block with a hand-built sampler.
        kind = solution_2x2.layout.kind_at(1, 0)
        rom = solution_2x2.roms[kind]
        sampler = BlockFieldSampler(
            rom, solution_2x2.materials, block_volume_points(rom, 5, 3)
        )
        u_fine = rom.reconstruct_displacement(
            solution_2x2.block_reduced_displacement(1, 0), solution_2x2.delta_t
        )
        expected_stress = sampler.stress_from_fine(u_fine, solution_2x2.delta_t)
        expected_vm = von_mises(expected_stress)
        np.testing.assert_array_equal(
            field_2x2.block_values(field_2x2.von_mises, 1, 0).reshape(-1),
            expected_vm,
        )
        np.testing.assert_array_equal(
            field_2x2.block_values(field_2x2.stress, 1, 0).reshape(-1, 6),
            expected_stress,
        )

    def test_coordinates_span_the_layout(self, solution_2x2, field_2x2):
        pitch = solution_2x2.layout.tsv.pitch
        height = solution_2x2.layout.tsv.height
        assert field_2x2.x[0] == pytest.approx(0.5 / 5 * pitch)
        assert field_2x2.x[-1] == pytest.approx(2 * pitch - 0.5 / 5 * pitch)
        assert field_2x2.z[1] == pytest.approx(0.5 * height)
        # Strictly increasing grids (a rectilinear-grid requirement).
        assert np.all(np.diff(field_2x2.x) > 0)
        assert np.all(np.diff(field_2x2.y) > 0)
        assert np.all(np.diff(field_2x2.z) > 0)

    def test_single_plane_reconstruction(self, solution_2x2):
        field = reconstruct_array_field(solution_2x2, points_per_block=4, z_planes=1)
        assert field.shape == (8, 8, 1)
        np.testing.assert_array_equal(
            field.midplane_von_mises_flat(), solution_2x2.von_mises_midplane_flat(4)
        )

    def test_invalid_counts_rejected(self, solution_2x2):
        with pytest.raises(ValidationError):
            reconstruct_array_field(solution_2x2, points_per_block=0)
        with pytest.raises(ValidationError):
            reconstruct_array_field(solution_2x2, z_planes=0)


class TestArrayFieldValidation:
    def test_even_z_planes_have_no_midplane(self, field_2x2):
        even = ArrayField(
            x=field_2x2.x,
            y=field_2x2.y,
            z=field_2x2.z[:2],
            displacement=field_2x2.displacement[:, :, :2],
            stress=field_2x2.stress[:, :, :2],
            von_mises=field_2x2.von_mises[:, :, :2],
            tsv_mask=field_2x2.tsv_mask,
            delta_t=field_2x2.delta_t,
            points_per_block=field_2x2.points_per_block,
            pitch=field_2x2.pitch,
        )
        with pytest.raises(ValidationError, match="odd"):
            even.midplane_index

    def test_shape_mismatches_rejected(self, field_2x2):
        with pytest.raises(ValidationError, match="von_mises"):
            ArrayField(
                x=field_2x2.x,
                y=field_2x2.y,
                z=field_2x2.z,
                displacement=field_2x2.displacement,
                stress=field_2x2.stress,
                von_mises=field_2x2.von_mises[:-1],
                tsv_mask=field_2x2.tsv_mask,
                delta_t=-250.0,
                points_per_block=5,
                pitch=field_2x2.pitch,
            )
        with pytest.raises(ValidationError, match="x has"):
            ArrayField(
                x=field_2x2.x[:-1],
                y=field_2x2.y,
                z=field_2x2.z,
                displacement=field_2x2.displacement,
                stress=field_2x2.stress,
                von_mises=field_2x2.von_mises,
                tsv_mask=field_2x2.tsv_mask,
                delta_t=-250.0,
                points_per_block=5,
                pitch=field_2x2.pitch,
            )


class TestNpzPersistence:
    def test_round_trip_is_lossless(self, field_2x2, tmp_path):
        path = field_2x2.save(tmp_path / "field")
        assert path.suffix == ".npz"
        reloaded = ArrayField.load(path)
        np.testing.assert_array_equal(reloaded.x, field_2x2.x)
        np.testing.assert_array_equal(reloaded.von_mises, field_2x2.von_mises)
        np.testing.assert_array_equal(reloaded.displacement, field_2x2.displacement)
        np.testing.assert_array_equal(reloaded.stress, field_2x2.stress)
        np.testing.assert_array_equal(reloaded.tsv_mask, field_2x2.tsv_mask)
        assert reloaded.delta_t == field_2x2.delta_t
        assert reloaded.points_per_block == field_2x2.points_per_block
        assert reloaded.pitch == field_2x2.pitch
        assert reloaded.summary() == field_2x2.summary()

    def test_version_mismatch_rejected(self, field_2x2, tmp_path, monkeypatch):
        import repro.postprocess.fields as fields_module

        monkeypatch.setattr(fields_module, "FIELD_SCHEMA_VERSION", 99)
        path = field_2x2.save(tmp_path / "future")
        monkeypatch.undo()
        with pytest.raises(ValidationError, match="version"):
            ArrayField.load(path)


class TestVTK:
    def test_round_trip_is_lossless(self, field_2x2, tmp_path):
        path = write_vtk_rectilinear(tmp_path / "field.vtk", field_2x2)
        parsed = read_vtk_rectilinear(path)
        assert parsed["dimensions"] == field_2x2.shape
        x, y, z = parsed["coordinates"]
        np.testing.assert_array_equal(x, field_2x2.x)
        np.testing.assert_array_equal(y, field_2x2.y)
        np.testing.assert_array_equal(z, field_2x2.z)
        np.testing.assert_array_equal(
            parsed["point_data"]["von_mises"], field_2x2.von_mises
        )
        np.testing.assert_array_equal(
            parsed["point_data"]["displacement"], field_2x2.displacement
        )
        for index, component in enumerate(("xx", "yy", "zz", "yz", "xz", "xy")):
            np.testing.assert_array_equal(
                parsed["point_data"][f"stress_{component}"],
                field_2x2.stress[..., index],
            )

    def test_vtk_point_order_is_x_fastest(self, field_2x2, tmp_path):
        # The VTK convention: x varies fastest.  The first two data values of
        # the von_mises scalar are (x0, y0, z0) and (x1, y0, z0).
        path = write_vtk_rectilinear(tmp_path / "order.vtk", field_2x2)
        lines = path.read_text().splitlines()
        start = lines.index("LOOKUP_TABLE default") + 1
        first, second = float(lines[start]), float(lines[start + 1])
        assert first == field_2x2.von_mises[0, 0, 0]
        assert second == field_2x2.von_mises[1, 0, 0]

    def test_suffix_appended(self, field_2x2, tmp_path):
        path = write_vtk_rectilinear(tmp_path / "no_suffix", field_2x2)
        assert path.name == "no_suffix.vtk"

    def test_reader_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.vtk"
        bad.write_text("not a vtk file\n")
        with pytest.raises(ValidationError):
            read_vtk_rectilinear(bad)


def _synthetic_field() -> ArrayField:
    """A 2x2-block field with a controlled von Mises distribution."""
    p, q, pitch, height = 4, 3, 10.0, 50.0
    nx = ny = 2 * p
    # cell-centred positions: block c spans [c*pitch, (c+1)*pitch)
    x = np.concatenate([(np.arange(p) + 0.5) / p * pitch + c * pitch for c in range(2)])
    y = x.copy()
    z = (np.arange(q) + 0.5) / q * height
    vm = np.zeros((nx, ny, q))
    # Block (0, 0): peak 100 at its centre-most point, on the mid plane.
    vm[1, 1, 1] = 100.0
    # Block (row 0, col 1): peak 80 at a corner point of the block, top plane.
    vm[p, 0, 2] = 80.0
    # Block (row 1, col 0): everything just below any threshold.
    vm[0:p, p : 2 * p, :] = 10.0
    # Block (1, 1) is a dummy: huge value that must be ignored.
    vm[p : 2 * p, p : 2 * p, :] = 500.0
    tsv_mask = np.array([[True, True], [True, False]])
    shape = (nx, ny, q)
    return ArrayField(
        x=x,
        y=y,
        z=z,
        displacement=np.zeros(shape + (3,)),
        stress=np.zeros(shape + (6,)),
        von_mises=vm,
        tsv_mask=tsv_mask,
        delta_t=-250.0,
        points_per_block=p,
        pitch=pitch,
    )


class TestHotspots:
    def test_peaks_locations_and_ordering(self):
        field = _synthetic_field()
        report = analyze_hotspots(field, threshold=50.0)
        assert report.num_tsvs == 3
        peaks = [(spot.row, spot.col, spot.peak_von_mises) for spot in report.hotspots]
        assert peaks == [(0, 0, 100.0), (0, 1, 80.0), (1, 0, 10.0)]
        top = report.hotspots[0]
        assert top.location == (float(field.x[1]), float(field.y[1]), float(field.z[1]))
        second = report.hotspots[1]
        assert second.location == (
            float(field.x[4]),
            float(field.y[0]),
            float(field.z[2]),
        )

    def test_dummy_blocks_excluded(self):
        field = _synthetic_field()
        report = analyze_hotspots(field, threshold=50.0)
        assert report.peak_von_mises == 100.0  # not the dummy block's 500

    def test_keep_out_radii(self):
        field = _synthetic_field()
        report = analyze_hotspots(field, threshold=50.0)
        by_block = {(spot.row, spot.col): spot for spot in report.hotspots}
        # Block (0, 0): the single point over threshold sits at (x[1], y[1]);
        # centre is (5, 5).
        dx = field.x[1] - 5.0
        assert by_block[(0, 0)].keep_out_radius == pytest.approx(
            np.hypot(dx, dx)
        )
        # Block (1, 0) never exceeds the threshold.
        assert by_block[(1, 0)].keep_out_radius == 0.0

    def test_default_threshold_is_fraction_of_tsv_peak(self):
        field = _synthetic_field()
        report = analyze_hotspots(field, threshold_fraction=0.5)
        assert report.threshold == pytest.approx(50.0)  # 0.5 * 100, dummy ignored

    def test_report_round_trip_and_table(self):
        field = _synthetic_field()
        report = analyze_hotspots(field, threshold=50.0)
        restored = HotspotReport.from_dict(report.to_dict())
        assert restored.hotspots == report.hotspots
        assert restored.threshold == report.threshold
        text = report.table(2).to_text()
        assert "100.0" in text and "80.0" in text
        assert "10.0" not in text  # beyond top-2
        assert len(report.table(2)) == 2

    def test_top_k_clamps_to_population(self):
        report = analyze_hotspots(_synthetic_field(), threshold=50.0)
        assert len(report.top(50)) == 3

    def test_no_tsv_blocks_rejected(self):
        field = _synthetic_field()
        field.tsv_mask = np.zeros_like(field.tsv_mask)
        with pytest.raises(ValidationError, match="no TSV"):
            analyze_hotspots(field)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValidationError):
            analyze_hotspots(_synthetic_field(), threshold_fraction=0.0)
        with pytest.raises(ValidationError):
            analyze_hotspots(_synthetic_field(), threshold_fraction=1.5)

    def test_sorting_is_deterministic_on_ties(self):
        spots = tuple(
            TSVHotspot(row=r, col=c, peak_von_mises=1.0, location=(0, 0, 0), keep_out_radius=0.0)
            for r, c in [(1, 1), (0, 1), (0, 0)]
        )
        report = HotspotReport(threshold=0.5, pitch=10.0, hotspots=spots)
        assert [(s.row, s.col) for s in report.hotspots] == [(0, 0), (0, 1), (1, 1)]


class TestMemoryBoundedLargeArray:
    """Acceptance: a >= 20x20 array reconstructs with O(one block) extra memory."""

    @pytest.fixture(scope="class")
    def large_result(self):
        simulator = MoreStressSimulator(
            TSVGeometry.paper_default(pitch=15.0),
            mesh_resolution="coarse",
            nodes_per_axis=(2, 2, 2),
        )
        return simulator, simulator.simulate_array(rows=20, delta_t=-250.0)

    def test_peak_memory_bounded_by_one_block(self, large_result):
        simulator, result = large_result
        layout = result.solution.layout
        assert layout.num_blocks >= 400
        block_bytes = 8 * result.solution.roms[BlockKind.TSV].mesh.num_dofs

        tracemalloc.start()
        try:
            field = result.array_field(points_per_block=4, z_planes=3, jobs=1)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()

        output_bytes = (
            field.displacement.nbytes + field.stress.nbytes + field.von_mises.nbytes
        )
        naive_bytes = layout.num_blocks * block_bytes  # all fine fields at once
        # Streaming bound: the output grid plus a handful of block-sized
        # buffers — far below materializing every block's fine field.
        assert peak <= output_bytes + 64 * block_bytes
        assert peak < naive_bytes / 2
        assert naive_bytes > 4 * output_bytes  # the test actually discriminates

    def test_midplane_of_large_field_bit_identical(self, large_result):
        _, result = large_result
        field = result.array_field(points_per_block=4, z_planes=3, jobs=1)
        np.testing.assert_array_equal(
            field.midplane_von_mises_flat(), result.von_mises_midplane_flat(4)
        )

    def test_hotspot_report_covers_every_tsv(self, large_result):
        _, result = large_result
        field = result.array_field(points_per_block=4, z_planes=3, jobs=1)
        report = analyze_hotspots(field)
        assert report.num_tsvs == 400
        for spot in report.top(5):
            x, y, z = spot.location
            assert 0 <= x <= field.x[-1] and 0 <= y <= field.y[-1]
            assert 0 <= z <= field.z[-1]
            assert spot.peak_von_mises > 0
