"""The generated fault-site registry: content, freshness, chaos coverage."""

from __future__ import annotations

import json
from fnmatch import fnmatch
from pathlib import Path

from repro.lint import Project, build_registry, render_markdown
from repro.lint.rules.rep002_fault_sites import _iter_chaos_globs

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"


def _project() -> Project:
    return Project.from_paths(REPO_ROOT, [SRC])


class TestRegistryContent:
    def test_known_sites_are_discovered(self):
        registry = build_registry(_project())
        sites = {entry["site"] for entry in registry["sites"]}
        # One site per durability subsystem grown across the PR stack.
        for expected in (
            "serialization.dump_json",
            "serialization.save_npz",
            "executor.checkpoint",
            "service.jobs.persist",
            "rom_cache.put",
            "service.pool.worker",
            "cli.spec.write",
            "client.fetch_fields",
        ):
            assert expected in sites, f"missing fault site {expected}"
        # The f-string backend site registers as a glob pattern.
        backend = next(
            entry for entry in registry["sites"] if entry["site"] == "fem.backends.*"
        )
        assert backend["kind"] == "pattern"

    def test_every_site_has_a_source_location(self):
        registry = build_registry(_project())
        for entry in registry["sites"]:
            assert entry["locations"], entry["site"]
            for location in entry["locations"]:
                assert (REPO_ROOT / location["path"]).is_file()
                assert location["line"] >= 1


class TestRegistryFreshness:
    """Regenerate-and-diff: the committed registry must match the source."""

    def test_committed_json_is_fresh(self):
        committed = json.loads((REPO_ROOT / "docs" / "fault_sites.json").read_text())
        regenerated = build_registry(_project())
        assert committed == regenerated, (
            "docs/fault_sites.json is stale — regenerate with "
            "`python -m repro lint --write-registry docs`"
        )

    def test_committed_markdown_is_fresh(self):
        committed = (REPO_ROOT / "docs" / "fault_sites.md").read_text()
        regenerated = render_markdown(build_registry(_project()))
        assert committed == regenerated, (
            "docs/fault_sites.md is stale — regenerate with "
            "`python -m repro lint --write-registry docs`"
        )


class TestChaosCoverage:
    def test_every_chaos_glob_matches_a_registered_site(self):
        project = _project()
        registry = build_registry(project)
        sites = [entry["site"] for entry in registry["sites"]]
        chaos = project.module_at("repro/chaos.py")
        assert chaos is not None
        globs = list(_iter_chaos_globs(chaos))
        assert globs, "chaos scenarios declare no fault sites?"
        for glob, line in globs:
            assert any(fnmatch(site, glob) for site in sites), (
                f"chaos glob {glob!r} (chaos.py:{line}) matches no registered site"
            )
