"""Unit tests for the npz bundle serialization helpers."""

import json

import numpy as np
import pytest

from repro.errors import CorruptArtifactError
from repro.faults import FaultPlan, SimulatedCrashError, injected_faults
from repro.utils.serialization import (
    CHECKSUM_KEY,
    QUARANTINE_DIRNAME,
    atomic_write_bytes,
    count_quarantined,
    dump_json,
    load_json,
    load_npz_bundle,
    quarantine_file,
    save_npz_bundle,
    verify_checksum,
    with_checksum,
)


class TestNpzBundle:
    def test_roundtrip_arrays_and_metadata(self, tmp_path):
        arrays = {
            "matrix": np.arange(12, dtype=float).reshape(3, 4),
            "ints": np.array([1, 2, 3]),
        }
        metadata = {"name": "rom", "nodes": [4, 4, 4], "pitch": 15.0}
        path = save_npz_bundle(tmp_path / "bundle", arrays, metadata)
        assert path.suffix == ".npz"

        loaded_arrays, loaded_metadata = load_npz_bundle(path)
        np.testing.assert_allclose(loaded_arrays["matrix"], arrays["matrix"])
        np.testing.assert_array_equal(loaded_arrays["ints"], arrays["ints"])
        assert loaded_metadata == {"name": "rom", "nodes": [4, 4, 4], "pitch": 15.0}

    def test_load_accepts_path_without_suffix(self, tmp_path):
        save_npz_bundle(tmp_path / "data", {"x": np.ones(3)}, {})
        arrays, _ = load_npz_bundle(tmp_path / "data")
        assert "x" in arrays

    def test_empty_metadata_roundtrip(self, tmp_path):
        path = save_npz_bundle(tmp_path / "nometa", {"x": np.zeros(2)})
        _, metadata = load_npz_bundle(path)
        assert metadata == {}

    def test_reserved_name_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_npz_bundle(tmp_path / "bad", {"__metadata_json__": np.zeros(1)}, {})

    def test_creates_parent_directories(self, tmp_path):
        path = save_npz_bundle(tmp_path / "deep" / "nested" / "file", {"x": np.ones(1)}, {})
        assert path.exists()

    def test_bundle_detects_flipped_bytes(self, tmp_path):
        path = save_npz_bundle(tmp_path / "b", {"x": np.arange(4.0)}, {"k": 1})
        # Re-save with a changed array but the *old* metadata digest.
        _, metadata = load_npz_bundle(path)
        arrays = {"x": np.arange(4.0) + 1.0}
        import repro.utils.serialization as serialization

        meta = dict(metadata)
        meta[CHECKSUM_KEY] = serialization._arrays_digest({"x": np.arange(4.0)}, meta)
        meta_json = json.dumps(meta, sort_keys=True)
        payload = dict(arrays)
        payload["__metadata_json__"] = np.frombuffer(
            meta_json.encode("utf-8"), dtype=np.uint8
        )
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **payload)
        with pytest.raises(CorruptArtifactError, match="checksum mismatch"):
            load_npz_bundle(path)
        arrays_unverified, _ = load_npz_bundle(path, verify=False)
        np.testing.assert_allclose(arrays_unverified["x"], np.arange(4.0) + 1.0)

    def test_no_temp_files_left_behind(self, tmp_path):
        save_npz_bundle(tmp_path / "a", {"x": np.ones(2)}, {})
        dump_json(tmp_path / "d.json", {"k": 1})
        assert list(tmp_path.glob(".tmp-*")) == []


class TestChecksums:
    def test_json_checksum_round_trip(self, tmp_path):
        path = dump_json(tmp_path / "doc.json", {"a": 1, "b": [2, 3]}, checksum=True)
        raw = json.loads(path.read_text())
        assert CHECKSUM_KEY in raw
        assert load_json(path) == {"a": 1, "b": [2, 3]}

    def test_json_corruption_detected(self, tmp_path):
        path = dump_json(tmp_path / "doc.json", {"a": 1}, checksum=True)
        raw = json.loads(path.read_text())
        raw["a"] = 2  # flip a value; keep the recorded digest
        path.write_text(json.dumps(raw))
        with pytest.raises(CorruptArtifactError, match="checksum mismatch"):
            load_json(path)

    def test_legacy_documents_pass_through(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps({"plain": True}))
        assert load_json(path) == {"plain": True}
        assert verify_checksum([1, 2, 3]) == [1, 2, 3]
        assert verify_checksum({"no": "digest"}) == {"no": "digest"}

    def test_with_checksum_verify_round_trip(self):
        document = with_checksum({"x": 1})
        assert verify_checksum(dict(document)) == {"x": 1}


class TestQuarantine:
    def test_quarantine_moves_file_with_reason_sidecar(self, tmp_path):
        victim = tmp_path / "bad.json"
        victim.write_text("garbage")
        target = quarantine_file(victim, "test corruption")
        assert not victim.exists()
        assert target is not None
        assert target.parent.name == QUARANTINE_DIRNAME
        sidecar = target.with_name(target.name + ".reason.json")
        record = json.loads(sidecar.read_text())
        assert record["reason"] == "test corruption"
        assert count_quarantined(tmp_path) == 1

    def test_count_quarantined_is_recursive_and_skips_sidecars(self, tmp_path):
        for sub in ("a", "b/c"):
            victim = tmp_path / sub / "bad.bin"
            victim.parent.mkdir(parents=True, exist_ok=True)
            victim.write_bytes(b"x")
            quarantine_file(victim, "r")
        assert count_quarantined(tmp_path) == 2
        assert count_quarantined(tmp_path / "missing") == 0

    def test_quarantine_of_missing_file_returns_none(self, tmp_path):
        assert quarantine_file(tmp_path / "never-existed", "r") is None


class TestInjectedWriteFaults:
    def test_torn_write_truncates_but_lands(self, tmp_path):
        plan = FaultPlan(rules=({"site": "unit.write", "kind": "torn_write", "nth": 1},))
        payload = b"x" * 100
        with injected_faults(plan):
            path = atomic_write_bytes(tmp_path / "f.bin", payload, fault_site="unit.write")
        assert path.read_bytes() == b"x" * 50
        assert list(tmp_path.glob(".tmp-*")) == []

    def test_crash_raises_after_rename(self, tmp_path):
        plan = FaultPlan(rules=({"site": "unit.write", "kind": "crash", "nth": 1},))
        with injected_faults(plan):
            with pytest.raises(SimulatedCrashError):
                atomic_write_bytes(tmp_path / "f.bin", b"data", fault_site="unit.write")
        # Rename-then-crash: the destination holds the complete payload.
        assert (tmp_path / "f.bin").read_bytes() == b"data"

    def test_torn_json_write_is_caught_by_reader(self, tmp_path):
        plan = FaultPlan(
            rules=({"site": "serialization.dump_json", "kind": "torn_write", "nth": 1},)
        )
        with injected_faults(plan):
            path = dump_json(tmp_path / "doc.json", {"k": "v" * 64}, checksum=True)
        with pytest.raises((CorruptArtifactError, json.JSONDecodeError, ValueError)):
            load_json(path)

    def test_torn_bundle_write_is_caught_by_reader(self, tmp_path):
        plan = FaultPlan(
            rules=({"site": "serialization.save_npz", "kind": "torn_write", "nth": 1},)
        )
        with injected_faults(plan):
            path = save_npz_bundle(tmp_path / "b", {"x": np.ones(64)}, {"k": 1})
        with pytest.raises(Exception):
            load_npz_bundle(path)

    def test_enospc_leaves_no_destination(self, tmp_path):
        plan = FaultPlan(rules=({"site": "unit.write", "kind": "enospc", "nth": 1},))
        with injected_faults(plan):
            with pytest.raises(OSError):
                atomic_write_bytes(tmp_path / "f.bin", b"data", fault_site="unit.write")
        assert not (tmp_path / "f.bin").exists()
        assert list(tmp_path.glob(".tmp-*")) == []
