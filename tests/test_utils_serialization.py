"""Unit tests for the npz bundle serialization helpers."""

import numpy as np
import pytest

from repro.utils.serialization import load_npz_bundle, save_npz_bundle


class TestNpzBundle:
    def test_roundtrip_arrays_and_metadata(self, tmp_path):
        arrays = {
            "matrix": np.arange(12, dtype=float).reshape(3, 4),
            "ints": np.array([1, 2, 3]),
        }
        metadata = {"name": "rom", "nodes": [4, 4, 4], "pitch": 15.0}
        path = save_npz_bundle(tmp_path / "bundle", arrays, metadata)
        assert path.suffix == ".npz"

        loaded_arrays, loaded_metadata = load_npz_bundle(path)
        np.testing.assert_allclose(loaded_arrays["matrix"], arrays["matrix"])
        np.testing.assert_array_equal(loaded_arrays["ints"], arrays["ints"])
        assert loaded_metadata == {"name": "rom", "nodes": [4, 4, 4], "pitch": 15.0}

    def test_load_accepts_path_without_suffix(self, tmp_path):
        save_npz_bundle(tmp_path / "data", {"x": np.ones(3)}, {})
        arrays, _ = load_npz_bundle(tmp_path / "data")
        assert "x" in arrays

    def test_empty_metadata_roundtrip(self, tmp_path):
        path = save_npz_bundle(tmp_path / "nometa", {"x": np.zeros(2)})
        _, metadata = load_npz_bundle(path)
        assert metadata == {}

    def test_reserved_name_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_npz_bundle(tmp_path / "bad", {"__metadata_json__": np.zeros(1)}, {})

    def test_creates_parent_directories(self, tmp_path):
        path = save_npz_bundle(tmp_path / "deep" / "nested" / "file", {"x": np.ones(1)}, {})
        assert path.exists()
