"""Generality of the pipeline: other fine structures via material-role re-binding.

The paper claims the method applies to any periodic fine structure.  These
tests retarget the unit cell to a copper pillar and a solder micro bump in an
underfill matrix (no code changes, only different geometry parameters and
material bindings) and check the full pipeline still runs and produces
physically ordered results.
"""

import numpy as np
import pytest

from repro.geometry.tsv import TSVGeometry
from repro.materials.library import (
    ROLE_COPPER,
    ROLE_LINER,
    ROLE_SILICON,
    ROLE_SOLDER,
    ROLE_UNDERFILL,
    MaterialLibrary,
)
from repro.rom.workflow import MoreStressSimulator

DELTA_T = -250.0


def _pillar_library() -> MaterialLibrary:
    library = MaterialLibrary.default()
    library.add(ROLE_SILICON, library[ROLE_UNDERFILL].with_name(ROLE_SILICON))
    library.add(ROLE_LINER, library[ROLE_COPPER].with_name(ROLE_LINER))
    return library


def _bump_library() -> MaterialLibrary:
    library = MaterialLibrary.default()
    library.add(ROLE_SILICON, library[ROLE_UNDERFILL].with_name(ROLE_SILICON))
    library.add(ROLE_COPPER, library[ROLE_SOLDER].with_name(ROLE_COPPER))
    library.add(ROLE_LINER, library[ROLE_SOLDER].with_name(ROLE_LINER))
    return library


class TestOtherFineStructures:
    @pytest.mark.parametrize(
        "geometry,library_factory",
        [
            (TSVGeometry(diameter=20.0, height=40.0, liner_thickness=0.5, pitch=50.0), _pillar_library),
            (TSVGeometry(diameter=25.0, height=30.0, liner_thickness=0.5, pitch=60.0), _bump_library),
        ],
        ids=["copper-pillar", "solder-bump"],
    )
    def test_pipeline_runs_for_non_tsv_structures(self, geometry, library_factory):
        simulator = MoreStressSimulator(
            geometry, library_factory(), mesh_resolution="tiny", nodes_per_axis=(3, 3, 3)
        )
        result = simulator.simulate_array(rows=2, delta_t=DELTA_T)
        vm = result.von_mises_midplane(points_per_block=8)
        assert vm.shape == (2, 2, 8, 8)
        assert np.all(np.isfinite(vm))
        assert vm.max() > 1.0  # some stress must develop

    def test_soft_matrix_lowers_stress_versus_tsv(self, tsv15, materials):
        """A copper pillar in compliant underfill loads its surroundings far
        less than a TSV in stiff silicon: the mean von Mises stress over the
        unit cell mid-plane must drop (the copper core itself can carry more
        axial stress, so the *peak* is not the discriminating quantity)."""
        tsv_sim = MoreStressSimulator(
            tsv15, materials, mesh_resolution="tiny", nodes_per_axis=(3, 3, 3)
        )
        vm_tsv = tsv_sim.simulate_array(rows=2, delta_t=DELTA_T).von_mises_midplane(8)

        pillar_geometry = TSVGeometry(
            diameter=5.0, height=50.0, liner_thickness=0.5, pitch=15.0
        )
        pillar_sim = MoreStressSimulator(
            pillar_geometry, _pillar_library(), mesh_resolution="tiny", nodes_per_axis=(3, 3, 3)
        )
        vm_pillar = pillar_sim.simulate_array(rows=2, delta_t=DELTA_T).von_mises_midplane(8)
        assert vm_pillar.mean() < vm_tsv.mean()
