"""Tests for the field-export CLI surface: ``repro export`` and
``simulate/run --export-field``."""

import json

import pytest

from repro.api import SimulationSpec
from repro.cli import main

FAST = [
    "--rows",
    "2",
    "--resolution",
    "tiny",
    "--nodes",
    "3",
    "--points-per-block",
    "4",
]


class TestSpecTemplate:
    def test_spec_without_flag_has_no_output_section(self, capsys):
        assert main(["spec", *FAST]) == 0
        spec = SimulationSpec.from_json(capsys.readouterr().out)
        assert spec.output is None

    def test_spec_with_flag_includes_output_section(self, capsys):
        assert main(["spec", *FAST, "--export-field"]) == 0
        spec = SimulationSpec.from_json(capsys.readouterr().out)
        assert spec.output is not None
        assert spec.output.formats == ("vtk", "npz")
        assert spec.output.z_planes % 2 == 1


class TestSimulateExportField:
    def test_simulate_writes_exports_and_prints_hotspots(self, tmp_path, capsys):
        export_dir = tmp_path / "exports"
        assert main(["simulate", *FAST, "--export-field", str(export_dir)]) == 0
        out = capsys.readouterr().out
        assert (export_dir / "case0_cli.vtk").exists()
        assert (export_dir / "case0_cli.npz").exists()
        hotspots = json.loads((export_dir / "hotspots.json").read_text())
        assert len(hotspots["cases"]["cli"]["hotspots"]) == 4
        assert "keep-out" in out  # the hotspot table was printed


class TestRunExportField:
    def test_run_injects_output_section_when_missing(self, tmp_path, capsys):
        spec_path = tmp_path / "run.json"
        assert main(["spec", *FAST, "-o", str(spec_path)]) == 0
        assert SimulationSpec.from_json(spec_path.read_text()).output is None

        export_dir = tmp_path / "exports"
        assert main(["run", str(spec_path), "--export-field", str(export_dir)]) == 0
        assert (export_dir / "case0_cli.vtk").exists()
        assert (export_dir / "case0_cli.npz").exists()
        assert "keep-out" in capsys.readouterr().out

    def test_run_save_then_export_command(self, tmp_path, capsys):
        spec_path = tmp_path / "run.json"
        assert main(["spec", *FAST, "--export-field", "-o", str(spec_path)]) == 0
        results_dir = tmp_path / "results"
        assert main(["run", str(spec_path), "--save", str(results_dir)]) == 0
        capsys.readouterr()

        # Exports come straight from the archived fields (no re-solve).
        assert main(["export", str(results_dir)]) == 0
        out = capsys.readouterr().out
        assert "re-solving" not in out
        assert (results_dir / "fields" / "case0_cli.vtk").exists()
        assert "keep-out" in out

    def test_export_resolves_archived_runs_without_fields(self, tmp_path, capsys):
        spec_path = tmp_path / "run.json"
        assert main(["spec", *FAST, "-o", str(spec_path)]) == 0
        results_dir = tmp_path / "results"
        assert main(["run", str(spec_path), "--save", str(results_dir)]) == 0
        assert not (results_dir / "fields").exists()
        capsys.readouterr()

        out_dir = tmp_path / "exports"
        assert main(["export", str(results_dir), "-o", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "re-solving" in out
        assert (out_dir / "case0_cli.vtk").exists()
        assert (out_dir / "case0_cli.npz").exists()

    def test_export_format_selection(self, tmp_path, capsys):
        spec_path = tmp_path / "run.json"
        assert main(["spec", *FAST, "--export-field", "-o", str(spec_path)]) == 0
        results_dir = tmp_path / "results"
        assert main(["run", str(spec_path), "--save", str(results_dir)]) == 0
        out_dir = tmp_path / "npz-only"
        assert main(["export", str(results_dir), "-o", str(out_dir), "--format", "npz"]) == 0
        assert (out_dir / "case0_cli.npz").exists()
        assert not (out_dir / "case0_cli.vtk").exists()

    def test_export_missing_directory_fails_cleanly(self, tmp_path, capsys):
        assert main(["export", str(tmp_path / "nowhere")]) == 2
        assert "error" in capsys.readouterr().err


@pytest.mark.parametrize("flag_set", [["--export-field"]])
def test_spec_flag_round_trips_through_run(tmp_path, capsys, flag_set):
    """A template emitted with --export-field executes with field outputs."""
    spec_path = tmp_path / "with-output.json"
    assert main(["spec", *FAST, *flag_set, "-o", str(spec_path)]) == 0
    export_dir = tmp_path / "exports"
    assert main(["run", str(spec_path), "--export-field", str(export_dir)]) == 0
    assert (export_dir / "case0_cli.npz").exists()
