"""Unit tests for global assembly and Dirichlet boundary condition handling."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.fem.assembly import assemble_stiffness, assemble_thermal_load, element_dof_map
from repro.fem.boundary import DirichletBC, lift_system, reduce_system, split_system
from repro.fem.elasticity import material_arrays_for_mesh
from repro.mesh.block_mesher import mesh_unit_block
from repro.utils.validation import ValidationError


class TestElementDofMap:
    def test_expansion(self):
        connectivity = np.array([[0, 1, 2, 3, 4, 5, 6, 7]])
        dofs = element_dof_map(connectivity)
        assert dofs.shape == (1, 24)
        np.testing.assert_array_equal(dofs[0, :6], [0, 1, 2, 3, 4, 5])
        np.testing.assert_array_equal(dofs[0, -3:], [21, 22, 23])

    def test_nontrivial_nodes(self):
        dofs = element_dof_map(np.array([[10, 11, 12, 13, 14, 15, 16, 17]]))
        assert dofs[0, 0] == 30
        assert dofs[0, 23] == 53


class TestAssembly:
    def test_stiffness_properties(self, tiny_block_mesh, materials):
        stiffness = assemble_stiffness(tiny_block_mesh, materials)
        assert stiffness.shape == (tiny_block_mesh.num_dofs,) * 2
        asymmetry = abs(stiffness - stiffness.T).max()
        assert asymmetry < 1e-8 * abs(stiffness).max()
        # Rigid body modes: translations produce zero force.
        translation = np.tile([1.0, 0.0, 0.0], tiny_block_mesh.num_nodes)
        residual = stiffness @ translation
        assert np.abs(residual).max() < 1e-6 * abs(stiffness).max()

    def test_material_data_reuse_gives_same_result(self, tiny_block_mesh, materials):
        data = material_arrays_for_mesh(tiny_block_mesh, materials)
        a1 = assemble_stiffness(tiny_block_mesh, materials)
        a2 = assemble_stiffness(tiny_block_mesh, materials, data)
        assert abs(a1 - a2).max() < 1e-12

    def test_chunked_assembly_matches(self, tiny_block_mesh, materials):
        a_full = assemble_stiffness(tiny_block_mesh, materials)
        a_chunked = assemble_stiffness(tiny_block_mesh, materials, chunk_size=17)
        assert abs(a_full - a_chunked).max() < 1e-12 * abs(a_full).max()

    def test_thermal_load_self_equilibrated(self, tiny_block_mesh, materials):
        load = assemble_thermal_load(tiny_block_mesh, materials)
        assert load.shape == (tiny_block_mesh.num_dofs,)
        # Sum of nodal forces in each direction vanishes (no external load).
        for component in range(3):
            assert abs(load[component::3].sum()) < 1e-8 * np.abs(load).max()

    def test_thermal_load_zero_without_cte_mismatch(self, dummy_block, materials):
        """A uniform material block has a nonzero load vector but a compatible one.

        The thermal load of a homogeneous block corresponds to free expansion:
        it must be exactly representable as ``K @ u_expansion`` (checked via the
        free-expansion verification test in test_fem_verification.py); here we
        only check the load is nonzero and finite.
        """
        mesh = mesh_unit_block(dummy_block, "tiny")
        load = assemble_thermal_load(mesh, materials)
        assert np.all(np.isfinite(load))
        assert np.abs(load).max() > 0.0


class TestDirichletBC:
    def test_fixed_constructor(self):
        bc = DirichletBC.fixed(np.array([3, 1, 2]))
        np.testing.assert_array_equal(bc.dofs, [1, 2, 3])
        np.testing.assert_allclose(bc.values, 0.0)

    def test_from_nodes_all_components(self):
        bc = DirichletBC.from_nodes(np.array([2]), np.array([[1.0, 2.0, 3.0]]))
        np.testing.assert_array_equal(bc.dofs, [6, 7, 8])
        np.testing.assert_allclose(bc.values, [1.0, 2.0, 3.0])

    def test_from_nodes_broadcast_vector(self):
        bc = DirichletBC.from_nodes(np.array([0, 1]), np.array([0.5, 0.0, -0.5]))
        assert bc.num_constrained == 6
        np.testing.assert_allclose(bc.values[bc.dofs == 3], 0.5)

    def test_duplicate_consistent_dofs_merged(self):
        bc = DirichletBC(dofs=np.array([4, 4, 5]), values=np.array([1.0, 1.0, 2.0]))
        assert bc.num_constrained == 2

    def test_duplicate_conflicting_dofs_rejected(self):
        with pytest.raises(ValidationError):
            DirichletBC(dofs=np.array([4, 4]), values=np.array([1.0, 2.0]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            DirichletBC(dofs=np.array([1, 2]), values=np.array([1.0]))

    def test_merged_with(self):
        a = DirichletBC.fixed(np.array([0, 1]))
        b = DirichletBC(dofs=np.array([5]), values=np.array([2.0]))
        merged = a.merged_with(b)
        assert merged.num_constrained == 3


class TestSplitAndReduce:
    @pytest.fixture
    def small_system(self):
        rng = np.random.default_rng(3)
        dense = rng.normal(size=(12, 12))
        matrix = sp.csr_matrix(dense @ dense.T + 12 * np.eye(12))
        rhs = rng.normal(size=12)
        bc = DirichletBC(dofs=np.array([0, 5, 11]), values=np.array([1.0, -2.0, 0.5]))
        return matrix, rhs, bc

    def test_split_shapes(self, small_system):
        matrix, _, bc = small_system
        split = split_system(matrix, bc)
        assert split.a_ff.shape == (9, 9)
        assert split.a_fb.shape == (9, 3)
        assert split.num_free == 9

    def test_reduced_solution_matches_dense(self, small_system):
        matrix, rhs, bc = small_system
        a_ff, reduced_rhs, split = reduce_system(matrix, rhs, bc)
        free_solution = np.linalg.solve(a_ff.toarray(), reduced_rhs)
        solution = split.expand(free_solution, bc.values)
        # Check: the full residual on free rows is zero and bc dofs hold values.
        residual = matrix @ solution - rhs
        np.testing.assert_allclose(residual[split.free_dofs], 0.0, atol=1e-9)
        np.testing.assert_allclose(solution[bc.dofs], bc.values)

    def test_lift_matches_reduce(self, small_system):
        matrix, rhs, bc = small_system
        lifted_matrix, lifted_rhs = lift_system(matrix, rhs, bc)
        lifted_solution = np.linalg.solve(lifted_matrix.toarray(), lifted_rhs)

        a_ff, reduced_rhs, split = reduce_system(matrix, rhs, bc)
        reduced_solution = split.expand(
            np.linalg.solve(a_ff.toarray(), reduced_rhs), bc.values
        )
        np.testing.assert_allclose(lifted_solution, reduced_solution, atol=1e-9)

    def test_lifted_rows_are_identity(self, small_system):
        matrix, rhs, bc = small_system
        lifted_matrix, lifted_rhs = lift_system(matrix, rhs, bc)
        dense = lifted_matrix.toarray()
        for dof, value in zip(bc.dofs, bc.values):
            expected_row = np.zeros(12)
            expected_row[dof] = 1.0
            np.testing.assert_allclose(dense[dof], expected_row, atol=1e-12)
            assert lifted_rhs[dof] == pytest.approx(value)

    def test_no_constraints_is_identity_operation(self, small_system):
        matrix, rhs, _ = small_system
        bc = DirichletBC.fixed(np.array([], dtype=int))
        lifted_matrix, lifted_rhs = lift_system(matrix, rhs, bc)
        assert abs(lifted_matrix - matrix).max() < 1e-15
        np.testing.assert_allclose(lifted_rhs, rhs)

    def test_out_of_range_dof_rejected(self, small_system):
        matrix, rhs, _ = small_system
        bad = DirichletBC.fixed(np.array([99]))
        with pytest.raises(ValidationError):
            split_system(matrix, bad)

    def test_expand_block(self, small_system):
        matrix, rhs, bc = small_system
        split = split_system(matrix, bc)
        free_block = np.ones((split.num_free, 2))
        constrained_block = np.zeros((bc.num_constrained, 2))
        expanded = split.expand(free_block, constrained_block)
        assert expanded.shape == (12, 2)
        np.testing.assert_allclose(expanded[bc.dofs], 0.0)
