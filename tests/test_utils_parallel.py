"""Tests for the shared worker-pool helpers."""

import threading

import pytest

from repro.utils.parallel import parallel_map, resolve_jobs
from repro.utils.validation import ValidationError


class TestResolveJobs:
    def test_none_resolves_to_at_least_one(self):
        assert resolve_jobs(None) >= 1

    def test_explicit_value_passes_through(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(1) == 1

    def test_non_positive_rejected(self):
        with pytest.raises(ValidationError):
            resolve_jobs(0)
        with pytest.raises(ValidationError):
            resolve_jobs(-2)


class TestParallelMap:
    def test_preserves_order_serial(self):
        assert parallel_map(lambda x: x * x, range(7), jobs=1) == [
            x * x for x in range(7)
        ]

    def test_preserves_order_threaded(self):
        items = list(range(25))
        assert parallel_map(lambda x: x * x, items, jobs=4) == [x * x for x in items]

    def test_empty_items(self):
        assert parallel_map(lambda x: x, [], jobs=4) == []

    def test_single_item_runs_in_calling_thread(self):
        caller = threading.get_ident()
        assert parallel_map(lambda _: threading.get_ident(), [None], jobs=8) == [caller]

    def test_actually_uses_worker_threads(self):
        caller = threading.get_ident()
        barrier = threading.Barrier(2, timeout=10)

        def task(_):
            barrier.wait()  # forces two workers to be live simultaneously
            return threading.get_ident()

        idents = parallel_map(task, [0, 1], jobs=2)
        assert all(ident != caller for ident in idents)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValidationError):
            parallel_map(lambda x: x, [1, 2], jobs=2, executor="goroutine")

    def test_exceptions_propagate(self):
        def boom(x):
            raise RuntimeError(f"task {x} failed")

        with pytest.raises(RuntimeError, match="task"):
            parallel_map(boom, [1, 2, 3], jobs=2)
