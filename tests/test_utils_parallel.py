"""Tests for the shared worker-pool helpers."""

import os
import threading

import pytest

import repro.utils.parallel as parallel_module
from repro.utils.parallel import available_cpus, parallel_map, resolve_jobs
from repro.utils.validation import ValidationError


class TestResolveJobs:
    def test_none_resolves_to_at_least_one(self):
        assert resolve_jobs(None) >= 1

    def test_explicit_value_passes_through(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(1) == 1

    def test_non_positive_rejected(self):
        with pytest.raises(ValidationError):
            resolve_jobs(0)
        with pytest.raises(ValidationError):
            resolve_jobs(-2)


class TestAvailableCpus:
    """The default worker count must honour cgroup/affinity limits."""

    def test_uses_sched_getaffinity_when_available(self, monkeypatch):
        # An affinity mask smaller than the machine (the CI-container case):
        # the pool must follow the mask, not os.cpu_count().
        monkeypatch.setattr(
            parallel_module.os, "sched_getaffinity", lambda pid: {0, 3}, raising=False
        )
        monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 64)
        assert available_cpus() == 2
        assert resolve_jobs(None) == 2

    def test_falls_back_to_cpu_count_without_affinity(self, monkeypatch):
        # Platforms without sched_getaffinity (e.g. macOS/Windows).
        monkeypatch.delattr(parallel_module.os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 5)
        assert available_cpus() == 5
        assert resolve_jobs(None) == 5

    def test_falls_back_when_affinity_query_fails(self, monkeypatch):
        def boom(pid):
            raise OSError("no affinity support")

        monkeypatch.setattr(parallel_module.os, "sched_getaffinity", boom, raising=False)
        monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 3)
        assert available_cpus() == 3

    def test_at_least_one_cpu(self, monkeypatch):
        monkeypatch.delattr(parallel_module.os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: None)
        assert available_cpus() == 1

    def test_matches_live_affinity_mask(self):
        if not hasattr(os, "sched_getaffinity"):
            pytest.skip("platform has no sched_getaffinity")
        assert available_cpus() == len(os.sched_getaffinity(0))


class TestParallelMap:
    def test_preserves_order_serial(self):
        assert parallel_map(lambda x: x * x, range(7), jobs=1) == [
            x * x for x in range(7)
        ]

    def test_preserves_order_threaded(self):
        items = list(range(25))
        assert parallel_map(lambda x: x * x, items, jobs=4) == [x * x for x in items]

    def test_empty_items(self):
        assert parallel_map(lambda x: x, [], jobs=4) == []

    def test_single_item_runs_in_calling_thread(self):
        caller = threading.get_ident()
        assert parallel_map(lambda _: threading.get_ident(), [None], jobs=8) == [caller]

    def test_actually_uses_worker_threads(self):
        caller = threading.get_ident()
        barrier = threading.Barrier(2, timeout=10)

        def task(_):
            barrier.wait()  # forces two workers to be live simultaneously
            return threading.get_ident()

        idents = parallel_map(task, [0, 1], jobs=2)
        assert all(ident != caller for ident in idents)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValidationError):
            parallel_map(lambda x: x, [1, 2], jobs=2, executor="goroutine")

    def test_exceptions_propagate(self):
        def boom(x):
            raise RuntimeError(f"task {x} failed")

        with pytest.raises(RuntimeError, match="task"):
            parallel_map(boom, [1, 2, 3], jobs=2)
