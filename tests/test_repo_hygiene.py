"""Repository hygiene guards (mirrored by the CI ``lint-invariants`` job)."""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _tracked_files() -> list[str]:
    result = subprocess.run(
        ["git", "ls-files"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=True,
    )
    return result.stdout.splitlines()


class TestNoTrackedBytecode:
    def test_no_pycache_or_pyc_tracked(self):
        offenders = [
            name
            for name in _tracked_files()
            if "__pycache__" in name or name.endswith((".pyc", ".pyo"))
        ]
        assert offenders == [], (
            "compiled bytecode must never be committed: " + ", ".join(offenders)
        )


class TestCommittedBaseline:
    def test_baseline_parses_and_every_entry_is_justified(self):
        path = REPO_ROOT / ".repro-lint-baseline.json"
        document = json.loads(path.read_text())
        assert document["version"] == 1
        for entry in document["findings"]:
            assert str(entry.get("justification", "")).strip(), (
                f"baseline entry without justification: {entry}"
            )

    def test_committed_baseline_loads_through_the_analyzer(self):
        from repro.lint import Baseline

        baseline = Baseline.load(REPO_ROOT / ".repro-lint-baseline.json")
        # The tree currently lints clean, so nothing should be grandfathered;
        # entries added later must survive the justification check above.
        assert isinstance(baseline.entries, list)


class TestSelfHosting:
    def test_lint_runs_clean_on_the_source_tree(self):
        """The analyzer's own contract: src/repro has no active findings."""
        from repro.lint import Baseline, run_lint

        baseline = Baseline.load(REPO_ROOT / ".repro-lint-baseline.json")
        report = run_lint(
            REPO_ROOT, [REPO_ROOT / "src" / "repro"], baseline=baseline
        )
        rendered = "\n".join(f.render() for f in report.findings)
        assert report.ok, f"repro lint found violations:\n{rendered}"
        assert len(report.rules) >= 6
        # Every inline suppression in the tree carries its justification.
        for finding, justification in report.suppressed:
            assert justification.strip(), f"unjustified suppression: {finding}"
        # The committed baseline must not rot: no stale entries.
        assert report.stale_baseline == []
