"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLIInfo:
    def test_info_lists_materials_and_presets(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "silicon" in out and "copper" in out
        assert "coarse" in out
        assert "n = 168" in out

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out


class TestCLISimulate:
    def test_small_simulation(self, capsys):
        code = main(
            [
                "simulate",
                "--rows",
                "2",
                "--pitch",
                "15",
                "--resolution",
                "tiny",
                "--nodes",
                "3",
                "--points-per-block",
                "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "peak von Mises" in out
        assert "2x2 TSVs" in out

    def test_rectangular_array_and_custom_load(self, capsys):
        code = main(
            [
                "simulate",
                "--rows",
                "1",
                "--cols",
                "2",
                "--delta-t",
                "-100",
                "--resolution",
                "tiny",
                "--nodes",
                "3",
                "--points-per-block",
                "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1x2 TSVs" in out
        assert "-100 degC" in out

    def test_invalid_resolution_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--resolution", "galactic"])


class TestCLIParser:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["table99"])


class TestCLISolverBackendAndJobs:
    def test_info_lists_solver_backends(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "solver backends" in out
        assert "direct-splu" in out and "cholmod" in out

    def test_simulate_with_jobs_and_backend(self, capsys):
        code = main(
            [
                "simulate",
                "--rows",
                "2",
                "--resolution",
                "tiny",
                "--nodes",
                "3",
                "--points-per-block",
                "5",
                "--jobs",
                "2",
                "--solver-backend",
                "direct",
            ]
        )
        assert code == 0
        assert "peak von Mises" in capsys.readouterr().out

    def test_simulate_with_optional_backend_falls_back(self, capsys):
        # cholmod/pyamg may be missing from the environment; the CLI must
        # degrade gracefully rather than crash.
        code = main(
            [
                "simulate",
                "--rows",
                "1",
                "--resolution",
                "tiny",
                "--nodes",
                "3",
                "--points-per-block",
                "5",
                "--solver-backend",
                "cholmod",
            ]
        )
        assert code == 0

    def test_unknown_backend_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--solver-backend", "petsc"])

    def test_invalid_jobs_rejected(self):
        from repro.utils.validation import ValidationError

        with pytest.raises(ValidationError):
            main(
                [
                    "simulate",
                    "--rows",
                    "1",
                    "--resolution",
                    "tiny",
                    "--nodes",
                    "3",
                    "--jobs",
                    "0",
                ]
            )
