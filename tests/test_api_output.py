"""End-to-end tests of the spec-driven output pipeline.

``run(spec)`` with an :class:`OutputSpec` must materialize per-case
:class:`ArrayField`\\ s and hotspot reports, persist them through
``RunResult.save()``/``load()``, and export ``.vtk``/``.npz`` files whose
mid-plane slice is bit-identical to the paper's error-metric samples.
"""

import numpy as np
import pytest

from repro.api import (
    GeometrySpec,
    LoadCase,
    MeshSpec,
    OutputSpec,
    RunResult,
    SimulationSpec,
    SpecError,
    SubModelSpec,
    run,
)
from repro.postprocess import ArrayField, read_vtk_rectilinear


def _output_spec(**output_kwargs) -> SimulationSpec:
    defaults = dict(formats=("vtk", "npz"), z_planes=3, top_k=4)
    defaults.update(output_kwargs)
    return SimulationSpec(
        name="output-run",
        geometry=GeometrySpec(pitch=15.0, rows=3),
        mesh=MeshSpec(resolution="tiny", nodes_per_axis=(3, 3, 3), points_per_block=5),
        load_cases=(
            LoadCase(name="cooldown", delta_t=-250.0),
            LoadCase(name="mild", delta_t=-50.0),
        ),
        output=OutputSpec(**defaults),
    )


@pytest.fixture(scope="module")
def output_result():
    return run(_output_spec())


class TestExecutorOutputs:
    def test_every_case_carries_field_and_hotspots(self, output_result):
        assert len(output_result.cases) == 2
        for case in output_result.cases:
            assert case.field_data is not None
            assert case.field_data.shape == (15, 15, 3)
            assert case.hotspots is not None
            assert case.hotspots.num_tsvs == 9

    def test_midplane_bit_identical_to_case_samples(self, output_result):
        for case in output_result.cases:
            np.testing.assert_array_equal(
                case.field_data.midplane_von_mises_flat(),
                case.simulation.von_mises_midplane_flat(5),
            )
            # ... and to the persisted mid-plane von Mises field.
            np.testing.assert_array_equal(
                case.field_data.midplane_von_mises_blocks(), case.von_mises
            )

    def test_no_output_section_keeps_cases_lean(self):
        spec = SimulationSpec(
            geometry=GeometrySpec(pitch=15.0, rows=2),
            mesh=MeshSpec(resolution="tiny", nodes_per_axis=(3, 3, 3), points_per_block=4),
        )
        result = run(spec)
        assert result.cases[0].field_data is None
        assert result.cases[0].hotspots is None

    def test_output_points_per_block_override(self):
        spec = _output_spec(points_per_block=3, hotspots=False)
        result = run(spec)
        case = result.cases[0]
        assert case.field_data.shape == (9, 9, 3)
        assert case.hotspots is None
        # The mid-plane von Mises record keeps the mesh-spec density.
        assert case.von_mises.shape == (3, 3, 5, 5)

    def test_manifest_embeds_field_and_hotspot_summaries(self, output_result):
        entry = output_result.manifest()["cases"][0]
        assert entry["field"]["shape"] == [15, 15, 3]
        assert entry["field"]["z_planes"] == 3
        assert entry["hotspots"]["threshold"] > 0
        assert len(entry["hotspots"]["hotspots"]) == 9


class TestPersistenceAndExports:
    def test_save_writes_vtk_and_npz_exports(self, output_result, tmp_path):
        directory = output_result.save(tmp_path / "results")
        fields_dir = directory / "fields"
        for index, case in enumerate(output_result.cases):
            stem = f"case{index}_{case.name}"
            assert (fields_dir / f"{stem}.vtk").exists()
            assert (fields_dir / f"{stem}.npz").exists()
        assert (fields_dir / "hotspots.json").exists()

    def test_exported_vtk_midplane_bit_identical(self, output_result, tmp_path):
        # The acceptance check: both export formats reproduce the paper's
        # mid-plane samples bit for bit.
        directory = output_result.save(tmp_path / "results")
        case = output_result.cases[0]
        reference = case.simulation.von_mises_midplane_flat(5)

        bundle = ArrayField.load(directory / "fields" / "case0_cooldown.npz")
        np.testing.assert_array_equal(bundle.midplane_von_mises_flat(), reference)

        parsed = read_vtk_rectilinear(directory / "fields" / "case0_cooldown.vtk")
        vm = parsed["point_data"]["von_mises"]
        np.testing.assert_array_equal(vm, case.field_data.von_mises)
        restored = ArrayField(
            x=parsed["coordinates"][0],
            y=parsed["coordinates"][1],
            z=parsed["coordinates"][2],
            displacement=parsed["point_data"]["displacement"],
            stress=np.stack(
                [
                    parsed["point_data"][f"stress_{c}"]
                    for c in ("xx", "yy", "zz", "yz", "xz", "xy")
                ],
                axis=-1,
            ),
            von_mises=vm,
            tsv_mask=case.field_data.tsv_mask,
            delta_t=case.delta_t,
            points_per_block=5,
            pitch=15.0,
        )
        np.testing.assert_array_equal(restored.midplane_von_mises_flat(), reference)

    def test_load_round_trips_fields_and_manifest(self, output_result, tmp_path):
        directory = output_result.save(tmp_path / "results")
        reloaded = RunResult.load(directory)
        assert reloaded.manifest() == output_result.manifest()
        for original, restored in zip(output_result.cases, reloaded.cases):
            assert restored.field_data is not None
            np.testing.assert_array_equal(
                restored.field_data.von_mises, original.field_data.von_mises
            )
            np.testing.assert_array_equal(
                restored.field_data.stress, original.field_data.stress
            )
            assert restored.hotspots is not None
            assert restored.hotspots.hotspots == original.hotspots.hotspots
            assert restored.simulation is None

    def test_npz_persisted_even_when_only_vtk_requested(self, tmp_path):
        # .npz is the persistence format save()/load() rely on; a vtk-only
        # OutputSpec still round-trips.
        result = run(_output_spec(formats=("vtk",)))
        directory = result.save(tmp_path / "results")
        assert (directory / "fields" / "case0_cooldown.npz").exists()
        reloaded = RunResult.load(directory)
        assert reloaded.cases[0].field_data is not None
        assert reloaded.manifest() == result.manifest()

    def test_export_fields_respects_format_selection(self, output_result, tmp_path):
        written = output_result.export_fields(tmp_path / "only-vtk", formats=("vtk",))
        names = sorted(path.name for path in written)
        assert all(not name.endswith(".npz") for name in names)
        assert sum(name.endswith(".vtk") for name in names) == 2
        assert "hotspots.json" in names

    def test_export_fields_rejects_unknown_format(self, output_result, tmp_path):
        with pytest.raises(SpecError, match="stl"):
            output_result.export_fields(tmp_path, formats=("stl",))

    def test_export_fields_noop_without_fields(self, tmp_path):
        spec = SimulationSpec(
            geometry=GeometrySpec(pitch=15.0, rows=2),
            mesh=MeshSpec(resolution="tiny", nodes_per_axis=(3, 3, 3), points_per_block=4),
        )
        result = run(spec)
        assert result.export_fields(tmp_path / "empty") == []
        assert not (tmp_path / "empty").exists()


class TestSubmodelOutputs:
    def test_field_restricted_to_tsv_region(self):
        spec = SimulationSpec(
            name="submodel-output",
            geometry=GeometrySpec(pitch=15.0, rows=2),
            mesh=MeshSpec(resolution="tiny", nodes_per_axis=(3, 3, 3), points_per_block=4),
            load_cases=(LoadCase(name="centre", delta_t=-250.0, location="loc1"),),
            submodel=SubModelSpec(dummy_ring_width=1, coarse_inplane_cells=10),
            output=OutputSpec(formats=("npz",), z_planes=3),
        )
        result = run(spec)
        case = result.cases[0]
        # The dummy ring is excluded: 2x2 TSV blocks, all marked as TSV.
        assert case.field_data.block_rows == case.field_data.block_cols == 2
        assert case.field_data.tsv_mask.all()
        assert case.hotspots.num_tsvs == 4
        np.testing.assert_array_equal(
            case.field_data.midplane_von_mises_blocks(), case.von_mises
        )
