"""Unit tests for the structured hexahedral mesh."""

import numpy as np
import pytest

from repro.mesh.structured import BOUNDARY_FACES, StructuredHexMesh
from repro.utils.validation import ValidationError


@pytest.fixture
def small_mesh():
    """A 3x2x1-cell mesh with two material tags."""
    xs = np.array([0.0, 1.0, 2.5, 4.0])
    ys = np.array([0.0, 2.0, 3.0])
    zs = np.array([0.0, 5.0])
    tags = np.array([0, 1, 0, 0, 1, 0])
    return StructuredHexMesh(
        xs=xs, ys=ys, zs=zs, element_tags=tags, tag_roles={0: "silicon", 1: "copper"}
    )


class TestMeshSizes:
    def test_counts(self, small_mesh):
        assert small_mesh.cells == (3, 2, 1)
        assert small_mesh.num_elements == 6
        assert small_mesh.num_nodes == 4 * 3 * 2
        assert small_mesh.num_dofs == 72

    def test_bounding_box(self, small_mesh):
        assert small_mesh.bounding_box == ((0.0, 4.0), (0.0, 3.0), (0.0, 5.0))

    def test_volume(self, small_mesh):
        assert small_mesh.total_volume() == pytest.approx(4.0 * 3.0 * 5.0)


class TestMeshValidation:
    def test_non_monotone_coordinates_rejected(self):
        with pytest.raises(ValidationError):
            StructuredHexMesh(
                xs=np.array([0.0, 2.0, 1.0]),
                ys=np.array([0.0, 1.0]),
                zs=np.array([0.0, 1.0]),
                element_tags=np.zeros(2, dtype=int),
                tag_roles={0: "silicon"},
            )

    def test_wrong_tag_count_rejected(self):
        with pytest.raises(ValidationError):
            StructuredHexMesh(
                xs=np.array([0.0, 1.0]),
                ys=np.array([0.0, 1.0]),
                zs=np.array([0.0, 1.0]),
                element_tags=np.zeros(5, dtype=int),
                tag_roles={0: "silicon"},
            )

    def test_unmapped_tag_rejected(self):
        with pytest.raises(ValidationError):
            StructuredHexMesh(
                xs=np.array([0.0, 1.0]),
                ys=np.array([0.0, 1.0]),
                zs=np.array([0.0, 1.0]),
                element_tags=np.array([7]),
                tag_roles={0: "silicon"},
            )


class TestConnectivity:
    def test_node_coordinates_ordering(self, small_mesh):
        coords = small_mesh.node_coordinates()
        assert coords.shape == (24, 3)
        # x varies fastest
        np.testing.assert_allclose(coords[0], [0.0, 0.0, 0.0])
        np.testing.assert_allclose(coords[1], [1.0, 0.0, 0.0])
        np.testing.assert_allclose(coords[4], [0.0, 2.0, 0.0])
        np.testing.assert_allclose(coords[12], [0.0, 0.0, 5.0])

    def test_connectivity_shape_and_first_element(self, small_mesh):
        conn = small_mesh.element_connectivity()
        assert conn.shape == (6, 8)
        # First element corners: nodes (0,0,0),(1,0,0),(1,1,0),(0,1,0) + top plane
        np.testing.assert_array_equal(conn[0], [0, 1, 5, 4, 12, 13, 17, 16])

    def test_element_sizes_and_centroids(self, small_mesh):
        sizes = small_mesh.element_sizes()
        centroids = small_mesh.element_centroids()
        assert sizes.shape == (6, 3)
        np.testing.assert_allclose(sizes[0], [1.0, 2.0, 5.0])
        np.testing.assert_allclose(sizes[1], [1.5, 2.0, 5.0])
        np.testing.assert_allclose(centroids[0], [0.5, 1.0, 2.5])

    def test_element_volumes_sum(self, small_mesh):
        assert small_mesh.element_volumes().sum() == pytest.approx(60.0)

    def test_element_roles(self, small_mesh):
        roles = small_mesh.element_roles()
        assert roles[0] == "silicon"
        assert roles[1] == "copper"

    def test_element_grid_indices_roundtrip(self, small_mesh):
        ids = np.arange(small_mesh.num_elements)
        grid = small_mesh.element_grid_indices(ids)
        recovered = small_mesh.element_index(grid[:, 0], grid[:, 1], grid[:, 2])
        np.testing.assert_array_equal(recovered, ids)


class TestBoundaryQueries:
    def test_face_node_counts(self, small_mesh):
        nnx, nny, nnz = small_mesh.node_grid_shape
        assert small_mesh.boundary_node_ids("x-").size == nny * nnz
        assert small_mesh.boundary_node_ids("z+").size == nnx * nny

    def test_all_boundary_nodes(self, small_mesh):
        # 4x3x2 grid: every node is on the boundary (only 2 planes in z).
        assert small_mesh.all_boundary_node_ids().size == small_mesh.num_nodes

    def test_invalid_face_rejected(self, small_mesh):
        with pytest.raises(ValueError):
            small_mesh.boundary_node_ids("w+")

    def test_nodes_on_plane(self, small_mesh):
        nodes = small_mesh.nodes_on_plane(axis=0, value=2.5)
        coords = small_mesh.node_coordinates()[nodes]
        np.testing.assert_allclose(coords[:, 0], 2.5)
        assert small_mesh.nodes_on_plane(axis=0, value=99.0).size == 0

    def test_dof_ids(self, small_mesh):
        dofs = small_mesh.dof_ids(np.array([2]), components=(0, 2))
        np.testing.assert_array_equal(dofs, [6, 8])

    def test_boundary_faces_constant(self):
        assert set(BOUNDARY_FACES) == {"x-", "x+", "y-", "y+", "z-", "z+"}


class TestPointLocation:
    def test_locate_interior_point(self, small_mesh):
        element_ids, local = small_mesh.locate_points(np.array([[0.5, 1.0, 2.5]]))
        assert element_ids[0] == 0
        np.testing.assert_allclose(local[0], [0.0, 0.0, 0.0], atol=1e-12)

    def test_locate_point_in_second_element(self, small_mesh):
        element_ids, local = small_mesh.locate_points(np.array([[2.4, 0.1, 0.1]]))
        assert element_ids[0] == 1

    def test_points_outside_clamped(self, small_mesh):
        element_ids, local = small_mesh.locate_points(np.array([[-1.0, -1.0, -1.0]]))
        assert element_ids[0] == 0
        assert np.all(local[0] == -1.0)

    def test_contains_points(self, small_mesh):
        mask = small_mesh.contains_points(np.array([[1.0, 1.0, 1.0], [10.0, 0.0, 0.0]]))
        assert mask.tolist() == [True, False]

    def test_invalid_points_shape(self, small_mesh):
        with pytest.raises(ValidationError):
            small_mesh.locate_points(np.zeros((3, 2)))


class TestTransforms:
    def test_translation(self, small_mesh):
        moved = small_mesh.translated((10.0, 20.0, 30.0))
        assert moved.bounding_box[0] == (10.0, 14.0)
        assert moved.bounding_box[2] == (30.0, 35.0)
        # original unchanged
        assert small_mesh.bounding_box[0] == (0.0, 4.0)

    def test_summary_mentions_sizes(self, small_mesh):
        text = small_mesh.summary()
        assert "3x2x1" in text and "dofs" in text
