"""Unit tests for the hex8 element kernels."""

import numpy as np
import pytest

from repro.fem.element import (
    element_stiffness,
    element_thermal_load,
    gauss_points_2x2x2,
    shape_function_gradients,
    shape_functions,
    strain_displacement_matrix,
)
from repro.materials.material import IsotropicMaterial


@pytest.fixture
def material():
    return IsotropicMaterial("test", young_modulus=100.0e3, poisson_ratio=0.3, cte=2e-6)


class TestShapeFunctions:
    def test_partition_of_unity(self):
        points = np.random.default_rng(0).uniform(-1, 1, size=(20, 3))
        values = shape_functions(points)
        np.testing.assert_allclose(values.sum(axis=1), 1.0, atol=1e-13)

    def test_kronecker_delta_at_corners(self):
        from repro.fem.element import HEX8_LOCAL_CORNERS

        values = shape_functions(HEX8_LOCAL_CORNERS)
        np.testing.assert_allclose(values, np.eye(8), atol=1e-13)

    def test_center_value(self):
        values = shape_functions(np.array([[0.0, 0.0, 0.0]]))
        np.testing.assert_allclose(values, 0.125)


class TestShapeFunctionGradients:
    def test_gradients_sum_to_zero(self):
        points = np.random.default_rng(1).uniform(-1, 1, size=(10, 3))
        grads = shape_function_gradients(points, np.array([2.0, 3.0, 4.0]))
        np.testing.assert_allclose(grads.sum(axis=1), 0.0, atol=1e-13)

    def test_linear_field_reproduced_exactly(self):
        # u(x) = a + b x + c y + d z must have exact gradient at any point.
        size = np.array([2.0, 3.0, 5.0])
        corners_local = np.array(
            [
                (-1, -1, -1), (1, -1, -1), (1, 1, -1), (-1, 1, -1),
                (-1, -1, 1), (1, -1, 1), (1, 1, 1), (-1, 1, 1),
            ],
            dtype=float,
        )
        corners_physical = (corners_local + 1.0) / 2.0 * size
        coeffs = np.array([0.3, -1.2, 2.5])
        nodal_values = corners_physical @ coeffs + 4.0
        points = np.random.default_rng(2).uniform(-1, 1, size=(15, 3))
        grads = shape_function_gradients(points, size)
        # gradient_field has shape (points, 3): sum_a dN_a/dx_c * u_a
        gradient_field = np.einsum("pac,a->pc", grads, nodal_values)
        np.testing.assert_allclose(gradient_field, np.tile(coeffs, (15, 1)), atol=1e-12)

    def test_per_point_sizes(self):
        points = np.zeros((2, 3))
        sizes = np.array([[1.0, 1.0, 1.0], [2.0, 2.0, 2.0]])
        grads = shape_function_gradients(points, sizes)
        np.testing.assert_allclose(grads[0], 2.0 * grads[1])


class TestGaussQuadrature:
    def test_points_and_weights(self):
        points, weights = gauss_points_2x2x2()
        assert points.shape == (8, 3)
        np.testing.assert_allclose(weights, 1.0)
        np.testing.assert_allclose(np.abs(points), 1.0 / np.sqrt(3.0))

    def test_integrates_quadratic_exactly(self):
        # 2-point Gauss integrates x^2 exactly on [-1, 1]: integral = 2/3.
        points, weights = gauss_points_2x2x2()
        value = np.sum(weights * points[:, 0] ** 2) / 4.0  # /4 = integral over eta, zeta
        assert value == pytest.approx(2.0 / 3.0)


class TestStrainDisplacementMatrix:
    def test_shape(self):
        grads = shape_function_gradients(np.zeros((3, 3)), np.ones(3))
        b = strain_displacement_matrix(grads)
        assert b.shape == (3, 6, 24)

    def test_rigid_translation_gives_zero_strain(self):
        grads = shape_function_gradients(np.zeros((1, 3)), np.array([2.0, 2.0, 2.0]))
        b = strain_displacement_matrix(grads)[0]
        translation = np.tile([1.0, -2.0, 3.0], 8)
        np.testing.assert_allclose(b @ translation, 0.0, atol=1e-12)

    def test_uniaxial_stretch_strain(self):
        size = np.array([2.0, 2.0, 2.0])
        grads = shape_function_gradients(np.zeros((1, 3)), size)
        b = strain_displacement_matrix(grads)[0]
        from repro.fem.element import HEX8_LOCAL_CORNERS

        corners_physical = (HEX8_LOCAL_CORNERS + 1.0) / 2.0 * size
        # u_x = 0.1 * x -> eps_xx = 0.1, all other strain components zero
        displacement = np.zeros(24)
        displacement[0::3] = 0.1 * corners_physical[:, 0]
        strain = b @ displacement
        np.testing.assert_allclose(strain, [0.1, 0, 0, 0, 0, 0], atol=1e-12)


class TestElementStiffness:
    def test_symmetry_and_positive_semidefinite(self, material):
        ke = element_stiffness((2.0, 3.0, 4.0), material.elasticity_matrix())
        np.testing.assert_allclose(ke, ke.T, atol=1e-9)
        eigenvalues = np.linalg.eigvalsh(ke)
        assert np.all(eigenvalues > -1e-6 * abs(eigenvalues).max())

    def test_six_rigid_body_modes(self, material):
        ke = element_stiffness((1.0, 1.0, 1.0), material.elasticity_matrix())
        eigenvalues = np.sort(np.linalg.eigvalsh(ke))
        # 3 translations + 3 rotations -> 6 (near) zero eigenvalues
        assert np.all(np.abs(eigenvalues[:6]) < 1e-6 * eigenvalues[-1])
        assert eigenvalues[6] > 1e-6 * eigenvalues[-1]

    def test_scaling_with_size(self, material):
        # For uniform scaling of a 3D element, K scales linearly with the size.
        ke1 = element_stiffness((1.0, 1.0, 1.0), material.elasticity_matrix())
        ke2 = element_stiffness((2.0, 2.0, 2.0), material.elasticity_matrix())
        np.testing.assert_allclose(ke2, 2.0 * ke1, rtol=1e-10)


class TestElementThermalLoad:
    def test_self_equilibrated(self, material):
        fe = element_thermal_load(
            (2.0, 1.0, 3.0), material.elasticity_matrix(), material.thermal_strain(1.0)
        )
        # The resultant force in each direction must vanish.
        np.testing.assert_allclose(fe[0::3].sum(), 0.0, atol=1e-12)
        np.testing.assert_allclose(fe[1::3].sum(), 0.0, atol=1e-12)
        np.testing.assert_allclose(fe[2::3].sum(), 0.0, atol=1e-12)

    def test_zero_for_zero_cte(self):
        material = IsotropicMaterial("rigid", 1.0e5, 0.3, 0.0)
        fe = element_thermal_load(
            (1.0, 1.0, 1.0), material.elasticity_matrix(), material.thermal_strain(1.0)
        )
        np.testing.assert_allclose(fe, 0.0)

    def test_free_expansion_consistency(self, material):
        """K @ u_free_expansion == f_thermal for a single unconstrained element."""
        size = (2.0, 3.0, 4.0)
        d = material.elasticity_matrix()
        ke = element_stiffness(size, d)
        delta_t = 1.0
        fe = element_thermal_load(size, d, material.thermal_strain(delta_t))
        from repro.fem.element import HEX8_LOCAL_CORNERS

        corners = (HEX8_LOCAL_CORNERS + 1.0) / 2.0 * np.asarray(size)
        expansion = material.cte * delta_t * corners
        displacement = expansion.reshape(-1)
        np.testing.assert_allclose(ke @ displacement, fe, atol=1e-8 * np.abs(fe).max())
