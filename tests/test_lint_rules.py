"""Fixture-based positive/negative tests for every repro.lint rule.

Each test copies fixture modules from ``tests/lint_fixtures/`` into a
temporary project tree laid out like the real repository (the rules scope
themselves by path suffix) and runs one rule over it.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.lint import run_lint
from tests.lint_fixtures import FIXTURES_DIR


def _place(root: Path, fixture: str, rel: str) -> Path:
    destination = root / rel
    destination.parent.mkdir(parents=True, exist_ok=True)
    shutil.copyfile(FIXTURES_DIR / fixture, destination)
    return destination


def _rules_of(report) -> list[tuple[str, str, int]]:
    return [(f.rule, f.path, f.line) for f in report.findings]


class TestREP001AtomicWrite:
    def test_positive_every_write_shape_is_flagged(self, tmp_path):
        _place(tmp_path, "rep001_bad.py", "src/repro/reporting.py")
        report = run_lint(tmp_path, rule_ids=["REP001"])
        findings = [f for f in report.findings if f.rule == "REP001"]
        messages = "\n".join(f.message for f in findings)
        # One finding per durable-write shape in the fixture.
        assert len(findings) == 7, messages
        assert "open(..., 'w')" in messages
        assert "json.dump" in messages
        assert "np.savez" in messages
        assert "np.savetxt" in messages
        assert "write_text" in messages
        assert "write_bytes" in messages

    def test_negative_reads_and_atomic_helpers_are_clean(self, tmp_path):
        _place(tmp_path, "rep001_good.py", "src/repro/reporting.py")
        report = run_lint(tmp_path, rule_ids=["REP001"])
        assert _rules_of(report) == []
        # The export-stream write is present but suppressed with a reason.
        assert len(report.suppressed) == 1
        assert "export stream" in report.suppressed[0][1]

    def test_serialization_module_is_exempt(self, tmp_path):
        _place(tmp_path, "rep001_bad.py", "src/repro/utils/serialization.py")
        report = run_lint(tmp_path, rule_ids=["REP001"])
        assert _rules_of(report) == []


class TestREP002FaultSites:
    def test_positive_commit_without_site(self, tmp_path):
        _place(
            tmp_path, "rep002_serialization_bad.py", "src/repro/utils/serialization.py"
        )
        report = run_lint(tmp_path, rule_ids=["REP002"])
        assert [f.rule for f in report.findings] == ["REP002"]
        assert "commit" in report.findings[0].message

    def test_negative_commit_with_site_parameter(self, tmp_path):
        _place(
            tmp_path, "rep002_serialization_good.py", "src/repro/utils/serialization.py"
        )
        report = run_lint(tmp_path, rule_ids=["REP002"])
        assert _rules_of(report) == []

    def test_chaos_glob_must_match_a_registered_site(self, tmp_path):
        _place(
            tmp_path, "rep002_serialization_good.py", "src/repro/utils/serialization.py"
        )
        _place(tmp_path, "rep002_chaos_bad.py", "src/repro/chaos.py")
        report = run_lint(tmp_path, rule_ids=["REP002"])
        findings = report.findings
        assert len(findings) == 1
        assert "serialisation.dump_jsonn" in findings[0].message
        assert findings[0].path.endswith("chaos.py")


class TestREP003BackendPurity:
    def test_positive_raw_numpy_in_bm_kernel(self, tmp_path):
        _place(tmp_path, "rep003_bad.py", "src/repro/fem/element.py")
        report = run_lint(tmp_path, rule_ids=["REP003"])
        assert len(report.findings) == 1
        assert "np.sqrt" in report.findings[0].message

    def test_negative_seams_and_host_helpers(self, tmp_path):
        _place(tmp_path, "rep003_good.py", "src/repro/fem/element.py")
        report = run_lint(tmp_path, rule_ids=["REP003"])
        assert _rules_of(report) == []

    def test_out_of_scope_modules_are_ignored(self, tmp_path):
        _place(tmp_path, "rep003_bad.py", "src/repro/analysis/extras.py")
        report = run_lint(tmp_path, rule_ids=["REP003"])
        assert _rules_of(report) == []


class TestREP004ErrorTaxonomy:
    def test_positive_unregistered_class_and_bare_raise(self, tmp_path):
        _place(tmp_path, "rep004_errors.py", "src/repro/errors.py")
        _place(tmp_path, "rep004_service_bad.py", "src/repro/service/handlers.py")
        report = run_lint(tmp_path, rule_ids=["REP004"])
        by_path = {f.path.rpartition("/")[2]: f for f in report.findings}
        assert len(report.findings) == 2
        assert "OrphanError" in by_path["errors.py"].message
        assert "RuntimeError" in by_path["handlers.py"].message

    def test_negative_taxonomy_raises_and_reraises(self, tmp_path):
        _place(tmp_path, "rep004_errors.py", "src/repro/errors.py")
        _place(tmp_path, "rep004_service_good.py", "src/repro/service/handlers.py")
        report = run_lint(tmp_path, rule_ids=["REP004"])
        findings = [f for f in report.findings if f.path.endswith("handlers.py")]
        assert findings == []

    def test_raises_outside_service_scope_are_ignored(self, tmp_path):
        _place(tmp_path, "rep004_errors.py", "src/repro/errors.py")
        _place(tmp_path, "rep004_service_bad.py", "src/repro/analysis/helpers.py")
        report = run_lint(tmp_path, rule_ids=["REP004"])
        findings = [f for f in report.findings if f.path.endswith("helpers.py")]
        assert findings == []


class TestREP005LockDiscipline:
    def test_positive_all_three_failure_modes(self, tmp_path):
        _place(tmp_path, "rep005_bad.py", "src/repro/service/pool.py")
        report = run_lint(tmp_path, rule_ids=["REP005"])
        messages = [f.message for f in report.findings]
        assert any("read without it in snapshot" in m for m in messages), messages
        assert any("mutated without it in drop" in m for m in messages), messages
        assert any("unprotected counter update Counter.misses" in m for m in messages)
        assert any("inconsistent lock order in Deadlocker" in m for m in messages)

    def test_negative_consistent_locking(self, tmp_path):
        _place(tmp_path, "rep005_good.py", "src/repro/service/pool.py")
        report = run_lint(tmp_path, rule_ids=["REP005"])
        assert _rules_of(report) == []

    def test_out_of_scope_modules_are_ignored(self, tmp_path):
        _place(tmp_path, "rep005_bad.py", "src/repro/analysis/counters.py")
        report = run_lint(tmp_path, rule_ids=["REP005"])
        assert _rules_of(report) == []


class TestREP006SchemaVersion:
    def test_positive_version_without_branch_or_test(self, tmp_path):
        _place(tmp_path, "rep006_bad.py", "src/repro/api/layout.py")
        report = run_lint(tmp_path, rule_ids=["REP006"])
        messages = [f.message for f in report.findings]
        assert len(messages) == 2
        assert any("no SUPPORTED_*_VERSIONS migration branch" in m for m in messages)
        assert any("test_*migration*" in m for m in messages)

    def test_negative_branch_plus_migration_test(self, tmp_path):
        _place(tmp_path, "rep006_good.py", "src/repro/api/layout.py")
        tests_dir = tmp_path / "tests"
        tests_dir.mkdir()
        (tests_dir / "test_layout.py").write_text(
            "from repro.api.layout import SCHEMA_VERSION\n\n\n"
            "def test_layout_v1_migration():\n"
            "    assert SCHEMA_VERSION == 2\n"
        )
        report = run_lint(tmp_path, rule_ids=["REP006"])
        assert _rules_of(report) == []

    def test_version_one_is_exempt(self, tmp_path):
        module = tmp_path / "src/repro/api/layout.py"
        module.parent.mkdir(parents=True)
        module.write_text('"""v1."""\n\nFIELD_SCHEMA_VERSION = 1\n')
        report = run_lint(tmp_path, rule_ids=["REP006"])
        assert _rules_of(report) == []


class TestRuleMetadata:
    @pytest.mark.parametrize(
        "rule_id",
        ["REP001", "REP002", "REP003", "REP004", "REP005", "REP006"],
    )
    def test_registered_with_severity_and_description(self, rule_id):
        from repro.lint import RULE_REGISTRY, all_rules

        assert len(all_rules()) >= 6
        rule = RULE_REGISTRY[rule_id]()
        assert rule.severity in ("error", "warning")
        assert rule.description
        assert rule.name
