"""Unit tests for the experiment configurations."""

import pytest

from repro.experiments.config import ConvergenceConfig, Scenario1Config, Scenario2Config
from repro.utils.validation import ValidationError


class TestScenario1Config:
    def test_small_default(self):
        config = Scenario1Config.small()
        assert config.pitches == (15.0, 10.0)
        assert all(size >= 1 for size in config.array_sizes)
        assert config.delta_t == -250.0

    def test_paper_matches_paper_parameters(self):
        config = Scenario1Config.paper()
        assert config.array_sizes == (10, 20, 30, 40, 50)
        assert config.points_per_block == 100
        assert config.mesh_resolution == "paper"

    def test_medium_is_larger_than_small(self):
        assert max(Scenario1Config.medium().array_sizes) > max(
            Scenario1Config.small().array_sizes
        )

    def test_invalid_array_size(self):
        with pytest.raises(ValidationError):
            Scenario1Config(array_sizes=(0,))


class TestScenario2Config:
    def test_small_default_locations(self):
        config = Scenario2Config.small()
        assert config.locations == ("loc1", "loc2", "loc3", "loc4", "loc5")
        assert config.dummy_ring_width >= 1

    def test_paper_config(self):
        config = Scenario2Config.paper()
        assert config.array_rows == 15
        assert config.dummy_ring_width == 2
        assert config.points_per_block == 100


class TestConvergenceConfig:
    def test_node_sweep_matches_paper_table3(self):
        config = ConvergenceConfig.small()
        assert config.node_counts[0] == (2, 2, 2)
        assert config.node_counts[-1] == (6, 6, 6)
        assert len(config.node_counts) == 5

    def test_paper_config_uses_20x20(self):
        assert ConvergenceConfig.paper().array_size == 20
