"""Tests for the job service: store, worker pool, and the HTTP server/client.

The store and pool are exercised with an injected ``run_fn`` double (fast,
deterministic failure modes); the end-to-end tests run a real in-process
:class:`JobServer` on an ephemeral port against the smallest solvable spec
and check the acceptance criteria: bit-identical results vs ``repro.api.run``,
dedup of concurrent identical submissions, cancel, restart-resume, and the
error-envelope mapping.
"""

import json
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.api import SimulationSpec, run
from repro.errors import (
    JobCancelledError,
    JobNotFoundError,
    JobQueueFullError,
    JobStateError,
    SpecConflictError,
    SpecError,
)
from repro.service import JobServer, JobStore, ServiceClient, WorkerPool

TINY_SPEC = {
    "name": "tiny-service",
    "geometry": {"rows": 2, "pitch": 15.0},
    "mesh": {"resolution": "tiny", "nodes_per_axis": [3, 3, 3], "points_per_block": 8},
    "load_cases": [{"name": "cooldown", "delta_t": -100.0}],
}

OTHER_SPEC = {**TINY_SPEC, "name": "tiny-service-b", "geometry": {"rows": 1}}


def wait_until(predicate, timeout=30.0, interval=0.02):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached within timeout")


class FakeResult:
    """Stand-in for RunResult: enough surface for the pool's summary + save."""

    cases = ()
    num_case_groups = 1
    backends_used = ["fake"]
    array_backend = "numpy"
    local_stage_seconds = 0.0
    total_global_stage_seconds = 0.0
    rom_cache_stats = None

    def save(self, directory):
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "manifest.json").write_text("{}\n")


class TestJobStore:
    def test_submit_creates_and_persists(self, tmp_path):
        store = JobStore(tmp_path)
        job, created = store.submit(TINY_SPEC)
        assert created
        assert job.state == "queued"
        assert job.progress == {"done_cases": 0, "total_cases": 1}
        assert (tmp_path / "jobs" / f"{job.id}.json").exists()
        # The stored spec is normalized (defaults filled in).
        assert job.spec == SimulationSpec.from_dict(TINY_SPEC).to_dict()

    def test_duplicate_submission_attaches(self, tmp_path):
        store = JobStore(tmp_path)
        first, created_first = store.submit(TINY_SPEC)
        second, created_second = store.submit(TINY_SPEC)
        assert created_first and not created_second
        assert second.id == first.id
        assert second.submissions == 2
        assert store.dedup_hits == 1

    def test_failed_jobs_do_not_block_resubmission(self, tmp_path):
        store = JobStore(tmp_path)
        job, _ = store.submit(TINY_SPEC)
        assert store.mark_running(job.id) is not None
        store.mark_failed(job, RuntimeError("boom"))
        retry, created = store.submit(TINY_SPEC)
        assert created
        assert retry.id != job.id

    def test_spec_conflict_detected(self, tmp_path):
        store = JobStore(tmp_path)
        job, _ = store.submit(TINY_SPEC)
        job.spec = {**job.spec, "name": "tampered"}  # same hash, other document
        with pytest.raises(SpecConflictError):
            store.submit(TINY_SPEC)

    def test_queue_bound_rejects_new_but_not_duplicates(self, tmp_path):
        store = JobStore(tmp_path)
        store.submit(TINY_SPEC, max_queued=1)
        with pytest.raises(JobQueueFullError) as excinfo:
            store.submit(OTHER_SPEC, max_queued=1)
        assert excinfo.value.http_status == 429
        _, created = store.submit(TINY_SPEC, max_queued=1)  # dedup is exempt
        assert not created

    def test_cancel_queued_and_terminal(self, tmp_path):
        store = JobStore(tmp_path)
        job, _ = store.submit(TINY_SPEC)
        assert store.request_cancel(job.id).state == "cancelled"
        with pytest.raises(JobStateError):
            store.request_cancel(job.id)
        with pytest.raises(JobNotFoundError):
            store.request_cancel("nope")

    def test_reload_from_disk(self, tmp_path):
        store = JobStore(tmp_path)
        job, _ = store.submit(TINY_SPEC)
        reloaded = JobStore(tmp_path)
        assert reloaded.get(job.id).spec_hash == job.spec_hash

    def test_recover_requeues_running_jobs(self, tmp_path):
        store = JobStore(tmp_path)
        job, _ = store.submit(TINY_SPEC)
        store.mark_running(job.id)
        # Simulate a crash: a fresh store sees the job still "running".
        recovered = JobStore(tmp_path)
        queued = recovered.recover()
        assert [entry.id for entry in queued] == [job.id]
        assert recovered.get(job.id).state == "queued"


class TestWorkerPool:
    def _drain(self, store, run_fn, job, **pool_kwargs):
        pool = WorkerPool(store, workers=1, run_fn=run_fn, **pool_kwargs)
        pool.start()
        try:
            wait_until(lambda: store.get(job.id).is_terminal)
        finally:
            pool.shutdown()
        return store.get(job.id)

    def test_executes_job_once(self, tmp_path):
        store = JobStore(tmp_path)
        calls = []

        def run_fn(spec, rom_cache=None, progress=None):
            calls.append(spec.name)
            return FakeResult()

        job, _ = store.submit(TINY_SPEC)
        done = self._drain(store, run_fn, job)
        assert done.state == "done"
        assert done.executions == 1
        assert calls == ["tiny-service"]
        assert done.result_summary["backends_used"] == ["fake"]
        assert (store.result_dir(done) / "manifest.json").exists()

    def test_transient_failure_retries_then_succeeds(self, tmp_path):
        store = JobStore(tmp_path)
        attempts = []

        def run_fn(spec, rom_cache=None, progress=None):
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("flaky filesystem")
            return FakeResult()

        job, _ = store.submit(TINY_SPEC, max_attempts=2)
        done = self._drain(store, run_fn, job, retry_backoff_seconds=0.01)
        assert done.state == "done"
        assert done.attempts == 2

    def test_transient_failure_exhausts_attempts(self, tmp_path):
        store = JobStore(tmp_path)

        def run_fn(spec, rom_cache=None, progress=None):
            raise RuntimeError("always broken")

        job, _ = store.submit(TINY_SPEC, max_attempts=2)
        failed = self._drain(store, run_fn, job, retry_backoff_seconds=0.01)
        assert failed.state == "failed"
        assert failed.attempts == 2
        assert failed.error["code"] == "internal_error"

    def test_taxonomy_error_fails_permanently(self, tmp_path):
        store = JobStore(tmp_path)

        def run_fn(spec, rom_cache=None, progress=None):
            raise SpecError("spec.rows: impossible geometry")

        job, _ = store.submit(TINY_SPEC, max_attempts=3)
        failed = self._drain(store, run_fn, job, retry_backoff_seconds=0.01)
        assert failed.state == "failed"
        assert failed.attempts == 1  # no retry for permanent errors
        assert failed.error["code"] == "invalid_spec"

    def test_cancel_running_job_at_case_boundary(self, tmp_path):
        store = JobStore(tmp_path)
        started = threading.Event()

        def run_fn(spec, rom_cache=None, progress=None):
            started.set()
            for index in range(200):
                time.sleep(0.01)
                progress(index + 1, 200, f"case-{index}")
            return FakeResult()

        job, _ = store.submit(TINY_SPEC)
        pool = WorkerPool(store, workers=1, run_fn=run_fn)
        pool.start()
        try:
            started.wait(timeout=10)
            store.request_cancel(job.id)
            wait_until(lambda: store.get(job.id).is_terminal)
        finally:
            pool.shutdown()
        assert store.get(job.id).state == "cancelled"

    def test_timeout_fails_with_job_timeout(self, tmp_path):
        store = JobStore(tmp_path)

        def run_fn(spec, rom_cache=None, progress=None):
            for index in range(200):
                time.sleep(0.02)
                progress(index + 1, 200, f"case-{index}")
            return FakeResult()

        job, _ = store.submit(TINY_SPEC, timeout_seconds=0.05)
        failed = self._drain(store, run_fn, job)
        assert failed.state == "failed"
        assert failed.error["code"] == "job_timeout"

    def test_progress_is_visible_while_running(self, tmp_path):
        store = JobStore(tmp_path)
        release = threading.Event()

        def run_fn(spec, rom_cache=None, progress=None):
            progress(3, 7, "case-3")
            release.wait(timeout=10)
            return FakeResult()

        job, _ = store.submit(TINY_SPEC)
        pool = WorkerPool(store, workers=1, run_fn=run_fn)
        pool.start()
        try:
            wait_until(lambda: store.get(job.id).progress["done_cases"] == 3)
            assert store.get(job.id).progress == {"done_cases": 3, "total_cases": 7}
            release.set()
            wait_until(lambda: store.get(job.id).is_terminal)
        finally:
            pool.shutdown()


@pytest.fixture()
def fake_server(tmp_path):
    """An in-process server with a fast run_fn double (counts invocations)."""
    calls = []

    def run_fn(spec, rom_cache=None, progress=None):
        calls.append(spec.spec_hash())
        time.sleep(0.05)  # long enough for duplicates to arrive mid-flight
        return FakeResult()

    with JobServer(tmp_path / "store", workers=2, run_fn=run_fn) as server:
        server.run_calls = calls
        yield server


class TestServerEndToEnd:
    def test_submit_poll_result_matches_direct_run(self, tmp_path):
        spec = SimulationSpec.from_dict(TINY_SPEC)
        direct = run(spec)
        with JobServer(tmp_path / "store", workers=1) as server:
            client = ServiceClient(server.url)
            record = client.submit(spec)
            assert record["state"] in ("queued", "running", "done")
            final = client.wait(record["id"], timeout=120)
            assert final["state"] == "done"
            assert final["progress"] == {"done_cases": 1, "total_cases": 1}

            envelope = client.result(record["id"])
            assert envelope["kind"] == "run_result"
            served = envelope["data"]

            # The wire payload is byte-identical to the persisted manifest.
            job = server.store.get(record["id"])
            manifest_path = server.store.result_dir(job) / "manifest.json"
            raw = client._request("GET", f"/jobs/{record['id']}/result", raw=True)
            assert raw == manifest_path.read_bytes()

            # ... and numerically identical to the in-process run.
            expected = json.loads(json.dumps(direct.manifest()))
            assert served["spec_hash"] == expected["spec_hash"]
            assert served["spec"] == expected["spec"]
            for served_case, expected_case in zip(served["cases"], expected["cases"]):
                assert served_case["peak_von_mises"] == expected_case["peak_von_mises"]
                assert served_case["mean_von_mises"] == expected_case["mean_von_mises"]
                assert served_case["num_global_dofs"] == expected_case["num_global_dofs"]

    def test_concurrent_identical_submissions_execute_once(self, fake_server):
        client = ServiceClient(fake_server.url)
        records = []
        errors = []

        def submit():
            try:
                records.append(client.submit(TINY_SPEC))
            except Exception as exc:  # pragma: no cover - diagnostic only
                errors.append(exc)

        threads = [threading.Thread(target=submit) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        ids = {record["id"] for record in records}
        assert len(ids) == 1  # everyone attached to one job
        job_id = ids.pop()
        final = client.wait(job_id, timeout=30)
        assert final["state"] == "done"
        assert final["executions"] == 1
        assert len(fake_server.run_calls) == 1
        assert final["submissions"] == 8
        assert client.stats()["dedup_hits"] == 7

    def test_cancel_mid_queue(self, tmp_path):
        release = threading.Event()

        def run_fn(spec, rom_cache=None, progress=None):
            release.wait(timeout=30)
            return FakeResult()

        with JobServer(tmp_path / "store", workers=1, run_fn=run_fn) as server:
            client = ServiceClient(server.url)
            blocker = client.submit(TINY_SPEC)
            victim = client.submit(OTHER_SPEC)  # sits behind the blocker
            cancelled = client.cancel(victim["id"])
            assert cancelled["state"] == "cancelled"
            release.set()
            final = client.wait(blocker["id"], timeout=30)
            assert final["state"] == "done"
            # The cancelled job never reached the executor.
            assert client.job(victim["id"])["executions"] == 0

    def test_restart_resumes_queued_and_running_jobs(self, tmp_path):
        store_dir = tmp_path / "store"
        # Session one dies with one queued and one "running" job on disk.
        store = JobStore(store_dir)
        queued_job, _ = store.submit(TINY_SPEC)
        crashed_job, _ = store.submit(OTHER_SPEC)
        store.mark_running(crashed_job.id)

        def run_fn(spec, rom_cache=None, progress=None):
            return FakeResult()

        with JobServer(store_dir, workers=2, run_fn=run_fn) as server:
            client = ServiceClient(server.url)
            assert client.wait(queued_job.id, timeout=30)["state"] == "done"
            assert client.wait(crashed_job.id, timeout=30)["state"] == "done"

    def test_invalid_spec_maps_to_400_invalid_spec(self, fake_server):
        body = json.dumps({"geometry": {"rows": "many"}}).encode()
        request = urllib.request.Request(
            f"{fake_server.url}/v1/jobs",
            data=body,
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        envelope = json.loads(excinfo.value.read())
        assert envelope["error"]["code"] == "invalid_spec"

    def test_client_reraises_typed_errors(self, fake_server):
        client = ServiceClient(fake_server.url)
        with pytest.raises(SpecError):
            client.submit({"geometry": {"rows": "many"}})
        with pytest.raises(JobNotFoundError):
            client.job("does-not-exist")
        with pytest.raises(JobNotFoundError):
            client._request("GET", "/no/such/route")

    def test_result_of_unfinished_job_is_409(self, tmp_path):
        release = threading.Event()

        def run_fn(spec, rom_cache=None, progress=None):
            release.wait(timeout=30)
            return FakeResult()

        with JobServer(tmp_path / "store", workers=1, run_fn=run_fn) as server:
            client = ServiceClient(server.url)
            record = client.submit(TINY_SPEC)
            with pytest.raises(JobStateError):
                client.result(record["id"])
            release.set()

    def test_health_and_stats(self, fake_server):
        client = ServiceClient(fake_server.url)
        health = client.health()
        assert health["status"] == "ok"
        stats = client.stats()
        assert stats["workers"] == 2
        assert stats["queue_depth"] == 0
        assert {"hits", "misses", "hit_rate", "entries"} <= set(stats["rom_cache"])

    def test_fields_endpoint_streams_npz(self, tmp_path):
        spec_doc = {
            **TINY_SPEC,
            "output": {"formats": ["npz"]},
        }
        with JobServer(tmp_path / "store", workers=1) as server:
            client = ServiceClient(server.url)
            record = client.submit(spec_doc)
            assert client.wait(record["id"], timeout=120)["state"] == "done"
            destination = client.fetch_fields(record["id"], tmp_path / "dl" / "f.npz")
            import numpy as np

            with np.load(destination) as bundle:
                assert len(bundle.files) > 0

    def test_queue_full_maps_to_429(self, tmp_path):
        release = threading.Event()

        def run_fn(spec, rom_cache=None, progress=None):
            release.wait(timeout=30)
            return FakeResult()

        with JobServer(
            tmp_path / "store", workers=1, run_fn=run_fn, max_queued=1
        ) as server:
            client = ServiceClient(server.url)
            blocker = client.submit(TINY_SPEC)
            # Wait until the single worker has claimed the blocker so the
            # queue is empty; then fill the one slot and overflow it.
            wait_until(lambda: client.job(blocker["id"])["state"] == "running")
            second = {**TINY_SPEC, "name": "second", "geometry": {"rows": 1}}
            third = {**TINY_SPEC, "name": "third", "geometry": {"rows": 3}}
            try:
                client.submit(second)
                with pytest.raises(JobQueueFullError):
                    client.submit(third)
            finally:
                release.set()

    def test_warm_cache_speeds_up_second_distinct_job(self, tmp_path):
        # Two specs, same geometry/mesh (same ROM), different load: the
        # second job should hit the shared cache the first one filled.
        first = TINY_SPEC
        second = {
            **TINY_SPEC,
            "name": "hotter",
            "load_cases": [{"name": "reflow", "delta_t": -50.0}],
        }
        with JobServer(tmp_path / "store", workers=1) as server:
            client = ServiceClient(server.url)
            record = client.submit(first)
            assert client.wait(record["id"], timeout=120)["state"] == "done"
            record2 = client.submit(second)
            assert record2["id"] != record["id"]
            assert client.wait(record2["id"], timeout=120)["state"] == "done"
            assert client.stats()["rom_cache"]["hits"] >= 1


SHARD_SPEC = {
    **TINY_SPEC,
    "name": "tiny-sharded",
    "solver": {"shard": {"grid": [2, 2], "overlap": 1}},
}


class TestShardedService:
    """Sharded specs through the job service: provenance, cancel, resume."""

    def test_sharded_job_records_shard_provenance(self, tmp_path):
        store = JobStore(tmp_path)
        job, _ = store.submit(SHARD_SPEC)
        pool = WorkerPool(store, workers=1)  # the real executor
        pool.start()
        try:
            wait_until(lambda: store.get(job.id).is_terminal, timeout=300)
        finally:
            pool.shutdown()
        done = store.get(job.id)
        assert done.state == "done", done.error
        manifest = json.loads(
            (store.result_dir(done) / "manifest.json").read_text()
        )
        case = manifest["data"]["cases"][0]
        assert case["shard"]["grid"] == [2, 2]
        assert case["shard"]["overlap"] == 1
        assert case["shard"]["converged"] is True
        assert case["solver_method"] == "shard-2x2-schwarz"
        # The checkpoint markers were cleaned up after the successful save.
        assert not (store.result_dir(done) / "checkpoint").exists()

    def test_cancel_lands_at_a_shard_boundary_without_orphans(self, tmp_path):
        store = JobStore(tmp_path)
        # Unreachable tolerance + a deep iteration budget: the job can only
        # end through the cooperative cancel at a shard boundary.
        spec = {
            **SHARD_SPEC,
            "name": "tiny-sharded-cancel",
            "solver": {
                "shard": {
                    "grid": [2, 2],
                    "overlap": 1,
                    "tolerance": 1e-18,
                    "max_iterations": 100000,
                }
            },
        }
        job, _ = store.submit(spec)
        pool = WorkerPool(store, workers=1)
        pool.start()
        try:
            wait_until(lambda: store.get(job.id).state == "running", timeout=60)
            store.request_cancel(job.id)
            wait_until(lambda: store.get(job.id).is_terminal, timeout=120)
        finally:
            pool.shutdown()
        assert store.get(job.id).state == "cancelled"
        # No temporary files or stale locks anywhere in the store directory.
        orphans = [
            path
            for pattern in (".tmp-*", ".lock-*")
            for path in Path(tmp_path).rglob(pattern)
        ]
        assert orphans == []

    def test_restart_resumes_sharded_job(self, tmp_path):
        store = JobStore(tmp_path)
        job, _ = store.submit(SHARD_SPEC)
        store.mark_running(job.id)  # a worker picked it up, then was killed
        restarted = JobStore(tmp_path)
        pool = WorkerPool(restarted, workers=1)
        pool.start()  # recover() re-queues the orphaned running job
        try:
            wait_until(lambda: restarted.get(job.id).is_terminal, timeout=300)
        finally:
            pool.shutdown()
        done = restarted.get(job.id)
        assert done.state == "done", done.error
        manifest = json.loads(
            (restarted.result_dir(done) / "manifest.json").read_text()
        )
        assert manifest["data"]["cases"][0]["shard"]["grid"] == [2, 2]

    def test_checkpoint_dir_offered_only_to_accepting_run_fns(self, tmp_path):
        store = JobStore(tmp_path)
        seen = {}

        def run_fn(spec, rom_cache=None, progress=None, **kwargs):
            seen.update(kwargs)
            checkpoint = Path(kwargs["checkpoint_dir"])
            checkpoint.mkdir(parents=True, exist_ok=True)
            (checkpoint / "group0.npz").write_bytes(b"marker")
            return FakeResult()

        job, _ = store.submit(TINY_SPEC)
        pool = WorkerPool(store, workers=1, run_fn=run_fn)
        pool.start()
        try:
            wait_until(lambda: store.get(job.id).is_terminal)
        finally:
            pool.shutdown()
        assert store.get(job.id).state == "done"
        expected = store.result_dir(store.get(job.id)) / "checkpoint"
        assert Path(seen["checkpoint_dir"]) == expected
        assert not expected.exists()  # markers removed after the saved result

    def test_cache_cap_flows_to_pool_and_stats(self, tmp_path):
        server = JobServer(tmp_path, rom_cache_max_bytes=123456)
        assert server.pool.rom_cache.max_bytes == 123456
        stats = server.pool.stats()["rom_cache"]
        assert stats["max_bytes"] == 123456
        for key in ("evictions", "evicted_bytes", "bytes"):
            assert key in stats
