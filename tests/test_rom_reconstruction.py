"""Analytic checks of :class:`BlockFieldSampler` and the volumetric grids.

The uniform-strain patch test is the classical FEM correctness check: a
linear displacement field produces an exactly constant strain, so trilinear
elements (and therefore the sampler's stress recovery) must reproduce the
corresponding stress *exactly* — including the thermal
``(3*lam + 2*mu) * alpha * delta_t`` eigenstrain term of paper Eq. 1 —
at every point, even on element boundaries.
"""

import numpy as np
import pytest

from repro.fem.elasticity import material_arrays_for_mesh
from repro.rom.reconstruction import (
    BlockFieldSampler,
    block_midplane_points,
    block_volume_points,
)
from repro.utils.validation import ValidationError

#: A generic (non-symmetric) displacement gradient and offset for the patch test.
GRADIENT = np.array(
    [
        [2.0e-4, -1.0e-4, 3.0e-5],
        [5.0e-5, -3.0e-4, 8.0e-5],
        [-7.0e-5, 4.0e-5, 1.5e-4],
    ]
)
OFFSET = np.array([0.3, -0.2, 0.1])
DELTA_T = -175.0


def _linear_fine_displacement(mesh) -> np.ndarray:
    """The fine-mesh DoF vector of ``u(x) = GRADIENT @ x + OFFSET``."""
    coords = mesh.node_coordinates()
    return (coords @ GRADIENT.T + OFFSET).reshape(-1)


def _expected_stress(sampler: BlockFieldSampler, delta_t: float) -> np.ndarray:
    """Exact constant-strain stress at the sampler's points (per-point material)."""
    mesh = sampler.rom.mesh
    data = material_arrays_for_mesh(mesh, sampler.materials)
    element_ids, _ = mesh.locate_points(sampler.points)
    tag_index = data.tag_index_of_element[element_ids]
    lam = data.lame_lambda[tag_index]
    mu = data.lame_mu[tag_index]
    cte = data.cte[tag_index]

    strain = np.array(
        [
            GRADIENT[0, 0],
            GRADIENT[1, 1],
            GRADIENT[2, 2],
            GRADIENT[1, 2] + GRADIENT[2, 1],
            GRADIENT[0, 2] + GRADIENT[2, 0],
            GRADIENT[0, 1] + GRADIENT[1, 0],
        ]
    )
    trace = strain[:3].sum()
    thermal = cte * delta_t * (3.0 * lam + 2.0 * mu)
    expected = np.empty((sampler.points.shape[0], 6))
    for i in range(3):
        expected[:, i] = lam * trace + 2.0 * mu * strain[i] - thermal
    for i in range(3, 6):
        expected[:, i] = mu * strain[i]
    return expected


class TestUniformStrainPatch:
    def test_constant_stress_recovered_exactly(self, rom_tsv_tiny, materials):
        points = block_volume_points(rom_tsv_tiny, points_per_block=5, z_planes=3)
        sampler = BlockFieldSampler(rom_tsv_tiny, materials, points)
        u_fine = _linear_fine_displacement(rom_tsv_tiny.mesh)

        stress = sampler.stress_from_fine(u_fine, DELTA_T)
        expected = _expected_stress(sampler, DELTA_T)
        np.testing.assert_allclose(stress, expected, rtol=1e-10, atol=1e-10)

    def test_thermal_term_alone(self, rom_tsv_tiny, materials):
        # Zero displacement: the stress is purely the thermal eigenstrain
        # -(3*lam + 2*mu) * alpha * delta_t on the diagonal, zero shear.
        points = block_midplane_points(rom_tsv_tiny, 4)
        sampler = BlockFieldSampler(rom_tsv_tiny, materials, points)
        u_fine = np.zeros(rom_tsv_tiny.mesh.num_dofs)

        stress = sampler.stress_from_fine(u_fine, DELTA_T)
        expected = _expected_stress(sampler, DELTA_T) - _expected_stress(sampler, 0.0)
        np.testing.assert_allclose(stress, expected, rtol=1e-10, atol=1e-10)
        np.testing.assert_allclose(stress[:, 3:], 0.0, atol=1e-15)

    def test_points_on_element_boundaries(self, rom_tsv_tiny, materials):
        # Points sitting exactly on element faces/edges/corners (mesh node
        # coordinates) must still recover the constant stress exactly.
        mesh = rom_tsv_tiny.mesh
        xs, ys, zs = mesh.xs, mesh.ys, mesh.zs
        points = np.array(
            [
                [xs[1], ys[2], zs[1]],          # a mesh node (corner of 8 cells)
                [xs[2], 0.5 * (ys[1] + ys[2]), 0.5 * (zs[0] + zs[1])],  # face point
                [0.5 * (xs[0] + xs[1]), ys[1], zs[2]],                  # edge point
                [xs[0], ys[0], zs[0]],          # domain corner
                [xs[-1], ys[-1], zs[-1]],       # opposite domain corner
            ]
        )
        sampler = BlockFieldSampler(rom_tsv_tiny, materials, points)
        u_fine = _linear_fine_displacement(mesh)

        stress = sampler.stress_from_fine(u_fine, DELTA_T)
        expected = _expected_stress(sampler, DELTA_T)
        np.testing.assert_allclose(stress, expected, rtol=1e-10, atol=1e-10)

    def test_displacement_from_fine_is_exact(self, rom_tsv_tiny, materials):
        points = block_volume_points(rom_tsv_tiny, points_per_block=4, z_planes=3)
        sampler = BlockFieldSampler(rom_tsv_tiny, materials, points)
        u_fine = _linear_fine_displacement(rom_tsv_tiny.mesh)

        sampled = sampler.displacement_from_fine(u_fine)
        expected = points @ GRADIENT.T + OFFSET
        np.testing.assert_allclose(sampled, expected, rtol=1e-12, atol=1e-14)

    def test_displacement_from_fine_rejects_wrong_size(self, rom_tsv_tiny, materials):
        sampler = BlockFieldSampler(
            rom_tsv_tiny, materials, block_midplane_points(rom_tsv_tiny, 3)
        )
        with pytest.raises(ValidationError):
            sampler.displacement_from_fine(np.zeros(7))


class TestBlockVolumePoints:
    def test_shape_and_bounds(self, rom_tsv_tiny):
        points = block_volume_points(rom_tsv_tiny, points_per_block=6, z_planes=5)
        assert points.shape == (6 * 6 * 5, 3)
        pitch = rom_tsv_tiny.block.tsv.pitch
        height = rom_tsv_tiny.block.tsv.height
        assert points[:, :2].min() > 0 and points[:, :2].max() < pitch
        assert points[:, 2].min() > 0 and points[:, 2].max() < height

    def test_odd_z_planes_contain_midplane_grid(self, rom_tsv_tiny):
        # The middle plane of an odd cell-centred z grid is the mid-plane
        # sample grid (ordering included): index (ix, iy, iz) with iz fastest.
        p, q = 4, 3
        volume = block_volume_points(rom_tsv_tiny, p, q)
        midplane = block_midplane_points(rom_tsv_tiny, p)
        middle = volume.reshape(p, p, q, 3)[:, :, q // 2, :].reshape(-1, 3)
        np.testing.assert_array_equal(middle, midplane)

    def test_single_plane_equals_midplane(self, rom_tsv_tiny):
        p = 5
        np.testing.assert_array_equal(
            block_volume_points(rom_tsv_tiny, p, 1),
            block_midplane_points(rom_tsv_tiny, p),
        )

    def test_invalid_counts_rejected(self, rom_tsv_tiny):
        with pytest.raises(ValidationError):
            block_volume_points(rom_tsv_tiny, 0, 3)
        with pytest.raises(ValidationError):
            block_volume_points(rom_tsv_tiny, 4, 0)

    def test_field_sampler_convenience(self, rom_tsv_tiny, materials):
        sampler = rom_tsv_tiny.field_sampler(materials, points_per_block=3, z_planes=3)
        assert sampler.points.shape == (27, 3)
        explicit = rom_tsv_tiny.field_sampler(
            materials, points=np.array([[1.0, 1.0, 1.0]])
        )
        assert explicit.points.shape == (1, 3)
