"""Unit tests for the reference full FEM and the linear superposition baseline."""

import numpy as np
import pytest

from repro.baselines.coarse_model import ROLE_VOID, CoarseChipletModel
from repro.baselines.full_fem import FullFEMReference
from repro.baselines.linear_superposition import LinearSuperpositionMethod
from repro.geometry.array_layout import TSVArrayLayout
from repro.geometry.package import ChipletPackage
from repro.utils.validation import ValidationError

DELTA_T = -250.0


class TestCoarseChipletModelLibraryIsolation:
    def test_void_role_does_not_leak_into_the_callers_library(self, materials):
        fingerprint_before = materials.fingerprint()
        model = CoarseChipletModel(ChipletPackage.scaled_default(1.0), materials)
        assert ROLE_VOID in model.materials
        assert ROLE_VOID not in materials
        assert materials.fingerprint() == fingerprint_before


class TestFullFEMReference:
    def test_reference_solution_fields(self, reference_2x2):
        solution = reference_2x2
        assert solution.num_dofs == solution.mesh.num_dofs
        assert solution.displacement.shape == (solution.num_dofs,)
        assert solution.total_time() > 0.0
        assert solution.peak_memory_bytes > 0
        assert solution.solver_stats is not None and solution.solver_stats.converged

    def test_clamped_faces_have_zero_displacement(self, reference_2x2):
        mesh = reference_2x2.mesh
        top_and_bottom = np.concatenate(
            [mesh.boundary_node_ids("z-"), mesh.boundary_node_ids("z+")]
        )
        values = reference_2x2.displacement.reshape(-1, 3)[top_and_bottom]
        np.testing.assert_allclose(values, 0.0, atol=1e-12)

    def test_von_mises_midplane_shape(self, reference_2x2):
        vm = reference_2x2.von_mises_midplane(points_per_block=7)
        assert vm.shape == (2, 2, 7, 7)
        assert np.all(vm > 0.0)
        flat = reference_2x2.von_mises_midplane_flat(points_per_block=7)
        np.testing.assert_allclose(flat, vm.reshape(-1))

    def test_stress_peaks_near_the_vias(self, reference_2x2):
        vm = reference_2x2.von_mises_midplane(points_per_block=11)
        block = vm[0, 0]
        center_value = block[5, 5]          # TSV axis
        corner_value = block[0, 0]          # far silicon corner
        assert center_value > 2.0 * corner_value

    def test_submodel_boundary_requires_field(self, materials, tsv15):
        reference = FullFEMReference(materials, resolution="tiny")
        layout = TSVArrayLayout.full(tsv15, rows=1)
        with pytest.raises(ValidationError):
            reference.solve_array(layout, DELTA_T, boundary="submodel")

    def test_unknown_boundary_rejected(self, materials, tsv15):
        reference = FullFEMReference(materials, resolution="tiny")
        layout = TSVArrayLayout.full(tsv15, rows=1)
        with pytest.raises(ValidationError):
            reference.solve_array(layout, DELTA_T, boundary="free")

    def test_submodel_zero_boundary_runs(self, materials, tsv15):
        reference = FullFEMReference(materials, resolution="tiny")
        layout = TSVArrayLayout.full(tsv15, rows=1)
        solution = reference.solve_array(
            layout,
            DELTA_T,
            boundary="submodel",
            displacement_field=lambda pts: np.zeros((pts.shape[0], 3)),
        )
        boundary_nodes = solution.mesh.all_boundary_node_ids()
        np.testing.assert_allclose(
            solution.displacement.reshape(-1, 3)[boundary_nodes], 0.0, atol=1e-12
        )

    def test_displacement_at(self, reference_2x2):
        values = reference_2x2.displacement_at(np.array([[15.0, 15.0, 25.0]]))
        assert values.shape == (1, 3)
        assert np.all(np.isfinite(values))


class TestLinearSuperposition:
    @pytest.fixture(scope="class")
    def method(self, materials):
        return LinearSuperpositionMethod(materials, resolution="tiny", window_blocks=3)

    def test_window_must_be_odd(self, materials):
        with pytest.raises(ValidationError):
            LinearSuperpositionMethod(materials, resolution="tiny", window_blocks=4)

    def test_prepare_caches_influence(self, method, tsv15):
        first = method.prepare(tsv15)
        seconds_after_first = method.preparation_seconds
        second = method.prepare(tsv15)
        assert first is second
        assert method.preparation_seconds == seconds_after_first

    def test_estimate_shape_and_positivity(self, method, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=2, cols=3)
        estimate = method.estimate(layout, DELTA_T, points_per_block=8)
        vm = estimate.von_mises_midplane()
        assert vm.shape == (2, 3, 8, 8)
        assert np.all(vm > 0.0)
        assert estimate.estimation_seconds > 0.0

    def test_estimate_scales_with_load(self, method, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=2)
        full = method.estimate(layout, DELTA_T, points_per_block=6).von_mises_midplane()
        half = method.estimate(layout, DELTA_T / 2, points_per_block=6).von_mises_midplane()
        np.testing.assert_allclose(half, 0.5 * full, rtol=1e-9)

    def test_single_tsv_estimate_close_to_reference(self, method, materials, tsv15):
        """For one isolated TSV the superposition is essentially exact by
        construction (it reuses its own single-TSV solution), which validates
        the background + perturbation bookkeeping."""
        layout = TSVArrayLayout.with_dummy_ring(tsv15, rows=1, cols=1, ring_width=1)
        reference = FullFEMReference(materials, resolution="tiny")
        solution = reference.solve_array(layout, DELTA_T)
        vm_reference = solution.von_mises_midplane(points_per_block=10)
        estimate = method.estimate(layout, DELTA_T, points_per_block=10)
        vm_estimate = estimate.von_mises_midplane()
        from repro.analysis.metrics import normalized_mae

        assert normalized_mae(vm_estimate, vm_reference) < 0.02

    def test_error_grows_when_tsvs_get_close(self, method, materials):
        """Superposition ignores TSV-TSV coupling, so its error grows as the
        pitch shrinks (the paper's central criticism)."""
        from repro.analysis.metrics import normalized_mae
        from repro.geometry.tsv import TSVGeometry

        errors = {}
        for pitch in (15.0, 10.0):
            tsv = TSVGeometry.paper_default(pitch=pitch)
            layout = TSVArrayLayout.full(tsv, rows=3)
            reference = FullFEMReference(materials, resolution="tiny")
            vm_reference = reference.solve_array(layout, DELTA_T).von_mises_midplane(10)
            estimate = method.estimate(layout, DELTA_T, points_per_block=10)
            errors[pitch] = normalized_mae(estimate.von_mises_midplane(), vm_reference)
        assert errors[10.0] > errors[15.0]

    def test_background_stress_field_hook(self, method, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=1)
        constant_background = lambda points: np.tile(  # noqa: E731
            np.array([100.0, 100.0, 0.0, 0.0, 0.0, 0.0]), (points.shape[0], 1)
        )
        estimate = method.estimate(
            layout, DELTA_T, points_per_block=5, background_stress_field=constant_background
        )
        assert np.all(np.isfinite(estimate.von_mises_midplane()))

    def test_bad_background_shape_rejected(self, method, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=1)
        with pytest.raises(ValidationError):
            method.estimate(
                layout,
                DELTA_T,
                points_per_block=5,
                background_stress_field=lambda points: np.zeros((points.shape[0], 5)),
            )
