"""Numerical equivalence of the optional array backends against numpy.

Every test compares a dense kernel evaluated under ``use_array_backend``
with the reference numpy result.  The torch and cupy classes auto-skip when
the corresponding package is not installed, so this module is safe to run
in the minimal environment; CI's optional-deps job installs the torch CPU
wheel to exercise the torch half for real.
"""

import importlib.util

import numpy as np
import pytest

from repro.backend import use_array_backend
from repro.fem.element import (
    element_stiffness,
    element_thermal_load,
    gauss_points_2x2x2,
    shape_function_gradients,
    shape_functions,
    strain_displacement_matrix,
)
from repro.fem.fields import von_mises
from repro.fem.sampling import midplane_grid_points

HAVE_TORCH = importlib.util.find_spec("torch") is not None
HAVE_CUPY = importlib.util.find_spec("cupy") is not None


def _isotropic_d_matrix() -> np.ndarray:
    lam, mu = 2.0, 1.5
    d = np.zeros((6, 6))
    d[:3, :3] = lam
    d[np.arange(3), np.arange(3)] += 2.0 * mu
    d[np.arange(3, 6), np.arange(3, 6)] = mu
    return d


def _kernel_results():
    """Evaluate every ported kernel under the active backend (host outputs)."""
    size = (1.0, 2.0, 0.5)
    d_matrix = _isotropic_d_matrix()
    strain = np.array([1.0, 1.0, 1.0, 0.0, 0.0, 0.0])
    pts, weights = gauss_points_2x2x2()
    grads = shape_function_gradients(pts, np.asarray(size))
    rng = np.random.default_rng(42)
    stress = rng.normal(size=(7, 6))
    return {
        "gauss_points": np.asarray(pts),
        "gauss_weights": np.asarray(weights),
        "shape_functions": np.asarray(shape_functions(np.asarray(pts))),
        "shape_gradients": np.asarray(grads),
        "b_matrix": np.asarray(strain_displacement_matrix(grads)),
        "stiffness": np.asarray(element_stiffness(size, d_matrix)),
        "thermal_load": np.asarray(element_thermal_load(size, d_matrix, strain)),
        "von_mises": von_mises(stress),
        "midplane_grid": midplane_grid_points(
            rows=2, cols=3, pitch=15.0, z_mid=25.0, points_per_block=4
        ),
    }


def _assert_backend_matches_numpy(backend: str) -> None:
    reference = _kernel_results()
    with use_array_backend(backend) as resolved:
        assert resolved == backend, f"{backend} unexpectedly fell back to {resolved}"
        ported = {
            key: np.asarray(value) for key, value in _kernel_results().items()
        }
    for key, expected in reference.items():
        np.testing.assert_allclose(
            ported[key], expected, rtol=1e-12, atol=1e-12, err_msg=key
        )


@pytest.mark.skipif(not HAVE_TORCH, reason="torch is not installed")
class TestTorchEquivalence:
    def test_all_kernels_match_numpy(self):
        _assert_backend_matches_numpy("torch")

    def test_outputs_are_host_numpy_arrays(self):
        with use_array_backend("torch"):
            vm = von_mises(np.ones((3, 6)))
            grid = midplane_grid_points(
                rows=1, cols=1, pitch=10.0, z_mid=5.0, points_per_block=3
            )
        assert isinstance(vm, np.ndarray)
        assert isinstance(grid, np.ndarray)

    def test_stiffness_dtype_is_float64(self):
        with use_array_backend("torch"):
            ke = element_stiffness((1.0, 1.0, 1.0), _isotropic_d_matrix())
        assert np.asarray(ke).dtype == np.float64


@pytest.mark.skipif(not HAVE_CUPY, reason="cupy is not installed")
class TestCupyEquivalence:
    def test_all_kernels_match_numpy(self):
        _assert_backend_matches_numpy("cupy")
