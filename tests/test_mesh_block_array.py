"""Unit tests for the unit-block mesher, the array mesher, mesh quality and I/O."""

import numpy as np
import pytest

from repro.geometry.array_layout import BlockKind, TSVArrayLayout
from repro.geometry.unit_block import UnitBlockGeometry
from repro.materials.library import ROLE_COPPER, ROLE_LINER, ROLE_SILICON
from repro.mesh.array_mesher import mesh_tsv_array
from repro.mesh.block_mesher import (
    TAG_COPPER,
    TAG_LINER,
    TAG_SILICON,
    block_coordinates,
    classify_inplane_cells,
    mesh_unit_block,
)
from repro.mesh.mesh_io import load_mesh, save_mesh
from repro.mesh.quality import mesh_quality_report
from repro.mesh.resolution import MeshResolution


class TestMeshResolution:
    def test_presets_exist(self):
        for name in MeshResolution.preset_names():
            resolution = MeshResolution.preset(name)
            assert resolution.cells_per_block > 0
            assert resolution.dofs_per_block > 0

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            MeshResolution.preset("ultra")

    def test_from_spec_passthrough(self):
        resolution = MeshResolution.preset("tiny")
        assert MeshResolution.from_spec(resolution) is resolution
        assert MeshResolution.from_spec("tiny") == resolution

    def test_inplane_cells_formula(self):
        resolution = MeshResolution(n_core=4, n_liner=1, n_outer=3, n_z=6)
        assert resolution.inplane_cells == 4 + 2 * (1 + 3)
        assert resolution.cells_per_block == resolution.inplane_cells**2 * 6

    def test_presets_increase_in_size(self):
        sizes = [
            MeshResolution.preset(name).cells_per_block
            for name in ("tiny", "coarse", "medium", "fine", "paper")
        ]
        assert sizes == sorted(sizes)


class TestBlockMesher:
    def test_mesh_dimensions(self, tsv_block, tiny_resolution):
        mesh = mesh_unit_block(tsv_block, tiny_resolution)
        assert mesh.cells == (
            tiny_resolution.inplane_cells,
            tiny_resolution.inplane_cells,
            tiny_resolution.n_z,
        )
        (xmin, xmax), (ymin, ymax), (zmin, zmax) = mesh.bounding_box
        assert (xmax, ymax, zmax) == pytest.approx((15.0, 15.0, 50.0))

    def test_materials_present(self, tsv_block, tiny_resolution):
        # The crude "tiny" preset resolves copper but may staircase the thin
        # liner away; from "coarse" upwards all three materials must be present.
        tiny_roles = set(mesh_unit_block(tsv_block, tiny_resolution).element_roles())
        assert {ROLE_SILICON, ROLE_COPPER} <= tiny_roles
        coarse_roles = set(mesh_unit_block(tsv_block, "coarse").element_roles())
        assert coarse_roles == {ROLE_SILICON, ROLE_COPPER, ROLE_LINER}

    def test_dummy_block_is_all_silicon(self, dummy_block, tiny_resolution):
        mesh = mesh_unit_block(dummy_block, tiny_resolution)
        assert set(mesh.element_roles()) == {ROLE_SILICON}

    def test_copper_volume_fraction_close_to_geometry(self, tsv_block):
        mesh = mesh_unit_block(tsv_block, "coarse")
        volumes = mesh.element_volumes()
        copper = volumes[mesh.element_tags == TAG_COPPER].sum()
        expected = np.pi * tsv_block.tsv.radius**2 * tsv_block.tsv.height
        assert copper == pytest.approx(expected, rel=0.35)

    def test_material_cross_section_constant_over_z(self, tsv_block, tiny_resolution):
        mesh = mesh_unit_block(tsv_block, tiny_resolution)
        ncx, ncy, ncz = mesh.cells
        tags = mesh.element_tags.reshape(ncz, ncy, ncx)
        for layer in range(1, ncz):
            np.testing.assert_array_equal(tags[layer], tags[0])

    def test_classify_inplane_cells_center_is_copper(self, tsv_block):
        xs, ys, _ = block_coordinates(tsv_block, "coarse")
        tags = classify_inplane_cells(tsv_block, xs, ys)
        center = tags.shape[0] // 2
        assert tags[center, center] == TAG_COPPER
        assert tags[0, 0] == TAG_SILICON
        assert TAG_LINER in tags

    def test_same_coordinates_for_tsv_and_dummy(self, tsv_block, tiny_resolution):
        xs_a, ys_a, zs_a = block_coordinates(tsv_block, tiny_resolution)
        xs_b, ys_b, zs_b = block_coordinates(tsv_block.as_dummy(), tiny_resolution)
        np.testing.assert_allclose(xs_a, xs_b)
        np.testing.assert_allclose(zs_a, zs_b)


class TestArrayMesher:
    def test_array_mesh_tiles_block_mesh(self, tsv15, tiny_resolution):
        layout = TSVArrayLayout.full(tsv15, rows=2, cols=3)
        array_mesh = mesh_tsv_array(layout, tiny_resolution)
        block_mesh = mesh_unit_block(UnitBlockGeometry(tsv=tsv15), tiny_resolution)
        ncx, ncy, ncz = block_mesh.cells
        assert array_mesh.cells == (3 * ncx, 2 * ncy, ncz)
        # The first block's x coordinates coincide with the block mesh.
        np.testing.assert_allclose(array_mesh.xs[: ncx + 1], block_mesh.xs)
        # The copper volume is num_tsv_blocks times the single block's copper.
        copper_block = block_mesh.element_volumes()[
            block_mesh.element_tags == TAG_COPPER
        ].sum()
        copper_array = array_mesh.element_volumes()[
            array_mesh.element_tags == TAG_COPPER
        ].sum()
        assert copper_array == pytest.approx(6 * copper_block, rel=1e-9)

    def test_dummy_blocks_have_no_copper(self, tsv15, tiny_resolution):
        layout = TSVArrayLayout.with_dummy_ring(tsv15, rows=1, cols=1, ring_width=1)
        mesh = mesh_tsv_array(layout, tiny_resolution)
        centroids = mesh.element_centroids()
        copper_mask = mesh.element_tags == TAG_COPPER
        # all copper centroids must lie inside the central block footprint
        assert np.all(centroids[copper_mask, 0] > 15.0)
        assert np.all(centroids[copper_mask, 0] < 30.0)
        assert np.all(centroids[copper_mask, 1] > 15.0)
        assert np.all(centroids[copper_mask, 1] < 30.0)

    def test_origin_offset(self, tsv15, tiny_resolution):
        layout = TSVArrayLayout.full(tsv15, rows=1, cols=1, origin=(100.0, 50.0, 10.0))
        mesh = mesh_tsv_array(layout, tiny_resolution)
        (xmin, xmax), (ymin, ymax), (zmin, zmax) = mesh.bounding_box
        assert (xmin, ymin, zmin) == pytest.approx((100.0, 50.0, 10.0))
        assert (xmax, ymax, zmax) == pytest.approx((115.0, 65.0, 60.0))

    def test_kinds_respected(self, tsv15, tiny_resolution):
        kinds = np.array(
            [[BlockKind.TSV, BlockKind.DUMMY]], dtype=object
        )
        layout = TSVArrayLayout(tsv=tsv15, kinds=kinds)
        mesh = mesh_tsv_array(layout, tiny_resolution)
        centroids = mesh.element_centroids()
        copper = mesh.element_tags == TAG_COPPER
        assert np.all(centroids[copper, 0] < 15.0)


class TestMeshQuality:
    def test_report_fields(self, tiny_block_mesh):
        report = mesh_quality_report(tiny_block_mesh)
        assert report.num_elements == tiny_block_mesh.num_elements
        assert report.max_aspect_ratio >= 1.0
        assert report.min_cell_size > 0
        assert report.max_growth_ratio >= 1.0

    def test_presets_meet_quality_thresholds(self, tsv_block):
        # The deliberately crude "tiny" preset gets looser thresholds; the
        # production presets must satisfy the default engineering limits.
        report = mesh_quality_report(mesh_unit_block(tsv_block, "tiny"))
        assert report.is_acceptable(max_aspect=80.0, max_growth=6.0)
        for name in ("coarse", "medium"):
            report = mesh_quality_report(mesh_unit_block(tsv_block, name))
            assert report.is_acceptable(), name


class TestMeshIO:
    def test_roundtrip(self, tiny_block_mesh, tmp_path):
        path = save_mesh(tmp_path / "block", tiny_block_mesh)
        loaded = load_mesh(path)
        np.testing.assert_allclose(loaded.xs, tiny_block_mesh.xs)
        np.testing.assert_allclose(loaded.zs, tiny_block_mesh.zs)
        np.testing.assert_array_equal(loaded.element_tags, tiny_block_mesh.element_tags)
        assert loaded.tag_roles == tiny_block_mesh.tag_roles
