"""Unit tests for the seeded fault-injection layer (``repro.faults``)."""

import errno
import json
import time

import pytest

from repro import faults
from repro.errors import ValidationError
from repro.faults import (
    FAULT_KINDS,
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultRule,
    SimulatedCrashError,
    TransientFaultError,
    fault_point,
    injected_faults,
)


class TestFaultRule:
    def test_validation(self):
        with pytest.raises(ValidationError, match="site"):
            FaultRule(site="", kind="crash")
        with pytest.raises(ValidationError, match="kind"):
            FaultRule(site="x", kind="meteor")
        with pytest.raises(ValidationError, match="probability"):
            FaultRule(site="x", kind="crash", probability=1.5)
        with pytest.raises(ValidationError, match="nth"):
            FaultRule(site="x", kind="crash", nth=0)
        with pytest.raises(ValidationError, match="max_triggers"):
            FaultRule(site="x", kind="crash", max_triggers=0)
        with pytest.raises(ValidationError, match="hang_seconds"):
            FaultRule(site="x", kind="hang", hang_seconds=-1.0)

    def test_nth_implies_one_trigger(self):
        assert FaultRule(site="x", kind="crash", nth=3).effective_max_triggers == 1
        assert (
            FaultRule(site="x", kind="crash", nth=3, max_triggers=5).effective_max_triggers
            == 5
        )
        assert FaultRule(site="x", kind="crash").effective_max_triggers is None

    def test_dict_round_trip(self):
        rule = FaultRule(site="rom_cache.*", kind="enospc", probability=0.25, nth=None)
        assert FaultRule.from_dict(rule.to_dict()) == rule

    def test_from_dict_rejects_unknown_and_missing_fields(self):
        with pytest.raises(ValidationError, match="unknown fields"):
            FaultRule.from_dict({"site": "x", "kind": "crash", "color": "red"})
        with pytest.raises(ValidationError, match="missing fields"):
            FaultRule.from_dict({"site": "x"})


class TestFaultPlan:
    def test_same_seed_fires_identically(self):
        rules = ({"site": "a.*", "kind": "transient", "probability": 0.5},)
        plans = [FaultPlan(seed=42, rules=rules) for _ in range(2)]
        logs = []
        for plan in plans:
            outcomes = []
            for _ in range(50):
                try:
                    plan.fire("a.site")
                    outcomes.append(False)
                except TransientFaultError:
                    outcomes.append(True)
            logs.append(outcomes)
        assert logs[0] == logs[1]
        assert any(logs[0]) and not all(logs[0])

    def test_different_seeds_differ(self):
        rules = ({"site": "*", "kind": "transient", "probability": 0.5},)

        def trace(seed):
            plan = FaultPlan(seed=seed, rules=rules)
            outcomes = []
            for _ in range(64):
                try:
                    plan.fire("s")
                    outcomes.append(False)
                except TransientFaultError:
                    outcomes.append(True)
            return outcomes

        assert trace(1) != trace(2)

    def test_nth_fires_exactly_once_on_that_call(self):
        plan = FaultPlan(rules=({"site": "s", "kind": "crash", "nth": 3},))
        directives = [plan.fire("s") for _ in range(6)]
        assert directives == [None, None, "crash", None, None, None]
        assert plan.fired == [{"site": "s", "kind": "crash", "call": 3}]

    def test_max_triggers_caps_firing(self):
        plan = FaultPlan(rules=({"site": "s", "kind": "torn_write", "max_triggers": 2},))
        directives = [plan.fire("s") for _ in range(5)]
        assert directives == ["torn_write", "torn_write", None, None, None]

    def test_glob_site_matching(self):
        plan = FaultPlan(rules=({"site": "fem.backends.*", "kind": "transient"},))
        with pytest.raises(TransientFaultError):
            plan.fire("fem.backends.gmres")
        assert plan.fire("rom_cache.put") is None
        assert plan.fired_counts() == {"fem.backends.gmres:transient": 1}

    def test_first_matching_armed_rule_wins(self):
        plan = FaultPlan(
            rules=(
                {"site": "s", "kind": "torn_write", "nth": 2},
                {"site": "s", "kind": "crash"},
            )
        )
        # Call 1: rule 1 not armed (nth=2), rule 2 fires.  Call 2: rule 1.
        assert plan.fire("s") == "crash"
        assert plan.fire("s") == "torn_write"

    def test_oserror_kinds_raise_with_errno(self):
        plan = FaultPlan(rules=({"site": "disk", "kind": "enospc"},))
        with pytest.raises(OSError) as excinfo:
            plan.fire("disk")
        assert excinfo.value.errno == errno.ENOSPC
        plan = FaultPlan(rules=({"site": "disk", "kind": "eio"},))
        with pytest.raises(OSError) as excinfo:
            plan.fire("disk")
        assert excinfo.value.errno == errno.EIO

    def test_hang_blocks_until_released(self):
        plan = FaultPlan(rules=({"site": "s", "kind": "hang", "hang_seconds": 30.0},))
        plan.release_hangs()  # released up-front: fire must return immediately
        started = time.monotonic()
        assert plan.fire("s") is None
        assert time.monotonic() - started < 5.0

    def test_plan_json_round_trip(self):
        plan = FaultPlan(
            seed=7,
            rules=(
                {"site": "a", "kind": "crash", "nth": 1},
                {"site": "b.*", "kind": "enospc", "probability": 0.5},
            ),
        )
        rebuilt = FaultPlan.from_json(json.dumps(plan.to_dict()))
        assert rebuilt.seed == 7
        assert rebuilt.rules == plan.rules

    def test_from_dict_validation(self):
        with pytest.raises(ValidationError, match="JSON object"):
            FaultPlan.from_dict([1, 2])
        with pytest.raises(ValidationError, match="unknown fields"):
            FaultPlan.from_dict({"seed": 1, "extra": True})
        with pytest.raises(ValidationError, match="rules must be a list"):
            FaultPlan.from_dict({"rules": {"site": "x"}})
        with pytest.raises(ValidationError, match="invalid JSON"):
            FaultPlan.from_json("{nope")

    def test_from_env_reads_inline_json_and_files(self, tmp_path, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        assert FaultPlan.from_env() is None
        document = {"seed": 3, "rules": [{"site": "s", "kind": "transient"}]}
        monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps(document))
        assert FaultPlan.from_env().seed == 3
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps(document))
        monkeypatch.setenv(FAULT_PLAN_ENV, str(plan_file))
        assert FaultPlan.from_env().rules[0].site == "s"


class TestActivation:
    def test_fault_point_is_inert_without_a_plan(self):
        assert faults.active_plan() is None
        assert fault_point("any.site") is None

    def test_injected_faults_activates_and_restores(self):
        plan = FaultPlan(rules=({"site": "s", "kind": "torn_write"},))
        with injected_faults(plan) as active:
            assert faults.active_plan() is plan is active
            assert fault_point("s") == "torn_write"
        assert faults.active_plan() is None
        assert fault_point("s") is None

    def test_injected_faults_restores_on_error(self):
        plan = FaultPlan(rules=({"site": "s", "kind": "transient"},))
        with pytest.raises(TransientFaultError):
            with injected_faults(plan):
                fault_point("s")
        assert faults.active_plan() is None

    def test_activate_deactivate(self):
        plan = FaultPlan()
        assert faults.activate(plan) is plan
        assert faults.active_plan() is plan
        faults.deactivate()
        assert faults.active_plan() is None

    def test_every_kind_is_exercisable(self):
        # Guard against new kinds being added without a firing path.
        assert set(FAULT_KINDS) == {
            "torn_write", "enospc", "eio", "crash", "hang", "transient",
        }
        assert issubclass(SimulatedCrashError, RuntimeError)
        assert issubclass(TransientFaultError, RuntimeError)
