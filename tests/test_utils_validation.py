"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    ValidationError,
    check_in_range,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_shape,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 2.5) == 2.5

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_positive("x", 0.0)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_positive("x", -1.0)

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValidationError):
            check_positive("x", float("nan"))
        with pytest.raises(ValidationError):
            check_positive("x", float("inf"))

    def test_error_message_contains_name(self):
        with pytest.raises(ValidationError, match="pitch"):
            check_positive("pitch", -3)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_non_negative("x", -1e-9)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("x", 1.0, 1.0, 2.0) == 1.0
        assert check_in_range("x", 2.0, 1.0, 2.0) == 2.0

    def test_exclusive_bounds_reject_endpoints(self):
        with pytest.raises(ValidationError):
            check_in_range("x", 0.5, 0.5, 1.0, inclusive=False)

    def test_rejects_outside(self):
        with pytest.raises(ValidationError):
            check_in_range("x", 3.0, 0.0, 2.0)


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert check_positive_int("n", 3) == 3

    def test_rejects_non_integer(self):
        with pytest.raises(ValidationError):
            check_positive_int("n", 2.5)

    def test_respects_minimum(self):
        with pytest.raises(ValidationError):
            check_positive_int("n", 1, minimum=2)

    def test_zero_minimum_allows_zero(self):
        assert check_positive_int("n", 0, minimum=0) == 0


class TestCheckShape:
    def test_accepts_matching_shape(self):
        array = np.zeros((3, 2))
        out = check_shape("a", array, (3, 2))
        assert out.shape == (3, 2)

    def test_wildcard_axis(self):
        array = np.zeros((7, 3))
        assert check_shape("a", array, (None, 3)).shape == (7, 3)

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValidationError):
            check_shape("a", np.zeros(4), (2, 2))

    def test_rejects_wrong_axis_length(self):
        with pytest.raises(ValidationError):
            check_shape("a", np.zeros((4, 2)), (4, 3))
