"""Tests for the spec executor (repro.api.executor) and RunResult persistence.

The acceptance bar: one JSON spec drives an array run, a multi-load sweep and
a sub-model run end to end, producing stress fields bit-identical to the
equivalent direct ``MoreStressSimulator``/``SubModelingDriver`` calls, with
the sweep factorizing once (visible in the solver stats) and the RunResult
manifest surviving a save/load round trip.
"""

import numpy as np
import pytest

from repro.api import (
    GeometrySpec,
    LoadCase,
    MaterialsSpec,
    MaterialOverride,
    MeshSpec,
    RunResult,
    SimulationSpec,
    SubModelSpec,
    run,
)
from repro.baselines.coarse_model import CoarseChipletModel
from repro.geometry.package import ChipletPackage
from repro.materials.library import MaterialLibrary
from repro.rom.submodeling import SubModelingDriver
from repro.rom.workflow import MoreStressSimulator

MESH = MeshSpec(resolution="tiny", nodes_per_axis=(3, 3, 3), points_per_block=5)


def _simulator(spec: SimulationSpec) -> MoreStressSimulator:
    return MoreStressSimulator(
        spec.geometry.build_tsv(),
        spec.materials.build_library(),
        mesh_resolution=spec.mesh.build_resolution(),
        nodes_per_axis=spec.mesh.nodes_per_axis,
        solver_options=spec.solver.build_options(),
    )


class TestArrayRun:
    def test_single_case_bit_identical_to_simulate_array(self):
        spec = SimulationSpec(
            geometry=GeometrySpec(pitch=15.0, rows=2),
            mesh=MESH,
            load_cases=(LoadCase(name="cooldown", delta_t=-250.0),),
        )
        # Round trip through JSON first: the *document* drives the run.
        result = run(SimulationSpec.from_json(spec.to_json()))
        direct = _simulator(spec).simulate_array(rows=2, delta_t=-250.0)
        assert np.array_equal(
            result.case("cooldown").von_mises, direct.von_mises_midplane(5)
        )
        assert result.num_case_groups == 1
        assert result.case("cooldown").solver_method == "gmres"

    def test_material_overrides_change_the_answer(self):
        base = SimulationSpec(geometry=GeometrySpec(rows=2), mesh=MESH)
        overridden = SimulationSpec(
            geometry=GeometrySpec(rows=2),
            mesh=MESH,
            materials=MaterialsSpec(
                overrides=(MaterialOverride("copper", 200.0, 0.3, 25.0),)
            ),
        )
        vm_base = run(base).cases[0].von_mises
        vm_over = run(overridden).cases[0].von_mises
        assert not np.allclose(vm_base, vm_over)

    def test_materials_override_argument_recorded(self):
        spec = SimulationSpec(geometry=GeometrySpec(rows=1), mesh=MESH)
        result = run(spec, materials=MaterialLibrary.default())
        assert result.materials_overridden is True
        assert run(spec).materials_overridden is False


class TestLoadSweep:
    def test_sweep_factorizes_once_and_matches_direct_sweep(self):
        delta_ts = [-250.0, -150.0, -50.0]
        spec = SimulationSpec(
            geometry=GeometrySpec(pitch=15.0, rows=2),
            mesh=MESH,
            load_cases=tuple(
                LoadCase(name=f"dt{i}", delta_t=dt) for i, dt in enumerate(delta_ts)
            ),
        )
        result = run(SimulationSpec.from_json(spec.to_json()))

        # One execution group, solved with the factorize-once batched path:
        # the existing solve stats record it as "<backend>-batched".
        assert result.num_case_groups == 1
        assert all(case.group == 0 for case in result.cases)
        assert all(case.solver_method.endswith("-batched") for case in result.cases)

        direct = _simulator(spec).simulate_load_sweep(rows=2, delta_ts=delta_ts)
        for case, reference in zip(result.cases, direct):
            assert np.array_equal(case.von_mises, reference.von_mises_midplane(5))

    def test_mixed_sizes_group_by_layout_and_share_roms(self):
        spec = SimulationSpec(
            geometry=GeometrySpec(pitch=15.0, rows=2),
            mesh=MESH,
            load_cases=(
                LoadCase(name="a", delta_t=-250.0),
                LoadCase(name="b", delta_t=-100.0),
                LoadCase(name="c", delta_t=-250.0, rows=3),
            ),
        )
        result = run(spec)
        assert result.num_case_groups == 2
        assert result.case("a").group == result.case("b").group
        assert result.case("c").group != result.case("a").group
        # a+b share one factorisation; c is a single-case (plain solve) group.
        assert result.case("a").solver_method.endswith("-batched")
        assert result.case("c").solver_method == "gmres"
        # the ROM build (local stage) is shared across all groups
        assert result.case("c").local_stage_seconds == result.case("a").local_stage_seconds


class TestSubModelRun:
    @pytest.fixture(scope="class")
    def submodel_spec(self):
        return SimulationSpec(
            geometry=GeometrySpec(pitch=15.0, rows=2),
            mesh=MESH,
            load_cases=(LoadCase(name="corner", delta_t=-250.0, location="loc3"),),
            submodel=SubModelSpec(dummy_ring_width=1, coarse_inplane_cells=10),
        )

    def test_bit_identical_to_submodeling_driver(self, submodel_spec):
        result = run(SimulationSpec.from_json(submodel_spec.to_json()))

        package = ChipletPackage.scaled_default(1.0)
        materials = MaterialLibrary.default()
        coarse = CoarseChipletModel(package, materials, inplane_cells=10).solve(-250.0)
        driver = SubModelingDriver(
            simulator=_simulator(submodel_spec),
            package=package,
            coarse_solution=coarse,
            dummy_ring_width=1,
        )
        direct = driver.simulate(rows=2, cols=2, location="loc3", delta_t=-250.0)
        assert np.array_equal(
            result.case("corner").von_mises, direct.von_mises_midplane(5)
        )

    def test_shared_coarse_solution_is_reused(self, submodel_spec):
        package = ChipletPackage.scaled_default(1.0)
        coarse = CoarseChipletModel(
            package, MaterialLibrary.default(), inplane_cells=10
        ).solve(-250.0)
        result = run(submodel_spec, coarse_solution=coarse)
        assert result.cases[0].location == "loc3"
        assert result.cases[0].von_mises.shape == (2, 2, 5, 5)


class TestRunResultPersistence:
    def test_save_load_round_trips_manifest_and_fields(self, tmp_path):
        spec = SimulationSpec(
            geometry=GeometrySpec(pitch=15.0, rows=2),
            mesh=MESH,
            load_cases=(
                LoadCase(name="a", delta_t=-250.0),
                LoadCase(name="b", delta_t=-100.0),
            ),
        )
        result = run(spec)
        loaded = RunResult.load(result.save(tmp_path / "out"))
        assert loaded.manifest() == result.manifest()
        assert loaded.spec == spec
        assert loaded.spec_hash == result.spec_hash
        for original, restored in zip(result.cases, loaded.cases):
            assert np.array_equal(original.von_mises, restored.von_mises)
            assert restored.simulation is None

    def test_manifest_provenance_fields(self):
        spec = SimulationSpec(geometry=GeometrySpec(rows=1), mesh=MESH)
        result = run(spec)
        manifest = result.manifest()
        assert manifest["spec_hash"] == spec.spec_hash()
        assert manifest["spec"] == spec.to_dict()
        assert manifest["repro_version"]
        assert manifest["backends_used"] == ["gmres"]
        assert manifest["num_case_groups"] == 1
        assert manifest["cases"][0]["peak_von_mises"] > 0.0

    def test_rom_cache_stats_in_manifest(self, tmp_path):
        spec = SimulationSpec(geometry=GeometrySpec(rows=1), mesh=MESH)
        cold = run(spec, rom_cache=tmp_path / "cache")
        warm = run(spec, rom_cache=tmp_path / "cache")
        assert cold.rom_cache_stats == {"hits": 0, "misses": 1}
        assert warm.rom_cache_stats == {"hits": 1, "misses": 0}
        assert np.array_equal(cold.cases[0].von_mises, warm.cases[0].von_mises)

    def test_load_missing_directory_raises(self, tmp_path):
        with pytest.raises(Exception, match="manifest"):
            RunResult.load(tmp_path / "nothing-here")

    def test_case_lookup_by_name(self):
        spec = SimulationSpec(geometry=GeometrySpec(rows=1), mesh=MESH)
        result = run(spec)
        assert result.case("case0") is result.cases[0]
        with pytest.raises(KeyError):
            result.case("missing")


class TestCheckpointResume:
    """Per-group completion markers: kill a sweep, resume where it stopped."""

    @staticmethod
    def _spec() -> SimulationSpec:
        # Two case groups: (a, b) share the 2x2 layout, c is a 3x3 group.
        return SimulationSpec(
            geometry=GeometrySpec(pitch=15.0, rows=2),
            mesh=MESH,
            load_cases=(
                LoadCase(name="a", delta_t=-250.0),
                LoadCase(name="b", delta_t=-100.0),
                LoadCase(name="c", delta_t=-250.0, rows=3),
            ),
        )

    def test_kill_and_resume_skips_completed_groups(self, tmp_path, monkeypatch):
        import repro.api.executor as executor_module

        spec = self._spec()
        checkpoint = tmp_path / "checkpoint"
        fresh = run(SimulationSpec.from_json(spec.to_json()))

        class Killed(RuntimeError):
            pass

        def dying_progress(done: int, total: int, name: str) -> None:
            if name == "b":  # group 0 marker is on disk; group 1 not yet run
                raise Killed()

        with pytest.raises(Killed):
            run(spec, progress=dying_progress, checkpoint_dir=checkpoint)
        assert (checkpoint / "group0.npz").exists()
        assert not (checkpoint / "group1.npz").exists()

        real_execute = executor_module.execute_cases
        executed = []

        def counting_execute(simulator, layout, delta_ts, **kwargs):
            executed.append(tuple(delta_ts))
            return real_execute(simulator, layout, delta_ts, **kwargs)

        monkeypatch.setattr(executor_module, "execute_cases", counting_execute)
        resumed = run(spec, checkpoint_dir=checkpoint)
        # Only the unfinished group was solved on resume.
        assert executed == [(-250.0,)]
        for name in ("a", "b", "c"):
            np.testing.assert_array_equal(
                resumed.case(name).von_mises, fresh.case(name).von_mises
            )
            assert resumed.case(name).solver_method == fresh.case(name).solver_method
        assert (checkpoint / "group1.npz").exists()

    def test_corrupt_marker_degrades_to_fresh_solve(self, tmp_path):
        spec = self._spec()
        checkpoint = tmp_path / "checkpoint"
        checkpoint.mkdir()
        (checkpoint / "group0.npz").write_bytes(b"not a bundle")
        fresh = run(SimulationSpec.from_json(spec.to_json()))
        result = run(spec, checkpoint_dir=checkpoint)
        for name in ("a", "b", "c"):
            np.testing.assert_array_equal(
                result.case(name).von_mises, fresh.case(name).von_mises
            )

    def test_marker_of_a_different_spec_is_ignored(self, tmp_path):
        checkpoint = tmp_path / "checkpoint"
        first = self._spec()
        run(first, checkpoint_dir=checkpoint)
        assert (checkpoint / "group0.npz").exists()

        changed = SimulationSpec(
            geometry=GeometrySpec(pitch=15.0, rows=2),
            mesh=MESH,
            load_cases=(
                LoadCase(name="a", delta_t=-200.0),
                LoadCase(name="b", delta_t=-100.0),
                LoadCase(name="c", delta_t=-200.0, rows=3),
            ),
        )
        fresh = run(SimulationSpec.from_json(changed.to_json()))
        result = run(changed, checkpoint_dir=checkpoint)
        for name in ("a", "b", "c"):
            np.testing.assert_array_equal(
                result.case(name).von_mises, fresh.case(name).von_mises
            )
