"""Unit tests for the high-level simulator workflow and the sub-modeling driver."""

import numpy as np
import pytest

from repro.baselines.coarse_model import CoarseChipletModel
from repro.geometry.array_layout import BlockKind, TSVArrayLayout
from repro.geometry.package import ChipletPackage
from repro.materials.temperature import ThermalLoad
from repro.rom.submodeling import SubModelingDriver
from repro.rom.workflow import MoreStressSimulator
from repro.utils.validation import ValidationError

DELTA_T = -250.0


class TestMoreStressSimulator:
    def test_rom_caching(self, simulator_tiny):
        roms_first = simulator_tiny.build_roms()
        seconds_first = simulator_tiny.local_stage_seconds
        roms_second = simulator_tiny.build_roms()
        assert simulator_tiny.local_stage_seconds == seconds_first  # cached, no rebuild
        assert roms_first[BlockKind.TSV] is roms_second[BlockKind.TSV]

    def test_simulate_array_result_fields(self, rom_result_2x2):
        result = rom_result_2x2
        assert result.global_stage_seconds > 0.0
        assert result.peak_memory_bytes > 0
        assert result.num_global_dofs > 0
        assert result.delta_t == DELTA_T
        vm = result.von_mises_midplane(points_per_block=8)
        assert vm.shape == (2, 2, 8, 8)
        assert np.all(np.isfinite(vm))

    def test_rectangular_array(self, simulator_tiny):
        result = simulator_tiny.simulate_array(rows=1, cols=3, delta_t=DELTA_T)
        assert result.von_mises_midplane(points_per_block=5).shape == (1, 3, 5, 5)

    def test_thermal_load_object_accepted(self, simulator_tiny):
        result = simulator_tiny.simulate_array(rows=1, delta_t=ThermalLoad.paper_default())
        assert result.delta_t == pytest.approx(-250.0)

    def test_stress_scales_linearly_with_delta_t(self, simulator_tiny):
        full = simulator_tiny.simulate_array(rows=2, delta_t=DELTA_T)
        half = simulator_tiny.simulate_array(rows=2, delta_t=DELTA_T / 2)
        vm_full = full.von_mises_midplane(points_per_block=6)
        vm_half = half.von_mises_midplane(points_per_block=6)
        np.testing.assert_allclose(vm_half, 0.5 * vm_full, rtol=1e-6)

    def test_save_and_load_roms_roundtrip(self, simulator_tiny, tsv15, materials, tmp_path):
        simulator_tiny.build_roms(include_dummy=True)
        paths = simulator_tiny.save_roms(tmp_path)
        assert set(paths) == {"tsv", "dummy"}

        fresh = MoreStressSimulator(
            tsv15, materials, mesh_resolution="tiny", nodes_per_axis=(4, 4, 4)
        )
        fresh.load_roms(tmp_path)
        result_fresh = fresh.simulate_array(rows=2, delta_t=DELTA_T)
        result_orig = simulator_tiny.simulate_array(rows=2, delta_t=DELTA_T)
        np.testing.assert_allclose(
            result_fresh.von_mises_midplane(6), result_orig.von_mises_midplane(6), rtol=1e-9
        )

    def test_load_roms_missing_directory(self, simulator_tiny, tmp_path):
        with pytest.raises(ValidationError):
            MoreStressSimulator(
                simulator_tiny.tsv, simulator_tiny.materials, mesh_resolution="tiny"
            ).load_roms(tmp_path / "nothing_here")

    def test_explicit_layout_with_dummy_ring(self, simulator_tiny, tsv15):
        layout = TSVArrayLayout.with_dummy_ring(tsv15, rows=1, cols=1, ring_width=1)
        result = simulator_tiny.simulate_array(
            rows=1,
            delta_t=DELTA_T,
            layout=layout,
            boundary="submodel",
            displacement_field=lambda pts: np.zeros((pts.shape[0], 3)),
        )
        # Only the TSV region is sampled by default.
        assert result.von_mises_midplane(points_per_block=5).shape == (1, 1, 5, 5)


class TestCoarseChipletModel:
    @pytest.fixture(scope="class")
    def coarse_solution(self, materials):
        package = ChipletPackage()
        model = CoarseChipletModel(package, materials, inplane_cells=10)
        return model.solve(DELTA_T)

    def test_mesh_contains_all_layers(self, materials):
        package = ChipletPackage()
        mesh = CoarseChipletModel(package, materials, inplane_cells=8).build_mesh()
        roles = set(mesh.element_roles())
        assert {"substrate", "silicon", "underfill", "void"} <= roles

    def test_warpage_positive_and_reasonable(self, coarse_solution):
        warpage = coarse_solution.warpage()
        assert warpage > 0.01      # the stack must warp measurably (um)
        assert warpage < 100.0     # but not absurdly

    def test_displacement_field_callable(self, coarse_solution):
        field = coarse_solution.displacement_field()
        z0, z1 = coarse_solution.package.interposer_z_range
        points = np.array([[0.0, 0.0, 0.5 * (z0 + z1)], [100.0, -50.0, z0]])
        values = field(points)
        assert values.shape == (2, 3)
        assert np.all(np.isfinite(values))

    def test_stress_field_per_unit_load(self, coarse_solution):
        field = coarse_solution.stress_field_per_unit_load()
        z0, _ = coarse_solution.package.interposer_z_range
        stress = field(np.array([[0.0, 0.0, z0 + 10.0]]))
        assert stress.shape == (1, 6)
        # per unit load: multiplying by delta_t recovers the full stress
        full = coarse_solution.evaluator.stress_at(
            np.array([[0.0, 0.0, z0 + 10.0]]),
            coarse_solution.displacement,
            coarse_solution.delta_t,
        )
        np.testing.assert_allclose(stress * coarse_solution.delta_t, full, rtol=1e-9)

    def test_die_region_stress_differs_from_edge(self, coarse_solution):
        """The background stress is non-uniform (that is what scenario 2 needs)."""
        field = coarse_solution.stress_field_per_unit_load()
        z0, z1 = coarse_solution.package.interposer_z_range
        z_mid = 0.5 * (z0 + z1)
        centre = field(np.array([[0.0, 0.0, z_mid]]))
        near_edge = field(
            np.array([[0.45 * coarse_solution.package.interposer_size, 0.0, z_mid]])
        )
        assert not np.allclose(centre, near_edge, rtol=0.05)


class TestSubModelingDriver:
    @pytest.fixture(scope="class")
    def driver(self, materials, tsv15):
        package = ChipletPackage()
        coarse = CoarseChipletModel(package, materials, inplane_cells=10).solve(DELTA_T)
        simulator = MoreStressSimulator(
            tsv15, materials, mesh_resolution="tiny", nodes_per_axis=(3, 3, 3)
        )
        return SubModelingDriver(
            simulator=simulator,
            package=package,
            coarse_solution=coarse,
            dummy_ring_width=1,
        )

    def test_height_mismatch_rejected(self, materials, tsv15):
        package = ChipletPackage(interposer_thickness=80.0)
        coarse = CoarseChipletModel(package, materials, inplane_cells=6).solve(DELTA_T)
        simulator = MoreStressSimulator(tsv15, materials, mesh_resolution="tiny")
        with pytest.raises(ValidationError):
            SubModelingDriver(simulator, package, coarse)

    def test_padded_layout(self, driver):
        location = driver.location("loc1", rows=2, cols=2)
        layout = driver.padded_layout(2, 2, location)
        assert layout.shape == (4, 4)
        assert layout.num_tsv_blocks == 4
        assert layout.origin == location.origin

    def test_simulate_produces_positive_stress(self, driver):
        result = driver.simulate(rows=2, cols=2, location="loc1")
        vm = result.von_mises_midplane(points_per_block=6)
        assert vm.shape == (2, 2, 6, 6)
        assert vm.max() > 50.0  # hundreds of MPa expected around the vias

    def test_different_locations_give_different_fields(self, driver):
        centre = driver.simulate(rows=2, cols=2, location="loc1")
        corner = driver.simulate(rows=2, cols=2, location="loc5")
        vm_centre = centre.von_mises_midplane(points_per_block=6)
        vm_corner = corner.von_mises_midplane(points_per_block=6)
        assert not np.allclose(vm_centre, vm_corner, rtol=1e-3)

    def test_delta_t_defaults_to_coarse_solution(self, driver):
        result = driver.simulate(rows=2, cols=2, location="loc2")
        assert result.delta_t == pytest.approx(DELTA_T)
