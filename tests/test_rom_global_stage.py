"""Unit tests for the global DoF numbering, global stage and field reconstruction."""

import dataclasses

import numpy as np
import pytest

from repro.fem.solver import SolverOptions
from repro.geometry.array_layout import BlockKind, TSVArrayLayout
from repro.geometry.unit_block import UnitBlockGeometry
from repro.rom.global_dofs import GlobalDofManager
from repro.rom.global_stage import GlobalStage
from repro.rom.reconstruction import BlockFieldSampler, block_midplane_points
from repro.utils.validation import ValidationError

DELTA_T = -250.0


class TestGlobalDofManager:
    def test_node_sharing_between_adjacent_blocks(self, tsv15, scheme_333):
        layout = TSVArrayLayout.full(tsv15, rows=1, cols=2)
        manager = GlobalDofManager(layout, scheme_333)
        nx, ny, nz = scheme_333.nodes_per_axis
        per_block = scheme_333.num_surface_nodes
        # Two blocks share one face of ny*nz interpolation nodes.
        expected = 2 * per_block - ny * nz
        assert manager.num_global_nodes == expected
        assert manager.num_global_dofs == 3 * expected

    def test_single_block_counts(self, tsv15, scheme_333):
        layout = TSVArrayLayout.full(tsv15, rows=1, cols=1)
        manager = GlobalDofManager(layout, scheme_333)
        assert manager.num_global_nodes == scheme_333.num_surface_nodes

    def test_shared_dofs_identical_in_both_blocks(self, tsv15, scheme_333):
        layout = TSVArrayLayout.full(tsv15, rows=1, cols=2)
        manager = GlobalDofManager(layout, scheme_333)
        left = set(manager.block_node_ids(0, 0).tolist())
        right = set(manager.block_node_ids(0, 1).tolist())
        nx, ny, nz = scheme_333.nodes_per_axis
        assert len(left & right) == ny * nz

    def test_block_dof_ids_ordering(self, tsv15, scheme_333):
        layout = TSVArrayLayout.full(tsv15, rows=1, cols=1)
        manager = GlobalDofManager(layout, scheme_333)
        dofs = manager.block_dof_ids(0, 0)
        nodes = manager.block_node_ids(0, 0)
        np.testing.assert_array_equal(dofs[0:3], [3 * nodes[0], 3 * nodes[0] + 1, 3 * nodes[0] + 2])

    def test_node_positions_cover_layout(self, tsv15, scheme_333):
        layout = TSVArrayLayout.full(tsv15, rows=2, cols=3, origin=(5.0, 10.0, 20.0))
        manager = GlobalDofManager(layout, scheme_333)
        positions = manager.node_positions()
        assert positions[:, 0].min() == pytest.approx(5.0)
        assert positions[:, 0].max() == pytest.approx(5.0 + 45.0)
        assert positions[:, 1].max() == pytest.approx(10.0 + 30.0)
        assert positions[:, 2].min() == pytest.approx(20.0)
        assert positions[:, 2].max() == pytest.approx(70.0)

    def test_boundary_classification(self, tsv15, scheme_333):
        layout = TSVArrayLayout.full(tsv15, rows=2, cols=2)
        manager = GlobalDofManager(layout, scheme_333)
        positions = manager.node_positions()
        bottom = manager.bottom_node_ids()
        np.testing.assert_allclose(positions[bottom, 2], 0.0)
        top = manager.top_node_ids()
        np.testing.assert_allclose(positions[top, 2], 50.0)
        lateral = manager.lateral_node_ids()
        on_outer = (
            np.isclose(positions[lateral, 0], 0.0)
            | np.isclose(positions[lateral, 0], 30.0)
            | np.isclose(positions[lateral, 1], 0.0)
            | np.isclose(positions[lateral, 1], 30.0)
        )
        assert np.all(on_outer)
        outer = manager.outer_boundary_node_ids()
        assert outer.size <= manager.num_global_nodes

    def test_unknown_block_raises(self, tsv15, scheme_333):
        layout = TSVArrayLayout.full(tsv15, rows=1, cols=1)
        manager = GlobalDofManager(layout, scheme_333)
        with pytest.raises(ValidationError):
            manager.block_node_ids(3, 3)
        with pytest.raises(ValidationError):
            manager.block_node_ids(-1, 0)

    def test_all_block_dof_ids_matches_per_block(self, tsv15, scheme_333):
        layout = TSVArrayLayout.full(tsv15, rows=2, cols=3)
        manager = GlobalDofManager(layout, scheme_333)
        stacked = manager.all_block_dof_ids()
        assert stacked.shape == (layout.num_blocks, manager.dofs_per_block)
        for index, (row, col, _) in enumerate(layout.iter_blocks()):
            np.testing.assert_array_equal(stacked[index], manager.block_dof_ids(row, col))

    def test_invalid_numbering_mode_rejected(self, tsv15, scheme_333):
        layout = TSVArrayLayout.full(tsv15, rows=1, cols=1)
        with pytest.raises(ValidationError):
            GlobalDofManager(layout, scheme_333, numbering="fancy")


class TestVectorizedNumberingEquivalence:
    """The vectorized numbering must reproduce the reference loop exactly."""

    @pytest.mark.parametrize("rows,cols", [(1, 1), (1, 4), (3, 2), (4, 4)])
    def test_numbering_identical_to_loop(self, tsv15, scheme_333, rows, cols):
        layout = TSVArrayLayout.full(tsv15, rows=rows, cols=cols)
        vectorized = GlobalDofManager(layout, scheme_333)
        loop = GlobalDofManager(layout, scheme_333, numbering="loop")
        np.testing.assert_array_equal(vectorized._node_keys, loop._node_keys)
        np.testing.assert_array_equal(
            vectorized._block_node_ids, loop._block_node_ids
        )


class TestGlobalStageAssembly:
    def test_assemble_shapes(self, rom_tsv_tiny, materials, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=2, cols=2)
        stage = GlobalStage({BlockKind.TSV: rom_tsv_tiny}, materials)
        matrix, rhs, manager = stage.assemble(layout, DELTA_T)
        assert matrix.shape == (manager.num_global_dofs,) * 2
        assert rhs.shape == (manager.num_global_dofs,)
        asymmetry = abs(matrix - matrix.T).max()
        assert asymmetry < 1e-6 * abs(matrix).max()

    def test_missing_dummy_rom_rejected(self, rom_tsv_tiny, materials, tsv15):
        layout = TSVArrayLayout.with_dummy_ring(tsv15, rows=1, cols=1, ring_width=1)
        stage = GlobalStage({BlockKind.TSV: rom_tsv_tiny}, materials)
        with pytest.raises(ValidationError):
            stage.assemble(layout, DELTA_T)

    def test_pitch_mismatch_rejected(self, rom_tsv_tiny, materials, tsv10):
        layout = TSVArrayLayout.full(tsv10, rows=1, cols=1)
        stage = GlobalStage({BlockKind.TSV: rom_tsv_tiny}, materials)
        with pytest.raises(ValidationError):
            stage.assemble(layout, DELTA_T)

    def test_rhs_scales_with_thermal_load(self, rom_tsv_tiny, materials, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=2, cols=1)
        stage = GlobalStage({BlockKind.TSV: rom_tsv_tiny}, materials)
        _, rhs_full, _ = stage.assemble(layout, DELTA_T)
        _, rhs_half, _ = stage.assemble(layout, DELTA_T / 2)
        np.testing.assert_allclose(rhs_half, 0.5 * rhs_full)

    def test_empty_roms_rejected(self, materials, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=1, cols=1)
        stage = GlobalStage({}, materials)
        with pytest.raises(ValidationError, match="no reduced order models"):
            stage.assemble(layout, DELTA_T)
        with pytest.raises(ValidationError, match="no reduced order models"):
            stage.solve(layout, DELTA_T)

    def test_inconsistent_rom_pitches_reported(self, rom_tsv_tiny, materials, tsv15, tsv10):
        other = dataclasses.replace(
            rom_tsv_tiny, block=UnitBlockGeometry(tsv=tsv10, has_tsv=False)
        )
        stage = GlobalStage(
            {BlockKind.TSV: rom_tsv_tiny, BlockKind.DUMMY: other}, materials
        )
        layout = TSVArrayLayout.full(tsv15, rows=1, cols=1)
        with pytest.raises(ValidationError, match="inconsistent pitches"):
            stage.assemble(layout, DELTA_T)

    def test_layout_pitch_mismatch_reported(self, rom_tsv_tiny, materials, tsv10):
        layout = TSVArrayLayout.full(tsv10, rows=1, cols=1)
        stage = GlobalStage({BlockKind.TSV: rom_tsv_tiny}, materials)
        with pytest.raises(ValidationError, match="does not match the layout pitch"):
            stage.assemble(layout, DELTA_T)


class TestVectorizedAssemblyEquivalence:
    """Batched assembly must be bit-identical to the reference block loop."""

    def _compare(self, stage, layout):
        matrix_v, rhs_v, manager_v = stage.assemble(layout, DELTA_T)
        matrix_r, rhs_r, manager_r = stage.assemble_reference(layout, DELTA_T)
        assert manager_v.num_global_dofs == manager_r.num_global_dofs
        matrix_v.sort_indices()
        matrix_r.sort_indices()
        np.testing.assert_array_equal(matrix_v.indptr, matrix_r.indptr)
        np.testing.assert_array_equal(matrix_v.indices, matrix_r.indices)
        np.testing.assert_array_equal(matrix_v.data, matrix_r.data)
        np.testing.assert_array_equal(rhs_v, rhs_r)

    def test_single_kind_layout(self, rom_tsv_tiny, materials, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=3, cols=2)
        stage = GlobalStage({BlockKind.TSV: rom_tsv_tiny}, materials)
        self._compare(stage, layout)

    def test_mixed_kind_layout(self, rom_tsv_tiny, rom_dummy_tiny, materials, tsv15):
        layout = TSVArrayLayout.with_dummy_ring(tsv15, rows=2, cols=2, ring_width=1)
        stage = GlobalStage(
            {BlockKind.TSV: rom_tsv_tiny, BlockKind.DUMMY: rom_dummy_tiny}, materials
        )
        self._compare(stage, layout)


class TestSolveMany:
    def test_matches_individual_solves(self, rom_tsv_tiny, materials, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=2, cols=2)
        stage = GlobalStage(
            {BlockKind.TSV: rom_tsv_tiny}, materials, SolverOptions(method="direct")
        )
        loads = [DELTA_T, -100.0, 50.0]
        batched = stage.solve_many(layout, loads)
        assert len(batched) == len(loads)
        for delta_t, solution in zip(loads, batched):
            assert solution.delta_t == delta_t
            reference = stage.solve(layout, delta_t)
            scale = max(np.abs(reference.nodal_displacement).max(), 1e-30)
            np.testing.assert_allclose(
                solution.nodal_displacement,
                reference.nodal_displacement,
                atol=1e-8 * scale,
            )

    def test_batched_stats_describe_direct_solve(self, rom_tsv_tiny, materials, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=1, cols=2)
        stage = GlobalStage({BlockKind.TSV: rom_tsv_tiny}, materials)
        solutions = stage.solve_many(layout, [DELTA_T, DELTA_T / 2])
        for solution in solutions:
            assert solution.solver_stats.method == "direct-batched"
            assert solution.solver_stats.converged
        # Linearity in the load: half the delta_t gives half the displacement.
        np.testing.assert_allclose(
            solutions[1].nodal_displacement,
            0.5 * solutions[0].nodal_displacement,
            atol=1e-12,
        )

    def test_submodel_field_variants_share_factorization(
        self, rom_tsv_tiny, materials, tsv15
    ):
        layout = TSVArrayLayout.full(tsv15, rows=1, cols=1)
        stage = GlobalStage(
            {BlockKind.TSV: rom_tsv_tiny}, materials, SolverOptions(method="direct")
        )

        def zero_field(points):
            return np.zeros((points.shape[0], 3))

        def shifted_field(points):
            values = np.zeros((points.shape[0], 3))
            values[:, 0] = 1e-3
            return values

        batched = stage.solve_many(
            layout,
            [DELTA_T, DELTA_T],
            boundary_condition="submodel",
            displacement_fields=[zero_field, shifted_field],
        )
        for field, solution in zip((zero_field, shifted_field), batched):
            reference = stage.solve(
                layout, DELTA_T, boundary_condition="submodel",
                displacement_field=field,
            )
            scale = max(np.abs(reference.nodal_displacement).max(), 1e-30)
            np.testing.assert_allclose(
                solution.nodal_displacement,
                reference.nodal_displacement,
                atol=1e-8 * scale,
            )

    def test_invalid_inputs_rejected(self, rom_tsv_tiny, materials, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=1, cols=1)
        stage = GlobalStage({BlockKind.TSV: rom_tsv_tiny}, materials)
        with pytest.raises(ValidationError, match="at least one thermal load"):
            stage.solve_many(layout, [])
        with pytest.raises(ValidationError, match="displacement_fields"):
            stage.solve_many(layout, [DELTA_T], boundary_condition="submodel")
        with pytest.raises(ValidationError, match="displacement fields"):
            stage.solve_many(
                layout,
                [DELTA_T, DELTA_T],
                boundary_condition="submodel",
                displacement_fields=[lambda p: np.zeros((p.shape[0], 3))],
            )
        with pytest.raises(ValidationError, match="boundary_condition"):
            stage.solve_many(layout, [DELTA_T], boundary_condition="periodic")


class TestGlobalStageSolve:
    def test_clamped_solution_basics(self, rom_tsv_tiny, materials, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=2, cols=2)
        stage = GlobalStage(
            {BlockKind.TSV: rom_tsv_tiny},
            materials,
            solver_options=SolverOptions(method="direct"),
        )
        solution = stage.solve(layout, DELTA_T, boundary_condition="clamped")
        assert solution.nodal_displacement.shape == (solution.num_global_dofs,)
        # Clamped top and bottom interpolation nodes have zero displacement.
        manager = solution.manager
        clamped_nodes = np.concatenate([manager.bottom_node_ids(), manager.top_node_ids()])
        clamped_dofs = manager.node_dof_ids(clamped_nodes)
        np.testing.assert_allclose(solution.nodal_displacement[clamped_dofs], 0.0, atol=1e-9)
        # Mid-height lateral nodes move outward or inward but not absurdly.
        assert solution.max_displacement() < 1.0  # um
        assert solution.max_displacement() > 0.0

    def test_direct_and_gmres_agree(self, rom_tsv_tiny, materials, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=2, cols=1)
        direct = GlobalStage(
            {BlockKind.TSV: rom_tsv_tiny}, materials, SolverOptions(method="direct")
        ).solve(layout, DELTA_T)
        gmres = GlobalStage(
            {BlockKind.TSV: rom_tsv_tiny}, materials, SolverOptions(method="gmres", rtol=1e-12)
        ).solve(layout, DELTA_T)
        np.testing.assert_allclose(
            gmres.nodal_displacement,
            direct.nodal_displacement,
            atol=1e-8 * np.abs(direct.nodal_displacement).max(),
        )

    def test_von_mises_midplane_shape_and_symmetry(self, rom_tsv_tiny, materials, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=2, cols=2)
        stage = GlobalStage({BlockKind.TSV: rom_tsv_tiny}, materials, SolverOptions())
        solution = stage.solve(layout, DELTA_T)
        vm = solution.von_mises_midplane(points_per_block=10)
        assert vm.shape == (2, 2, 10, 10)
        assert np.all(vm > 0.0)
        # 4-fold symmetry of the 2x2 array: the four blocks see mirrored fields.
        assert vm[0, 0].max() == pytest.approx(vm[1, 1].max(), rel=0.02)

    def test_flat_output_matches_blocks(self, rom_tsv_tiny, materials, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=1, cols=2)
        stage = GlobalStage({BlockKind.TSV: rom_tsv_tiny}, materials, SolverOptions())
        solution = stage.solve(layout, DELTA_T)
        blocks = solution.von_mises_midplane(points_per_block=6)
        flat = solution.von_mises_midplane_flat(points_per_block=6)
        np.testing.assert_allclose(flat, blocks.reshape(-1))

    def test_submodel_bc_requires_field(self, rom_tsv_tiny, materials, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=1, cols=1)
        stage = GlobalStage({BlockKind.TSV: rom_tsv_tiny}, materials, SolverOptions())
        with pytest.raises(ValidationError):
            stage.solve(layout, DELTA_T, boundary_condition="submodel")

    def test_unknown_bc_rejected(self, rom_tsv_tiny, materials, tsv15):
        layout = TSVArrayLayout.full(tsv15, rows=1, cols=1)
        stage = GlobalStage({BlockKind.TSV: rom_tsv_tiny}, materials, SolverOptions())
        with pytest.raises(ValidationError):
            stage.solve(layout, DELTA_T, boundary_condition="periodic")

    def test_prescribed_zero_boundary_equals_clamped_everywhere(
        self, rom_tsv_tiny, materials, tsv15
    ):
        """Prescribing zero displacement on the whole outer boundary via the
        submodel path must give the same answer as an explicit DirichletBC."""
        layout = TSVArrayLayout.full(tsv15, rows=1, cols=1)
        stage = GlobalStage({BlockKind.TSV: rom_tsv_tiny}, materials, SolverOptions())

        submodel = stage.solve(
            layout,
            DELTA_T,
            boundary_condition="submodel",
            displacement_field=lambda points: np.zeros((points.shape[0], 3)),
        )
        matrix, rhs, manager = stage.assemble(layout, DELTA_T)
        explicit_bc = stage.prescribed_boundary_bc(
            manager, lambda points: np.zeros((points.shape[0], 3))
        )
        explicit = stage.solve(layout, DELTA_T, boundary_condition=explicit_bc)
        np.testing.assert_allclose(
            submodel.nodal_displacement, explicit.nodal_displacement, atol=1e-10
        )


class TestBlockFieldSampler:
    def test_midplane_points_layout(self, rom_tsv_tiny):
        points = block_midplane_points(rom_tsv_tiny, points_per_block=4)
        assert points.shape == (16, 3)
        np.testing.assert_allclose(points[:, 2], 25.0)
        assert points[:, 0].min() > 0.0 and points[:, 0].max() < 15.0

    def test_sampler_matches_reconstruction(self, rom_tsv_tiny, materials):
        """The fast sampler agrees with reconstructing then evaluating."""
        from repro.fem.fields import FieldEvaluator

        rng = np.random.default_rng(1)
        nodal = 1e-3 * rng.normal(size=rom_tsv_tiny.num_element_dofs)
        points = block_midplane_points(rom_tsv_tiny, 5)
        sampler = BlockFieldSampler(rom_tsv_tiny, materials, points)
        fast = sampler.von_mises(nodal, DELTA_T)

        fine = rom_tsv_tiny.reconstruct_displacement(nodal, DELTA_T)
        evaluator = FieldEvaluator(rom_tsv_tiny.mesh, materials)
        slow = evaluator.von_mises_at(points, fine, DELTA_T)
        np.testing.assert_allclose(fast, slow, rtol=1e-9)

    def test_displacement_sampling(self, rom_tsv_tiny, materials):
        points = block_midplane_points(rom_tsv_tiny, 3)
        sampler = BlockFieldSampler(rom_tsv_tiny, materials, points)
        values = sampler.displacement(np.zeros(rom_tsv_tiny.num_element_dofs), 0.0)
        np.testing.assert_allclose(values, 0.0)

    def test_invalid_points_rejected(self, rom_tsv_tiny, materials):
        with pytest.raises(ValidationError):
            BlockFieldSampler(rom_tsv_tiny, materials, np.zeros((3, 2)))

    def test_stress_from_fine_checks_size(self, rom_tsv_tiny, materials):
        points = block_midplane_points(rom_tsv_tiny, 2)
        sampler = BlockFieldSampler(rom_tsv_tiny, materials, points)
        with pytest.raises(ValidationError):
            sampler.stress_from_fine(np.zeros(7), 0.0)


class TestBatchedFactorizationGuard:
    """solve_many must not trust a mis-factorising alternative backend."""

    def test_bad_factorization_redone_with_direct(
        self, rom_tsv_tiny, materials, monkeypatch
    ):
        import repro.rom.global_stage as global_stage_module

        class BogusOperator:
            def __init__(self, matrix):
                self.shape = matrix.shape

            def solve(self, rhs):
                return np.zeros_like(np.asarray(rhs, dtype=float))

        class BogusBackend:
            name = "bogus"

            def factorize(self, matrix):
                return BogusOperator(matrix)

        monkeypatch.setattr(
            global_stage_module,
            "resolve_backend",
            lambda name: (BogusBackend(), "bogus"),
        )
        stage = GlobalStage({BlockKind.TSV: rom_tsv_tiny}, materials)
        layout = TSVArrayLayout.full(rom_tsv_tiny.block.tsv, rows=2)
        reference = stage.solve(layout, DELTA_T)
        solutions = stage.solve_many(layout, [DELTA_T])
        assert solutions[0].solver_stats.method == "direct-batched"
        assert solutions[0].solver_stats.converged
        np.testing.assert_allclose(
            solutions[0].nodal_displacement,
            reference.nodal_displacement,
            atol=1e-8,
        )
