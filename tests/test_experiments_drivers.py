"""End-to-end tests of the experiment drivers (minimal configurations).

The benchmark harness runs the full default configurations; these tests use
the smallest possible configurations so the drivers' plumbing (record
collection, improvement factors, table formatting) is covered by the regular
test suite as well.
"""

import pytest

from repro.experiments.config import ConvergenceConfig, Scenario1Config, Scenario2Config
from repro.experiments.convergence import (
    convergence_table,
    is_monotonically_converging,
    run_convergence_study,
)
from repro.experiments.scenario1 import run_scenario1, scenario1_table
from repro.experiments.scenario2 import run_scenario2, scenario2_table


@pytest.fixture(scope="module")
def tiny_scenario1_records(materials):
    config = Scenario1Config(
        pitches=(15.0,),
        array_sizes=(2,),
        mesh_resolution="tiny",
        nodes_per_axis=(3, 3, 3),
        points_per_block=10,
    )
    return run_scenario1(config, materials)


class TestScenario1Driver:
    def test_one_record_per_case(self, tiny_scenario1_records):
        assert len(tiny_scenario1_records) == 1
        record = tiny_scenario1_records[0]
        assert record.pitch == 15.0
        assert record.array_size == 2

    def test_record_sanity(self, tiny_scenario1_records):
        record = tiny_scenario1_records[0]
        assert record.reference_dofs > record.rom_global_dofs
        assert record.reference_seconds > 0
        assert 0.0 <= record.rom_error < 0.2
        assert 0.0 <= record.superposition_error < 0.2
        assert record.time_improvement_over_reference > 1.0
        assert record.accuracy_improvement_over_superposition > 0.0

    def test_table_rendering(self, tiny_scenario1_records):
        table = scenario1_table(tiny_scenario1_records)
        text = table.to_text()
        assert "2x2" in text and "15 um" in text
        assert len(table) == 1


class TestScenario2Driver:
    @pytest.fixture(scope="class")
    def records(self, materials):
        config = Scenario2Config(
            pitches=(15.0,),
            locations=("loc1",),
            array_rows=2,
            array_cols=2,
            dummy_ring_width=1,
            mesh_resolution="tiny",
            nodes_per_axis=(3, 3, 3),
            points_per_block=10,
            coarse_inplane_cells=10,
        )
        return run_scenario2(config, materials)

    def test_single_location_record(self, records):
        assert len(records) == 1
        record = records[0]
        assert record.location == "loc1"
        assert record.rom_error < 0.05
        assert record.rom_global_stage_seconds < record.reference_seconds

    def test_table_rendering(self, records):
        text = scenario2_table(records).to_text()
        assert "loc1" in text


class TestConvergenceDriver:
    @pytest.fixture(scope="class")
    def study(self, materials):
        config = ConvergenceConfig(
            array_size=2,
            node_counts=((2, 2, 2), (3, 3, 3), (4, 4, 4)),
            mesh_resolution="tiny",
            points_per_block=10,
        )
        return run_convergence_study(config, materials)

    def test_records_and_reference_time(self, study):
        records, reference_seconds = study
        assert len(records) == 3
        assert reference_seconds > 0
        assert [r.num_element_dofs for r in records] == [24, 78, 168]

    def test_convergence_is_monotone(self, study):
        records, _ = study
        assert is_monotonically_converging(records)
        assert records[-1].error < records[0].error

    def test_fig6_points(self, study):
        records, _ = study
        n, error, runtime = records[0].as_fig6_point()
        assert n == 24 and error > 0 and runtime > 0

    def test_table_rendering(self, study):
        records, reference_seconds = study
        text = convergence_table(records, reference_seconds).to_text()
        assert "(2, 2, 2)" in text and "error" in text
