"""Unit tests for the Lagrange interpolation scheme of the ROM."""

import numpy as np
import pytest

from repro.rom.interpolation import InterpolationScheme, lagrange_1d_values
from repro.utils.validation import ValidationError


class TestLagrange1D:
    def test_kronecker_delta_at_nodes(self):
        nodes = np.linspace(0.0, 15.0, 4)
        values = lagrange_1d_values(nodes, nodes)
        np.testing.assert_allclose(values, np.eye(4), atol=1e-12)

    def test_partition_of_unity(self):
        nodes = np.linspace(0.0, 10.0, 5)
        points = np.linspace(0.0, 10.0, 37)
        values = lagrange_1d_values(points, nodes)
        np.testing.assert_allclose(values.sum(axis=1), 1.0, atol=1e-10)

    def test_reproduces_polynomials_up_to_degree(self):
        nodes = np.linspace(0.0, 1.0, 4)  # cubic interpolation
        points = np.linspace(0.0, 1.0, 11)
        values = lagrange_1d_values(points, nodes)
        for degree in range(4):
            nodal = nodes**degree
            np.testing.assert_allclose(values @ nodal, points**degree, atol=1e-10)

    def test_single_node(self):
        values = lagrange_1d_values(np.array([1.0, 2.0]), np.array([5.0]))
        np.testing.assert_allclose(values, 1.0)

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(ValidationError):
            lagrange_1d_values(np.array([0.5]), np.array([1.0, 1.0]))


class TestInterpolationSchemeCounting:
    @pytest.mark.parametrize(
        "nodes,expected_n",
        [((2, 2, 2), 24), ((3, 3, 3), 78), ((4, 4, 4), 168), ((5, 5, 5), 294), ((6, 6, 6), 456)],
    )
    def test_paper_table3_dof_counts(self, nodes, expected_n):
        """The element DoF counts of paper Table 3 follow Eq. 16."""
        assert InterpolationScheme(nodes).num_element_dofs == expected_n

    def test_surface_count_matches_equation_16(self):
        scheme = InterpolationScheme((4, 5, 3))
        nx, ny, nz = 4, 5, 3
        expected = nx * ny * nz - (nx - 2) * (ny - 2) * (nz - 2)
        assert scheme.num_surface_nodes == expected
        assert scheme.num_element_dofs == 3 * expected

    def test_surface_indices_are_actually_on_surface(self):
        scheme = InterpolationScheme((4, 4, 4))
        indices = scheme.surface_node_indices()
        assert indices.shape == (scheme.num_surface_nodes, 3)
        on_surface = (
            (indices[:, 0] % 3 == 0)
            | (indices[:, 1] % 3 == 0)
            | (indices[:, 2] % 3 == 0)
        )
        assert np.all(on_surface)
        # unique
        assert len({tuple(row) for row in indices}) == indices.shape[0]

    def test_minimum_two_nodes_per_axis(self):
        with pytest.raises(ValidationError):
            InterpolationScheme((1, 4, 4))

    def test_describe(self):
        assert "168" in InterpolationScheme((4, 4, 4)).describe()


class TestInterpolationSchemeGeometry:
    def test_axis_positions_span_block(self):
        scheme = InterpolationScheme((4, 4, 3))
        xs, ys, zs = scheme.axis_positions((15.0, 15.0, 50.0))
        assert xs[0] == 0.0 and xs[-1] == 15.0 and len(xs) == 4
        assert zs[-1] == 50.0 and len(zs) == 3

    def test_surface_positions_on_boundary(self):
        scheme = InterpolationScheme((3, 3, 3))
        positions = scheme.surface_node_positions((10.0, 10.0, 20.0))
        on_face = (
            np.isclose(positions[:, 0], 0.0)
            | np.isclose(positions[:, 0], 10.0)
            | np.isclose(positions[:, 1], 0.0)
            | np.isclose(positions[:, 1], 10.0)
            | np.isclose(positions[:, 2], 0.0)
            | np.isclose(positions[:, 2], 20.0)
        )
        assert np.all(on_face)


class TestBasisEvaluation:
    def test_nodal_interpolation_property_on_surface(self):
        scheme = InterpolationScheme((4, 4, 4))
        dims = (15.0, 15.0, 50.0)
        positions = scheme.surface_node_positions(dims)
        basis = scheme.basis_at_points(positions, dims)
        np.testing.assert_allclose(basis, np.eye(scheme.num_surface_nodes), atol=1e-9)

    def test_partition_of_unity_on_faces(self):
        """On any block face the surface basis functions sum to one (Eq. 10)."""
        scheme = InterpolationScheme((4, 4, 4))
        dims = (15.0, 15.0, 50.0)
        rng = np.random.default_rng(0)
        face_points = np.column_stack(
            [
                np.zeros(20),
                rng.uniform(0, 15, 20),
                rng.uniform(0, 50, 20),
            ]
        )
        basis = scheme.basis_at_points(face_points, dims)
        np.testing.assert_allclose(basis.sum(axis=1), 1.0, atol=1e-9)

    def test_boundary_interpolation_matrix_structure(self):
        scheme = InterpolationScheme((3, 3, 3))
        dims = (10.0, 10.0, 10.0)
        boundary_points = np.array([[0.0, 0.0, 0.0], [0.0, 5.0, 5.0]])
        matrix = scheme.boundary_interpolation_matrix(boundary_points, dims)
        assert matrix.shape == (6, 3 * scheme.num_surface_nodes)
        # components do not mix: row 0 (x of point 0) has zeros in y/z columns
        assert np.all(matrix[0, 1::3] == 0.0)
        assert np.all(matrix[0, 2::3] == 0.0)
        # the corner point reproduces its own node exactly: one unit entry
        assert np.isclose(matrix[0].max(), 1.0)
        assert np.isclose(matrix[0].sum(), 1.0)

    def test_invalid_points_shape(self):
        scheme = InterpolationScheme((3, 3, 3))
        with pytest.raises(ValidationError):
            scheme.basis_at_points(np.zeros((4, 2)), (1.0, 1.0, 1.0))
