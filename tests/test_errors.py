"""Tests for the unified error taxonomy (``repro.errors``) and the
schema-versioned response envelope (``repro.api.envelope``)."""

import pytest

from repro.errors import (
    ERROR_CLASSES_BY_CODE,
    BackendError,
    CircuitOpenError,
    CorruptArtifactError,
    JobCancelledError,
    JobError,
    JobNotFoundError,
    JobQueueFullError,
    JobStateError,
    JobTimeoutError,
    ReproError,
    SpecConflictError,
    SpecError,
    ValidationError,
    WorkerStalledError,
    error_envelope,
    error_from_envelope,
    http_status_for,
)
from repro.api.envelope import (
    ENVELOPE_KINDS,
    ENVELOPE_VERSION,
    SUPPORTED_ENVELOPE_VERSIONS,
    is_envelope,
    unwrap,
    wrap,
)


class TestTaxonomy:
    def test_everything_derives_from_repro_error(self):
        for cls in ERROR_CLASSES_BY_CODE.values():
            assert issubclass(cls, ReproError)

    def test_validation_errors_stay_value_errors(self):
        # Historical call sites say `except ValueError` — keep them working.
        assert issubclass(ValidationError, ValueError)
        assert issubclass(SpecError, ValueError)
        assert issubclass(BackendError, ValueError)

    def test_job_errors_are_not_value_errors(self):
        assert not issubclass(JobError, ValueError)

    def test_codes_are_unique_and_stable(self):
        expected = {
            "internal_error": ReproError,
            "validation_error": ValidationError,
            "invalid_spec": SpecError,
            "backend_unavailable": BackendError,
            "job_error": JobError,
            "job_not_found": JobNotFoundError,
            "job_state": JobStateError,
            "spec_conflict": SpecConflictError,
            "queue_full": JobQueueFullError,
            "job_timeout": JobTimeoutError,
            "job_cancelled": JobCancelledError,
            "corrupt_artifact": CorruptArtifactError,
            "worker_stalled": WorkerStalledError,
            "circuit_open": CircuitOpenError,
        }
        assert ERROR_CLASSES_BY_CODE == expected

    def test_http_status_mapping(self):
        assert http_status_for(SpecError("x")) == 400
        assert http_status_for(BackendError("x")) == 400
        assert http_status_for(JobNotFoundError("x")) == 404
        assert http_status_for(JobStateError("x")) == 409
        assert http_status_for(SpecConflictError("x")) == 409
        assert http_status_for(JobCancelledError("x")) == 409
        assert http_status_for(JobQueueFullError("x")) == 429
        assert http_status_for(ReproError("x")) == 500
        assert http_status_for(CorruptArtifactError("x")) == 500
        assert http_status_for(CircuitOpenError("x")) == 503
        assert http_status_for(JobTimeoutError("x")) == 504
        assert http_status_for(WorkerStalledError("x")) == 504
        # Non-taxonomy exceptions degrade to 500.
        assert http_status_for(RuntimeError("x")) == 500

    def test_reliability_errors_round_trip_with_stable_codes(self):
        # The wire contract of the self-healing layer: each new class keeps
        # its code across envelope encode/decode and rebuilds typed.
        for cls, code in (
            (CorruptArtifactError, "corrupt_artifact"),
            (WorkerStalledError, "worker_stalled"),
            (CircuitOpenError, "circuit_open"),
        ):
            original = cls("why it failed", detail={"spec_hash": "abc"})
            envelope = error_envelope(original)
            assert envelope["error"]["code"] == code
            rebuilt = error_from_envelope(envelope)
            assert type(rebuilt) is cls
            assert rebuilt.message == "why it failed"
            assert rebuilt.detail == {"spec_hash": "abc"}
            assert rebuilt.http_status == original.http_status

    def test_legacy_import_paths_are_aliases(self):
        from repro.api import SpecError as api_spec_error
        from repro.api.spec import SpecError as spec_module_error
        from repro.utils.validation import ValidationError as validation_error

        assert api_spec_error is SpecError
        assert spec_module_error is SpecError
        assert validation_error is ValidationError

    def test_top_level_exports(self):
        import repro

        assert repro.ReproError is ReproError
        assert repro.SpecError is SpecError
        assert repro.ValidationError is ValidationError


class TestErrorEnvelope:
    def test_envelope_shape(self):
        envelope = error_envelope(SpecError("bad field", detail={"path": "spec.rows"}))
        assert envelope == {
            "error": {
                "code": "invalid_spec",
                "message": "bad field",
                "detail": {"path": "spec.rows"},
            }
        }

    def test_foreign_exception_degrades_to_internal_error(self):
        envelope = error_envelope(RuntimeError("boom"))
        assert envelope["error"]["code"] == "internal_error"
        assert envelope["error"]["message"] == "boom"
        assert envelope["error"]["detail"] == {"exception_type": "RuntimeError"}

    def test_round_trip_rebuilds_the_typed_class(self):
        for cls in ERROR_CLASSES_BY_CODE.values():
            original = cls("something happened", detail={"k": 1})
            rebuilt = error_from_envelope(error_envelope(original))
            assert type(rebuilt) is cls
            assert rebuilt.message == "something happened"
            assert rebuilt.detail == {"k": 1}

    def test_unknown_code_degrades_gracefully(self):
        rebuilt = error_from_envelope(
            {"error": {"code": "from_the_future", "message": "hi", "detail": None}}
        )
        assert type(rebuilt) is ReproError
        assert rebuilt.detail["code"] == "from_the_future"

    def test_malformed_envelope_degrades_gracefully(self):
        rebuilt = error_from_envelope({"nonsense": True})
        assert isinstance(rebuilt, ReproError)


class TestResponseEnvelope:
    def test_wrap_shape(self):
        document = wrap("health", {"status": "ok"})
        assert document["schema_version"] == ENVELOPE_VERSION
        assert document["kind"] == "health"
        assert document["data"] == {"status": "ok"}
        assert isinstance(document["repro_version"], str)
        assert is_envelope(document)

    def test_wrap_rejects_unknown_kind(self):
        with pytest.raises(SpecError, match="unknown kind"):
            wrap("teapot", {})

    def test_unwrap_round_trip(self):
        payload = {"alpha": 1, "beta": [1, 2, 3]}
        assert unwrap(wrap("table", payload), expected_kind="table") == payload

    def test_unwrap_checks_expected_kind(self):
        with pytest.raises(SpecError, match="expected 'run_result'"):
            unwrap(wrap("health", {}), expected_kind="run_result")

    def test_unwrap_reads_legacy_flat_manifests(self):
        # Envelope versions 1 and 2 were flat RunResult manifests.
        for version in (1, 2):
            legacy = {"schema_version": version, "spec_hash": "abc123", "cases": []}
            assert unwrap(legacy, expected_kind="run_result") == legacy

    def test_unwrap_rejects_unsupported_versions(self):
        with pytest.raises(SpecError, match="unsupported version"):
            unwrap({"schema_version": 99, "kind": "health", "data": {}})
        with pytest.raises(SpecError, match="unsupported version"):
            unwrap({"spec_hash": "abc"})  # no version at all

    def test_unwrap_rejects_non_objects(self):
        with pytest.raises(SpecError, match="expected a JSON object"):
            unwrap([1, 2, 3])

    def test_error_responses_are_not_envelopes(self):
        # Clients classify a response by its single top-level "error" key.
        assert not is_envelope(error_envelope(SpecError("x")))
        assert "run_result" in ENVELOPE_KINDS
        assert set(SUPPORTED_ENVELOPE_VERSIONS) == {1, 2, 3}


class TestRunResultEnvelope:
    def test_save_writes_envelope_and_load_reads_it(self, tmp_path):
        from repro.api import RunResult, SimulationSpec, run
        from repro.utils.serialization import load_json

        spec = SimulationSpec.from_dict(
            {
                "geometry": {"rows": 1},
                "mesh": {
                    "resolution": "tiny",
                    "nodes_per_axis": [3, 3, 3],
                    "points_per_block": 5,
                },
            }
        )
        result = run(spec)
        result.save(tmp_path / "out")

        document = load_json(tmp_path / "out" / "manifest.json")
        assert is_envelope(document)
        assert document["kind"] == "run_result"
        assert document["data"] == result.envelope()["data"]

        loaded = RunResult.load(tmp_path / "out")
        assert loaded.manifest() == result.manifest()

    def test_load_still_reads_legacy_flat_manifests(self, tmp_path):
        from repro.api import RunResult, SimulationSpec, run
        from repro.utils.serialization import dump_json

        spec = SimulationSpec.from_dict(
            {
                "geometry": {"rows": 1},
                "mesh": {
                    "resolution": "tiny",
                    "nodes_per_axis": [3, 3, 3],
                    "points_per_block": 5,
                },
            }
        )
        result = run(spec)
        result.save(tmp_path / "out")
        # Rewrite the manifest the way versions 1/2 of the package did: flat.
        dump_json(tmp_path / "out" / "manifest.json", result.manifest())

        loaded = RunResult.load(tmp_path / "out")
        assert loaded.spec_hash == result.spec_hash
