"""Command-line interface.

The CLI exposes the most common workflows without writing Python:

``python -m repro info``
    Print the package configuration (material library, mesh presets,
    interpolation defaults).
``python -m repro simulate --rows 8 --pitch 15 --delta-t -250``
    One-shot MORE-Stress simulation of a standalone array; prints the peak
    mid-plane von Mises stress and stage timings.
``python -m repro table1|table2|table3``
    Regenerate the paper's tables with the scaled-down default configuration
    (see EXPERIMENTS.md) and print them as text.

The CLI is intentionally a thin shell over the public API so that everything
it does is equally accessible from Python.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro._version import __version__
from repro.experiments.config import ConvergenceConfig, Scenario1Config, Scenario2Config
from repro.fem.backends import BACKEND_ALIASES, available_backends, backend_names
from repro.experiments.convergence import convergence_table, run_convergence_study
from repro.experiments.scenario1 import run_scenario1, scenario1_table
from repro.experiments.scenario2 import run_scenario2, scenario2_table
from repro.geometry.tsv import TSVGeometry
from repro.materials.library import MaterialLibrary
from repro.mesh.resolution import MeshResolution
from repro.rom.interpolation import InterpolationScheme
from repro.rom.workflow import MoreStressSimulator
from repro.utils.logging import enable_console_logging


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MORE-Stress: model order reduction for TSV thermal stress (DATE 2025 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    parser.add_argument(
        "--verbose", action="store_true", help="enable progress logging to stderr"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("info", help="print configuration defaults")

    simulate = subparsers.add_parser(
        "simulate", help="simulate a standalone TSV array with MORE-Stress"
    )
    simulate.add_argument("--rows", type=int, default=4, help="array rows (default 4)")
    simulate.add_argument("--cols", type=int, default=None, help="array columns (default: rows)")
    simulate.add_argument("--pitch", type=float, default=15.0, help="TSV pitch in um")
    simulate.add_argument("--diameter", type=float, default=5.0, help="TSV diameter in um")
    simulate.add_argument("--height", type=float, default=50.0, help="TSV height in um")
    simulate.add_argument(
        "--liner", type=float, default=0.5, help="liner thickness in um"
    )
    simulate.add_argument(
        "--delta-t", type=float, default=-250.0, help="thermal load in degC (default -250)"
    )
    simulate.add_argument(
        "--resolution",
        default="coarse",
        choices=MeshResolution.preset_names(),
        help="unit-block mesh preset",
    )
    simulate.add_argument(
        "--nodes", type=int, default=4, help="interpolation nodes per axis (default 4)"
    )
    simulate.add_argument(
        "--points-per-block", type=int, default=30, help="mid-plane sample grid per block"
    )
    simulate.add_argument(
        "--rom-cache",
        metavar="DIR",
        default=None,
        help=(
            "persistent ROM cache directory; repeat runs with the same "
            "geometry/resolution/materials skip the local stage entirely"
        ),
    )
    simulate.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "workers for the parallel local stage (default: one per CPU); "
            "results are identical to --jobs 1"
        ),
    )
    simulate.add_argument(
        "--solver-backend",
        default=None,
        choices=sorted({*backend_names(), *BACKEND_ALIASES}),
        help=(
            "sparse-solver backend for both stages; unavailable optional "
            "backends fall back gracefully (default: paper settings)"
        ),
    )

    for name, help_text in (
        ("table1", "regenerate Table 1 (standalone arrays)"),
        ("table2", "regenerate Table 2 (sub-modeling)"),
        ("table3", "regenerate Table 3 / Fig. 6 (convergence)"),
    ):
        table = subparsers.add_parser(name, help=help_text)
        table.add_argument(
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help="workers for the independent experiment cases (default 1)",
        )

    return parser


def _command_info() -> int:
    library = MaterialLibrary.default()
    print(f"repro {__version__} — MORE-Stress reproduction")
    print("\nmaterial library (role: E [GPa], nu, CTE [ppm/degC]):")
    for role in library.roles():
        material = library[role]
        print(
            f"  {role:10s}  E={material.young_modulus / 1e3:7.1f}  "
            f"nu={material.poisson_ratio:.2f}  alpha={material.cte * 1e6:.1f}"
        )
    print("\nmesh presets (cells per unit block / DoFs per block):")
    for name in MeshResolution.preset_names():
        resolution = MeshResolution.preset(name)
        print(
            f"  {name:7s}  {resolution.inplane_cells}x{resolution.inplane_cells}"
            f"x{resolution.n_z} cells  ({resolution.dofs_per_block} DoFs)"
        )
    print("\ninterpolation schemes (nodes per axis -> element DoFs n, Eq. 16):")
    for nodes in ((2, 2, 2), (3, 3, 3), (4, 4, 4), (5, 5, 5), (6, 6, 6)):
        print(f"  {nodes}  ->  n = {InterpolationScheme(nodes).num_element_dofs}")
    usable = set(available_backends())
    print("\nsolver backends (--solver-backend):")
    for name in backend_names():
        status = "available" if name in usable else "unavailable (falls back)"
        print(f"  {name:12s}  {status}")
    return 0


def _command_simulate(args: argparse.Namespace) -> int:
    tsv = TSVGeometry(
        diameter=args.diameter,
        height=args.height,
        liner_thickness=args.liner,
        pitch=args.pitch,
    )
    simulator = MoreStressSimulator(
        tsv,
        MaterialLibrary.default(),
        mesh_resolution=args.resolution,
        nodes_per_axis=(args.nodes, args.nodes, args.nodes),
        rom_cache=args.rom_cache,
        jobs=args.jobs,
        solver_backend=args.solver_backend,
    )
    result = simulator.simulate_array(
        rows=args.rows, cols=args.cols, delta_t=args.delta_t
    )
    vm = result.von_mises_midplane(points_per_block=args.points_per_block)
    rows, cols = vm.shape[:2]
    cache = simulator.rom_cache
    local_note = "one-shot"
    if cache is not None:
        local_note = f"rom cache: {cache.hits} hit(s), {cache.misses} miss(es)"
    print(f"array             : {rows}x{cols} TSVs at pitch {args.pitch:g} um")
    print(f"thermal load      : {args.delta_t:g} degC")
    print(f"local stage       : {result.local_stage_seconds:.2f} s ({local_note})")
    print(f"global stage      : {result.global_stage_seconds:.3f} s")
    print(f"reduced DoFs      : {result.num_global_dofs}")
    print(f"peak von Mises    : {vm.max():.1f} MPa")
    print(f"mean von Mises    : {vm.mean():.1f} MPa")
    return 0


def _command_table(name: str, jobs: int | None = 1) -> int:
    if name == "table1":
        records = run_scenario1(Scenario1Config.small(), jobs=jobs)
        print(scenario1_table(records).to_text())
    elif name == "table2":
        records = run_scenario2(Scenario2Config.small(), jobs=jobs)
        print(scenario2_table(records).to_text())
    else:
        records, reference_seconds = run_convergence_study(
            ConvergenceConfig.small(), jobs=jobs
        )
        print(convergence_table(records, reference_seconds).to_text())
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``python -m repro``.  Returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        enable_console_logging()
    if args.command == "info":
        return _command_info()
    if args.command == "simulate":
        return _command_simulate(args)
    if args.command in ("table1", "table2", "table3"):
        return _command_table(args.command, jobs=args.jobs)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
