"""Command-line interface.

The CLI exposes the most common workflows without writing Python:

``python -m repro info``
    Print the package configuration (material library, mesh presets,
    interpolation defaults).
``python -m repro simulate --rows 8 --pitch 15 --delta-t -250``
    One-shot MORE-Stress simulation of a standalone array; prints the peak
    mid-plane von Mises stress and stage timings.
``python -m repro spec --rows 8 --pitch 15 -o run.json``
    Emit the declarative :class:`~repro.api.SimulationSpec` JSON the same
    flags describe (edit it, add load cases, check it into a repo...).
``python -m repro run run.json``
    Execute a spec file end to end — array runs, multi-load sweeps and
    sub-model runs all go through the same executor.
``python -m repro export results/``
    Materialize full-field ``.vtk``/``.npz`` exports and the per-TSV hotspot
    report from a saved results directory (``simulate``/``run`` accept
    ``--export-field DIR`` to produce the same artifacts inline).
``python -m repro table1|table2|table3 --preset small``
    Regenerate the paper's tables (see EXPERIMENTS.md) and print them as text.

Every command is a thin shell over the public API (``repro.api`` for runs,
``repro.experiments`` for the tables), so everything the CLI does is equally
accessible — and scriptable — from Python.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path
from typing import Sequence

from repro._version import __version__
from repro.api import (
    KNOWN_OUTPUT_FORMATS,
    MaterialOverride,
    MaterialsSpec,
    GeometrySpec,
    LoadCase,
    MeshSpec,
    OutputSpec,
    RunResult,
    SimulationSpec,
    SolverSpec,
    SpecError,
    run as run_simulation_spec,
)
from repro.experiments.config import ConvergenceConfig, Scenario1Config, Scenario2Config
from repro.backend import (
    ARRAY_BACKEND_ALIASES,
    array_backend_names,
    available_array_backends,
)
from repro.fem.backends import BACKEND_ALIASES, available_backends, backend_names
from repro.experiments.convergence import convergence_table, run_convergence_study
from repro.experiments.scenario1 import run_scenario1, scenario1_table
from repro.experiments.scenario2 import run_scenario2, scenario2_table
from repro.materials.library import MaterialLibrary
from repro.mesh.resolution import MeshResolution
from repro.rom.interpolation import InterpolationScheme
from repro.utils.logging import enable_console_logging
from repro.utils.serialization import dump_json
from repro.utils.validation import ValidationError

_TABLE_COMMANDS = ("table1", "table2", "table3")
_TABLE_CONFIGS = {
    "table1": Scenario1Config,
    "table2": Scenario2Config,
    "table3": ConvergenceConfig,
}


def _parse_material_override(text: str) -> MaterialOverride:
    """Parse a ``role:E,nu,cte`` override (E in GPa, cte in ppm/degC)."""
    role, sep, values = text.partition(":")
    parts = values.split(",") if sep else []
    if not sep or len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"expected ROLE:E,NU,CTE (E in GPa, CTE in ppm/degC), got {text!r}"
        )
    try:
        numbers = [float(part) for part in parts]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"material constants must be numbers, got {values!r}"
        ) from exc
    try:
        return MaterialOverride(
            role=role.strip(),
            young_modulus_gpa=numbers[0],
            poisson_ratio=numbers[1],
            cte_ppm=numbers[2],
        )
    except ValidationError as exc:  # surface the message as a usage error
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _add_jobs_argument(parser: argparse.ArgumentParser, what: str) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            f"workers for {what} (default: one per CPU); "
            "results are identical to --jobs 1"
        ),
    )


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags shared by ``simulate`` and ``spec`` (they describe the same run)."""
    parser.add_argument("--rows", type=int, default=4, help="array rows (default 4)")
    parser.add_argument("--cols", type=int, default=None, help="array columns (default: rows)")
    parser.add_argument("--pitch", type=float, default=15.0, help="TSV pitch in um")
    parser.add_argument("--diameter", type=float, default=5.0, help="TSV diameter in um")
    parser.add_argument("--height", type=float, default=50.0, help="TSV height in um")
    parser.add_argument(
        "--liner", type=float, default=0.5, help="liner thickness in um"
    )
    parser.add_argument(
        "--delta-t", type=float, default=-250.0, help="thermal load in degC (default -250)"
    )
    parser.add_argument(
        "--resolution",
        default="coarse",
        choices=MeshResolution.preset_names(),
        help="unit-block mesh preset",
    )
    parser.add_argument(
        "--nodes", type=int, default=4, help="interpolation nodes per axis (default 4)"
    )
    parser.add_argument(
        "--points-per-block", type=int, default=30, help="mid-plane sample grid per block"
    )
    parser.add_argument(
        "--material",
        action="append",
        default=[],
        type=_parse_material_override,
        metavar="ROLE:E,NU,CTE",
        help=(
            "override one material role (repeatable): Young's modulus in GPa, "
            "Poisson ratio, CTE in ppm/degC — e.g. --material copper:120,0.34,16.5"
        ),
    )
    parser.add_argument(
        "--solver-backend",
        default=None,
        choices=sorted({*backend_names(), *BACKEND_ALIASES}),
        help=(
            "sparse-solver backend for both stages; unavailable optional "
            "backends fall back gracefully (default: paper settings)"
        ),
    )
    parser.add_argument(
        "--array-backend",
        default=None,
        choices=sorted({*array_backend_names(), *ARRAY_BACKEND_ALIASES}),
        help=(
            "dense array backend for the element/field kernels; unavailable "
            "optional backends fall back to numpy (default: numpy, or the "
            "REPRO_ARRAY_BACKEND environment variable)"
        ),
    )
    _add_jobs_argument(parser, "the parallel local stage")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MORE-Stress: model order reduction for TSV thermal stress (DATE 2025 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    parser.add_argument(
        "--verbose", action="store_true", help="enable progress logging to stderr"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("info", help="print configuration defaults")

    simulate = subparsers.add_parser(
        "simulate", help="simulate a standalone TSV array with MORE-Stress"
    )
    _add_spec_arguments(simulate)
    simulate.add_argument(
        "--rom-cache",
        metavar="DIR",
        default=None,
        help=(
            "persistent ROM cache directory; repeat runs with the same "
            "geometry/resolution/materials skip the local stage entirely"
        ),
    )
    simulate.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        dest="json_path",
        help="also write the RunResult provenance manifest as JSON",
    )
    simulate.add_argument(
        "--export-field",
        metavar="DIR",
        default=None,
        dest="export_field",
        help=(
            "reconstruct the full volumetric stress field, write .vtk/.npz "
            "exports plus the hotspot report to DIR and print the top hotspots"
        ),
    )

    spec = subparsers.add_parser(
        "spec",
        help="emit the declarative SimulationSpec JSON these flags describe",
    )
    _add_spec_arguments(spec)
    spec.add_argument(
        "-o",
        "--output",
        metavar="PATH",
        default=None,
        help="write the spec to a file instead of stdout",
    )
    spec.add_argument(
        "--export-field",
        action="store_true",
        dest="export_field",
        help="include a full-field 'output' section (vtk+npz+hotspots) in the template",
    )

    run = subparsers.add_parser(
        "run", help="execute a SimulationSpec JSON file (array/sweep/submodel)"
    )
    run.add_argument("spec_path", metavar="SPEC.json", help="spec file to execute")
    run.add_argument(
        "--rom-cache",
        metavar="DIR",
        default=None,
        help="persistent ROM cache directory shared across runs",
    )
    run.add_argument(
        "--array-backend",
        default=None,
        choices=sorted({*array_backend_names(), *ARRAY_BACKEND_ALIASES}),
        help=(
            "dense array backend override; beats the spec's solver.array_backend "
            "and the REPRO_ARRAY_BACKEND environment variable"
        ),
    )
    _add_jobs_argument(run, "the parallel local stage")
    run.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        dest="json_path",
        help="also write the RunResult provenance manifest as JSON",
    )
    run.add_argument(
        "--save",
        metavar="DIR",
        default=None,
        help="persist the full RunResult (manifest + stress fields) to a directory",
    )
    run.add_argument(
        "--export-field",
        metavar="DIR",
        default=None,
        dest="export_field",
        help=(
            "force full-field outputs (adding a default 'output' section if "
            "the spec has none) and write the exports + hotspot report to DIR"
        ),
    )

    export = subparsers.add_parser(
        "export",
        help="export full-field .vtk/.npz + hotspot report from a saved results directory",
    )
    export.add_argument(
        "results_dir",
        metavar="RESULTS_DIR",
        help="directory written by 'run --save' (or RunResult.save())",
    )
    export.add_argument(
        "-o",
        "--output",
        metavar="DIR",
        default=None,
        help="destination directory (default: RESULTS_DIR/fields)",
    )
    export.add_argument(
        "--format",
        action="append",
        default=None,
        dest="formats",
        choices=sorted(KNOWN_OUTPUT_FORMATS),
        help="export format (repeatable; default: the spec's formats, else both)",
    )
    export.add_argument(
        "--rom-cache",
        metavar="DIR",
        default=None,
        help="persistent ROM cache directory (used only if the run must be re-solved)",
    )
    _add_jobs_argument(export, "the field reconstruction")

    for name, help_text in (
        ("table1", "regenerate Table 1 (standalone arrays)"),
        ("table2", "regenerate Table 2 (sub-modeling)"),
        ("table3", "regenerate Table 3 / Fig. 6 (convergence)"),
    ):
        table = subparsers.add_parser(name, help=help_text)
        table.add_argument(
            "--preset",
            default="small",
            choices=("small", "medium", "paper"),
            help=(
                "experiment scale: 'small' (minutes), 'medium' (overnight, "
                "where defined) or 'paper' (the paper's full configuration)"
            ),
        )
        _add_jobs_argument(table, "the independent experiment cases")

    return parser


def _command_info() -> int:
    library = MaterialLibrary.default()
    print(f"repro {__version__} — MORE-Stress reproduction")
    print("\nmaterial library (role: E [GPa], nu, CTE [ppm/degC]):")
    for role in library.roles():
        material = library[role]
        print(
            f"  {role:10s}  E={material.young_modulus / 1e3:7.1f}  "
            f"nu={material.poisson_ratio:.2f}  alpha={material.cte * 1e6:.1f}"
        )
    print("\nmesh presets (cells per unit block / DoFs per block):")
    for name in MeshResolution.preset_names():
        resolution = MeshResolution.preset(name)
        print(
            f"  {name:7s}  {resolution.inplane_cells}x{resolution.inplane_cells}"
            f"x{resolution.n_z} cells  ({resolution.dofs_per_block} DoFs)"
        )
    print("\ninterpolation schemes (nodes per axis -> element DoFs n, Eq. 16):")
    for nodes in ((2, 2, 2), (3, 3, 3), (4, 4, 4), (5, 5, 5), (6, 6, 6)):
        print(f"  {nodes}  ->  n = {InterpolationScheme(nodes).num_element_dofs}")
    usable = set(available_backends())
    print("\nsolver backends (--solver-backend):")
    for name in backend_names():
        status = "available" if name in usable else "unavailable (falls back)"
        print(f"  {name:12s}  {status}")
    usable_arrays = set(available_array_backends())
    print("\narray backends (--array-backend):")
    for name in array_backend_names():
        status = "available" if name in usable_arrays else "unavailable (falls back)"
        print(f"  {name:12s}  {status}")
    return 0


def _spec_from_args(args: argparse.Namespace) -> SimulationSpec:
    """Build the SimulationSpec the ``simulate``/``spec`` flags describe.

    Raises :class:`SpecError` (caught by the commands, exit code 2) for
    mistakes spanning several flags, e.g. the same role overridden twice.
    """
    roles = [override.role for override in args.material]
    duplicate = next((role for role in roles if roles.count(role) > 1), None)
    if duplicate is not None:
        raise SpecError(f"--material: role {duplicate!r} is overridden twice")
    # A truthy --export-field (a directory for simulate/run, a flag for spec)
    # requests the full-field output section.
    output = OutputSpec() if getattr(args, "export_field", None) else None
    return SimulationSpec(
        name="cli-simulate",
        geometry=GeometrySpec(
            diameter=args.diameter,
            height=args.height,
            liner_thickness=args.liner,
            pitch=args.pitch,
            rows=args.rows,
            cols=args.cols,
        ),
        materials=MaterialsSpec(overrides=tuple(args.material)),
        mesh=MeshSpec(
            resolution=args.resolution,
            nodes_per_axis=(args.nodes, args.nodes, args.nodes),
            points_per_block=args.points_per_block,
        ),
        solver=SolverSpec(
            backend=args.solver_backend,
            jobs=args.jobs,
            array_backend=args.array_backend or "numpy",
        ),
        load_cases=(LoadCase(name="cli", delta_t=args.delta_t),),
        output=output,
    )


def _print_run_summary(result: RunResult, verbose_cache: bool = True) -> None:
    for case in result.cases:
        vm = case.von_mises
        rows, cols = vm.shape[:2]
        where = f" at {case.location}" if case.location else ""
        print(f"case {case.name:14s}: {rows}x{cols} TSVs{where}, delta_t={case.delta_t:g} degC")
        print(f"  global stage    : {case.global_stage_seconds:.3f} s ({case.solver_method})")
        print(f"  reduced DoFs    : {case.num_global_dofs}")
        print(f"  peak von Mises  : {vm.max():.1f} MPa")
    print(f"local stage       : {result.local_stage_seconds:.2f} s (shared)")
    print(f"execution groups  : {result.num_case_groups} (one factorisation each)")
    if verbose_cache and result.rom_cache_stats is not None:
        stats = result.rom_cache_stats
        print(f"rom cache         : {stats['hits']} hit(s), {stats['misses']} miss(es)")


def _export_and_report(result: RunResult, directory: str | Path, formats=None) -> None:
    """Write field exports + hotspot report and print the hotspot tables."""
    written = result.export_fields(directory, formats=formats)
    for path in written:
        print(f"export            : {path}")
    top_k = result.spec.output.top_k if result.spec.output is not None else 10
    for case in result.cases:
        if case.hotspots is not None:
            print()
            print(case.hotspots.table(top_k).to_text())


def _command_simulate(args: argparse.Namespace) -> int:
    try:
        spec = _spec_from_args(args)
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = run_simulation_spec(spec, rom_cache=args.rom_cache)
    case = result.cases[0]
    vm = case.von_mises
    rows, cols = vm.shape[:2]
    local_note = "one-shot"
    if result.rom_cache_stats is not None:
        stats = result.rom_cache_stats
        local_note = f"rom cache: {stats['hits']} hit(s), {stats['misses']} miss(es)"
    print(f"array             : {rows}x{cols} TSVs at pitch {args.pitch:g} um")
    print(f"thermal load      : {args.delta_t:g} degC")
    print(f"local stage       : {case.local_stage_seconds:.2f} s ({local_note})")
    print(f"global stage      : {case.global_stage_seconds:.3f} s")
    print(f"reduced DoFs      : {case.num_global_dofs}")
    print(f"peak von Mises    : {vm.max():.1f} MPa")
    print(f"mean von Mises    : {vm.mean():.1f} MPa")
    if args.json_path:
        dump_json(args.json_path, result.manifest())
        print(f"manifest          : {args.json_path}")
    if args.export_field:
        _export_and_report(result, args.export_field)
    return 0


def _command_spec(args: argparse.Namespace) -> int:
    try:
        spec = _spec_from_args(args)
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    document = spec.to_json(indent=2)
    if args.output:
        Path(args.output).write_text(document + "\n")
        print(f"spec written to {args.output}", file=sys.stderr)
    else:
        print(document)
    return 0


def _command_run(args: argparse.Namespace) -> int:
    path = Path(args.spec_path)
    if not path.exists():
        print(f"error: spec file {path} does not exist", file=sys.stderr)
        return 2
    try:
        spec = SimulationSpec.from_json(path.read_text())
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.export_field and spec.output is None:
        spec = dataclasses.replace(spec, output=OutputSpec())
    result = run_simulation_spec(
        spec,
        rom_cache=args.rom_cache,
        jobs=args.jobs,
        array_backend=args.array_backend,
    )
    print(f"spec              : {spec.name} ({result.spec_hash})")
    _print_run_summary(result)
    if args.json_path:
        dump_json(args.json_path, result.manifest())
        print(f"manifest          : {args.json_path}")
    if args.save:
        result.save(args.save)
        print(f"full result       : {args.save}")
    if args.export_field:
        _export_and_report(result, args.export_field)
    return 0


def _command_export(args: argparse.Namespace) -> int:
    results_dir = Path(args.results_dir)
    try:
        result = RunResult.load(results_dir)
    except (SpecError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not any(case.field_data is not None for case in result.cases):
        # The saved run predates full-field outputs (or requested none):
        # re-execute its spec with field outputs enabled.  The manifest holds
        # the complete spec, so the re-run reproduces the same cases.
        archived_hash = result.spec_hash
        spec = result.spec
        if spec.output is None:
            spec = dataclasses.replace(spec, output=OutputSpec())
        print(
            "saved results carry no full fields; re-solving the archived spec "
            f"{spec.name!r} with field outputs enabled"
        )
        result = run_simulation_spec(spec, rom_cache=args.rom_cache, jobs=args.jobs)
        # The output section only adds post-processing — the solve is the
        # archived one — so the exports stay stamped with the archive's hash
        # and remain joinable to its manifest.
        result.spec_hash = archived_hash
    formats = tuple(args.formats) if args.formats else None
    out_dir = Path(args.output) if args.output else results_dir / "fields"
    _export_and_report(result, out_dir, formats=formats)
    return 0


def _command_table(name: str, preset: str = "small", jobs: int | None = None) -> int:
    config_cls = _TABLE_CONFIGS[name]
    factory = getattr(config_cls, preset, None)
    if factory is None:
        print(
            f"error: {name} ({config_cls.__name__}) has no {preset!r} preset; "
            "available: small, paper"
            + (", medium" if hasattr(config_cls, "medium") else ""),
            file=sys.stderr,
        )
        return 2
    config = factory()
    if name == "table1":
        records = run_scenario1(config, jobs=jobs)
        print(scenario1_table(records).to_text())
    elif name == "table2":
        records = run_scenario2(config, jobs=jobs)
        print(scenario2_table(records).to_text())
    else:
        records, reference_seconds = run_convergence_study(config, jobs=jobs)
        print(convergence_table(records, reference_seconds).to_text())
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``python -m repro``.  Returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        enable_console_logging()
    if args.command == "info":
        return _command_info()
    if args.command == "simulate":
        return _command_simulate(args)
    if args.command == "spec":
        return _command_spec(args)
    if args.command == "run":
        return _command_run(args)
    if args.command == "export":
        return _command_export(args)
    if args.command in _TABLE_COMMANDS:
        return _command_table(args.command, preset=args.preset, jobs=args.jobs)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
