"""Command-line interface.

The CLI exposes the most common workflows without writing Python:

``python -m repro info``
    Print the package configuration (material library, mesh presets,
    interpolation defaults).
``python -m repro simulate --rows 8 --pitch 15 --delta-t -250``
    One-shot MORE-Stress simulation of a standalone array; prints the peak
    mid-plane von Mises stress and stage timings.
``python -m repro spec --rows 8 --pitch 15 -o run.json``
    Emit the declarative :class:`~repro.api.SimulationSpec` JSON the same
    flags describe (edit it, add load cases, check it into a repo...).
``python -m repro run run.json``
    Execute a spec file end to end — array runs, multi-load sweeps and
    sub-model runs all go through the same executor.
``python -m repro export results/``
    Materialize full-field ``.vtk``/``.npz`` exports and the per-TSV hotspot
    report from a saved results directory (``simulate``/``run`` accept
    ``--export-field DIR`` to produce the same artifacts inline).
``python -m repro table1|table2|table3 --preset small``
    Regenerate the paper's tables (see EXPERIMENTS.md) and print them as text.
``python -m repro serve --store service-data``
    Run the HTTP job server: queued, deduplicating simulation-as-a-service
    over one warm ROM cache (see :mod:`repro.service`).
``python -m repro submit run.json --url http://127.0.0.1:8642``
    Submit a spec file to a running server, wait, and print the summary.
``python -m repro chaos --scenario torn-write --seed 7``
    Run one (or ``--scenario all``) seeded fault-injection scenario against
    an in-process server and check the reliability invariants — no lost or
    duplicated jobs, no temp orphans, quarantine accounting, result parity
    with a fault-free run (see :mod:`repro.chaos`).

Every command accepts ``--json`` to emit the versioned response envelope
(:mod:`repro.api.envelope`) on stdout instead of the human-readable text —
the same document shape the service API returns — so shell pipelines and the
HTTP surface read identically.  ``simulate``/``run`` keep their historical
``--json PATH`` meaning (write the flat provenance manifest to a file).

Every command is a thin shell over the public API (``repro.api`` for runs,
``repro.experiments`` for the tables, ``repro.service`` for the server), so
everything the CLI does is equally accessible — and scriptable — from Python.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import shutil
import sys
import time
from pathlib import Path
from typing import Any, Sequence

from repro._version import __version__
from repro.api import (
    KNOWN_OUTPUT_FORMATS,
    MaterialOverride,
    MaterialsSpec,
    GeometrySpec,
    LoadCase,
    MeshSpec,
    OutputSpec,
    RunResult,
    ShardSpec,
    SimulationSpec,
    SolverSpec,
    SpecError,
    run as run_simulation_spec,
)
from repro.api.envelope import wrap
from repro.errors import ReproError, error_envelope
from repro.lint import (
    Baseline,
    DEFAULT_BASELINE_NAME,
    LintUsageError,
    Project as LintProject,
    all_rules as all_lint_rules,
    run_lint,
    write_registry as write_fault_site_registry,
)
from repro.experiments.config import ConvergenceConfig, Scenario1Config, Scenario2Config
from repro.backend import (
    ARRAY_BACKEND_ALIASES,
    array_backend_names,
    available_array_backends,
)
from repro.fem.backends import BACKEND_ALIASES, available_backends, backend_names
from repro.experiments.convergence import convergence_table, run_convergence_study
from repro.experiments.scenario1 import run_scenario1, scenario1_table
from repro.experiments.scenario2 import run_scenario2, scenario2_table
from repro.materials.library import MaterialLibrary
from repro.mesh.resolution import MeshResolution
from repro.rom.interpolation import InterpolationScheme
from repro.service.protocol import DEFAULT_PORT
from repro.utils.logging import enable_console_logging
from repro.utils.serialization import atomic_write_bytes, dump_json
from repro.utils.validation import ValidationError

_TABLE_COMMANDS = ("table1", "table2", "table3")
_TABLE_CONFIGS = {
    "table1": Scenario1Config,
    "table2": Scenario2Config,
    "table3": ConvergenceConfig,
}


def _parse_material_override(text: str) -> MaterialOverride:
    """Parse a ``role:E,nu,cte`` override (E in GPa, cte in ppm/degC)."""
    role, sep, values = text.partition(":")
    parts = values.split(",") if sep else []
    if not sep or len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"expected ROLE:E,NU,CTE (E in GPa, CTE in ppm/degC), got {text!r}"
        )
    try:
        numbers = [float(part) for part in parts]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"material constants must be numbers, got {values!r}"
        ) from exc
    try:
        return MaterialOverride(
            role=role.strip(),
            young_modulus_gpa=numbers[0],
            poisson_ratio=numbers[1],
            cte_ppm=numbers[2],
        )
    except ValidationError as exc:  # surface the message as a usage error
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _add_jobs_argument(parser: argparse.ArgumentParser, what: str) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            f"workers for {what} (default: one per CPU); "
            "results are identical to --jobs 1"
        ),
    )


def _add_json_envelope_argument(parser: argparse.ArgumentParser, what: str) -> None:
    """The uniform ``--json [PATH]`` flag: envelope to stdout (or PATH)."""
    parser.add_argument(
        "--json",
        nargs="?",
        const="-",
        metavar="PATH",
        default=None,
        dest="json_path",
        help=(
            f"emit {what} as the versioned response envelope on stdout "
            "(or to PATH), suppressing the text output"
        ),
    )


def _emit_envelope(document: dict, json_path: str) -> None:
    """Write a response envelope to stdout (``-``) or a file path."""
    if json_path == "-":
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        dump_json(json_path, document)


def _table_envelope(table: Any) -> dict:
    """The ``kind="table"`` envelope of a ResultTable."""
    return wrap(
        "table",
        {"title": table.title, "columns": list(table.columns), "rows": table.rows},
    )


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags shared by ``simulate`` and ``spec`` (they describe the same run)."""
    parser.add_argument("--rows", type=int, default=4, help="array rows (default 4)")
    parser.add_argument("--cols", type=int, default=None, help="array columns (default: rows)")
    parser.add_argument("--pitch", type=float, default=15.0, help="TSV pitch in um")
    parser.add_argument("--diameter", type=float, default=5.0, help="TSV diameter in um")
    parser.add_argument("--height", type=float, default=50.0, help="TSV height in um")
    parser.add_argument(
        "--liner", type=float, default=0.5, help="liner thickness in um"
    )
    parser.add_argument(
        "--delta-t", type=float, default=-250.0, help="thermal load in degC (default -250)"
    )
    parser.add_argument(
        "--resolution",
        default="coarse",
        choices=MeshResolution.preset_names(),
        help="unit-block mesh preset",
    )
    parser.add_argument(
        "--nodes", type=int, default=4, help="interpolation nodes per axis (default 4)"
    )
    parser.add_argument(
        "--points-per-block", type=int, default=30, help="mid-plane sample grid per block"
    )
    parser.add_argument(
        "--material",
        action="append",
        default=[],
        type=_parse_material_override,
        metavar="ROLE:E,NU,CTE",
        help=(
            "override one material role (repeatable): Young's modulus in GPa, "
            "Poisson ratio, CTE in ppm/degC — e.g. --material copper:120,0.34,16.5"
        ),
    )
    parser.add_argument(
        "--solver-backend",
        default=None,
        choices=sorted({*backend_names(), *BACKEND_ALIASES}),
        help=(
            "sparse-solver backend for both stages; unavailable optional "
            "backends fall back gracefully (default: paper settings)"
        ),
    )
    parser.add_argument(
        "--array-backend",
        default=None,
        choices=sorted({*array_backend_names(), *ARRAY_BACKEND_ALIASES}),
        help=(
            "dense array backend for the element/field kernels; unavailable "
            "optional backends fall back to numpy (default: numpy, or the "
            "REPRO_ARRAY_BACKEND environment variable)"
        ),
    )
    _add_jobs_argument(parser, "the parallel local stage")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MORE-Stress: model order reduction for TSV thermal stress (DATE 2025 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    parser.add_argument(
        "--verbose", action="store_true", help="enable progress logging to stderr"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("info", help="print configuration defaults")

    simulate = subparsers.add_parser(
        "simulate", help="simulate a standalone TSV array with MORE-Stress"
    )
    _add_spec_arguments(simulate)
    simulate.add_argument(
        "--rom-cache",
        metavar="DIR",
        default=None,
        help=(
            "persistent ROM cache directory; repeat runs with the same "
            "geometry/resolution/materials skip the local stage entirely"
        ),
    )
    simulate.add_argument(
        "--json",
        nargs="?",
        const="-",
        metavar="PATH",
        default=None,
        dest="json_path",
        help=(
            "bare --json: print the versioned result envelope on stdout "
            "(suppresses the text summary); --json PATH: also write the flat "
            "provenance manifest to PATH"
        ),
    )
    simulate.add_argument(
        "--export-field",
        metavar="DIR",
        default=None,
        dest="export_field",
        help=(
            "reconstruct the full volumetric stress field, write .vtk/.npz "
            "exports plus the hotspot report to DIR and print the top hotspots"
        ),
    )

    spec = subparsers.add_parser(
        "spec",
        help="emit the declarative SimulationSpec JSON these flags describe",
    )
    _add_spec_arguments(spec)
    spec.add_argument(
        "-o",
        "--output",
        metavar="PATH",
        default=None,
        help="write the spec to a file instead of stdout",
    )
    spec.add_argument(
        "--export-field",
        action="store_true",
        dest="export_field",
        help="include a full-field 'output' section (vtk+npz+hotspots) in the template",
    )

    run = subparsers.add_parser(
        "run", help="execute a SimulationSpec JSON file (array/sweep/submodel)"
    )
    run.add_argument("spec_path", metavar="SPEC.json", help="spec file to execute")
    run.add_argument(
        "--rom-cache",
        metavar="DIR",
        default=None,
        help="persistent ROM cache directory shared across runs",
    )
    run.add_argument(
        "--array-backend",
        default=None,
        choices=sorted({*array_backend_names(), *ARRAY_BACKEND_ALIASES}),
        help=(
            "dense array backend override; beats the spec's solver.array_backend "
            "and the REPRO_ARRAY_BACKEND environment variable"
        ),
    )
    _add_jobs_argument(run, "the parallel local stage")
    run.add_argument(
        "--json",
        nargs="?",
        const="-",
        metavar="PATH",
        default=None,
        dest="json_path",
        help=(
            "bare --json: print the versioned result envelope on stdout "
            "(suppresses the text summary); --json PATH: also write the flat "
            "provenance manifest to PATH"
        ),
    )
    run.add_argument(
        "--save",
        metavar="DIR",
        default=None,
        help="persist the full RunResult (manifest + stress fields) to a directory",
    )
    run.add_argument(
        "--export-field",
        metavar="DIR",
        default=None,
        dest="export_field",
        help=(
            "force full-field outputs (adding a default 'output' section if "
            "the spec has none) and write the exports + hotspot report to DIR"
        ),
    )
    run.add_argument(
        "--shards",
        metavar="RxC",
        default=None,
        help=(
            "solve the global stage out-of-core on an RxC shard grid "
            "(e.g. 4x4); overrides the spec's solver.shard grid"
        ),
    )
    run.add_argument(
        "--shard-overlap",
        type=int,
        metavar="N",
        default=None,
        dest="shard_overlap",
        help="overlap ring width in blocks between neighbouring shards (default 2)",
    )
    run.add_argument(
        "--memory-budget",
        type=int,
        metavar="BYTES",
        default=None,
        dest="memory_budget",
        help=(
            "assembly memory budget enabling auto-sharding: the layout is "
            "sharded only when the monolithic assembly estimate exceeds it"
        ),
    )

    export = subparsers.add_parser(
        "export",
        help="export full-field .vtk/.npz + hotspot report from a saved results directory",
    )
    export.add_argument(
        "results_dir",
        metavar="RESULTS_DIR",
        help="directory written by 'run --save' (or RunResult.save())",
    )
    export.add_argument(
        "-o",
        "--output",
        metavar="DIR",
        default=None,
        help="destination directory (default: RESULTS_DIR/fields)",
    )
    export.add_argument(
        "--format",
        action="append",
        default=None,
        dest="formats",
        choices=sorted(KNOWN_OUTPUT_FORMATS),
        help="export format (repeatable; default: the spec's formats, else both)",
    )
    export.add_argument(
        "--rom-cache",
        metavar="DIR",
        default=None,
        help="persistent ROM cache directory (used only if the run must be re-solved)",
    )
    _add_jobs_argument(export, "the field reconstruction")
    _add_json_envelope_argument(export, "the export summary + hotspot tables")

    serve = subparsers.add_parser(
        "serve",
        help="run the HTTP job server (queued, deduplicating simulation-as-a-service)",
    )
    serve.add_argument(
        "--store",
        metavar="DIR",
        default="service-data",
        help=(
            "service state directory holding the persistent job queue, saved "
            "results and the shared ROM cache (default: service-data)"
        ),
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help=f"TCP port; 0 picks an ephemeral port (default {DEFAULT_PORT})",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="concurrent jobs (default: half the CPUs)",
    )
    serve.add_argument(
        "--max-queued",
        type=int,
        default=256,
        metavar="N",
        help="reject new submissions beyond N queued jobs with HTTP 429 (default 256)",
    )
    serve.add_argument(
        "--rom-cache",
        metavar="DIR",
        default=None,
        help="shared ROM cache directory (default: STORE/rom_cache)",
    )
    serve.add_argument(
        "--rom-cache-max-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        dest="rom_cache_max_bytes",
        help=(
            "LRU size cap of the shared ROM cache; least-recently-used "
            "bundles are evicted past it (default: unbounded)"
        ),
    )
    serve.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-job wall-clock timeout (default: none)",
    )
    serve.add_argument(
        "--stall-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "watchdog threshold: re-queue a job whose worker heartbeat is "
            "older than SECONDS (default: no watchdog)"
        ),
    )
    serve.add_argument(
        "--fault-plan",
        metavar="PLAN",
        default=None,
        dest="fault_plan",
        help=(
            "fault-injection plan: a JSON file path or inline JSON object "
            "(testing only; the REPRO_FAULT_PLAN environment variable is "
            "honored when this flag is absent)"
        ),
    )
    _add_json_envelope_argument(serve, "the startup announcement (url, store, workers)")

    chaos = subparsers.add_parser(
        "chaos",
        help="run seeded fault-injection scenarios and check service invariants",
    )
    chaos.add_argument(
        "--scenario",
        default="all",
        metavar="NAME",
        help="scenario name, or 'all' (default) for every registered scenario",
    )
    chaos.add_argument(
        "--seed", type=int, default=0, help="fault-plan RNG seed (default 0)"
    )
    chaos.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help=(
            "state directory for the chaos run (default: a fresh temporary "
            "directory, removed when the scenario passes)"
        ),
    )
    chaos.add_argument(
        "--stall-timeout",
        type=float,
        default=1.5,
        metavar="SECONDS",
        help="watchdog threshold used by the scenarios (default 1.5)",
    )
    _add_json_envelope_argument(chaos, "the per-scenario chaos reports")

    submit = subparsers.add_parser(
        "submit", help="submit a SimulationSpec JSON file to a running job server"
    )
    submit.add_argument("spec_path", metavar="SPEC.json", help="spec file to submit")
    submit.add_argument(
        "--url",
        default=f"http://127.0.0.1:{DEFAULT_PORT}",
        help=f"server base URL (default http://127.0.0.1:{DEFAULT_PORT})",
    )
    submit.add_argument(
        "--no-wait",
        action="store_true",
        help="queue the job and return immediately instead of waiting for the result",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="client-side wait budget for job completion (default 600)",
    )
    submit.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="server-side per-job wall-clock timeout for this submission",
    )
    submit.add_argument(
        "--fields",
        metavar="PATH",
        default=None,
        help="download the finished job's fields.npz bundle to PATH",
    )
    _add_json_envelope_argument(
        submit, "the result envelope (or the job record with --no-wait)"
    )

    lint = subparsers.add_parser(
        "lint",
        help="run the repro.lint invariant analyzer (see docs/INVARIANTS.md)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help=(
            "files or directories to analyze "
            "(default: src/repro under the current directory)"
        ),
    )
    lint.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="ID",
        default=None,
        help="run only this rule id (repeatable, e.g. --rule REP001)",
    )
    lint.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help=(
            "baseline file of grandfathered findings (default: "
            f"{DEFAULT_BASELINE_NAME} in the current directory, when present)"
        ),
    )
    lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="do not apply the default baseline file",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    lint.add_argument(
        "--write-registry",
        metavar="DIR",
        default=None,
        help=(
            "regenerate the fault-site registry (fault_sites.json + "
            "fault_sites.md) into DIR and exit"
        ),
    )
    _add_json_envelope_argument(lint, "the lint report")

    for name, help_text in (
        ("table1", "regenerate Table 1 (standalone arrays)"),
        ("table2", "regenerate Table 2 (sub-modeling)"),
        ("table3", "regenerate Table 3 / Fig. 6 (convergence)"),
    ):
        table = subparsers.add_parser(name, help=help_text)
        table.add_argument(
            "--preset",
            default="small",
            choices=("small", "medium", "paper"),
            help=(
                "experiment scale: 'small' (minutes), 'medium' (overnight, "
                "where defined) or 'paper' (the paper's full configuration)"
            ),
        )
        _add_jobs_argument(table, "the independent experiment cases")
        _add_json_envelope_argument(table, "the table (title, columns, rows)")

    return parser


def _command_info() -> int:
    library = MaterialLibrary.default()
    print(f"repro {__version__} — MORE-Stress reproduction")
    print("\nmaterial library (role: E [GPa], nu, CTE [ppm/degC]):")
    for role in library.roles():
        material = library[role]
        print(
            f"  {role:10s}  E={material.young_modulus / 1e3:7.1f}  "
            f"nu={material.poisson_ratio:.2f}  alpha={material.cte * 1e6:.1f}"
        )
    print("\nmesh presets (cells per unit block / DoFs per block):")
    for name in MeshResolution.preset_names():
        resolution = MeshResolution.preset(name)
        print(
            f"  {name:7s}  {resolution.inplane_cells}x{resolution.inplane_cells}"
            f"x{resolution.n_z} cells  ({resolution.dofs_per_block} DoFs)"
        )
    print("\ninterpolation schemes (nodes per axis -> element DoFs n, Eq. 16):")
    for nodes in ((2, 2, 2), (3, 3, 3), (4, 4, 4), (5, 5, 5), (6, 6, 6)):
        print(f"  {nodes}  ->  n = {InterpolationScheme(nodes).num_element_dofs}")
    usable = set(available_backends())
    print("\nsolver backends (--solver-backend):")
    for name in backend_names():
        status = "available" if name in usable else "unavailable (falls back)"
        print(f"  {name:12s}  {status}")
    usable_arrays = set(available_array_backends())
    print("\narray backends (--array-backend):")
    for name in array_backend_names():
        status = "available" if name in usable_arrays else "unavailable (falls back)"
        print(f"  {name:12s}  {status}")
    return 0


def _spec_from_args(args: argparse.Namespace) -> SimulationSpec:
    """Build the SimulationSpec the ``simulate``/``spec`` flags describe.

    Raises :class:`SpecError` (caught by the commands, exit code 2) for
    mistakes spanning several flags, e.g. the same role overridden twice.
    """
    roles = [override.role for override in args.material]
    duplicate = next((role for role in roles if roles.count(role) > 1), None)
    if duplicate is not None:
        raise SpecError(f"--material: role {duplicate!r} is overridden twice")
    # A truthy --export-field (a directory for simulate/run, a flag for spec)
    # requests the full-field output section.
    output = OutputSpec() if getattr(args, "export_field", None) else None
    return SimulationSpec(
        name="cli-simulate",
        geometry=GeometrySpec(
            diameter=args.diameter,
            height=args.height,
            liner_thickness=args.liner,
            pitch=args.pitch,
            rows=args.rows,
            cols=args.cols,
        ),
        materials=MaterialsSpec(overrides=tuple(args.material)),
        mesh=MeshSpec(
            resolution=args.resolution,
            nodes_per_axis=(args.nodes, args.nodes, args.nodes),
            points_per_block=args.points_per_block,
        ),
        solver=SolverSpec(
            backend=args.solver_backend,
            jobs=args.jobs,
            array_backend=args.array_backend or "numpy",
        ),
        load_cases=(LoadCase(name="cli", delta_t=args.delta_t),),
        output=output,
    )


def _print_run_summary(result: RunResult, verbose_cache: bool = True) -> None:
    for case in result.cases:
        vm = case.von_mises
        rows, cols = vm.shape[:2]
        where = f" at {case.location}" if case.location else ""
        print(f"case {case.name:14s}: {rows}x{cols} TSVs{where}, delta_t={case.delta_t:g} degC")
        print(f"  global stage    : {case.global_stage_seconds:.3f} s ({case.solver_method})")
        print(f"  reduced DoFs    : {case.num_global_dofs}")
        if case.shard is not None:
            grid = case.shard.get("grid") or ["?", "?"]
            print(
                f"  shards          : {grid[0]}x{grid[1]} "
                f"(overlap {case.shard.get('overlap')}, "
                f"{case.shard.get('iterations')} Schwarz iteration(s))"
            )
        print(f"  peak von Mises  : {vm.max():.1f} MPa")
    print(f"local stage       : {result.local_stage_seconds:.2f} s (shared)")
    print(f"execution groups  : {result.num_case_groups} (one factorisation each)")
    if verbose_cache and result.rom_cache_stats is not None:
        stats = result.rom_cache_stats
        print(f"rom cache         : {stats['hits']} hit(s), {stats['misses']} miss(es)")


def _export_and_report(
    result: RunResult, directory: str | Path, formats=None, quiet: bool = False
) -> dict:
    """Write field exports + hotspot report; print (unless quiet) and
    return the ``kind="export"`` envelope payload."""
    written = result.export_fields(directory, formats=formats)
    top_k = result.spec.output.top_k if result.spec.output is not None else 10
    hotspots = {}
    for case in result.cases:
        if case.hotspots is not None:
            table = case.hotspots.table(top_k)
            hotspots[case.name] = {
                "title": table.title,
                "columns": list(table.columns),
                "rows": table.rows,
            }
    if not quiet:
        for path in written:
            print(f"export            : {path}")
        for case in result.cases:
            if case.hotspots is not None:
                print()
                print(case.hotspots.table(top_k).to_text())
    return {
        "spec_hash": result.spec_hash,
        "output_dir": str(Path(directory)),
        "files": [str(path) for path in written],
        "hotspots": hotspots,
    }


def _command_simulate(args: argparse.Namespace) -> int:
    try:
        spec = _spec_from_args(args)
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = run_simulation_spec(spec, rom_cache=args.rom_cache)
    json_mode = args.json_path == "-"
    if not json_mode:
        case = result.cases[0]
        vm = case.von_mises
        rows, cols = vm.shape[:2]
        local_note = "one-shot"
        if result.rom_cache_stats is not None:
            stats = result.rom_cache_stats
            local_note = f"rom cache: {stats['hits']} hit(s), {stats['misses']} miss(es)"
        print(f"array             : {rows}x{cols} TSVs at pitch {args.pitch:g} um")
        print(f"thermal load      : {args.delta_t:g} degC")
        print(f"local stage       : {case.local_stage_seconds:.2f} s ({local_note})")
        print(f"global stage      : {case.global_stage_seconds:.3f} s")
        print(f"reduced DoFs      : {case.num_global_dofs}")
        print(f"peak von Mises    : {vm.max():.1f} MPa")
        print(f"mean von Mises    : {vm.mean():.1f} MPa")
    if args.json_path and not json_mode:
        # Historical behaviour: --json PATH writes the *flat* manifest file.
        dump_json(args.json_path, result.manifest())
        print(f"manifest          : {args.json_path}")
    if args.export_field:
        _export_and_report(result, args.export_field, quiet=json_mode)
    if json_mode:
        _emit_envelope(result.envelope(), "-")
    return 0


def _command_spec(args: argparse.Namespace) -> int:
    try:
        spec = _spec_from_args(args)
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    document = spec.to_json(indent=2)
    if args.output:
        # Specs are durable artifacts (checked into repos, fed to `repro
        # run`): write them with the same crash-safe discipline as results.
        atomic_write_bytes(
            Path(args.output),
            (document + "\n").encode("utf-8"),
            fault_site="cli.spec.write",
        )
        print(f"spec written to {args.output}", file=sys.stderr)
    else:
        print(document)
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    root = Path.cwd()
    try:
        if args.list_rules:
            rules = all_lint_rules()
            if args.json_path:
                payload = {
                    "rules": [
                        {
                            "id": rule.id,
                            "name": rule.name,
                            "severity": rule.severity,
                            "description": rule.description,
                        }
                        for rule in rules
                    ]
                }
                _emit_envelope(wrap("lint", payload), args.json_path)
            else:
                for rule in rules:
                    print(f"{rule.id}  {rule.severity:7s} {rule.name}")
                    print(f"       {rule.description}")
            return 0
        paths = [Path(p) for p in args.paths] or None
        if args.write_registry:
            lint_paths = paths if paths is not None else [root / "src" / "repro"]
            for target in lint_paths:
                resolved = target if target.is_absolute() else root / target
                if not resolved.exists():
                    raise LintUsageError(f"lint target does not exist: {resolved}")
            project = LintProject.from_paths(root, lint_paths)
            for written in write_fault_site_registry(project, args.write_registry):
                print(f"wrote {written}", file=sys.stderr)
            return 0
        baseline = None
        if args.baseline:
            baseline = Baseline.load(Path(args.baseline))
        elif not args.no_baseline:
            default_baseline = root / DEFAULT_BASELINE_NAME
            if default_baseline.is_file():
                baseline = Baseline.load(default_baseline)
        report = run_lint(root, paths, rule_ids=args.rules, baseline=baseline)
    except LintUsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json_path:
        _emit_envelope(wrap("lint", report.to_payload()), args.json_path)
    else:
        print(report.render_text())
    return 0 if report.ok else 1


def _parse_shard_grid(text: str) -> tuple[int, int]:
    """Parse the ``--shards RxC`` grid syntax (e.g. ``4x4``, ``2X3``)."""
    parts = text.lower().split("x")
    try:
        rows, cols = (int(part) for part in parts)
    except ValueError:
        raise SpecError(
            f"--shards expects RxC (e.g. 4x4), got {text!r}"
        ) from None
    return rows, cols


def _shard_spec_from_args(
    args: argparse.Namespace, spec: SimulationSpec
) -> ShardSpec | None:
    """The spec's shard section with any CLI overrides applied."""
    if (
        args.shards is None
        and args.shard_overlap is None
        and args.memory_budget is None
    ):
        return spec.solver.shard
    kwargs: dict[str, Any] = (
        {
            field.name: getattr(spec.solver.shard, field.name)
            for field in dataclasses.fields(ShardSpec)
        }
        if spec.solver.shard is not None
        else {}
    )
    if args.shards is not None:
        kwargs["grid"] = _parse_shard_grid(args.shards)
    if args.shard_overlap is not None:
        kwargs["overlap"] = args.shard_overlap
    if args.memory_budget is not None:
        kwargs["memory_budget_bytes"] = args.memory_budget
    return ShardSpec(**kwargs)


def _command_run(args: argparse.Namespace) -> int:
    path = Path(args.spec_path)
    if not path.exists():
        print(f"error: spec file {path} does not exist", file=sys.stderr)
        return 2
    try:
        spec = SimulationSpec.from_json(path.read_text())
        shard = _shard_spec_from_args(args, spec)
    except (SpecError, ValidationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if shard is not spec.solver.shard:
        spec = dataclasses.replace(
            spec, solver=dataclasses.replace(spec.solver, shard=shard)
        )
    if args.export_field and spec.output is None:
        spec = dataclasses.replace(spec, output=OutputSpec())
    # With --save the run checkpoints per case group under the destination,
    # so re-running a killed sweep with the same flags resumes mid-spec.
    checkpoint_dir = Path(args.save) / "checkpoint" if args.save else None
    result = run_simulation_spec(
        spec,
        rom_cache=args.rom_cache,
        jobs=args.jobs,
        array_backend=args.array_backend,
        checkpoint_dir=checkpoint_dir,
    )
    json_mode = args.json_path == "-"
    if not json_mode:
        print(f"spec              : {spec.name} ({result.spec_hash})")
        _print_run_summary(result)
    if args.json_path and not json_mode:
        # Historical behaviour: --json PATH writes the *flat* manifest file.
        dump_json(args.json_path, result.manifest())
        print(f"manifest          : {args.json_path}")
    if args.save:
        result.save(args.save)
        if checkpoint_dir is not None:
            # The saved result supersedes the resume markers.
            shutil.rmtree(checkpoint_dir, ignore_errors=True)
        if not json_mode:
            print(f"full result       : {args.save}")
    if args.export_field:
        _export_and_report(result, args.export_field, quiet=json_mode)
    if json_mode:
        _emit_envelope(result.envelope(), "-")
    return 0


def _command_export(args: argparse.Namespace) -> int:
    results_dir = Path(args.results_dir)
    try:
        result = RunResult.load(results_dir)
    except (SpecError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not any(case.field_data is not None for case in result.cases):
        # The saved run predates full-field outputs (or requested none):
        # re-execute its spec with field outputs enabled.  The manifest holds
        # the complete spec, so the re-run reproduces the same cases.
        archived_hash = result.spec_hash
        spec = result.spec
        if spec.output is None:
            spec = dataclasses.replace(spec, output=OutputSpec())
        print(
            "saved results carry no full fields; re-solving the archived spec "
            f"{spec.name!r} with field outputs enabled"
        )
        result = run_simulation_spec(spec, rom_cache=args.rom_cache, jobs=args.jobs)
        # The output section only adds post-processing — the solve is the
        # archived one — so the exports stay stamped with the archive's hash
        # and remain joinable to its manifest.
        result.spec_hash = archived_hash
    formats = tuple(args.formats) if args.formats else None
    out_dir = Path(args.output) if args.output else results_dir / "fields"
    document = _export_and_report(
        result, out_dir, formats=formats, quiet=args.json_path == "-"
    )
    if args.json_path:
        _emit_envelope(wrap("export", document), args.json_path)
    return 0


def _command_table(
    name: str,
    preset: str = "small",
    jobs: int | None = None,
    json_path: str | None = None,
) -> int:
    config_cls = _TABLE_CONFIGS[name]
    factory = getattr(config_cls, preset, None)
    if factory is None:
        print(
            f"error: {name} ({config_cls.__name__}) has no {preset!r} preset; "
            "available: small, paper"
            + (", medium" if hasattr(config_cls, "medium") else ""),
            file=sys.stderr,
        )
        return 2
    config = factory()
    if name == "table1":
        table = scenario1_table(run_scenario1(config, jobs=jobs))
    elif name == "table2":
        table = scenario2_table(run_scenario2(config, jobs=jobs))
    else:
        records, reference_seconds = run_convergence_study(config, jobs=jobs)
        table = convergence_table(records, reference_seconds)
    if json_path:
        _emit_envelope(_table_envelope(table), json_path)
    if json_path != "-":
        print(table.to_text())
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro import faults
    from repro.service import JobServer

    if args.fault_plan:
        value = args.fault_plan.strip()
        if value.startswith("{"):
            fault_plan = faults.FaultPlan.from_json(value)
        else:
            fault_plan = faults.FaultPlan.from_file(value)
    else:
        fault_plan = faults.FaultPlan.from_env()
    if fault_plan is not None:
        print(
            f"warning: fault injection active ({len(fault_plan.rules)} rule(s), "
            f"seed {fault_plan.seed}) — testing only",
            file=sys.stderr,
        )
    server = JobServer(
        args.store,
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_queued=args.max_queued,
        rom_cache=args.rom_cache,
        rom_cache_max_bytes=args.rom_cache_max_bytes,
        default_timeout_seconds=args.job_timeout,
        stall_timeout_seconds=args.stall_timeout,
        fault_plan=fault_plan,
    )
    server.start()
    document = wrap(
        "serve",
        {
            "url": server.url,
            "store": str(server.store.directory),
            "workers": server.pool.workers,
            "max_queued": args.max_queued,
        },
    )
    if args.json_path:
        _emit_envelope(document, args.json_path)
    if args.json_path != "-":
        print(f"serving           : {server.url}")
        print(f"store             : {server.store.directory}")
        print(f"workers           : {server.pool.workers}")
        print("press Ctrl-C to stop")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        if args.json_path != "-":
            print("\nshutting down")
    finally:
        server.stop()
    return 0


def _command_chaos(args: argparse.Namespace) -> int:
    from repro import chaos

    if args.scenario == "all":
        names = sorted(chaos.SCENARIOS)
    elif args.scenario in chaos.SCENARIOS:
        names = [args.scenario]
    else:
        print(
            f"error: unknown scenario {args.scenario!r}; choose from "
            f"{sorted(chaos.SCENARIOS)} or 'all'",
            file=sys.stderr,
        )
        return 2
    json_mode = args.json_path == "-"
    reports = []
    for name in names:
        store_dir = None
        if args.store:
            store_dir = Path(args.store) / name
        report = chaos.run_scenario(
            name,
            seed=args.seed,
            store_dir=store_dir,
            stall_timeout_seconds=args.stall_timeout,
        )
        reports.append(report)
        if not json_mode:
            status = "ok" if report.ok else "FAIL"
            print(
                f"{name:18s}: {status}  "
                f"({len(report.acknowledged)} job(s), "
                f"{len(report.fired)} fault(s) fired, "
                f"{report.elapsed_seconds:.1f}s)"
            )
            for violation in report.violations:
                print(f"  violation: {violation}")
    failed = [report for report in reports if not report.ok]
    if args.json_path:
        document = wrap(
            "chaos",
            {
                "seed": args.seed,
                "ok": not failed,
                "scenarios": [report.to_dict() for report in reports],
            },
        )
        _emit_envelope(document, args.json_path)
    if not json_mode:
        print(
            f"{len(reports) - len(failed)}/{len(reports)} scenario(s) passed"
        )
    return 1 if failed else 0


def _command_submit(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    path = Path(args.spec_path)
    if not path.exists():
        print(f"error: spec file {path} does not exist", file=sys.stderr)
        return 2
    try:
        spec = SimulationSpec.from_json(path.read_text())
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    json_mode = args.json_path == "-"
    client = ServiceClient(args.url)
    try:
        record = client.submit(spec, timeout_seconds=args.job_timeout)
        if not json_mode:
            note = " (deduplicated)" if record.get("deduplicated") else ""
            print(f"job               : {record['id']}{note}")
            print(f"state             : {record['state']}")
        if args.no_wait:
            if args.json_path:
                _emit_envelope(wrap("job", {"job": record}), args.json_path)
            return 0
        record = client.wait(record["id"], timeout=args.timeout)
        if record["state"] != "done":
            error = record.get("error") or {}
            print(
                f"error: job {record['id']} {record['state']}: "
                f"{error.get('message', 'no error recorded')}",
                file=sys.stderr,
            )
            if args.json_path:
                _emit_envelope(wrap("job", {"job": record}), args.json_path)
            return 1
        envelope = client.result(record["id"])
        if not json_mode:
            manifest = envelope["data"]
            spec_name = (manifest.get("spec") or {}).get("name", spec.name)
            print(f"spec              : {spec_name} ({manifest['spec_hash']})")
            for case in manifest["cases"]:
                print(
                    f"case {case['name']:14s}: {case['rows']}x{case['cols']} TSVs, "
                    f"peak von Mises {case['peak_von_mises']:.1f} MPa "
                    f"({case['global_stage_seconds']:.3f} s global)"
                )
        if args.fields:
            destination = client.fetch_fields(record["id"], args.fields)
            if not json_mode:
                print(f"fields            : {destination}")
        if args.json_path:
            _emit_envelope(envelope, args.json_path)
        return 0
    except ReproError as exc:
        if json_mode:
            print(json.dumps(error_envelope(exc), indent=2, sort_keys=True))
        else:
            print(f"error: {exc}", file=sys.stderr)
        return 1


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``python -m repro``.  Returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        enable_console_logging()
    if args.command == "info":
        return _command_info()
    if args.command == "simulate":
        return _command_simulate(args)
    if args.command == "spec":
        return _command_spec(args)
    if args.command == "run":
        return _command_run(args)
    if args.command == "export":
        return _command_export(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "submit":
        return _command_submit(args)
    if args.command == "chaos":
        return _command_chaos(args)
    if args.command == "lint":
        return _command_lint(args)
    if args.command in _TABLE_COMMANDS:
        return _command_table(
            args.command,
            preset=args.preset,
            jobs=args.jobs,
            json_path=args.json_path,
        )
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
