"""The HTTP job server: ``ThreadingHTTPServer`` over store + worker pool.

Stdlib only — :class:`http.server.ThreadingHTTPServer` handles each request
on its own thread, the handlers below translate HTTP to store/pool calls,
and every taxonomy error maps 1:1 to its HTTP status through
:func:`repro.errors.http_status_for`.  Endpoints (all under ``/v1``):

====================================  =======================================
``POST   /v1/jobs``                   submit a spec (bare document or
                                      ``{"spec": ..., "timeout_seconds":
                                      ..., "max_attempts": ...}``); 201 on a
                                      new job, 200 on a dedup hit
``GET    /v1/jobs``                   list all jobs
``GET    /v1/jobs/{id}``              status + progress + solve statistics
``GET    /v1/jobs/{id}/result``       the run's manifest envelope —
                                      byte-identical to the ``manifest.json``
                                      that :meth:`RunResult.save` wrote
``GET    /v1/jobs/{id}/fields``       the ``fields.npz`` stress-field bundle
``DELETE /v1/jobs/{id}``              cancel (queued: immediate; running:
                                      cooperative at the next case boundary)
``GET    /v1/healthz``                liveness probe
``GET    /v1/stats``                  queue depth, worker utilization, ROM
                                      cache hit rate, dedup accounting
====================================  =======================================

Start one with :class:`JobServer` (in-process, used by the tests and the
example) or ``repro serve`` (the CLI wrapper).  ``port=0`` binds an
ephemeral port, exposed as :attr:`JobServer.port` after :meth:`start`.
"""

from __future__ import annotations

import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any

from repro import faults
from repro._version import __version__
from repro.api.envelope import wrap
from repro.api.spec import SimulationSpec
from repro.errors import (
    JobNotFoundError,
    JobStateError,
    error_envelope,
    http_status_for,
)
from repro.rom.cache import ROMCache
from repro.service import protocol
from repro.service.jobs import JobStore
from repro.service.pool import WorkerPool
from repro.service.watchdog import CircuitBreaker
from repro.utils.logging import get_logger

_logger = get_logger("service.server")

_JOB_ROUTE = re.compile(r"^/v1/jobs/(?P<job_id>[A-Za-z0-9_-]+)(?P<rest>/result|/fields)?$")

_RESULT_MANIFEST = "manifest.json"
_RESULT_FIELDS = "fields.npz"


class _ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the owning :class:`JobServer`."""

    daemon_threads = True
    job_server: "JobServer"


class _Handler(BaseHTTPRequestHandler):
    """Routes ``/v1`` requests to the job server; everything returns JSON."""

    server: _ServiceHTTPServer
    server_version = f"repro-service/{__version__}"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        _logger.info("%s - %s", self.address_string(), format % args)

    def _send_json(
        self,
        document: Any,
        status: int = 200,
        headers: dict[str, str] | None = None,
    ) -> None:
        body = protocol.encode_document(document)
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_envelope(self, exc: BaseException) -> None:
        if not isinstance(exc, (JobNotFoundError, JobStateError)):
            _logger.warning("request %s %s failed: %s", self.command, self.path, exc)
        status = http_status_for(exc)
        headers: dict[str, str] = {}
        if status in (429, 503):
            # Back-pressure responses tell polite clients when to try again;
            # a circuit breaker carries its remaining cooldown in the detail.
            retry_after = 1.0
            detail = getattr(exc, "detail", None)
            if isinstance(detail, dict):
                try:
                    retry_after = float(detail.get("retry_after", retry_after))
                except (TypeError, ValueError):
                    pass
            headers["Retry-After"] = str(max(1, round(retry_after)))
        self._send_json(error_envelope(exc), status=status, headers=headers)

    def _send_file(self, path: Path, content_type: str) -> None:
        data = path.read_bytes()
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    def _dispatch(self, method: str) -> None:
        try:
            handled = self.server.job_server.handle(self, method, self.path)
        except Exception as exc:  # every error becomes a taxonomy envelope
            self._send_error_envelope(exc)
            return
        if not handled:
            self._send_error_envelope(
                JobNotFoundError(f"no route for {method} {self.path}")
            )

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")


class JobServer:
    """The assembled service: job store + worker pool + HTTP front end.

    Parameters
    ----------
    store_dir:
        Service state directory: ``jobs/`` (the persistent queue),
        ``results/`` (saved run results) and — unless ``rom_cache`` points
        elsewhere — ``rom_cache/`` (the shared warm cache).
    host, port:
        Bind address.  ``port=0`` picks an ephemeral port (see :attr:`port`).
    workers:
        Concurrent jobs (default: half the CPUs).
    max_queued:
        Bound on the number of *queued* jobs; submissions beyond it are
        rejected with HTTP 429 (dedup hits are always accepted).
    rom_cache, rom_cache_max_bytes, run_fn, retry_backoff_seconds:
        Forwarded to :class:`WorkerPool` (``rom_cache_max_bytes`` caps the
        shared cache with LRU eviction, surfaced in ``/stats``).
    default_timeout_seconds, default_max_attempts:
        Job options applied when a submission does not carry its own.
    stall_timeout_seconds:
        Enables the worker watchdog: executions whose heartbeat goes staler
        than this are reaped and re-queued (``None`` disables).
    circuit_threshold, circuit_reset_seconds:
        Circuit breaker per spec hash: after ``circuit_threshold``
        consecutive permanent failures, further submissions of that hash
        fail fast with HTTP 503 + ``Retry-After`` until
        ``circuit_reset_seconds`` elapse.  ``circuit_threshold=None``
        disables the breaker.
    fault_plan:
        Optional :class:`repro.faults.FaultPlan` activated for the server's
        lifetime (staging/chaos use; see ``repro serve --fault-plan``).
    """

    def __init__(
        self,
        store_dir: str | Path,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int | None = None,
        max_queued: int | None = 256,
        rom_cache: "ROMCache | str | Path | None" = None,
        rom_cache_max_bytes: int | None = None,
        run_fn: Any = None,
        retry_backoff_seconds: float = 0.5,
        default_timeout_seconds: float | None = None,
        default_max_attempts: int = 2,
        stall_timeout_seconds: float | None = None,
        circuit_threshold: int | None = 3,
        circuit_reset_seconds: float = 60.0,
        fault_plan: "faults.FaultPlan | None" = None,
    ) -> None:
        breaker = (
            CircuitBreaker(circuit_threshold, circuit_reset_seconds)
            if circuit_threshold is not None
            else None
        )
        self.fault_plan = fault_plan
        if fault_plan is not None:
            # Activate before the store loads: corrupt-on-read faults must
            # already apply to the recovery scan.
            faults.activate(fault_plan)
        self.store = JobStore(store_dir, circuit_breaker=breaker)
        self.pool = WorkerPool(
            self.store,
            workers=workers,
            rom_cache=rom_cache,
            rom_cache_max_bytes=rom_cache_max_bytes,
            retry_backoff_seconds=retry_backoff_seconds,
            run_fn=run_fn,
            stall_timeout_seconds=stall_timeout_seconds,
        )
        self.host = host
        self.max_queued = max_queued
        self.default_timeout_seconds = default_timeout_seconds
        self.default_max_attempts = default_max_attempts
        self._http = _ServiceHTTPServer((host, port), _Handler)
        self._http.job_server = self
        self._serve_thread: threading.Thread | None = None
        self._started_at: float | None = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``port=0`` ephemeral binds)."""
        return self._http.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should talk to."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "JobServer":
        """Start the worker pool (resuming queued jobs) and the HTTP loop."""
        if self._serve_thread is not None:
            return self
        self._started_at = time.time()
        self.pool.start()
        self._serve_thread = threading.Thread(
            target=self._http.serve_forever, name="repro-serve", daemon=True
        )
        self._serve_thread.start()
        _logger.info("job server listening on %s", self.url)
        return self

    def stop(self) -> None:
        """Stop accepting requests and shut the worker pool down."""
        if self._serve_thread is None:
            return
        self._http.shutdown()
        self._http.server_close()
        self._serve_thread.join(timeout=10.0)
        self._serve_thread = None
        if self.fault_plan is not None:
            # Wake any worker sleeping in an injected hang so shutdown joins.
            self.fault_plan.release_hangs()
            if faults.active_plan() is self.fault_plan:
                faults.deactivate()
        self.pool.shutdown()

    def __enter__(self) -> "JobServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def handle(self, request: _Handler, method: str, path: str) -> bool:
        """Dispatch one request; returns ``False`` for unknown routes."""
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if method == "GET" and path == "/v1/healthz":
            request._send_json(self._health_document())
            return True
        if method == "GET" and path == "/v1/stats":
            request._send_json(self._stats_document())
            return True
        if path == "/v1/jobs":
            if method == "POST":
                self._handle_submit(request)
                return True
            if method == "GET":
                request._send_json(protocol.job_list_envelope(self.store.list()))
                return True
            return False
        match = _JOB_ROUTE.match(path)
        if match is None:
            return False
        job_id, rest = match.group("job_id"), match.group("rest")
        if rest is None and method == "GET":
            request._send_json(protocol.job_envelope(self.store.get(job_id)))
            return True
        if rest is None and method == "DELETE":
            request._send_json(protocol.job_envelope(self.store.request_cancel(job_id)))
            return True
        if rest == "/result" and method == "GET":
            self._handle_result(request, job_id)
            return True
        if rest == "/fields" and method == "GET":
            self._handle_fields(request, job_id)
            return True
        return False

    # ------------------------------------------------------------------ #
    # endpoint implementations
    # ------------------------------------------------------------------ #
    def _handle_submit(self, request: _Handler) -> None:
        document = protocol.decode_document(request._read_body())
        spec_document, options = protocol.parse_submission(document)
        spec = SimulationSpec.from_dict(spec_document)
        job, created = self.store.submit(
            spec,
            timeout_seconds=options.get(
                "timeout_seconds", self.default_timeout_seconds
            ),
            max_attempts=options.get("max_attempts", self.default_max_attempts),
            max_queued=self.max_queued,
        )
        if created or job.state == "queued":
            # Re-enqueueing a dedup hit that is still queued is harmless
            # (workers skip entries whose job already left the queue) and it
            # heals the orphan left by a crash-after-persist submission: the
            # job record survived on disk but its queue entry was never made,
            # so the client's retried submit must restore it.
            self.pool.enqueue(job)
        request._send_json(
            protocol.job_envelope(job, deduplicated=not created),
            status=201 if created else 200,
        )

    def _finished_job(self, job_id: str) -> Any:
        job = self.store.get(job_id)
        if job.state != "done":
            raise JobStateError(
                f"job {job.id} is {job.state}; results exist only for done jobs",
                detail={"job_id": job.id, "state": job.state, "error": job.error},
            )
        return job

    def _handle_result(self, request: _Handler, job_id: str) -> None:
        job = self._finished_job(job_id)
        manifest = self.store.result_dir(job) / _RESULT_MANIFEST
        if not manifest.exists():
            raise JobNotFoundError(
                f"job {job.id} is done but its result manifest is missing "
                f"(was the store directory pruned?)"
            )
        # Serve the persisted envelope byte-for-byte: the wire payload IS the
        # manifest.json that RunResult.save() wrote.
        request._send_file(manifest, "application/json; charset=utf-8")

    def _handle_fields(self, request: _Handler, job_id: str) -> None:
        job = self._finished_job(job_id)
        bundle = self.store.result_dir(job) / _RESULT_FIELDS
        if not bundle.exists():
            raise JobNotFoundError(
                f"job {job.id} has no persisted stress-field bundle"
            )
        request._send_file(bundle, "application/octet-stream")

    def _health_document(self) -> dict[str, Any]:
        return wrap(
            "health",
            {
                "status": "ok",
                "repro_version": __version__,
                "uptime_seconds": (
                    time.time() - self._started_at if self._started_at else 0.0
                ),
            },
        )

    def _stats_document(self) -> dict[str, Any]:
        from repro.utils.serialization import count_quarantined

        return wrap(
            "stats",
            {
                **self.store.stats(),
                **self.pool.stats(),
                "max_queued": self.max_queued,
                # Every quarantined artifact under the store tree (job
                # records, checkpoints, result bundles) — the ROM cache
                # reports its own count under rom_cache.
                "quarantined_files": count_quarantined(self.store.directory),
                "uptime_seconds": (
                    time.time() - self._started_at if self._started_at else 0.0
                ),
            },
        )


__all__ = ["JobServer"]
