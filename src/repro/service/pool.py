"""Rate-limited worker pool executing queued jobs over one warm ROM cache.

The pool is the service's execution half: N daemon threads (bounded by
:func:`~repro.utils.parallel.resolve_jobs`, the package-wide ``--jobs``
semantics) drain a FIFO queue of job ids and run each spec through
:func:`repro.api.run`.  All workers share **one** process-wide
:class:`~repro.rom.cache.ROMCache`, so concurrent jobs with the same
geometry/mesh/materials hit warm factorizations instead of rebuilding the
local stage — the whole point of serving simulations from a long-lived
process.

Per-job control is cooperative, threaded through the executor's progress
callback at case boundaries:

* **cancellation** — ``DELETE /v1/jobs/{id}`` sets ``cancel_requested``; the
  worker raises :class:`~repro.errors.JobCancelledError` at the next case.
* **timeout** — a job whose wall clock exceeds its ``timeout_seconds`` raises
  :class:`~repro.errors.JobTimeoutError` and fails with HTTP 504 semantics.
* **retry** — unexpected (non-:class:`~repro.errors.ReproError`) failures are
  transient by definition and retried with exponential backoff up to the
  job's ``max_attempts``; taxonomy errors (invalid spec, backend problems)
  are permanent and fail immediately.
* **liveness** — every execution carries a heartbeat token (beaten at attempt
  start and at every case boundary); a
  :class:`~repro.service.watchdog.WorkerWatchdog` reaps executions whose
  heartbeat goes stale, re-queues the job under its retry budget, and spawns
  a replacement worker.  The stuck thread is *abandoned*: threads cannot be
  killed, so when it eventually wakes it discards its result and exits
  instead of double-completing the job.
"""

from __future__ import annotations

import inspect
import queue
import shutil
import threading
import time
from pathlib import Path
from typing import Any, Callable

from repro import faults
from repro.api.result import RunResult
from repro.errors import (
    JobCancelledError,
    JobTimeoutError,
    ReproError,
    WorkerStalledError,
)
from repro.rom.cache import ROMCache
from repro.service.jobs import Job, JobStore
from repro.service.watchdog import WorkerWatchdog
from repro.utils.logging import get_logger
from repro.utils.parallel import available_cpus, resolve_jobs

_logger = get_logger("service.pool")

_ROM_CACHE_SUBDIR = "rom_cache"

#: Queue sentinel telling a worker thread to exit.
_STOP = None


class _AbandonedExecution(Exception):
    """Internal control flow: the watchdog reaped this execution.

    Raised inside the worker when it discovers its token was abandoned; the
    worker discards whatever it computed and exits (a replacement thread is
    already running).  Never escapes the pool.
    """


class ExecutionToken:
    """Heartbeat + liveness state of one in-flight job execution."""

    __slots__ = ("job", "abandoned", "finished", "_heartbeat")

    def __init__(self, job: Job) -> None:
        self.job = job
        self.abandoned = threading.Event()
        self.finished = threading.Event()
        self._heartbeat = time.monotonic()

    def beat(self) -> None:
        """Refresh the heartbeat (attempt start and every case boundary)."""
        self._heartbeat = time.monotonic()

    def heartbeat_age(self) -> float:
        """Seconds since the execution last proved it was alive."""
        return time.monotonic() - self._heartbeat

    def check_abandoned(self) -> None:
        if self.abandoned.is_set():
            # repro-lint: disable=REP004 -- internal control-flow sentinel; caught in _worker(), never escapes the pool
            raise _AbandonedExecution(f"job {self.job.id}: execution abandoned")


def _default_workers() -> int:
    """Concurrent jobs by default: half the CPUs, at least one.

    Each job may itself fan its local stage out over a thread pool, so
    running one job per CPU would oversubscribe; half keeps latency low for
    small queues without starving intra-job parallelism.
    """
    return max(1, available_cpus() // 2)


def _accepts_keyword(fn: Callable[..., Any], name: str) -> bool:
    """Whether ``fn`` can be called with keyword argument ``name``."""
    try:
        parameters = inspect.signature(fn).parameters
    except (TypeError, ValueError):  # builtins / C callables: assume not
        return False
    if name in parameters:
        return True
    return any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    )


def default_run_summary(result: RunResult) -> dict[str, Any]:
    """The lightweight solve-statistics view stored on a finished job."""
    return {
        "num_cases": len(result.cases),
        "num_case_groups": result.num_case_groups,
        "backends_used": result.backends_used,
        "array_backend": result.array_backend,
        "local_stage_seconds": result.local_stage_seconds,
        "global_stage_seconds": result.total_global_stage_seconds,
        "peak_von_mises": max(
            (case.peak_von_mises for case in result.cases), default=0.0
        ),
        "rom_cache": result.rom_cache_stats,
    }


class WorkerPool:
    """N worker threads draining the job queue over one shared ROM cache.

    Parameters
    ----------
    store:
        The persistent :class:`JobStore` (owns all job state).
    workers:
        Concurrent jobs (``--jobs`` semantics; default: half the CPUs).
    rom_cache:
        Shared cache instance or directory.  Defaults to ``rom_cache/``
        inside the store directory, so restarts stay warm.
    rom_cache_max_bytes:
        Optional LRU size cap applied when the pool constructs the cache
        from a directory (an explicitly passed :class:`ROMCache` instance
        keeps its own cap) — a long-lived shard fleet then cannot grow the
        cache without bound.
    retry_backoff_seconds:
        Base of the exponential backoff between transient-failure retries.
    run_fn:
        The executor invoked per attempt, ``run_fn(spec, rom_cache=...,
        progress=...) -> RunResult``.  Defaults to :func:`repro.api.run`;
        tests inject doubles to count invocations or simulate failures.
        When the callable accepts a ``checkpoint_dir`` keyword (the real
        executor does), each attempt runs with per-group checkpoints under
        the job's result directory, so a crashed worker's retry — or a
        re-queued job after a service restart — resumes at the last
        completed case group instead of restarting.
    stall_timeout_seconds:
        When set, a :class:`WorkerWatchdog` reaps executions whose heartbeat
        (attempt start + every case boundary) is staler than this many
        seconds: the job is re-queued under its retry budget (or failed with
        :class:`WorkerStalledError`), a replacement worker thread is
        spawned, and the stuck thread is abandoned.  ``None`` (the default)
        runs without a watchdog.
    """

    def __init__(
        self,
        store: JobStore,
        *,
        workers: int | None = None,
        rom_cache: "ROMCache | str | Path | None" = None,
        rom_cache_max_bytes: int | None = None,
        retry_backoff_seconds: float = 0.5,
        run_fn: Callable[..., RunResult] | None = None,
        stall_timeout_seconds: float | None = None,
    ) -> None:
        self.store = store
        self.workers = (
            resolve_jobs(workers) if workers is not None else _default_workers()
        )
        if rom_cache is None:
            rom_cache = store.directory / _ROM_CACHE_SUBDIR
        self.rom_cache = ROMCache.from_spec(rom_cache, max_bytes=rom_cache_max_bytes)
        self.retry_backoff_seconds = float(retry_backoff_seconds)
        self._run_fn = run_fn
        self._queue: "queue.Queue[str | None]" = queue.Queue()
        self._busy = 0
        self._busy_lock = threading.Lock()
        self._executions: set[ExecutionToken] = set()
        self._executions_lock = threading.Lock()
        # Lifecycle state is shared between start()/shutdown() callers and
        # the watchdog thread (which spawns replacement workers): one lock
        # guards all of it so stall counts and thread bookkeeping cannot
        # tear or lose updates.
        self._lifecycle_lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._started = False
        self._worker_serial = 0
        self.stalls = 0
        self.watchdog = (
            WorkerWatchdog(self, stall_timeout_seconds=stall_timeout_seconds)
            if stall_timeout_seconds is not None
            else None
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "WorkerPool":
        """Start the worker threads and re-enqueue recovered jobs."""
        with self._lifecycle_lock:
            if self._started:
                return self
            self._started = True
        for job in self.store.recover():
            self._queue.put(job.id)
        for _ in range(self.workers):
            self._spawn_worker()
        if self.watchdog is not None:
            self.watchdog.start()
        _logger.info(
            "worker pool: %d worker(s), rom cache at %s",
            self.workers,
            self.rom_cache.directory,
        )
        return self

    def _spawn_worker(self) -> None:
        with self._lifecycle_lock:
            self._worker_serial += 1
            serial = self._worker_serial
        thread = threading.Thread(
            target=self._worker,
            name=f"repro-worker-{serial}",
            daemon=True,
        )
        thread.start()
        with self._lifecycle_lock:
            self._threads.append(thread)

    def shutdown(self, wait: bool = True, timeout: float | None = 10.0) -> None:
        """Stop the workers (running jobs finish their current attempt)."""
        with self._lifecycle_lock:
            if not self._started:
                return
            self._started = False
            threads = list(self._threads)
            self._threads.clear()
        if self.watchdog is not None:
            self.watchdog.stop()
        for _ in threads:
            self._queue.put(_STOP)
        if wait:
            for thread in threads:
                thread.join(timeout=timeout)

    def enqueue(self, job: Job) -> None:
        """Feed a freshly queued job to the workers."""
        self._queue.put(job.id)

    @property
    def busy_workers(self) -> int:
        """Workers currently executing a job (for utilization stats)."""
        with self._busy_lock:
            return self._busy

    def stats(self) -> dict[str, Any]:
        """Pool utilization plus the shared ROM cache statistics."""
        busy = self.busy_workers
        with self._lifecycle_lock:
            stalls = self.stalls
        document = {
            "workers": self.workers,
            "busy_workers": busy,
            "utilization": busy / self.workers if self.workers else 0.0,
            "stalls": stalls,
            "rom_cache": self.rom_cache.stats(),
        }
        if self.watchdog is not None:
            document["watchdog"] = self.watchdog.stats()
        return document

    # ------------------------------------------------------------------ #
    # execution registry (read by the watchdog)
    # ------------------------------------------------------------------ #
    def active_executions(self) -> list[ExecutionToken]:
        """Snapshot of the currently running execution tokens."""
        with self._executions_lock:
            return list(self._executions)

    def _register(self, token: ExecutionToken) -> None:
        with self._executions_lock:
            self._executions.add(token)

    def _unregister(self, token: ExecutionToken) -> None:
        token.finished.set()
        with self._executions_lock:
            self._executions.discard(token)

    def reap_execution(self, token: ExecutionToken, age: float) -> bool:
        """Abandon a stalled execution and reschedule its job.

        Called by the watchdog.  Returns ``True`` when the execution was
        actually reaped (``False`` if it finished or was already reaped in
        the meantime).  The job goes back to the queue while its retry
        budget lasts; otherwise it fails with :class:`WorkerStalledError`.
        A replacement worker thread is spawned either way, because the stuck
        one cannot take new work until (if ever) it wakes.
        """
        if token.finished.is_set() or token.abandoned.is_set():
            return False
        token.abandoned.set()
        self._unregister(token)
        with self._lifecycle_lock:
            self.stalls += 1
            started = self._started
        job = token.job
        _logger.warning(
            "watchdog: job %s stalled (heartbeat %.1fs old); reaping worker",
            job.id,
            age,
        )
        if started:
            self._spawn_worker()
        try:
            current = self.store.get(job.id)
            if current.state != "running":
                return True  # finished/cancelled concurrently; nothing to redo
            if job.attempts >= job.max_attempts:
                self.store.mark_failed(
                    job,
                    WorkerStalledError(
                        f"job {job.id}: worker heartbeat stale for {age:.1f}s "
                        f"and retry budget exhausted "
                        f"({job.attempts}/{job.max_attempts} attempts)",
                        detail={"job_id": job.id, "heartbeat_age": age},
                    ),
                )
            else:
                self.store.requeue(job)
                self._queue.put(job.id)
        except ReproError:
            _logger.exception("watchdog: could not reschedule job %s", job.id)
        return True

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _worker(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is _STOP:
                return
            with self._busy_lock:
                self._busy += 1
            abandoned = False
            try:
                self._run_job(job_id)
            except _AbandonedExecution:
                # The watchdog reaped this execution and spawned a
                # replacement thread; this one exits to keep the worker
                # count honest.
                abandoned = True
            except Exception:  # pragma: no cover - belt and braces
                _logger.exception("worker: unexpected error running job %s", job_id)
            finally:
                with self._busy_lock:
                    self._busy -= 1
            if abandoned:
                _logger.info(
                    "worker %s: exiting after abandoned execution of job %s",
                    threading.current_thread().name,
                    job_id,
                )
                return

    def _run_job(self, job_id: str) -> None:
        job = self.store.mark_running(job_id)
        if job is None:  # cancelled (or otherwise gone) while queued
            return
        spec = job.build_spec()
        deadline = (
            job.started_at + job.timeout_seconds
            if job.timeout_seconds is not None and job.started_at is not None
            else None
        )
        token = ExecutionToken(job)
        self._register(token)

        def progress(done: int, total: int, case_name: str) -> None:
            token.beat()
            token.check_abandoned()
            self.store.update_progress(job, done, total)
            # Re-read our own record: cancel_requested is flipped by the
            # HTTP thread on the same Job instance the store holds.
            if self.store.get(job.id).cancel_requested:
                raise JobCancelledError(
                    f"job {job.id} cancelled after case {case_name!r}"
                )
            if deadline is not None and time.time() > deadline:
                raise JobTimeoutError(
                    f"job {job.id} exceeded its timeout of "
                    f"{job.timeout_seconds:g}s after case {case_name!r}",
                    detail={"timeout_seconds": job.timeout_seconds},
                )

        run_fn = self._run_fn
        if run_fn is None:
            from repro.api import run as run_fn  # late import: heavy module

        # Per-group checkpoints under the job's result directory let a retry
        # (or a recovered job after a restart) resume mid-sweep.  Injected
        # test doubles may not accept the keyword, so it is offered only to
        # callables that do.
        kwargs: dict[str, Any] = {}
        checkpoint_dir = self.store.result_dir(job) / "checkpoint"
        if _accepts_keyword(run_fn, "checkpoint_dir"):
            kwargs["checkpoint_dir"] = checkpoint_dir

        try:
            while True:
                self.store.record_execution(job)
                token.beat()
                try:
                    # The worker fault site: "hang" blocks here with a stale
                    # heartbeat (watchdog bait), "crash" raises below and
                    # rides the transient-retry path like any foreign error.
                    directive = faults.fault_point("service.pool.worker")
                    token.check_abandoned()
                    if directive == "crash":
                        # repro-lint: disable=REP004 -- injected fault: deliberately foreign to the taxonomy so it rides the transient-retry path
                        raise faults.SimulatedCrashError(
                            f"injected worker crash while running job {job.id}"
                        )
                    result = run_fn(
                        spec, rom_cache=self.rom_cache, progress=progress, **kwargs
                    )
                    token.check_abandoned()
                    result.save(self.store.result_dir(job))
                    # The saved result supersedes the markers; a fresh
                    # submission of the same spec must not resume from them.
                    shutil.rmtree(checkpoint_dir, ignore_errors=True)
                    self.store.mark_done(job, default_run_summary(result))
                    return
                except _AbandonedExecution:
                    raise
                except JobCancelledError:
                    self.store.mark_cancelled(job)
                    return
                except (JobTimeoutError, ReproError) as exc:
                    # Timeouts and taxonomy errors (invalid spec, backend
                    # misconfiguration) are permanent: retrying cannot help.
                    self.store.mark_failed(job, exc)
                    return
                except Exception as exc:
                    token.check_abandoned()
                    if job.attempts >= job.max_attempts:
                        self.store.mark_failed(job, exc)
                        return
                    backoff = self.retry_backoff_seconds * 2 ** (job.attempts - 1)
                    _logger.warning(
                        "job %s: attempt %d/%d failed (%s); retrying in %.2fs",
                        job.id,
                        job.attempts,
                        job.max_attempts,
                        exc,
                        backoff,
                    )
                    time.sleep(backoff)
        finally:
            self._unregister(token)


__all__ = ["ExecutionToken", "WorkerPool", "default_run_summary"]
