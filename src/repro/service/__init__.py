"""Simulation-as-a-service: a queued, deduplicating job server over specs.

The batch CLI pays process startup and a cold ROM cache on every invocation.
This package is the long-lived alternative (ROADMAP item 1): an HTTP job
server — pure stdlib, no new dependencies — that accepts
:class:`~repro.api.SimulationSpec` JSON, queues jobs into a rate-limited
worker pool sharing one warm process-wide :class:`~repro.rom.cache.ROMCache`,
deduplicates identical specs by canonical content hash, survives restarts
(queued/running jobs are re-queued from the persistent store), and serves
result manifests, hotspot tables and exported fields back out.

Layers, bottom up:

:mod:`repro.service.jobs`
    The persistent :class:`JobStore`: one JSON document per job, atomic
    writes, spec-hash dedup, restart recovery.
:mod:`repro.service.pool`
    The :class:`WorkerPool`: N worker threads draining the queue, per-job
    cooperative timeout/cancellation, bounded retry with backoff.
:mod:`repro.service.server`
    :class:`JobServer`: a ``ThreadingHTTPServer`` exposing the ``/v1`` API.
:mod:`repro.service.client`
    :class:`ServiceClient`: the typed stdlib client (submit/wait/result/
    fields/cancel), re-raising server-side errors as their
    :mod:`repro.errors` classes.

Quickstart::

    >>> from repro.service import JobServer, ServiceClient        # doctest: +SKIP
    >>> server = JobServer("service-data", port=0).start()        # doctest: +SKIP
    >>> client = ServiceClient(server.url)                        # doctest: +SKIP
    >>> job = client.submit(spec)                                 # doctest: +SKIP
    >>> client.wait(job["id"])                                    # doctest: +SKIP
    >>> client.result(job["id"])["data"]["cases"][0]["peak_von_mises"]  # doctest: +SKIP

or, from the shell, ``repro serve`` and ``repro submit spec.json --url ...``.
"""

from repro.service.client import ServiceClient
from repro.service.jobs import (
    ACTIVE_JOB_STATES,
    JOB_STATES,
    TERMINAL_JOB_STATES,
    Job,
    JobStore,
)
from repro.service.pool import WorkerPool
from repro.service.server import JobServer

__all__ = [
    "JOB_STATES",
    "ACTIVE_JOB_STATES",
    "TERMINAL_JOB_STATES",
    "Job",
    "JobStore",
    "WorkerPool",
    "JobServer",
    "ServiceClient",
]
