"""Typed stdlib client for the ``/v1`` job API.

:class:`ServiceClient` wraps ``urllib.request`` — no new dependencies — and
speaks the same wire protocol module the server does
(:mod:`repro.service.protocol`).  Server-side failures arrive as the
taxonomy's error envelope and are re-raised locally as their original
:mod:`repro.errors` classes, so ``except SpecError`` works identically for
in-process and over-the-wire execution::

    client = ServiceClient("http://127.0.0.1:8642")
    job = client.submit(spec)
    job = client.wait(job["id"], timeout=600)
    manifest = client.result(job["id"])["data"]
"""

from __future__ import annotations

import random
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Mapping

from repro.api.spec import SimulationSpec
from repro.errors import (
    CircuitOpenError,
    JobError,
    JobQueueFullError,
    JobTimeoutError,
    ReproError,
    error_from_envelope,
)
from repro.service import protocol
from repro.utils.serialization import atomic_write_bytes

_DEFAULT_POLL_SECONDS = 0.1


def _jittered(seconds: float) -> float:
    """``seconds`` ±25% — polite clients must not retry in lockstep."""
    return max(0.0, seconds) * (0.75 + 0.5 * random.random())


def _retry_after_of(exc: BaseException, default: float) -> float:
    """The server-advertised retry delay carried by a back-pressure error."""
    value = getattr(exc, "retry_after", None)
    if value is None and isinstance(getattr(exc, "detail", None), Mapping):
        value = exc.detail.get("retry_after")
    try:
        return float(value) if value is not None else default
    except (TypeError, ValueError):
        return default


class ServiceClient:
    """Talk to a running :class:`~repro.service.server.JobServer`.

    Parameters
    ----------
    url:
        Base URL of the server, e.g. ``"http://127.0.0.1:8642"``.  A bare
        ``host:port`` (no scheme) is accepted and normalised to ``http://``.
    timeout_seconds:
        Per-request socket timeout (not the job-completion timeout — that is
        :meth:`wait`'s ``timeout`` argument).
    """

    def __init__(self, url: str, *, timeout_seconds: float = 30.0) -> None:
        if "://" not in url:
            url = f"http://{url}"
        self.url = url.rstrip("/")
        self.timeout_seconds = float(timeout_seconds)

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def _request(
        self,
        method: str,
        path: str,
        document: Any = None,
        *,
        raw: bool = False,
    ) -> Any:
        body = protocol.encode_document(document) if document is not None else None
        request = urllib.request.Request(
            f"{self.url}{protocol.API_PREFIX}{path}",
            data=body,
            method=method,
            headers={"Content-Type": "application/json"} if body else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_seconds) as response:
                payload = response.read()
        except urllib.error.HTTPError as exc:
            payload = exc.read()
            envelope = protocol.decode_document(payload, path=f"{method} {path} response")
            if isinstance(envelope, Mapping) and "error" in envelope:
                error = error_from_envelope(envelope)
                retry_after = exc.headers.get("Retry-After")
                if retry_after is not None:
                    try:
                        error.retry_after = float(retry_after)
                    except (TypeError, ValueError):
                        pass
                raise error from None
            raise JobError(
                f"{method} {path}: HTTP {exc.code} without an error envelope"
            ) from exc
        except urllib.error.URLError as exc:
            raise JobError(f"{method} {path}: cannot reach {self.url} ({exc.reason})") from exc
        if raw:
            return payload
        return protocol.decode_document(payload, path=f"{method} {path} response")

    # ------------------------------------------------------------------ #
    # API surface
    # ------------------------------------------------------------------ #
    def submit(
        self,
        spec: "SimulationSpec | Mapping[str, Any]",
        *,
        timeout_seconds: float | None = None,
        max_attempts: int | None = None,
    ) -> dict[str, Any]:
        """Submit a spec; returns the job record (``{"id", "state", ...}``).

        A dedup hit onto an existing job for the same canonical spec is
        reported by the ``"deduplicated": True`` key on the returned record.
        """
        document: dict[str, Any] = {
            "spec": spec.to_dict() if isinstance(spec, SimulationSpec) else dict(spec)
        }
        if timeout_seconds is not None:
            document["timeout_seconds"] = timeout_seconds
        if max_attempts is not None:
            document["max_attempts"] = max_attempts
        envelope = self._request("POST", "/jobs", document)
        record = dict(envelope["data"]["job"])
        record["deduplicated"] = bool(envelope["data"].get("deduplicated", False))
        return record

    def job(self, job_id: str) -> dict[str, Any]:
        """Fetch one job's status + progress + solve statistics."""
        return self._request("GET", f"/jobs/{job_id}")["data"]["job"]

    def jobs(self) -> list[dict[str, Any]]:
        """List every job the server knows about, oldest first."""
        return self._request("GET", "/jobs")["data"]["jobs"]

    def wait(
        self,
        job_id: str,
        *,
        timeout: float = 600.0,
        poll_seconds: float = _DEFAULT_POLL_SECONDS,
    ) -> dict[str, Any]:
        """Poll until the job reaches a terminal state; returns its record.

        Polling is jittered (±25%) so many waiting clients spread out, and a
        back-pressure response (HTTP 429/503) is honored: the poll sleeps
        for the server's advertised ``Retry-After`` instead of hammering.
        Raises :class:`JobTimeoutError` if the client-side wait budget runs
        out first (the job itself keeps running server-side).
        """
        deadline = time.time() + timeout
        while True:
            delay = poll_seconds
            try:
                record = self.job(job_id)
            except (JobQueueFullError, CircuitOpenError) as exc:
                record = None
                delay = max(poll_seconds, _retry_after_of(exc, poll_seconds))
            if record is not None and record["state"] in ("done", "failed", "cancelled"):
                return record
            if time.time() > deadline:
                state = record["state"] if record is not None else "unreachable"
                raise JobTimeoutError(
                    f"job {job_id} still {state} after waiting {timeout:g}s"
                )
            time.sleep(_jittered(delay))

    def result(self, job_id: str) -> dict[str, Any]:
        """The finished job's result envelope (the saved ``manifest.json``)."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def fetch_fields(self, job_id: str, destination: str | Path) -> Path:
        """Download the job's ``fields.npz`` bundle to ``destination``.

        The bundle lands atomically: a crash mid-download leaves either the
        previous file or nothing, never a torn ``.npz`` that poisons later
        reads.
        """
        payload = self._request("GET", f"/jobs/{job_id}/fields", raw=True)
        destination = Path(destination)
        return atomic_write_bytes(
            destination, payload, fault_site="client.fetch_fields"
        )

    def cancel(self, job_id: str) -> dict[str, Any]:
        """Request cancellation; returns the (possibly already-updated) job."""
        return self._request("DELETE", f"/jobs/{job_id}")["data"]["job"]

    def health(self) -> dict[str, Any]:
        """The liveness document (``{"status": "ok", ...}``)."""
        return self._request("GET", "/healthz")["data"]

    def stats(self) -> dict[str, Any]:
        """Queue depth, worker utilization and ROM-cache hit rates."""
        return self._request("GET", "/stats")["data"]

    def run(
        self,
        spec: "SimulationSpec | Mapping[str, Any]",
        *,
        timeout: float = 600.0,
        timeout_seconds: float | None = None,
    ) -> dict[str, Any]:
        """Submit, wait, and return the result envelope in one call.

        A submission rejected with back-pressure (queue full, open circuit)
        is retried with jittered backoff honoring the server's
        ``Retry-After`` until the ``timeout`` budget runs out.  Raises the
        job's recorded taxonomy error if it failed or was cancelled instead
        of returning a manifest.
        """
        deadline = time.time() + timeout
        while True:
            try:
                record = self.submit(spec, timeout_seconds=timeout_seconds)
                break
            except (JobQueueFullError, CircuitOpenError) as exc:
                delay = _jittered(_retry_after_of(exc, 1.0))
                if time.time() + delay > deadline:
                    raise
                time.sleep(delay)
        record = self.wait(record["id"], timeout=max(0.0, deadline - time.time()))
        if record["state"] != "done":
            error = record.get("error")
            if error:
                raise error_from_envelope({"error": error})
            raise ReproError(f"job {record['id']} ended in state {record['state']!r}")
        return self.result(record["id"])


__all__ = ["ServiceClient"]
