"""Persistent job store: one atomic JSON document per job, dedup by spec hash.

A :class:`Job` is the unit of work of the service: one
:class:`~repro.api.SimulationSpec` plus queueing state, progress, retry
accounting and (once done) a result summary.  The :class:`JobStore` keeps
every job as ``jobs/<id>.json`` under its directory — written atomically via
:func:`~repro.utils.serialization.dump_json` so a killed server never leaves
a torn document — and reloads them on construction, which is what makes a
restarted server resume its queue (:meth:`JobStore.recover`).

Deduplication is by canonical spec hash: submitting a spec whose
:meth:`~repro.api.SimulationSpec.spec_hash` matches a queued, running or
completed job attaches the caller to that job instead of re-solving
(semantically identical documents hash identically because the hash covers
the *normalized* spec, with all defaults filled in).  Failed and cancelled
jobs do not block resubmission.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.api.spec import SimulationSpec
from repro.errors import (
    CorruptArtifactError,
    JobNotFoundError,
    JobQueueFullError,
    JobStateError,
    SpecConflictError,
    ValidationError,
    error_envelope,
)
from repro.service.watchdog import CircuitBreaker
from repro.utils.logging import get_logger
from repro.utils.serialization import dump_json, load_json, quarantine_file

_logger = get_logger("service.jobs")

#: Lifecycle states of a job.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job can still leave.
ACTIVE_JOB_STATES = ("queued", "running")

#: States a job never leaves.
TERMINAL_JOB_STATES = ("done", "failed", "cancelled")

_JOBS_SUBDIR = "jobs"
_RESULTS_SUBDIR = "results"


@dataclass
class Job:
    """One queued simulation: a spec document plus its service lifecycle.

    Attributes
    ----------
    id:
        Opaque unique identifier (stable across server restarts).
    spec:
        The *normalized* spec document (``SimulationSpec.to_dict()`` of the
        parsed submission — defaults filled in, unknown fields rejected).
    spec_hash:
        Canonical content hash of ``spec``; the dedup key.
    state:
        One of :data:`JOB_STATES`.
    created_at, started_at, finished_at:
        Unix timestamps (``started_at``/``finished_at`` are ``None`` until
        the transition happens).
    attempts, max_attempts:
        Executor invocations consumed / allowed.  Transient failures are
        retried with backoff until ``max_attempts`` is exhausted.
    timeout_seconds:
        Per-job wall-clock budget, enforced cooperatively at case boundaries
        (``None`` = no limit).
    cancel_requested:
        Set by ``DELETE /v1/jobs/{id}`` on a running job; the worker honours
        it at the next case boundary.
    progress:
        ``{"done_cases", "total_cases"}`` updated after every completed case.
    executions:
        Total executor invocations recorded for this job — the dedup
        accounting: N submissions of one spec still show ``executions == 1``.
    submissions:
        How many times this job was submitted (first submission + dedup hits).
    error:
        The structured error envelope of the failure (``state == "failed"``).
    result_summary:
        Solve statistics of the finished run (peak stress, stage timings,
        backends used) — the lightweight status view; the full manifest lives
        in the result directory.
    """

    id: str
    spec: dict[str, Any]
    spec_hash: str
    state: str = "queued"
    created_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    attempts: int = 0
    max_attempts: int = 2
    timeout_seconds: float | None = None
    cancel_requested: bool = False
    progress: dict[str, int] = field(
        default_factory=lambda: {"done_cases": 0, "total_cases": 0}
    )
    executions: int = 0
    submissions: int = 1
    error: dict[str, Any] | None = None
    result_summary: dict[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.state not in JOB_STATES:
            raise ValidationError(
                f"job state must be one of {list(JOB_STATES)}, got {self.state!r}"
            )
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValidationError(
                f"timeout_seconds must be positive or null, got {self.timeout_seconds}"
            )
        if self.max_attempts < 1:
            raise ValidationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )

    def build_spec(self) -> SimulationSpec:
        """The parsed :class:`SimulationSpec` of this job."""
        return SimulationSpec.from_dict(self.spec)

    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_JOB_STATES

    def to_dict(self) -> dict[str, Any]:
        """JSON document of this job (the persisted form and the API view)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Job":
        allowed = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - allowed)
        if unknown:
            raise ValidationError(f"job document has unknown fields {unknown}")
        missing = [name for name in ("id", "spec", "spec_hash") if name not in data]
        if missing:
            raise ValidationError(f"job document is missing fields {missing}")
        return cls(**dict(data))


class JobStore:
    """Directory-backed, thread-safe store of every job the service has seen.

    All mutation goes through the store so that (a) every change lands on
    disk atomically before it is visible to other threads and (b) state
    transitions are checked: a job can only run from ``queued``, only finish
    from ``running``, and terminal states are final.

    Records are persisted with an embedded sha256 checksum.  A record that
    fails verification on reload (torn write after ``kill -9``, bit rot) is
    quarantined to ``jobs/.quarantine/`` and counted — a corrupt file can
    never crash a restarting server or resurrect as a ghost job.  Persist
    failures of *non-acknowledging* transitions (progress, retries) degrade
    to a warning + counter: losing a progress tick is recoverable, failing
    the whole job over it is not.  Only the initial submit persist is
    critical, because it backs the acknowledgment returned to the client.

    ``circuit_breaker`` (optional) fail-fasts submissions of a spec hash
    with repeated permanent failures; the service installs one by default.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        circuit_breaker: CircuitBreaker | None = None,
    ) -> None:
        self.directory = Path(directory).expanduser()
        if self.directory.exists() and not self.directory.is_dir():
            raise ValidationError(
                f"job store path {self.directory} exists but is not a directory"
            )
        self._jobs_dir = self.directory / _JOBS_SUBDIR
        self._results_dir = self.directory / _RESULTS_SUBDIR
        self._lock = threading.RLock()
        self._jobs: dict[str, Job] = {}
        self.dedup_hits = 0
        self.quarantined = 0
        self.persist_errors = 0
        self.circuit_breaker = circuit_breaker
        self._load()

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def _load(self) -> None:
        if not self._jobs_dir.is_dir():
            return
        for path in sorted(self._jobs_dir.glob("*.json")):
            try:
                job = Job.from_dict(load_json(path))
            except (CorruptArtifactError, ValidationError, ValueError) as exc:
                _logger.warning(
                    "job store: corrupt record %s (%s); quarantining",
                    path.name,
                    exc,
                )
                quarantine_file(path, f"job record failed to load: {exc}")
                # Under the lock even though _load runs from __init__: the
                # counter and job map belong to self._lock, always — the
                # RLock is uncontended here, so consistency costs nothing.
                with self._lock:
                    self.quarantined += 1
                continue
            except OSError as exc:
                _logger.warning(
                    "job store: skipping unreadable %s (%s)", path.name, exc
                )
                continue
            with self._lock:
                self._jobs[job.id] = job

    def _persist(self, job: Job, *, critical: bool = False) -> None:
        """Write the job record; degrade non-critical persist failures.

        ``critical=True`` propagates write errors (used for the submit
        persist that backs the client-visible acknowledgment); otherwise an
        :class:`OSError` (full disk, injected fault) is logged and counted
        but the in-memory transition stands — the record heals on the next
        successful persist of the job.
        """
        try:
            dump_json(
                self._jobs_dir / f"{job.id}.json",
                job.to_dict(),
                checksum=True,
                fault_site="service.jobs.persist",
            )
        except OSError as exc:
            if critical:
                raise
            with self._lock:
                self.persist_errors += 1
            _logger.warning(
                "job store: could not persist %s (%s); state kept in memory",
                job.id,
                exc,
            )

    def result_dir(self, job: Job) -> Path:
        """Directory the job's :meth:`RunResult.save` output lives in.

        Keyed by spec hash, not job id: results are content-addressed, so a
        re-submission after a failure lands in the same place.
        """
        return self._results_dir / job.spec_hash

    # ------------------------------------------------------------------ #
    # submission / lookup
    # ------------------------------------------------------------------ #
    def submit(
        self,
        spec: SimulationSpec | Mapping[str, Any],
        *,
        timeout_seconds: float | None = None,
        max_attempts: int = 2,
        max_queued: int | None = None,
    ) -> tuple[Job, bool]:
        """Submit a spec; returns ``(job, created)``.

        ``created`` is ``False`` when the submission deduplicated onto an
        existing queued/running/done job.  ``max_queued`` bounds the queue:
        a *new* job beyond the bound raises :class:`JobQueueFullError`
        (dedup hits never count against the bound — they add no work).
        A spec hash whose circuit breaker is open raises
        :class:`~repro.errors.CircuitOpenError` before any work is queued
        (dedup hits pass — attaching to existing work costs nothing).
        """
        if not isinstance(spec, SimulationSpec):
            spec = SimulationSpec.from_dict(spec)
        document = spec.to_dict()
        spec_hash = spec.spec_hash()
        with self._lock:
            existing = self._find_attachable(spec_hash)
            if existing is not None:
                if existing.spec != document:
                    raise SpecConflictError(
                        f"spec hash {spec_hash} is already taken by job "
                        f"{existing.id} with a different document",
                        detail={"job_id": existing.id, "spec_hash": spec_hash},
                    )
                existing.submissions += 1
                self.dedup_hits += 1
                self._persist(existing)
                _logger.info(
                    "job %s: dedup hit for spec %s (%d submissions)",
                    existing.id,
                    spec_hash,
                    existing.submissions,
                )
                return existing, False
            if self.circuit_breaker is not None:
                self.circuit_breaker.check(spec_hash)
            if max_queued is not None:
                depth = sum(1 for job in self._jobs.values() if job.state == "queued")
                if depth >= max_queued:
                    raise JobQueueFullError(
                        f"job queue is full ({depth}/{max_queued} queued); retry later",
                        detail={"queued": depth, "max_queued": max_queued},
                    )
            job = Job(
                id=uuid.uuid4().hex[:12],
                spec=document,
                spec_hash=spec_hash,
                created_at=time.time(),
                timeout_seconds=timeout_seconds,
                max_attempts=max_attempts,
                progress={
                    "done_cases": 0,
                    "total_cases": len(spec.resolved_cases()),
                },
            )
            self._jobs[job.id] = job
            try:
                self._persist(job, critical=True)
            except BaseException:
                # Keep memory consistent with disk: a failed write must not
                # leave a phantom job, but a crash *after* the rename (the
                # record landed durably) must keep it — exactly like a
                # killed server whose restart recovers the queued record.
                if not (self._jobs_dir / f"{job.id}.json").exists():
                    self._jobs.pop(job.id, None)
                raise
            _logger.info("job %s: queued spec %s", job.id, spec_hash)
            return job, True

    def _find_attachable(self, spec_hash: str) -> Job | None:
        """The queued/running/done job a duplicate submission attaches to.

        Callers hold ``self._lock`` (the only call site is ``submit``).
        """
        candidates = [
            job
            # repro-lint: disable=REP005 -- caller holds self._lock (only called from submit's locked section)
            for job in self._jobs.values()
            if job.spec_hash == spec_hash and job.state in ("queued", "running", "done")
        ]
        # Prefer the newest: an old done job and a fresh queued one cannot
        # coexist for the same hash, but be deterministic anyway.
        return max(candidates, key=lambda job: job.created_at, default=None)

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(f"no job with id {job_id!r}")
        return job

    def list(self) -> list[Job]:
        """All jobs, oldest first."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job.created_at)

    # ------------------------------------------------------------------ #
    # state transitions
    # ------------------------------------------------------------------ #
    def _transition(self, job: Job, state: str, allowed_from: Iterable[str]) -> None:
        if job.state not in allowed_from:
            raise JobStateError(
                f"job {job.id} is {job.state}; cannot transition to {state}",
                detail={"job_id": job.id, "state": job.state},
            )
        job.state = state
        self._persist(job)

    def mark_running(self, job_id: str) -> Job | None:
        """Claim a queued job for execution; ``None`` if it left the queue.

        Returning ``None`` (instead of raising) lets a worker race a
        cancellation gracefully: the queue entry is then simply dropped.
        """
        with self._lock:
            job = self.get(job_id)
            if job.state != "queued":
                return None
            job.started_at = time.time()
            self._transition(job, "running", ("queued",))
            return job

    def record_execution(self, job: Job) -> None:
        with self._lock:
            job.executions += 1
            job.attempts += 1
            self._persist(job)

    def update_progress(self, job: Job, done: int, total: int) -> None:
        with self._lock:
            job.progress = {"done_cases": int(done), "total_cases": int(total)}
            self._persist(job)

    def mark_done(self, job: Job, result_summary: Mapping[str, Any]) -> None:
        with self._lock:
            job.finished_at = time.time()
            job.result_summary = dict(result_summary)
            job.error = None
            self._transition(job, "done", ("running",))
            _logger.info("job %s: done", job.id)
        if self.circuit_breaker is not None:
            self.circuit_breaker.record_success(job.spec_hash)

    def mark_failed(self, job: Job, exc: BaseException) -> None:
        with self._lock:
            job.finished_at = time.time()
            job.error = error_envelope(exc)["error"]
            self._transition(job, "failed", ("queued", "running"))
            _logger.warning("job %s: failed (%s)", job.id, exc)
        if self.circuit_breaker is not None:
            self.circuit_breaker.record_failure(job.spec_hash)

    def mark_cancelled(self, job: Job) -> None:
        with self._lock:
            job.finished_at = time.time()
            self._transition(job, "cancelled", ("queued", "running"))
            _logger.info("job %s: cancelled", job.id)

    def request_cancel(self, job_id: str) -> Job:
        """Cancel a queued job immediately; flag a running one to stop.

        Terminal jobs raise :class:`JobStateError` (there is nothing left to
        cancel).
        """
        with self._lock:
            job = self.get(job_id)
            if job.state == "queued":
                self.mark_cancelled(job)
            elif job.state == "running":
                job.cancel_requested = True
                self._persist(job)
                _logger.info("job %s: cancellation requested", job.id)
            else:
                raise JobStateError(
                    f"job {job.id} is already {job.state}; nothing to cancel",
                    detail={"job_id": job.id, "state": job.state},
                )
            return job

    def requeue(self, job: Job) -> None:
        """Return a (stale) running job to the queue (restart recovery)."""
        with self._lock:
            job.started_at = None
            job.cancel_requested = False
            self._transition(job, "queued", ("running",))

    def recover(self) -> list[Job]:
        """Re-queue work interrupted by a crash; returns the jobs to enqueue.

        Jobs found ``running`` (the server died mid-solve) go back to
        ``queued`` without consuming an attempt; the returned list is every
        queued job, oldest first, ready to feed the worker pool.
        """
        with self._lock:
            for job in self._jobs.values():
                if job.state == "running":
                    _logger.warning(
                        "job %s: found running at startup; re-queueing", job.id
                    )
                    self.requeue(job)
            return [job for job in self.list() if job.state == "queued"]

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, Any]:
        """Queue statistics: per-state counts, depth and dedup accounting."""
        with self._lock:
            states = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                states[job.state] += 1
            document = {
                "jobs": states,
                "queue_depth": states["queued"],
                "total_jobs": len(self._jobs),
                "dedup_hits": self.dedup_hits,
                "quarantined": self.quarantined,
                "persist_errors": self.persist_errors,
            }
        if self.circuit_breaker is not None:
            document["circuit_breaker"] = self.circuit_breaker.stats()
        return document


__all__ = [
    "JOB_STATES",
    "ACTIVE_JOB_STATES",
    "TERMINAL_JOB_STATES",
    "Job",
    "JobStore",
]
