"""Wire protocol of the ``/v1`` API: one envelope in, one envelope out.

Success responses are the versioned response envelope of
:mod:`repro.api.envelope` (kinds ``job``, ``job_list``, ``run_result``,
``stats``, ``health``); error responses are the taxonomy's
``{"error": {"code", "message", "detail"}}`` shape from
:mod:`repro.errors`.  Both the server and the typed client import from here,
so the two sides cannot drift apart.

``POST /v1/jobs`` accepts either a bare spec document or the submission
envelope ``{"spec": {...}, "timeout_seconds": ..., "max_attempts": ...}``
(:func:`parse_submission`); a bare document is recognised by the absence of
a ``"spec"`` key, which is not a valid spec field.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.api.envelope import wrap
from repro.errors import SpecError
from repro.service.jobs import Job

#: Default TCP port of ``repro serve`` (and the CLI client's default URL).
DEFAULT_PORT = 8642

#: Current API version prefix; bumped only on breaking wire changes.
API_PREFIX = "/v1"


def encode_document(document: Any) -> bytes:
    """Canonical JSON encoding of a wire document (stable key order)."""
    return (json.dumps(document, indent=2, sort_keys=True) + "\n").encode("utf-8")


def decode_document(payload: bytes, path: str = "request body") -> Any:
    """Parse a JSON request/response body, raising :class:`SpecError` on junk."""
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SpecError(f"{path}: invalid JSON ({exc})") from exc


def parse_submission(document: Any) -> tuple[Any, dict[str, Any]]:
    """Split a ``POST /v1/jobs`` body into (spec document, job options).

    Returns the raw spec document (validated later by
    :meth:`SimulationSpec.from_dict`) plus the submission options
    (``timeout_seconds``, ``max_attempts``) with basic type checks applied.
    """
    if not isinstance(document, Mapping):
        raise SpecError(
            f"request body: expected a JSON object, got {type(document).__name__}"
        )
    if "spec" not in document:
        return document, {}
    allowed = ("spec", "timeout_seconds", "max_attempts")
    unknown = sorted(set(document) - set(allowed))
    if unknown:
        raise SpecError(
            f"request body.{unknown[0]}: unknown field "
            f"(allowed fields: {list(allowed)})"
        )
    options: dict[str, Any] = {}
    timeout = document.get("timeout_seconds")
    if timeout is not None:
        if isinstance(timeout, bool) or not isinstance(timeout, (int, float)):
            raise SpecError(
                f"request body.timeout_seconds: expected a number, got {timeout!r}"
            )
        options["timeout_seconds"] = float(timeout)
    attempts = document.get("max_attempts")
    if attempts is not None:
        if isinstance(attempts, bool) or not isinstance(attempts, int):
            raise SpecError(
                f"request body.max_attempts: expected an integer, got {attempts!r}"
            )
        options["max_attempts"] = attempts
    return document["spec"], options


def job_envelope(job: Job, *, deduplicated: bool | None = None) -> dict[str, Any]:
    """The ``kind="job"`` response envelope of one job."""
    data: dict[str, Any] = {"job": job.to_dict()}
    if deduplicated is not None:
        data["deduplicated"] = deduplicated
    return wrap("job", data)


def job_list_envelope(jobs: list[Job]) -> dict[str, Any]:
    """The ``kind="job_list"`` response envelope of the whole queue."""
    return wrap("job_list", {"jobs": [job.to_dict() for job in jobs]})


__all__ = [
    "API_PREFIX",
    "DEFAULT_PORT",
    "encode_document",
    "decode_document",
    "parse_submission",
    "job_envelope",
    "job_list_envelope",
]
