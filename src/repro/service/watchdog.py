"""Liveness machinery of the job service: circuit breaker + worker watchdog.

Two independent protections against the failure modes a long-lived solver
service actually meets:

:class:`CircuitBreaker`
    Repeated *permanent* failures of one spec hash stop burning worker
    attempts: after ``threshold`` consecutive failures the breaker opens and
    further submissions of that hash fail fast with
    :class:`~repro.errors.CircuitOpenError` (HTTP 503 + ``Retry-After``)
    until a cooldown elapses.  The breaker then half-opens: one probe
    submission is let through, and its outcome closes or re-trips the
    circuit.

:class:`WorkerWatchdog`
    A worker thread hung inside a native solve (a wedged BLAS call, an
    injected ``hang`` fault) never reaches the cooperative cancel points, so
    a separate thread watches per-execution heartbeats.  An execution whose
    heartbeat is staler than ``stall_timeout_seconds`` is *reaped*: the job
    is re-queued under its retry budget (or failed with
    :class:`~repro.errors.WorkerStalledError` once the budget is spent) and
    a replacement worker thread is spawned.  Python cannot kill a thread, so
    the stuck one is *abandoned* — when it eventually wakes it discards its
    result and exits instead of double-completing the job.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Any

from repro.errors import CircuitOpenError
from repro.utils.logging import get_logger
from repro.utils.validation import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pool imports jobs)
    from repro.service.pool import WorkerPool

_logger = get_logger("service.watchdog")


class CircuitBreaker:
    """Per-key consecutive-failure breaker with cooldown and half-open probe.

    Keys are spec hashes in the service, but the breaker is generic.  All
    methods are thread-safe.

    Parameters
    ----------
    threshold:
        Consecutive failures of one key that open its circuit.
    reset_seconds:
        Cooldown before a half-open probe is allowed through.
    """

    def __init__(self, threshold: int = 3, reset_seconds: float = 60.0) -> None:
        if threshold < 1:
            raise ValidationError(f"threshold must be >= 1, got {threshold}")
        if reset_seconds <= 0:
            raise ValidationError(
                f"reset_seconds must be positive, got {reset_seconds}"
            )
        self.threshold = int(threshold)
        self.reset_seconds = float(reset_seconds)
        self.trips = 0
        self._lock = threading.Lock()
        self._failures: dict[str, int] = {}
        self._opened_at: dict[str, float] = {}

    def check(self, key: str) -> None:
        """Raise :class:`CircuitOpenError` if ``key``'s circuit is open.

        After the cooldown the circuit half-opens: this call passes (once),
        and the next :meth:`record_failure` re-trips immediately while a
        :meth:`record_success` closes the circuit for good.
        """
        with self._lock:
            opened_at = self._opened_at.get(key)
            if opened_at is None:
                return
            remaining = self.reset_seconds - (time.monotonic() - opened_at)
            if remaining > 0:
                raise CircuitOpenError(
                    f"circuit for spec {key} is open after "
                    f"{self._failures.get(key, self.threshold)} consecutive "
                    f"failures; retry in {remaining:.1f}s",
                    detail={"spec_hash": key, "retry_after": max(1.0, remaining)},
                )
            # Half-open: allow this probe; one more failure re-trips at once.
            del self._opened_at[key]
            self._failures[key] = self.threshold - 1

    def record_failure(self, key: str) -> None:
        """Count a permanent failure of ``key``; trip at the threshold."""
        with self._lock:
            count = self._failures.get(key, 0) + 1
            self._failures[key] = count
            if count >= self.threshold and key not in self._opened_at:
                self._opened_at[key] = time.monotonic()
                self.trips += 1
                _logger.warning(
                    "circuit breaker: opened for %s after %d consecutive "
                    "failures (cooldown %.0fs)",
                    key,
                    count,
                    self.reset_seconds,
                )

    def record_success(self, key: str) -> None:
        """A success closes ``key``'s circuit and clears its failure count."""
        with self._lock:
            self._failures.pop(key, None)
            self._opened_at.pop(key, None)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "threshold": self.threshold,
                "reset_seconds": self.reset_seconds,
                "open_circuits": len(self._opened_at),
                "trips": self.trips,
            }


class WorkerWatchdog:
    """Background thread reaping worker executions with stale heartbeats.

    Parameters
    ----------
    pool:
        The :class:`~repro.service.pool.WorkerPool` whose executions are
        watched (the pool exposes the heartbeat registry and the reap
        operation).
    stall_timeout_seconds:
        Heartbeat age beyond which an execution counts as stalled.  Workers
        beat at attempt start and at every case boundary, so the timeout
        should comfortably exceed the longest single case solve.
    poll_seconds:
        Scan interval; defaults to a quarter of the stall timeout.
    """

    def __init__(
        self,
        pool: "WorkerPool",
        stall_timeout_seconds: float = 300.0,
        poll_seconds: float | None = None,
    ) -> None:
        if stall_timeout_seconds <= 0:
            raise ValidationError(
                f"stall_timeout_seconds must be positive, got {stall_timeout_seconds}"
            )
        self.pool = pool
        self.stall_timeout_seconds = float(stall_timeout_seconds)
        self.poll_seconds = (
            float(poll_seconds)
            if poll_seconds is not None
            else max(0.05, self.stall_timeout_seconds / 4.0)
        )
        # The reap counter is bumped by the watchdog thread and read by
        # HTTP stats handlers: it needs its own lock.
        self._stats_lock = threading.Lock()
        self.reaped = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "WorkerWatchdog":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-watchdog", daemon=True
        )
        self._thread.start()
        _logger.info(
            "watchdog: watching worker heartbeats (stall after %.1fs, "
            "poll every %.2fs)",
            self.stall_timeout_seconds,
            self.poll_seconds,
        )
        return self

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
        self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(timeout=self.poll_seconds):
            try:
                self.scan_once()
            except Exception:  # pragma: no cover - keep the watchdog alive
                _logger.exception("watchdog: scan failed")

    def scan_once(self) -> int:
        """Reap every currently stalled execution; returns how many."""
        reaped = 0
        for token in self.pool.active_executions():
            age = token.heartbeat_age()
            if age <= self.stall_timeout_seconds:
                continue
            if self.pool.reap_execution(token, age):
                reaped += 1
        with self._stats_lock:
            self.reaped += reaped
        return reaped

    def stats(self) -> dict[str, Any]:
        with self._stats_lock:
            reaped = self.reaped
        return {
            "stall_timeout_seconds": self.stall_timeout_seconds,
            "poll_seconds": self.poll_seconds,
            "reaped": reaped,
        }


__all__ = ["CircuitBreaker", "WorkerWatchdog"]
