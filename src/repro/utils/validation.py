"""Input validation helpers shared by the public API classes."""

from __future__ import annotations

from typing import Sequence

import numpy as np

# Deprecated alias: ValidationError now lives in the unified exception
# taxonomy (repro.errors); importing it from here keeps working.
from repro.errors import ValidationError


def check_positive(name: str, value: float) -> float:
    """Return ``value`` if it is strictly positive, otherwise raise."""
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ValidationError(f"{name} must be a finite positive number, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Return ``value`` if it is finite and >= 0, otherwise raise."""
    value = float(value)
    if not np.isfinite(value) or value < 0.0:
        raise ValidationError(
            f"{name} must be a finite non-negative number, got {value!r}"
        )
    return value


def check_in_range(
    name: str, value: float, low: float, high: float, inclusive: bool = True
) -> float:
    """Return ``value`` if it lies inside ``[low, high]`` (or ``(low, high)``)."""
    value = float(value)
    if inclusive:
        ok = low <= value <= high
    else:
        ok = low < value < high
    if not ok:
        bracket = "[]" if inclusive else "()"
        raise ValidationError(
            f"{name} must lie in {bracket[0]}{low}, {high}{bracket[1]}, got {value!r}"
        )
    return value


def check_positive_int(name: str, value: int, minimum: int = 1) -> int:
    """Return ``value`` as int if it is an integer >= ``minimum``."""
    if int(value) != value:
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_shape(name: str, array: np.ndarray, shape: Sequence[int | None]) -> np.ndarray:
    """Check that ``array`` has the given shape (``None`` entries are wildcards)."""
    array = np.asarray(array)
    if array.ndim != len(shape):
        raise ValidationError(
            f"{name} must have {len(shape)} dimensions, got {array.ndim}"
        )
    for axis, expected in enumerate(shape):
        if expected is not None and array.shape[axis] != expected:
            raise ValidationError(
                f"{name} has shape {array.shape}, expected axis {axis} to be {expected}"
            )
    return array


__all__ = [
    "ValidationError",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_positive_int",
    "check_shape",
]
