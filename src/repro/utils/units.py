"""Unit conventions used throughout the package.

The implementation works in a consistent *micrometre / megapascal* unit
system, which is the natural scale for TSV structures:

* length        -> micrometre (um)
* stress, E     -> megapascal (MPa)
* temperature   -> degree Celsius (only differences matter)
* CTE           -> 1 / degree Celsius

With these choices the stiffness matrices stay well conditioned for
micron-scale geometry (entries of order 1e4..1e6 rather than 1e-4..1e11),
and the von Mises stresses reported by the examples and benchmarks are
directly in MPa, matching the way TSV stress results are usually quoted.

The constants below convert *to* the internal unit system, e.g.
``5 * UM`` is five micrometres expressed internally and ``2.0 * GPA`` is
two gigapascals expressed internally (in MPa).
"""

#: one micrometre in internal length units (the internal unit *is* um)
UM = 1.0

#: one millimetre in internal length units
MM = 1.0e3

#: one nanometre in internal length units
NM = 1.0e-3

#: one degree Celsius in internal temperature units
CELSIUS = 1.0

#: one megapascal in internal stress units (the internal unit *is* MPa)
MPA = 1.0

#: one gigapascal in internal stress units
GPA = 1.0e3
