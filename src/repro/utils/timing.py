"""Wall-clock timing helpers used by the experiment drivers and benchmarks."""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Timer:
    """A simple accumulating wall-clock timer.

    Example
    -------
    >>> t = Timer()
    >>> with t:
    ...     do_work()
    >>> t.elapsed  # doctest: +SKIP
    0.42
    """

    elapsed: float = 0.0
    _start: float | None = None

    def start(self) -> None:
        """Start (or restart) the timer."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop the timer and add the elapsed interval to :attr:`elapsed`."""
        if self._start is None:
            raise RuntimeError("Timer.stop() called before Timer.start()")
        delta = time.perf_counter() - self._start
        self.elapsed += delta
        self._start = None
        return delta

    def reset(self) -> None:
        """Zero the accumulated time."""
        self.elapsed = 0.0
        self._start = None

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


@dataclass
class StageTimings:
    """Named timing records for the stages of a simulation run.

    The experiment drivers use this to report per-stage wall-clock times
    (meshing, assembly, solve, post-processing) in the same spirit as the
    paper's local-stage / global-stage runtime breakdown.
    """

    stages: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str):
        """Context manager that accumulates elapsed time under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.stages[name] = self.stages.get(name, 0.0) + (
                time.perf_counter() - start
            )

    def add(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to the stage called ``name``."""
        self.stages[name] = self.stages.get(name, 0.0) + float(seconds)

    def total(self) -> float:
        """Sum of all recorded stage times."""
        return float(sum(self.stages.values()))

    def get(self, name: str, default: float = 0.0) -> float:
        """Return the accumulated time for ``name``."""
        return self.stages.get(name, default)

    def merge(self, other: "StageTimings") -> "StageTimings":
        """Return a new :class:`StageTimings` with both records combined."""
        merged = StageTimings(dict(self.stages))
        for name, seconds in other.stages.items():
            merged.add(name, seconds)
        return merged

    def as_dict(self) -> dict[str, float]:
        """Return a plain dictionary copy of the stage times."""
        return dict(self.stages)


def timed(func):
    """Decorator returning ``(result, elapsed_seconds)`` from the wrapped call."""

    @functools.wraps(func)
    def wrapper(*args, **kwargs):
        start = time.perf_counter()
        result = func(*args, **kwargs)
        return result, time.perf_counter() - start

    return wrapper
