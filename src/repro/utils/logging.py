"""Lightweight logging configuration for the package.

Experiment drivers print progress through a module-level logger so that the
library itself stays silent by default (important when embedded in other EDA
flows) while the examples and benchmarks can opt into verbose progress
reporting with one call.
"""

from __future__ import annotations

import logging

_PACKAGE_LOGGER_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return the package logger or a child logger named ``name``."""
    if name is None:
        return logging.getLogger(_PACKAGE_LOGGER_NAME)
    return logging.getLogger(f"{_PACKAGE_LOGGER_NAME}.{name}")


def enable_console_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a console handler to the package logger (idempotent)."""
    logger = get_logger()
    logger.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("[%(asctime)s] %(name)s %(levelname)s: %(message)s")
        )
        logger.addHandler(handler)
    return logger


__all__ = ["get_logger", "enable_console_logging"]
