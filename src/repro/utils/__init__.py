"""Shared utilities: units, timing, memory tracking, validation and serialization."""

from repro.utils.units import UM, MM, NM, CELSIUS, GPA, MPA
from repro.utils.timing import Timer, StageTimings, timed
from repro.utils.memory import PeakMemoryTracker, measure_peak_memory
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_in_range,
    check_shape,
    ValidationError,
)
from repro.utils.serialization import save_npz_bundle, load_npz_bundle

__all__ = [
    "UM",
    "MM",
    "NM",
    "CELSIUS",
    "GPA",
    "MPA",
    "Timer",
    "StageTimings",
    "timed",
    "PeakMemoryTracker",
    "measure_peak_memory",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_shape",
    "ValidationError",
    "save_npz_bundle",
    "load_npz_bundle",
]
