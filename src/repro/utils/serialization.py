"""Serialization helpers for reduced order models and simulation results.

Reduced order models are the product of the one-shot local stage and are meant
to be computed once per (material, geometry) configuration and reused for
arbitrarily many global-stage solves, possibly in separate processes.  They
are therefore persisted as a ``.npz`` bundle containing all dense arrays plus
a JSON metadata blob.  Plain-JSON documents (spec files, run manifests) go
through :func:`dump_json`/:func:`load_json`.

Durability discipline shared by every writer here:

* **atomic** — bytes land in a unique temporary file that is renamed over the
  destination, so readers never see a half-written artifact;
* **synced** — the temporary file is ``fsync``'d before the rename and the
  parent directory after it (POSIX), so a power loss after the rename cannot
  surface an empty or truncated file;
* **checksummed** — bundles and (opt-in) JSON documents embed a sha256 over
  their logical content, verified on read; a mismatch raises
  :class:`~repro.errors.CorruptArtifactError` so the self-healing layers can
  :func:`quarantine_file` the artifact instead of crashing on it;
* **injectable** — each writer declares a :func:`repro.faults.fault_point`
  site, which is how the chaos harness tears writes deterministically.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import uuid
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro import faults
from repro.errors import CorruptArtifactError
from repro.utils.logging import get_logger

_logger = get_logger("utils.serialization")

_META_KEY = "__metadata_json__"

#: Key under which :func:`with_checksum` embeds the content digest.
CHECKSUM_KEY = "__sha256__"

#: Subdirectory corrupt artifacts are moved into, next to the original.
QUARANTINE_DIRNAME = ".quarantine"


# ---------------------------------------------------------------------- #
# atomic, synced writes
# ---------------------------------------------------------------------- #
def fsync_directory(path: str | Path) -> None:
    """``fsync`` a directory so a completed rename survives power loss.

    A no-op on platforms (or filesystems) that refuse to open directories;
    durability degrades to the pre-fsync behaviour there instead of failing
    the write.
    """
    try:
        fd = os.open(Path(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: str | Path,
    data: bytes,
    *,
    fault_site: str | None = None,
) -> Path:
    """Write ``data`` to ``path`` atomically and durably.

    The bytes go to a unique ``.tmp-*`` sibling which is fsync'd, renamed
    over ``path``, and the parent directory fsync'd — the full
    write-fsync-rename-fsync discipline.  ``fault_site`` names the
    :func:`repro.faults.fault_point` consulted before writing: ``torn_write``
    truncates the payload (the destination ends up corrupt but present, as
    after a power loss), ``crash`` raises *after* the rename
    (rename-then-crash), and the OSError kinds raise before any byte lands.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    directive = faults.fault_point(fault_site) if fault_site else None
    if directive == "torn_write":
        data = data[: max(1, len(data) // 2)]
    temporary = path.parent / f".tmp-{uuid.uuid4().hex}{path.suffix or '.bin'}"
    try:
        with open(temporary, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, path)
        fsync_directory(path.parent)
        if directive == "crash":
            raise faults.SimulatedCrashError(
                f"injected crash after renaming {path.name} ({fault_site})"
            )
    finally:
        temporary.unlink(missing_ok=True)
    return path


# ---------------------------------------------------------------------- #
# checksums
# ---------------------------------------------------------------------- #
def _document_digest(document: Mapping[str, Any]) -> str:
    """sha256 over the canonical JSON of ``document`` (checksum key excluded)."""
    stripped = {k: v for k, v in document.items() if k != CHECKSUM_KEY}
    encoded = json.dumps(stripped, sort_keys=True).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()


def with_checksum(document: Mapping[str, Any]) -> dict[str, Any]:
    """Return a copy of ``document`` carrying its content digest."""
    result = dict(document)
    result[CHECKSUM_KEY] = _document_digest(result)
    return result


def verify_checksum(document: Any, *, source: str = "document") -> Any:
    """Verify and strip an embedded digest; pass undigested documents through.

    Raises :class:`CorruptArtifactError` on a mismatch.  Documents without a
    :data:`CHECKSUM_KEY` (legacy artifacts, foreign JSON) are returned as-is
    — verification is opt-in at write time, never a migration burden.
    """
    if not isinstance(document, Mapping) or CHECKSUM_KEY not in document:
        return document
    recorded = document[CHECKSUM_KEY]
    actual = _document_digest(document)
    if recorded != actual:
        raise CorruptArtifactError(
            f"{source}: checksum mismatch (recorded {recorded!r:.12}..., "
            f"computed {actual!r:.12}...)",
            detail={"source": source, "recorded": recorded, "computed": actual},
        )
    return {k: v for k, v in document.items() if k != CHECKSUM_KEY}


def _arrays_digest(
    arrays: Mapping[str, np.ndarray], metadata: Mapping[str, Any]
) -> str:
    """sha256 over the logical content of an ``.npz`` bundle.

    Covers every array's name, dtype, shape and raw bytes plus the metadata
    document (checksum key excluded) — independent of the zip container, so
    recompression cannot invalidate it.
    """
    digest = hashlib.sha256()
    for name in sorted(arrays):
        value = np.ascontiguousarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(value.dtype).encode("utf-8"))
        digest.update(repr(value.shape).encode("utf-8"))
        # Feed the array's buffer directly — hashing must not copy it.
        digest.update(value.reshape(-1).view(np.uint8).data)
    stripped = {k: v for k, v in metadata.items() if k != CHECKSUM_KEY}
    digest.update(json.dumps(stripped, sort_keys=True).encode("utf-8"))
    return digest.hexdigest()


# ---------------------------------------------------------------------- #
# quarantine
# ---------------------------------------------------------------------- #
# repro-lint: disable=REP002 -- quarantine IS the failure handler: injecting a fault into it would only re-enter itself; its os.replace moves an already-corrupt file aside
def quarantine_file(path: str | Path, reason: str) -> Path | None:
    """Move a corrupt artifact into a ``.quarantine/`` sidecar directory.

    The file is renamed (never deleted) to
    ``<parent>/.quarantine/<name>.<token>`` with a ``.reason.json`` sidecar
    recording why, and a structured warning is logged.  Returns the
    quarantined path, or ``None`` when the move itself failed (the original
    is then unlinked as a last resort so a corrupt artifact cannot wedge
    every future read).
    """
    path = Path(path)
    quarantine_dir = path.parent / QUARANTINE_DIRNAME
    token = uuid.uuid4().hex[:8]
    target = quarantine_dir / f"{path.name}.{token}"
    try:
        quarantine_dir.mkdir(parents=True, exist_ok=True)
        os.replace(path, target)
    except OSError as exc:
        _logger.warning(
            "quarantine failed for %s (%s); deleting instead", path.name, exc
        )
        Path(path).unlink(missing_ok=True)
        return None
    record = {"original": str(path), "reason": reason, "quarantined_as": str(target)}
    try:
        target.with_name(target.name + ".reason.json").write_text(
            json.dumps(record, indent=2, sort_keys=True) + "\n"
        )
    except OSError:
        pass  # the quarantined artifact itself is what matters
    _logger.warning("quarantined artifact: %s", json.dumps(record, sort_keys=True))
    return target


def count_quarantined(directory: str | Path) -> int:
    """Number of quarantined artifacts below ``directory`` (recursive)."""
    directory = Path(directory)
    if not directory.is_dir():
        return 0
    total = 0
    for quarantine_dir in directory.rglob(QUARANTINE_DIRNAME):
        total += sum(
            1
            for entry in quarantine_dir.iterdir()
            if entry.is_file() and not entry.name.endswith(".reason.json")
        )
    return total


# ---------------------------------------------------------------------- #
# JSON documents
# ---------------------------------------------------------------------- #
def dump_json(
    path: str | Path,
    data: Any,
    indent: int = 2,
    *,
    checksum: bool = False,
    fault_site: str = "serialization.dump_json",
) -> Path:
    """Write ``data`` as JSON to ``path`` atomically and durably.

    ``checksum=True`` embeds a sha256 over the document (mappings only) that
    :func:`load_json` verifies on read.
    """
    path = Path(path)
    if checksum and isinstance(data, Mapping):
        data = with_checksum(data)
    payload = (json.dumps(data, indent=indent, sort_keys=True) + "\n").encode("utf-8")
    return atomic_write_bytes(path, payload, fault_site=fault_site)


def load_json(path: str | Path) -> Any:
    """Load a JSON document written by :func:`dump_json` (or any JSON file).

    Documents carrying an embedded checksum are verified (and the checksum
    key stripped); a mismatch raises :class:`CorruptArtifactError`.
    """
    path = Path(path)
    document = json.loads(path.read_text())
    return verify_checksum(document, source=str(path))


# ---------------------------------------------------------------------- #
# npz bundles
# ---------------------------------------------------------------------- #
def save_npz_bundle(
    path: str | Path,
    arrays: Mapping[str, np.ndarray],
    metadata: Mapping[str, Any] | None = None,
    *,
    fault_site: str = "serialization.save_npz",
) -> Path:
    """Save named arrays plus a JSON metadata dictionary into one ``.npz`` file.

    The bundle is written atomically (tmp + fsync + rename + directory
    fsync) and carries a sha256 over its logical content inside the metadata
    blob, verified by :func:`load_npz_bundle`.

    Parameters
    ----------
    path:
        Destination file.  A ``.npz`` suffix is appended if missing.
    arrays:
        Mapping from array name to :class:`numpy.ndarray`.  Names must not
        collide with the reserved metadata key.
    metadata:
        JSON-serialisable metadata stored alongside the arrays.
    fault_site:
        Fault-injection site name of this write.

    Returns
    -------
    pathlib.Path
        The path actually written.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    if _META_KEY in arrays:
        raise ValueError(f"array name {_META_KEY!r} is reserved for metadata")
    payload = {name: np.asarray(value) for name, value in arrays.items()}
    meta = dict(metadata or {})
    meta[CHECKSUM_KEY] = _arrays_digest(payload, meta)
    meta_json = json.dumps(meta, sort_keys=True)
    payload[_META_KEY] = np.frombuffer(meta_json.encode("utf-8"), dtype=np.uint8)

    path.parent.mkdir(parents=True, exist_ok=True)
    directive = faults.fault_point(fault_site)
    temporary = path.parent / f".tmp-{uuid.uuid4().hex}.npz"
    try:
        with open(temporary, "wb") as handle:
            np.savez_compressed(handle, **payload)
            handle.flush()
            os.fsync(handle.fileno())
        if directive == "torn_write":
            size = temporary.stat().st_size
            with open(temporary, "r+b") as handle:
                handle.truncate(max(1, size // 2))
        os.replace(temporary, path)
        fsync_directory(path.parent)
        if directive == "crash":
            raise faults.SimulatedCrashError(
                f"injected crash after renaming {path.name} ({fault_site})"
            )
    finally:
        temporary.unlink(missing_ok=True)
    return path


#: Fingerprints of bundle files whose digest already verified — warm cache
#: reads hit the same immutable files over and over, so re-hashing every
#: read would tax the hot path for nothing.  Any rewrite (including a torn
#: one) changes the fingerprint and forces re-verification.
_VERIFIED_BUNDLES: dict[str, tuple[int, int, int]] = {}
_VERIFIED_BUNDLES_LOCK = threading.Lock()
_VERIFIED_BUNDLES_CAP = 4096


def _bundle_fingerprint(path: Path) -> tuple[int, int, int] | None:
    try:
        stat = path.stat()
    except OSError:
        return None
    return (stat.st_ino, stat.st_size, stat.st_mtime_ns)


def load_npz_bundle(
    path: str | Path, *, verify: bool = True
) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
    """Load a bundle written by :func:`save_npz_bundle`.

    When the metadata carries a content digest it is verified (``verify=True``,
    the default); a mismatch raises :class:`CorruptArtifactError`.  Bundles
    written before checksums existed load unverified.  Verification is
    memoized per file fingerprint (inode, size, mtime): re-reading an
    unchanged bundle — the warm-cache steady state — skips the digest, while
    any rewrite invalidates the memo and verifies again.

    Returns
    -------
    (arrays, metadata)
        ``arrays`` maps names to arrays, ``metadata`` is the decoded JSON
        dict (checksum key stripped).
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    fingerprint = _bundle_fingerprint(path) if verify else None
    with np.load(path) as data:
        arrays = {name: data[name] for name in data.files if name != _META_KEY}
        metadata: dict[str, Any] = {}
        if _META_KEY in data.files:
            raw = bytes(data[_META_KEY].tobytes())
            if raw:
                metadata = json.loads(raw.decode("utf-8"))
    recorded = metadata.pop(CHECKSUM_KEY, None)
    if verify and recorded is not None:
        key = str(path)
        with _VERIFIED_BUNDLES_LOCK:
            already_verified = (
                fingerprint is not None and _VERIFIED_BUNDLES.get(key) == fingerprint
            )
        if not already_verified:
            actual = _arrays_digest(arrays, metadata)
            if recorded != actual:
                raise CorruptArtifactError(
                    f"{path}: bundle checksum mismatch",
                    detail={
                        "path": str(path),
                        "recorded": recorded,
                        "computed": actual,
                    },
                )
            if fingerprint is not None:
                with _VERIFIED_BUNDLES_LOCK:
                    if len(_VERIFIED_BUNDLES) >= _VERIFIED_BUNDLES_CAP:
                        _VERIFIED_BUNDLES.clear()
                    _VERIFIED_BUNDLES[key] = fingerprint
    return arrays, metadata


__all__ = [
    "CHECKSUM_KEY",
    "QUARANTINE_DIRNAME",
    "atomic_write_bytes",
    "count_quarantined",
    "dump_json",
    "fsync_directory",
    "load_json",
    "load_npz_bundle",
    "quarantine_file",
    "save_npz_bundle",
    "verify_checksum",
    "with_checksum",
]
