"""Serialization helpers for reduced order models and simulation results.

Reduced order models are the product of the one-shot local stage and are meant
to be computed once per (material, geometry) configuration and reused for
arbitrarily many global-stage solves, possibly in separate processes.  They
are therefore persisted as a ``.npz`` bundle containing all dense arrays plus
a JSON metadata blob.  Plain-JSON documents (spec files, run manifests) go
through :func:`dump_json`/:func:`load_json`, which write atomically so a
killed process never leaves a half-written manifest behind.
"""

from __future__ import annotations

import json
import os
import uuid
from pathlib import Path
from typing import Any, Mapping

import numpy as np

_META_KEY = "__metadata_json__"


def dump_json(path: str | Path, data: Any, indent: int = 2) -> Path:
    """Write ``data`` as JSON to ``path`` atomically (tmp file + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    temporary = path.parent / f".tmp-{uuid.uuid4().hex}{path.suffix or '.json'}"
    try:
        temporary.write_text(json.dumps(data, indent=indent, sort_keys=True) + "\n")
        os.replace(temporary, path)
    finally:
        temporary.unlink(missing_ok=True)
    return path


def load_json(path: str | Path) -> Any:
    """Load a JSON document written by :func:`dump_json` (or any JSON file)."""
    return json.loads(Path(path).read_text())


def save_npz_bundle(
    path: str | Path,
    arrays: Mapping[str, np.ndarray],
    metadata: Mapping[str, Any] | None = None,
) -> Path:
    """Save named arrays plus a JSON metadata dictionary into one ``.npz`` file.

    Parameters
    ----------
    path:
        Destination file.  A ``.npz`` suffix is appended if missing.
    arrays:
        Mapping from array name to :class:`numpy.ndarray`.  Names must not
        collide with the reserved metadata key.
    metadata:
        JSON-serialisable metadata stored alongside the arrays.

    Returns
    -------
    pathlib.Path
        The path actually written.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    if _META_KEY in arrays:
        raise ValueError(f"array name {_META_KEY!r} is reserved for metadata")
    payload = {name: np.asarray(value) for name, value in arrays.items()}
    meta_json = json.dumps(dict(metadata or {}), sort_keys=True)
    payload[_META_KEY] = np.frombuffer(meta_json.encode("utf-8"), dtype=np.uint8)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **payload)
    return path


def load_npz_bundle(path: str | Path) -> tuple[dict[str, np.ndarray], dict[str, Any]]:
    """Load a bundle written by :func:`save_npz_bundle`.

    Returns
    -------
    (arrays, metadata)
        ``arrays`` maps names to arrays, ``metadata`` is the decoded JSON dict.
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as data:
        arrays = {name: data[name] for name in data.files if name != _META_KEY}
        metadata: dict[str, Any] = {}
        if _META_KEY in data.files:
            raw = bytes(data[_META_KEY].tobytes())
            if raw:
                metadata = json.loads(raw.decode("utf-8"))
    return arrays, metadata


__all__ = ["save_npz_bundle", "load_npz_bundle", "dump_json", "load_json"]
