"""Peak memory measurement.

The paper reports the maximum memory used during computation for every solver
(Table 1, Table 2).  ANSYS reports its own peak working set; here we measure
the peak size of Python-visible allocations with :mod:`tracemalloc`, which
captures the NumPy/SciPy arrays that dominate FEM memory use.  The resident
set size is also sampled (when ``/proc/self/status`` is available) so that
allocations made inside compiled code that bypass the Python allocator are not
entirely invisible.
"""

from __future__ import annotations

import os
import tracemalloc
from dataclasses import dataclass


def _read_rss_bytes() -> int | None:
    """Return the current resident set size in bytes, or ``None`` if unknown."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        return None
    return None


@dataclass
class MemoryReport:
    """Peak memory observed during a tracked region."""

    peak_traced_bytes: int
    rss_delta_bytes: int | None

    @property
    def peak_traced_mb(self) -> float:
        """Peak traced allocation size in mebibytes."""
        return self.peak_traced_bytes / 2**20

    @property
    def peak_traced_gb(self) -> float:
        """Peak traced allocation size in gibibytes."""
        return self.peak_traced_bytes / 2**30


class PeakMemoryTracker:
    """Context manager measuring peak Python allocations in a region.

    Example
    -------
    >>> with PeakMemoryTracker() as tracker:
    ...     x = [0] * 10_000
    >>> tracker.report.peak_traced_bytes > 0
    True
    """

    def __init__(self) -> None:
        self.report: MemoryReport | None = None
        self._rss_before: int | None = None
        self._started_tracemalloc = False

    def __enter__(self) -> "PeakMemoryTracker":
        self._rss_before = _read_rss_bytes()
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        tracemalloc.reset_peak()
        return self

    def __exit__(self, *exc_info) -> None:
        _, peak = tracemalloc.get_traced_memory()
        rss_after = _read_rss_bytes()
        rss_delta = None
        if self._rss_before is not None and rss_after is not None:
            rss_delta = max(0, rss_after - self._rss_before)
        if self._started_tracemalloc:
            tracemalloc.stop()
        self.report = MemoryReport(peak_traced_bytes=peak, rss_delta_bytes=rss_delta)

    @property
    def peak_bytes(self) -> int:
        """Peak traced bytes of the last tracked region."""
        if self.report is None:
            raise RuntimeError("PeakMemoryTracker used before the region completed")
        return self.report.peak_traced_bytes


def measure_peak_memory(func, *args, **kwargs):
    """Call ``func`` and return ``(result, MemoryReport)``."""
    with PeakMemoryTracker() as tracker:
        result = func(*args, **kwargs)
    return result, tracker.report


def process_rss_mb() -> float | None:
    """Current resident set size of this process in MiB (or ``None``)."""
    rss = _read_rss_bytes()
    if rss is None:
        return None
    return rss / 2**20


__all__ = [
    "MemoryReport",
    "PeakMemoryTracker",
    "measure_peak_memory",
    "process_rss_mb",
]

# Keep ``os`` referenced so static checkers do not flag the conditional import
# path used on platforms without /proc.
_ = os.name
