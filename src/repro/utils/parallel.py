"""Shared worker-pool helpers.

One small, order-preserving ``parallel_map`` serves every embarrassingly
parallel loop in the package: the local stage's per-boundary-mode snapshot
solves, independent unit-block ROM builds, load-sweep cases and experiment
scenario sweeps.  The default worker count follows ``--jobs N`` semantics
(``None`` means one worker per CPU), and ``jobs=1`` degrades to a plain
serial loop so callers pay no pool overhead — and produce byte-for-byte the
same results — when parallelism is off.

Threads are the default executor: the heavy lifting inside each task happens
in NumPy/SciPy compiled code, and every task writes only to its own result.
A process pool (fork/spawn via :mod:`concurrent.futures`) is available for
coarse-grained tasks whose functions and results pickle cleanly, e.g. whole
experiment cases.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.utils.validation import ValidationError

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")


def available_cpus() -> int:
    """Number of CPUs actually available to this process.

    ``os.cpu_count()`` reports the machine's CPUs, which oversubscribes the
    pool inside cgroup/affinity-limited containers (CI runners, schedulers);
    ``os.sched_getaffinity(0)`` reports the CPUs this process may run on and
    is preferred wherever the platform provides it.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:
            pass
    return max(1, os.cpu_count() or 1)


def resolve_jobs(jobs: int | None = None) -> int:
    """Normalize a ``--jobs``-style worker count.

    ``None`` resolves to the CPUs available to this process (affinity-aware,
    at least 1); explicit values must be positive integers.
    """
    if jobs is None:
        return available_cpus()
    jobs = int(jobs)
    if jobs < 1:
        raise ValidationError(f"jobs must be >= 1 (or None for one per CPU), got {jobs}")
    return jobs


def parallel_map(
    fn: Callable[[_ItemT], _ResultT],
    items: Iterable[_ItemT],
    jobs: int | None = None,
    executor: str = "thread",
) -> list[_ResultT]:
    """Map ``fn`` over ``items``, preserving input order.

    Parameters
    ----------
    fn:
        The per-item task.  Tasks must be independent of each other; with
        ``executor="process"`` both ``fn`` and its results must pickle.
    items:
        The work list (consumed eagerly).
    jobs:
        Worker count (``None`` = one per CPU).  With one effective worker the
        map runs serially in the calling thread, bit-identical to a plain
        loop.
    executor:
        ``"thread"`` (default) or ``"process"``.

    Returns
    -------
    list
        ``[fn(item) for item in items]`` — the parallel schedule never
        changes results, only wall-clock time.
    """
    work: Sequence[_ItemT] = list(items)
    workers = min(resolve_jobs(jobs), len(work))
    if workers <= 1:
        return [fn(item) for item in work]
    if executor == "thread":
        pool_cls = ThreadPoolExecutor
    elif executor == "process":
        pool_cls = ProcessPoolExecutor
    else:
        raise ValidationError(
            f"executor must be 'thread' or 'process', got {executor!r}"
        )
    with pool_cls(max_workers=workers) as pool:
        return list(pool.map(fn, work))


__all__ = ["available_cpus", "resolve_jobs", "parallel_map"]
