"""Convergence study: error versus interpolation node count (paper Table 3, Fig. 6).

A fixed standalone array is solved once with the reference full FEM, and then
with MORE-Stress for an increasing number of Lagrange interpolation nodes
``(2,2,2) … (6,6,6)``.  The study reports, per node count, the number of
element DoFs ``n`` (paper Eq. 16), the one-shot local stage runtime, the
global stage runtime and the normalized MAE — the columns of Table 3 and the
two curves of Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import normalized_mae
from repro.analysis.reporting import ResultTable, format_seconds
from repro.api import run as run_spec
from repro.baselines.full_fem import FullFEMReference
from repro.experiments.config import ConvergenceConfig
from repro.geometry.array_layout import TSVArrayLayout
from repro.geometry.tsv import TSVGeometry
from repro.materials.library import MaterialLibrary
from repro.rom.interpolation import InterpolationScheme
from repro.utils.logging import get_logger
from repro.utils.parallel import parallel_map, resolve_jobs

_logger = get_logger("experiments.convergence")


@dataclass
class ConvergenceRecord:
    """One node-count point of the convergence study."""

    nodes_per_axis: tuple[int, int, int]
    num_element_dofs: int
    local_stage_seconds: float
    global_stage_seconds: float
    error: float

    def as_fig6_point(self) -> tuple[int, float, float]:
        """Return the ``(n, error, global runtime)`` triple plotted in Fig. 6."""
        return (self.num_element_dofs, self.error, self.global_stage_seconds)


def run_convergence_study(
    config: ConvergenceConfig | None = None,
    materials: MaterialLibrary | None = None,
    rom_cache=None,
    jobs: int | None = 1,
) -> tuple[list[ConvergenceRecord], float]:
    """Run the convergence study.

    ``rom_cache`` (a :class:`~repro.rom.cache.ROMCache` or directory) lets
    repeat runs reuse the per-node-count ROMs (each node count is a distinct
    cache entry because the interpolation scheme is part of the key).
    ``jobs`` runs the independent node-count cases concurrently (``None`` =
    one worker per CPU); records keep the serial ordering.

    Returns
    -------
    (records, reference_seconds)
        Per-node-count records plus the runtime of the single reference FEM
        solve (the paper quotes the ANSYS time of the same case next to
        Table 3).
    """
    config = config or ConvergenceConfig.small()
    materials = materials or MaterialLibrary.default()
    tsv = TSVGeometry.paper_default(pitch=config.pitch)
    layout = TSVArrayLayout.full(tsv, rows=config.array_size)

    reference = FullFEMReference(materials, resolution=config.mesh_resolution)
    reference_solution = reference.solve_array(layout, config.delta_t)
    reference_vm = reference_solution.von_mises_midplane(config.points_per_block)
    reference_seconds = reference_solution.total_time()

    # Split the worker budget between the outer node-count sweep and each
    # case's local stage, so --jobs N never oversubscribes to N*N threads.
    outer_jobs = min(resolve_jobs(jobs), max(1, len(config.node_counts)))
    inner_jobs = max(1, resolve_jobs(jobs) // outer_jobs)

    def run_case(nodes: tuple[int, int, int]) -> ConvergenceRecord:
        _logger.info("convergence: nodes=%s", nodes)
        # Each node count runs through the declarative executor as its own
        # spec (the scheme is part of the ROM fingerprint).
        rom_run = run_spec(
            config.to_spec(nodes_per_axis=nodes),
            materials=materials,
            rom_cache=rom_cache,
            jobs=inner_jobs,
        )
        case = rom_run.cases[0]
        return ConvergenceRecord(
            nodes_per_axis=tuple(nodes),
            num_element_dofs=InterpolationScheme(tuple(nodes)).num_element_dofs,
            local_stage_seconds=case.local_stage_seconds,
            global_stage_seconds=case.global_stage_seconds,
            error=normalized_mae(case.von_mises, reference_vm),
        )

    records = parallel_map(run_case, config.node_counts, jobs=outer_jobs)
    return records, reference_seconds


def convergence_table(
    records: list[ConvergenceRecord], reference_seconds: float | None = None
) -> ResultTable:
    """Format convergence records as a Table-3-style text table."""
    title = "Table 3 — convergence with the number of interpolation nodes"
    if reference_seconds is not None:
        title += f" (reference full FEM: {format_seconds(reference_seconds)})"
    table = ResultTable(
        title=title,
        columns=["(nx, ny, nz)", "n", "local stage", "global stage", "error"],
    )
    for record in records:
        table.add_row(
            **{
                "(nx, ny, nz)": str(record.nodes_per_axis),
                "n": record.num_element_dofs,
                "local stage": format_seconds(record.local_stage_seconds),
                "global stage": format_seconds(record.global_stage_seconds),
                "error": f"{100 * record.error:.2f}%",
            }
        )
    return table


def is_monotonically_converging(records: list[ConvergenceRecord], tolerance: float = 1.05) -> bool:
    """Whether the error decreases (within ``tolerance``) as ``n`` grows.

    Used by the tests and the benchmark harness to assert the qualitative
    claim of Fig. 6 without pinning exact error values.
    """
    ordered = sorted(records, key=lambda record: record.num_element_dofs)
    return all(
        later.error <= earlier.error * tolerance
        for earlier, later in zip(ordered, ordered[1:])
    )


__all__ = [
    "ConvergenceRecord",
    "run_convergence_study",
    "convergence_table",
    "is_monotonically_converging",
]
