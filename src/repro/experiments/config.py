"""Experiment configurations.

Every experiment has two standard configurations:

* ``small()`` — the default used by the test-suite and the benchmark harness.
  The pure-Python reference FEM (which plays ANSYS's role) limits how large
  the ground-truth problems can be, so array sizes and mesh resolutions are
  scaled down while keeping every qualitative knob of the paper (two pitches,
  five package locations, the (2,2,2)…(6,6,6) node sweep).
* ``paper()`` — the paper-scale parameters (array sizes 10x10…50x50, 15x15
  embedded arrays, 100x100 sample points per block).  Running these requires
  hours of CPU time with the pure-Python reference solver; they are provided
  for completeness and for users with time to burn.

See DESIGN.md §2 for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.utils.validation import check_positive_int

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.spec import SimulationSpec


@dataclass(frozen=True)
class Scenario1Config:
    """Standalone TSV arrays with clamped top/bottom surfaces (Table 1)."""

    pitches: tuple[float, ...] = (15.0, 10.0)
    array_sizes: tuple[int, ...] = (2, 3, 4)
    mesh_resolution: str = "tiny"
    nodes_per_axis: tuple[int, int, int] = (4, 4, 4)
    points_per_block: int = 20
    delta_t: float = -250.0
    superposition_window_blocks: int = 3

    def __post_init__(self) -> None:
        for size in self.array_sizes:
            check_positive_int("array size", size)

    @classmethod
    def small(cls) -> "Scenario1Config":
        """Scaled-down default configuration (minutes of CPU time)."""
        return cls()

    @classmethod
    def medium(cls) -> "Scenario1Config":
        """A larger sweep for overnight runs."""
        return cls(array_sizes=(3, 4, 5, 6), mesh_resolution="coarse",
                   points_per_block=30)

    @classmethod
    def paper(cls) -> "Scenario1Config":
        """The paper's configuration (array sizes 10x10 … 50x50)."""
        return cls(
            array_sizes=(10, 20, 30, 40, 50),
            mesh_resolution="paper",
            points_per_block=100,
            superposition_window_blocks=5,
        )

    def to_spec(self, pitch: float) -> "SimulationSpec":
        """The declarative spec of this study's MORE-Stress leg at one pitch.

        One spec carries every array size as a :class:`~repro.api.LoadCase`
        (the ROMs depend only on the pitch/mesh/scheme, so the executor
        builds them once and reuses them across sizes).
        """
        from repro.api.spec import GeometrySpec, LoadCase, MeshSpec, SimulationSpec

        return SimulationSpec(
            name=f"scenario1-pitch{pitch:g}",
            geometry=GeometrySpec(pitch=pitch, rows=self.array_sizes[0]),
            mesh=MeshSpec(
                resolution=self.mesh_resolution,
                nodes_per_axis=self.nodes_per_axis,
                points_per_block=self.points_per_block,
            ),
            load_cases=tuple(
                LoadCase(name=f"{size}x{size}", delta_t=self.delta_t, rows=size)
                for size in self.array_sizes
            ),
        )


@dataclass(frozen=True)
class Scenario2Config:
    """TSV array embedded at five chiplet locations via sub-modeling (Table 2)."""

    pitches: tuple[float, ...] = (15.0, 10.0)
    array_rows: int = 3
    array_cols: int = 3
    dummy_ring_width: int = 1
    locations: tuple[str, ...] = ("loc1", "loc2", "loc3", "loc4", "loc5")
    mesh_resolution: str = "tiny"
    nodes_per_axis: tuple[int, int, int] = (4, 4, 4)
    points_per_block: int = 20
    delta_t: float = -250.0
    coarse_inplane_cells: int = 18
    package_scale: float = 1.0
    superposition_window_blocks: int = 3

    @classmethod
    def small(cls) -> "Scenario2Config":
        """Scaled-down default configuration."""
        return cls()

    @classmethod
    def paper(cls) -> "Scenario2Config":
        """The paper's configuration (15x15 array, 2 dummy rings, 100x100 grid)."""
        return cls(
            array_rows=15,
            array_cols=15,
            dummy_ring_width=2,
            mesh_resolution="paper",
            points_per_block=100,
            coarse_inplane_cells=40,
            package_scale=2.0,
            superposition_window_blocks=5,
        )

    def to_spec(self, pitch: float) -> "SimulationSpec":
        """The declarative spec of this study's MORE-Stress leg at one pitch.

        One spec carries every package location as a
        :class:`~repro.api.LoadCase`; the executor resolves the locations,
        shares the ROMs and applies the coarse-model displacements.
        """
        from repro.api.spec import (
            GeometrySpec,
            LoadCase,
            MeshSpec,
            SimulationSpec,
            SubModelSpec,
        )

        return SimulationSpec(
            name=f"scenario2-pitch{pitch:g}",
            geometry=GeometrySpec(
                pitch=pitch, rows=self.array_rows, cols=self.array_cols
            ),
            mesh=MeshSpec(
                resolution=self.mesh_resolution,
                nodes_per_axis=self.nodes_per_axis,
                points_per_block=self.points_per_block,
            ),
            load_cases=tuple(
                LoadCase(name=location, delta_t=self.delta_t, location=location)
                for location in self.locations
            ),
            submodel=SubModelSpec(
                dummy_ring_width=self.dummy_ring_width,
                coarse_inplane_cells=self.coarse_inplane_cells,
                package_scale=self.package_scale,
                location=self.locations[0],
            ),
        )


@dataclass(frozen=True)
class ConvergenceConfig:
    """Convergence of the error with the interpolation node count (Table 3 / Fig. 6)."""

    pitch: float = 15.0
    array_size: int = 3
    node_counts: tuple[tuple[int, int, int], ...] = (
        (2, 2, 2),
        (3, 3, 3),
        (4, 4, 4),
        (5, 5, 5),
        (6, 6, 6),
    )
    mesh_resolution: str = "coarse"
    points_per_block: int = 20
    delta_t: float = -250.0

    @classmethod
    def small(cls) -> "ConvergenceConfig":
        """Scaled-down default configuration."""
        return cls()

    @classmethod
    def paper(cls) -> "ConvergenceConfig":
        """The paper's configuration (20x20 array, 100x100 grid per block)."""
        return cls(array_size=20, mesh_resolution="paper", points_per_block=100)

    def to_spec(self, nodes_per_axis: tuple[int, int, int]) -> "SimulationSpec":
        """The declarative spec of one node-count point of the study.

        Each node count is its own spec (the interpolation scheme changes the
        ROM fingerprint, so there is nothing to share between points).
        """
        from repro.api.spec import GeometrySpec, LoadCase, MeshSpec, SimulationSpec

        nodes = tuple(nodes_per_axis)
        return SimulationSpec(
            name=f"convergence-n{'x'.join(str(n) for n in nodes)}",
            geometry=GeometrySpec(pitch=self.pitch, rows=self.array_size),
            mesh=MeshSpec(
                resolution=self.mesh_resolution,
                nodes_per_axis=nodes,
                points_per_block=self.points_per_block,
            ),
            load_cases=(LoadCase(name="cooldown", delta_t=self.delta_t),),
        )


__all__ = ["Scenario1Config", "Scenario2Config", "ConvergenceConfig"]
