"""Experiment configurations.

Every experiment has two standard configurations:

* ``small()`` — the default used by the test-suite and the benchmark harness.
  The pure-Python reference FEM (which plays ANSYS's role) limits how large
  the ground-truth problems can be, so array sizes and mesh resolutions are
  scaled down while keeping every qualitative knob of the paper (two pitches,
  five package locations, the (2,2,2)…(6,6,6) node sweep).
* ``paper()`` — the paper-scale parameters (array sizes 10x10…50x50, 15x15
  embedded arrays, 100x100 sample points per block).  Running these requires
  hours of CPU time with the pure-Python reference solver; they are provided
  for completeness and for users with time to burn.

See DESIGN.md §2 for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class Scenario1Config:
    """Standalone TSV arrays with clamped top/bottom surfaces (Table 1)."""

    pitches: tuple[float, ...] = (15.0, 10.0)
    array_sizes: tuple[int, ...] = (2, 3, 4)
    mesh_resolution: str = "tiny"
    nodes_per_axis: tuple[int, int, int] = (4, 4, 4)
    points_per_block: int = 20
    delta_t: float = -250.0
    superposition_window_blocks: int = 3

    def __post_init__(self) -> None:
        for size in self.array_sizes:
            check_positive_int("array size", size)

    @classmethod
    def small(cls) -> "Scenario1Config":
        """Scaled-down default configuration (minutes of CPU time)."""
        return cls()

    @classmethod
    def medium(cls) -> "Scenario1Config":
        """A larger sweep for overnight runs."""
        return cls(array_sizes=(3, 4, 5, 6), mesh_resolution="coarse",
                   points_per_block=30)

    @classmethod
    def paper(cls) -> "Scenario1Config":
        """The paper's configuration (array sizes 10x10 … 50x50)."""
        return cls(
            array_sizes=(10, 20, 30, 40, 50),
            mesh_resolution="paper",
            points_per_block=100,
            superposition_window_blocks=5,
        )


@dataclass(frozen=True)
class Scenario2Config:
    """TSV array embedded at five chiplet locations via sub-modeling (Table 2)."""

    pitches: tuple[float, ...] = (15.0, 10.0)
    array_rows: int = 3
    array_cols: int = 3
    dummy_ring_width: int = 1
    locations: tuple[str, ...] = ("loc1", "loc2", "loc3", "loc4", "loc5")
    mesh_resolution: str = "tiny"
    nodes_per_axis: tuple[int, int, int] = (4, 4, 4)
    points_per_block: int = 20
    delta_t: float = -250.0
    coarse_inplane_cells: int = 18
    package_scale: float = 1.0
    superposition_window_blocks: int = 3

    @classmethod
    def small(cls) -> "Scenario2Config":
        """Scaled-down default configuration."""
        return cls()

    @classmethod
    def paper(cls) -> "Scenario2Config":
        """The paper's configuration (15x15 array, 2 dummy rings, 100x100 grid)."""
        return cls(
            array_rows=15,
            array_cols=15,
            dummy_ring_width=2,
            mesh_resolution="paper",
            points_per_block=100,
            coarse_inplane_cells=40,
            package_scale=2.0,
            superposition_window_blocks=5,
        )


@dataclass(frozen=True)
class ConvergenceConfig:
    """Convergence of the error with the interpolation node count (Table 3 / Fig. 6)."""

    pitch: float = 15.0
    array_size: int = 3
    node_counts: tuple[tuple[int, int, int], ...] = (
        (2, 2, 2),
        (3, 3, 3),
        (4, 4, 4),
        (5, 5, 5),
        (6, 6, 6),
    )
    mesh_resolution: str = "coarse"
    points_per_block: int = 20
    delta_t: float = -250.0

    @classmethod
    def small(cls) -> "ConvergenceConfig":
        """Scaled-down default configuration."""
        return cls()

    @classmethod
    def paper(cls) -> "ConvergenceConfig":
        """The paper's configuration (20x20 array, 100x100 grid per block)."""
        return cls(array_size=20, mesh_resolution="paper", points_per_block=100)


__all__ = ["Scenario1Config", "Scenario2Config", "ConvergenceConfig"]
