"""Experiment drivers regenerating the paper's tables and figures."""

from repro.experiments.config import (
    Scenario1Config,
    Scenario2Config,
    ConvergenceConfig,
)
from repro.experiments.scenario1 import Scenario1Record, run_scenario1, scenario1_table
from repro.experiments.scenario2 import Scenario2Record, run_scenario2, scenario2_table
from repro.experiments.convergence import (
    ConvergenceRecord,
    run_convergence_study,
    convergence_table,
)

__all__ = [
    "Scenario1Config",
    "Scenario2Config",
    "ConvergenceConfig",
    "Scenario1Record",
    "run_scenario1",
    "scenario1_table",
    "Scenario2Record",
    "run_scenario2",
    "scenario2_table",
    "ConvergenceRecord",
    "run_convergence_study",
    "convergence_table",
]
