"""Scenario 2: TSV array embedded in a chiplet via sub-modeling (paper Table 2, Fig. 5b).

For every pitch the driver

1. solves the coarse chiplet package model once (substrate + interposer +
   die warpage under the thermal load),
2. then, for every requested location in the interposer, analyses the
   dummy-padded TSV array sub-model with the three methods:

   * reference full FEM of the sub-model with the coarse displacements applied
     to its boundary (ground truth),
   * linear superposition with the coarse stress as background,
   * MORE-Stress with the coarse displacements applied to the global
     interpolation nodes (paper §4.4).

The paper's observation — superposition degrades where the background stress
varies sharply (die corner ``loc3``, interposer corner ``loc5``) while
MORE-Stress does not — is reproduced by comparing the per-location errors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import normalized_mae
from repro.analysis.reporting import ResultTable, format_bytes, format_seconds
from repro.api import run as run_spec
from repro.baselines.coarse_model import CoarseChipletModel
from repro.baselines.full_fem import FullFEMReference
from repro.baselines.linear_superposition import LinearSuperpositionMethod
from repro.experiments.config import Scenario2Config
from repro.geometry.package import ChipletPackage
from repro.geometry.tsv import TSVGeometry
from repro.materials.library import MaterialLibrary
from repro.rom.submodeling import place_submodel
from repro.utils.logging import get_logger
from repro.utils.parallel import parallel_map, resolve_jobs

_logger = get_logger("experiments.scenario2")


@dataclass
class Scenario2Record:
    """One (pitch, location) case of the embedded-array study."""

    pitch: float
    location: str
    array_rows: int
    array_cols: int
    # reference full FEM of the sub-model
    reference_dofs: int
    reference_seconds: float
    reference_peak_bytes: int
    # linear superposition with the coarse background stress
    superposition_seconds: float
    superposition_peak_bytes: int
    superposition_error: float
    # MORE-Stress sub-modeling
    rom_global_stage_seconds: float
    rom_peak_bytes: int
    rom_error: float

    @property
    def time_improvement_over_reference(self) -> float:
        """Reference runtime divided by the MORE-Stress global-stage runtime."""
        return self.reference_seconds / max(self.rom_global_stage_seconds, 1e-12)

    @property
    def memory_improvement_over_reference(self) -> float:
        """Reference peak memory divided by the MORE-Stress peak memory."""
        return self.reference_peak_bytes / max(self.rom_peak_bytes, 1)

    @property
    def accuracy_improvement_over_superposition(self) -> float:
        """Superposition error divided by the MORE-Stress error."""
        return self.superposition_error / max(self.rom_error, 1e-12)


def run_scenario2(
    config: Scenario2Config | None = None,
    materials: MaterialLibrary | None = None,
    rom_cache=None,
    jobs: int | None = 1,
) -> list[Scenario2Record]:
    """Run the embedded-array (sub-modeling) study and return per-case records.

    ``rom_cache`` (a :class:`~repro.rom.cache.ROMCache` or directory) lets
    repeat runs reuse the per-pitch TSV/dummy ROM pairs.  ``jobs`` runs the
    independent per-pitch sweeps concurrently (``None`` = one worker per
    CPU); records keep the serial ordering.
    """
    config = config or Scenario2Config.small()
    materials = materials or MaterialLibrary.default()
    package = ChipletPackage.scaled_default(config.package_scale)
    # Split the worker budget between the outer per-pitch sweep and each
    # pitch's local stage, so --jobs N never oversubscribes to N*N threads.
    outer_jobs = min(resolve_jobs(jobs), max(1, len(config.pitches)))
    inner_jobs = max(1, resolve_jobs(jobs) // outer_jobs)

    def run_pitch(pitch: float) -> list[Scenario2Record]:
        records: list[Scenario2Record] = []
        tsv = TSVGeometry.paper_default(pitch=pitch)

        coarse_model = CoarseChipletModel(
            package, materials, inplane_cells=config.coarse_inplane_cells
        )
        coarse_solution = coarse_model.solve(config.delta_t)
        _logger.info(
            "scenario 2: coarse package solved (pitch=%g, warpage=%.3f um)",
            pitch,
            coarse_solution.warpage(),
        )

        superposition = LinearSuperpositionMethod(
            materials,
            resolution=config.mesh_resolution,
            window_blocks=config.superposition_window_blocks,
        )
        superposition.prepare(tsv)
        reference = FullFEMReference(materials, resolution=config.mesh_resolution)

        background_stress = coarse_solution.stress_field_per_unit_load()
        displacement_field = coarse_solution.displacement_field()

        # The MORE-Stress leg runs through the declarative executor: one spec
        # per pitch carries every package location, sharing the ROMs and the
        # already-solved coarse package model.
        rom_run = run_spec(
            config.to_spec(pitch=pitch),
            materials=materials,
            rom_cache=rom_cache,
            jobs=inner_jobs,
            coarse_solution=coarse_solution,
        )

        for location_name in config.locations:
            case = rom_run.case(location_name)
            _, layout = place_submodel(
                tsv,
                package,
                rows=config.array_rows,
                cols=config.array_cols,
                ring_width=config.dummy_ring_width,
                location=location_name,
            )
            _logger.info("scenario 2: pitch=%g location=%s", pitch, location_name)

            reference_solution = reference.solve_array(
                layout,
                config.delta_t,
                boundary="submodel",
                displacement_field=displacement_field,
            )
            reference_vm = reference_solution.von_mises_midplane(config.points_per_block)

            estimate = superposition.estimate(
                layout,
                config.delta_t,
                points_per_block=config.points_per_block,
                background_stress_field=background_stress,
            )
            superposition_vm = estimate.von_mises_midplane()

            records.append(
                Scenario2Record(
                    pitch=pitch,
                    location=location_name,
                    array_rows=config.array_rows,
                    array_cols=config.array_cols,
                    reference_dofs=reference_solution.num_dofs,
                    reference_seconds=reference_solution.total_time(),
                    reference_peak_bytes=reference_solution.peak_memory_bytes,
                    superposition_seconds=estimate.estimation_seconds,
                    superposition_peak_bytes=estimate.peak_memory_bytes,
                    superposition_error=normalized_mae(superposition_vm, reference_vm),
                    rom_global_stage_seconds=case.global_stage_seconds,
                    rom_peak_bytes=case.peak_memory_bytes,
                    rom_error=normalized_mae(case.von_mises, reference_vm),
                )
            )
        return records

    per_pitch = parallel_map(run_pitch, config.pitches, jobs=outer_jobs)
    return [record for pitch_records in per_pitch for record in pitch_records]


def scenario2_table(records: list[Scenario2Record]) -> ResultTable:
    """Format scenario-2 records as a Table-2-style text table."""
    table = ResultTable(
        title="Table 2 — TSV array embedded in a chiplet (sub-modeling)",
        columns=[
            "pitch",
            "location",
            "fullFEM time",
            "fullFEM mem",
            "superpos err",
            "MORE-Stress time",
            "MORE-Stress err",
            "time gain",
            "mem gain",
            "accuracy gain",
        ],
    )
    for record in records:
        table.add_row(
            pitch=f"{record.pitch:g} um",
            location=record.location,
            **{
                "fullFEM time": format_seconds(record.reference_seconds),
                "fullFEM mem": format_bytes(record.reference_peak_bytes),
                "superpos err": f"{100 * record.superposition_error:.2f}%",
                "MORE-Stress time": format_seconds(record.rom_global_stage_seconds),
                "MORE-Stress err": f"{100 * record.rom_error:.2f}%",
                "time gain": f"{record.time_improvement_over_reference:.0f}x",
                "mem gain": f"{record.memory_improvement_over_reference:.0f}x",
                "accuracy gain": f"{record.accuracy_improvement_over_superposition:.1f}x",
            },
        )
    return table


__all__ = ["Scenario2Record", "run_scenario2", "scenario2_table"]
