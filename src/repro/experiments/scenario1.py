"""Scenario 1: standalone TSV arrays (paper Table 1, Fig. 5a).

For every pitch and array size the driver runs

* the reference full FEM (the role ANSYS plays in the paper) — ground truth,
  runtime and memory;
* the linear superposition baseline — runtime, memory and normalized MAE;
* MORE-Stress — one-shot local stage time (once per pitch), global stage
  runtime, memory and normalized MAE;

and reports the same improvement factors the paper tabulates (time and memory
reduction over the full FEM, accuracy improvement over superposition).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import normalized_mae
from repro.analysis.reporting import ResultTable, format_bytes, format_seconds
from repro.api import run as run_spec
from repro.baselines.full_fem import FullFEMReference
from repro.baselines.linear_superposition import LinearSuperpositionMethod
from repro.experiments.config import Scenario1Config
from repro.geometry.array_layout import TSVArrayLayout
from repro.geometry.tsv import TSVGeometry
from repro.materials.library import MaterialLibrary
from repro.utils.logging import get_logger
from repro.utils.parallel import parallel_map, resolve_jobs

_logger = get_logger("experiments.scenario1")


@dataclass
class Scenario1Record:
    """One (pitch, array size) case of the standalone-array study."""

    pitch: float
    array_size: int
    # reference full FEM
    reference_dofs: int
    reference_seconds: float
    reference_peak_bytes: int
    # linear superposition
    superposition_seconds: float
    superposition_peak_bytes: int
    superposition_error: float
    # MORE-Stress
    rom_local_stage_seconds: float
    rom_global_stage_seconds: float
    rom_peak_bytes: int
    rom_error: float
    rom_global_dofs: int

    @property
    def time_improvement_over_reference(self) -> float:
        """Reference runtime divided by the MORE-Stress global-stage runtime."""
        return self.reference_seconds / max(self.rom_global_stage_seconds, 1e-12)

    @property
    def memory_improvement_over_reference(self) -> float:
        """Reference peak memory divided by the MORE-Stress peak memory."""
        return self.reference_peak_bytes / max(self.rom_peak_bytes, 1)

    @property
    def accuracy_improvement_over_superposition(self) -> float:
        """Superposition error divided by the MORE-Stress error."""
        return self.superposition_error / max(self.rom_error, 1e-12)


def run_scenario1(
    config: Scenario1Config | None = None,
    materials: MaterialLibrary | None = None,
    rom_cache=None,
    jobs: int | None = 1,
) -> list[Scenario1Record]:
    """Run the standalone-array study and return one record per case.

    ``rom_cache`` (a :class:`~repro.rom.cache.ROMCache` or directory) lets
    repeat runs of the study reuse the per-pitch ROMs instead of rebuilding
    them; the one-shot column then reports the (tiny) cache-load time.
    ``jobs`` runs the independent per-pitch case sweeps concurrently
    (``None`` = one worker per CPU); records keep the serial ordering.
    """
    config = config or Scenario1Config.small()
    materials = materials or MaterialLibrary.default()
    # Split the worker budget between the outer per-pitch sweep and each
    # pitch's local stage, so --jobs N never oversubscribes to N*N threads.
    outer_jobs = min(resolve_jobs(jobs), max(1, len(config.pitches)))
    inner_jobs = max(1, resolve_jobs(jobs) // outer_jobs)

    def run_pitch(pitch: float) -> list[Scenario1Record]:
        records: list[Scenario1Record] = []
        tsv = TSVGeometry.paper_default(pitch=pitch)
        superposition = LinearSuperpositionMethod(
            materials,
            resolution=config.mesh_resolution,
            window_blocks=config.superposition_window_blocks,
        )
        reference = FullFEMReference(materials, resolution=config.mesh_resolution)
        superposition.prepare(tsv)

        # The MORE-Stress leg runs through the declarative executor: one spec
        # per pitch carries every array size, so the one-shot local stage runs
        # once (exactly as the paper accounts for it) and each size is its own
        # execution group.
        rom_run = run_spec(
            config.to_spec(pitch=pitch),
            materials=materials,
            rom_cache=rom_cache,
            jobs=inner_jobs,
        )
        rom_cases = {case.rows: case for case in rom_run.cases}

        for size in config.array_sizes:
            layout = TSVArrayLayout.full(tsv, rows=size)
            _logger.info("scenario 1: pitch=%g size=%dx%d", pitch, size, size)

            reference_solution = reference.solve_array(layout, config.delta_t)
            reference_vm = reference_solution.von_mises_midplane(config.points_per_block)

            estimate = superposition.estimate(
                layout, config.delta_t, points_per_block=config.points_per_block
            )
            superposition_vm = estimate.von_mises_midplane()

            case = rom_cases[size]
            records.append(
                Scenario1Record(
                    pitch=pitch,
                    array_size=size,
                    reference_dofs=reference_solution.num_dofs,
                    reference_seconds=reference_solution.total_time(),
                    reference_peak_bytes=reference_solution.peak_memory_bytes,
                    superposition_seconds=estimate.estimation_seconds,
                    superposition_peak_bytes=estimate.peak_memory_bytes,
                    superposition_error=normalized_mae(superposition_vm, reference_vm),
                    rom_local_stage_seconds=case.local_stage_seconds,
                    rom_global_stage_seconds=case.global_stage_seconds,
                    rom_peak_bytes=case.peak_memory_bytes,
                    rom_error=normalized_mae(case.von_mises, reference_vm),
                    rom_global_dofs=case.num_global_dofs,
                )
            )
        return records

    per_pitch = parallel_map(run_pitch, config.pitches, jobs=outer_jobs)
    return [record for pitch_records in per_pitch for record in pitch_records]


def scenario1_table(records: list[Scenario1Record]) -> ResultTable:
    """Format scenario-1 records as a Table-1-style text table."""
    table = ResultTable(
        title="Table 1 — standalone TSV arrays (per pitch and array size)",
        columns=[
            "pitch",
            "array",
            "fullFEM time",
            "fullFEM mem",
            "superpos time",
            "superpos err",
            "MORE-Stress time",
            "MORE-Stress mem",
            "MORE-Stress err",
            "time gain",
            "mem gain",
            "accuracy gain",
        ],
    )
    for record in records:
        table.add_row(
            pitch=f"{record.pitch:g} um",
            array=f"{record.array_size}x{record.array_size}",
            **{
                "fullFEM time": format_seconds(record.reference_seconds),
                "fullFEM mem": format_bytes(record.reference_peak_bytes),
                "superpos time": format_seconds(record.superposition_seconds),
                "superpos err": f"{100 * record.superposition_error:.2f}%",
                "MORE-Stress time": format_seconds(record.rom_global_stage_seconds),
                "MORE-Stress mem": format_bytes(record.rom_peak_bytes),
                "MORE-Stress err": f"{100 * record.rom_error:.2f}%",
                "time gain": f"{record.time_improvement_over_reference:.0f}x",
                "mem gain": f"{record.memory_improvement_over_reference:.0f}x",
                "accuracy gain": f"{record.accuracy_improvement_over_superposition:.1f}x",
            },
        )
    return table


__all__ = ["Scenario1Record", "run_scenario1", "scenario1_table"]
