"""Unified exception taxonomy of the whole package.

Every error the package raises on purpose derives from :class:`ReproError`,
so callers embedding the reproduction — scripts, the CLI, the job service —
can catch one base class instead of a grab bag of ``ValueError`` subtypes.
Each class carries a stable machine-readable ``code`` and the HTTP status
the service (:mod:`repro.service`) maps it to, and :meth:`ReproError.envelope`
renders the one structured error shape used everywhere::

    {"error": {"code": "invalid_spec", "message": "...", "detail": {...}}}

Historical import paths keep working: ``repro.utils.validation`` re-exports
:class:`ValidationError` and ``repro.api.spec`` re-exports :class:`SpecError`
(both are deprecated aliases of the classes defined here).  The taxonomy
stays a subclass of :class:`ValueError` where it always was one, so existing
``except ValueError`` call sites see no behaviour change.
"""

from __future__ import annotations

from typing import Any, Mapping


class ReproError(Exception):
    """Base class of every intentional error raised by this package.

    Attributes
    ----------
    code:
        Stable machine-readable identifier of the error class (snake_case).
    http_status:
        The HTTP status :mod:`repro.service` responds with when this error
        reaches a request handler.
    detail:
        Optional JSON-compatible payload with structured context (e.g. the
        offending field, the conflicting job id).
    """

    code: str = "internal_error"
    http_status: int = 500

    def __init__(self, message: str = "", *, detail: Any = None) -> None:
        super().__init__(message)
        self.detail = detail

    @property
    def message(self) -> str:
        return str(self)

    def envelope(self) -> dict[str, Any]:
        """The structured error envelope of this exception."""
        return {
            "error": {
                "code": self.code,
                "message": self.message,
                "detail": self.detail,
            }
        }


class ValidationError(ReproError, ValueError):
    """Raised when a user-supplied parameter is outside its valid domain."""

    code = "validation_error"
    http_status = 400


class SpecError(ValidationError):
    """A malformed spec document; the message names the offending field."""

    code = "invalid_spec"
    http_status = 400


class BackendError(ValidationError):
    """An unknown solver/array backend, or no usable fallback for one."""

    code = "backend_unavailable"
    http_status = 400


class CorruptArtifactError(ReproError):
    """A persisted artifact (bundle, record, checkpoint) failed verification.

    Raised when a checksum embedded by the serialization layer does not match
    the bytes read back — a torn write, bit rot, or a partially synced file
    surfacing after a crash.  The self-healing layers catch this, quarantine
    the artifact and rebuild; it reaches callers only when nothing can.
    """

    code = "corrupt_artifact"
    http_status = 500


class JobError(ReproError):
    """Base class of job-service errors (queueing, state, execution)."""

    code = "job_error"
    http_status = 500


class JobNotFoundError(JobError):
    """The requested job id does not exist in the job store."""

    code = "job_not_found"
    http_status = 404


class JobStateError(JobError):
    """The job exists but its state does not allow the requested action."""

    code = "job_state"
    http_status = 409


class SpecConflictError(JobError):
    """Two different spec documents collided on one canonical spec hash."""

    code = "spec_conflict"
    http_status = 409


class JobQueueFullError(JobError):
    """The service's bounded job queue is at capacity; retry later."""

    code = "queue_full"
    http_status = 429


class JobTimeoutError(JobError):
    """A job exceeded its per-job wall-clock timeout and was aborted."""

    code = "job_timeout"
    http_status = 504


class JobCancelledError(JobError):
    """A job was cancelled before (or while) it ran."""

    code = "job_cancelled"
    http_status = 409


class WorkerStalledError(JobError):
    """A worker stopped heartbeating mid-job and was reaped by the watchdog.

    The job is re-queued while its retry budget lasts; this error records the
    terminal failure once the budget is exhausted.
    """

    code = "worker_stalled"
    http_status = 504


class CircuitOpenError(JobError):
    """Repeated permanent failures of one spec tripped its circuit breaker.

    Submissions of the failing spec hash fail fast (HTTP 503) until the
    breaker's cooldown elapses; ``detail["retry_after"]`` carries the
    remaining cooldown in seconds.
    """

    code = "circuit_open"
    http_status = 503


#: Every taxonomy class keyed by its stable ``code`` — the reverse mapping
#: the service client uses to re-raise a typed exception from a wire envelope.
ERROR_CLASSES_BY_CODE: dict[str, type[ReproError]] = {
    cls.code: cls
    for cls in (
        ReproError,
        ValidationError,
        SpecError,
        BackendError,
        CorruptArtifactError,
        JobError,
        JobNotFoundError,
        JobStateError,
        SpecConflictError,
        JobQueueFullError,
        JobTimeoutError,
        JobCancelledError,
        WorkerStalledError,
        CircuitOpenError,
    )
}


def error_envelope(exc: BaseException) -> dict[str, Any]:
    """The structured error envelope of any exception.

    :class:`ReproError` instances render their own code/status; anything else
    degrades to the opaque ``internal_error`` (its type name is preserved in
    the detail so operators can grep server logs for it).
    """
    if isinstance(exc, ReproError):
        return exc.envelope()
    return {
        "error": {
            "code": ReproError.code,
            "message": str(exc) or type(exc).__name__,
            "detail": {"exception_type": type(exc).__name__},
        }
    }


def http_status_for(exc: BaseException) -> int:
    """The HTTP status code the service maps an exception to."""
    if isinstance(exc, ReproError):
        return exc.http_status
    return ReproError.http_status


def error_from_envelope(document: Mapping[str, Any]) -> ReproError:
    """Reconstruct a typed :class:`ReproError` from a wire error envelope.

    Unknown codes (a newer server talking to an older client) degrade to the
    :class:`ReproError` base with the original code preserved in the detail.
    """
    entry = document.get("error") if isinstance(document, Mapping) else None
    if not isinstance(entry, Mapping):
        return ReproError(f"malformed error envelope: {document!r}")
    code = entry.get("code", ReproError.code)
    message = entry.get("message", "")
    detail = entry.get("detail")
    cls = ERROR_CLASSES_BY_CODE.get(code)
    if cls is None:
        error = ReproError(message, detail={"code": code, "detail": detail})
        return error
    return cls(message, detail=detail)


__all__ = [
    "ReproError",
    "ValidationError",
    "SpecError",
    "BackendError",
    "CorruptArtifactError",
    "JobError",
    "JobNotFoundError",
    "JobStateError",
    "SpecConflictError",
    "JobQueueFullError",
    "JobTimeoutError",
    "JobCancelledError",
    "WorkerStalledError",
    "CircuitOpenError",
    "ERROR_CLASSES_BY_CODE",
    "error_envelope",
    "error_from_envelope",
    "http_status_for",
]
