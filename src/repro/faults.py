"""Deterministic, seeded fault injection for the durability/liveness layers.

Long-running ROM services fail in ways unit tests never exercise on their
own: a torn write surfacing after a power loss, ``ENOSPC`` mid-checkpoint, a
worker thread hung inside a sparse factorisation, a flaky solver backend.
This module makes those failures *first-class and reproducible*: a
:class:`FaultPlan` is a seeded list of :class:`FaultRule`\\ s, each matching a
named **fault site** by glob pattern and firing a specific fault kind with a
per-site probability or on an exact call number.

The package's durability and liveness boundaries call :func:`fault_point`
with their site name; with no active plan that is a single ``None`` check —
zero overhead in production.  With a plan active (``repro serve
--fault-plan``, ``repro chaos``, or :func:`injected_faults` in tests) the
call deterministically raises, hangs, or instructs the caller to corrupt its
write.

Fault sites wired through the package:

==============================  =============================================
``serialization.dump_json``     atomic JSON writes (specs, manifests)
``serialization.save_npz``      generic ``.npz`` bundle writes
``rom_cache.put``               ROM bundle writes into the shared cache
``service.jobs.persist``        per-job JSON records of the :class:`JobStore`
``executor.checkpoint``         per-group resume markers of long sweeps
``service.pool.worker``         worker behaviour at attempt start
``fem.backends.<name>``         sparse solves through a named backend
==============================  =============================================

Fault kinds:

``torn_write``
    The write "succeeds" but the destination holds truncated bytes — the
    classic power-loss-after-rename artifact.  Detected later by the
    checksum verification of the reader, which quarantines the file.
``enospc`` / ``eio``
    ``OSError`` with ``errno`` ``ENOSPC`` / ``EIO`` raised at the site.
``crash``
    :class:`SimulatedCrashError` raised at the site; at write sites the
    atomic writer raises it *after* the rename (rename-then-crash).
``hang``
    The call blocks for ``hang_seconds`` (interruptible in small slices) —
    stale heartbeats for the :class:`~repro.service.watchdog.WorkerWatchdog`
    to reap.
``transient``
    :class:`TransientFaultError` raised at the site — a one-off failure the
    retry/fallback machinery should absorb.
"""

from __future__ import annotations

import errno
import fnmatch
import json
import os
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.errors import ValidationError

#: Environment variable ``repro serve``/``repro chaos`` read a plan from:
#: either a path to a plan JSON file or an inline JSON document.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Every fault kind a rule may request.
FAULT_KINDS = ("torn_write", "enospc", "eio", "crash", "hang", "transient")

#: Kinds returned to the call site as a directive instead of raised here
#: (they need the caller's cooperation: corrupting bytes, crashing after the
#: rename).
_DIRECTIVE_KINDS = ("torn_write", "crash")


class SimulatedCrashError(RuntimeError):
    """An injected process-crash stand-in (kind ``"crash"``).

    Deliberately *not* part of the :mod:`repro.errors` taxonomy: a crash is
    an unexpected failure, so the service's transient-retry path must treat
    it exactly like any foreign exception.
    """


class TransientFaultError(RuntimeError):
    """An injected one-off failure (kind ``"transient"``); retries succeed."""


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: where, what, and how often.

    Attributes
    ----------
    site:
        Glob pattern matched (``fnmatch``-style, case-sensitive) against the
        fault-site name, e.g. ``"rom_cache.put"`` or ``"service.*"``.
    kind:
        One of :data:`FAULT_KINDS`.
    probability:
        Chance that a matching call fires, drawn from the plan's seeded RNG.
    nth:
        Fire exactly on the nth matching call (1-based) instead of by
        probability.  Implies ``max_triggers=1`` unless set explicitly.
    max_triggers:
        Stop firing after this many triggers (``None`` = unbounded).
    hang_seconds:
        Duration of a ``"hang"`` fault.
    """

    site: str
    kind: str
    probability: float = 1.0
    nth: int | None = None
    max_triggers: int | None = None
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        if not self.site:
            raise ValidationError("fault rule: site pattern must be non-empty")
        if self.kind not in FAULT_KINDS:
            raise ValidationError(
                f"fault rule: kind must be one of {list(FAULT_KINDS)}, got {self.kind!r}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValidationError(
                f"fault rule: probability must lie in [0, 1], got {self.probability}"
            )
        if self.nth is not None and self.nth < 1:
            raise ValidationError(f"fault rule: nth must be >= 1, got {self.nth}")
        if self.max_triggers is not None and self.max_triggers < 1:
            raise ValidationError(
                f"fault rule: max_triggers must be >= 1, got {self.max_triggers}"
            )
        if self.hang_seconds < 0:
            raise ValidationError(
                f"fault rule: hang_seconds must be >= 0, got {self.hang_seconds}"
            )

    @property
    def effective_max_triggers(self) -> int | None:
        """``nth`` rules fire once unless told otherwise."""
        if self.max_triggers is not None:
            return self.max_triggers
        return 1 if self.nth is not None else None

    def to_dict(self) -> dict[str, Any]:
        return {
            "site": self.site,
            "kind": self.kind,
            "probability": self.probability,
            "nth": self.nth,
            "max_triggers": self.max_triggers,
            "hang_seconds": self.hang_seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultRule":
        allowed = {"site", "kind", "probability", "nth", "max_triggers", "hang_seconds"}
        unknown = sorted(set(data) - allowed)
        if unknown:
            raise ValidationError(f"fault rule has unknown fields {unknown}")
        missing = [name for name in ("site", "kind") if name not in data]
        if missing:
            raise ValidationError(f"fault rule is missing fields {missing}")
        return cls(**dict(data))


@dataclass
class _RuleState:
    """Mutable per-rule counters (calls seen, faults fired)."""

    calls: int = 0
    triggers: int = 0


@dataclass
class FaultPlan:
    """A seeded, deterministic set of fault rules plus its firing log.

    Two plans with the same seed and rules fire identically against the same
    call sequence, which is what makes chaos scenarios replayable.  All state
    access is lock-protected — many worker threads hit fault points
    concurrently.

    Attributes
    ----------
    seed:
        Seed of the RNG that draws probabilistic triggers.
    rules:
        The ordered rules; the first matching, armed rule wins per call.
    fired:
        Log of every fired fault, ``{"site", "kind", "call"}`` — chaos tests
        reconcile quarantine counters against this.
    """

    seed: int = 0
    rules: tuple[FaultRule, ...] = ()
    fired: list[dict[str, Any]] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        self.rules = tuple(
            rule if isinstance(rule, FaultRule) else FaultRule.from_dict(rule)
            for rule in self.rules
        )
        self._rng = random.Random(self.seed)
        self._states = [_RuleState() for _ in self.rules]
        self._lock = threading.Lock()
        self._hangs_released = threading.Event()

    # ------------------------------------------------------------------ #
    # construction / serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        return {"seed": self.seed, "rules": [rule.to_dict() for rule in self.rules]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        if not isinstance(data, Mapping):
            raise ValidationError(
                f"fault plan: expected a JSON object, got {type(data).__name__}"
            )
        unknown = sorted(set(data) - {"seed", "rules"})
        if unknown:
            raise ValidationError(f"fault plan has unknown fields {unknown}")
        rules = data.get("rules", ())
        if not isinstance(rules, (list, tuple)):
            raise ValidationError("fault plan: rules must be a list")
        return cls(
            seed=int(data.get("seed", 0)),
            rules=tuple(FaultRule.from_dict(rule) for rule in rules),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"fault plan: invalid JSON ({exc})") from exc
        return cls.from_dict(document)

    @classmethod
    def from_file(cls, path: "str | Path") -> "FaultPlan":
        return cls.from_json(Path(path).read_text())

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        """Plan named by :data:`FAULT_PLAN_ENV` (path or inline JSON), if any."""
        value = os.environ.get(FAULT_PLAN_ENV, "").strip()
        if not value:
            return None
        if value.startswith("{"):
            return cls.from_json(value)
        return cls.from_file(value)

    # ------------------------------------------------------------------ #
    # firing
    # ------------------------------------------------------------------ #
    def fire(self, site: str) -> str | None:
        """Evaluate the rules for one call at ``site``; act on a match.

        Raises the fault for self-contained kinds, blocks for ``"hang"``,
        and returns the kind for directive kinds (:data:`_DIRECTIVE_KINDS`)
        the call site must act on itself.  Returns ``None`` when nothing
        fires.
        """
        matched: FaultRule | None = None
        with self._lock:
            for rule, state in zip(self.rules, self._states):
                if not fnmatch.fnmatchcase(site, rule.site):
                    continue
                state.calls += 1
                cap = rule.effective_max_triggers
                if cap is not None and state.triggers >= cap:
                    continue
                if rule.nth is not None:
                    if state.calls != rule.nth:
                        continue
                elif rule.probability < 1.0 and self._rng.random() >= rule.probability:
                    continue
                state.triggers += 1
                self.fired.append(
                    {"site": site, "kind": rule.kind, "call": state.calls}
                )
                matched = rule
                break
        if matched is None:
            return None
        kind = matched.kind
        if kind == "hang":
            self._hang(matched.hang_seconds)
            return None
        if kind == "enospc":
            raise OSError(
                errno.ENOSPC, f"injected fault: no space left on device at {site}"
            )
        if kind == "eio":
            raise OSError(errno.EIO, f"injected fault: input/output error at {site}")
        if kind == "transient":
            raise TransientFaultError(f"injected transient fault at {site}")
        return kind  # torn_write / crash: the caller cooperates

    def _hang(self, seconds: float) -> None:
        """Block for ``seconds``, waking early if the plan releases hangs."""
        deadline = time.monotonic() + seconds
        while time.monotonic() < deadline:
            if self._hangs_released.wait(timeout=0.025):
                return

    def release_hangs(self) -> None:
        """Wake every thread currently sleeping in a ``"hang"`` fault."""
        self._hangs_released.set()

    def fired_counts(self) -> dict[str, int]:
        """Number of fired faults per ``"site:kind"`` label."""
        counts: dict[str, int] = {}
        with self._lock:
            for event in self.fired:
                label = f"{event['site']}:{event['kind']}"
                counts[label] = counts.get(label, 0) + 1
        return counts


#: The process-wide active plan.  ``None`` keeps every fault point at a
#: single attribute load + identity check — the zero-overhead guarantee.
_ACTIVE: FaultPlan | None = None


def activate(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` as the process-wide active fault plan."""
    global _ACTIVE
    _ACTIVE = plan
    return plan


def deactivate() -> None:
    """Remove the active plan (releasing any injected hangs first)."""
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.release_hangs()
    _ACTIVE = None


def active_plan() -> FaultPlan | None:
    """The currently active plan, if any."""
    return _ACTIVE


@contextmanager
def injected_faults(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Context manager activating ``plan`` for the enclosed block."""
    previous = _ACTIVE
    activate(plan)
    try:
        yield plan
    finally:
        if plan is not None:
            plan.release_hangs()
        globals()["_ACTIVE"] = previous


def fault_point(site: str) -> str | None:
    """Declare a named fault site; fire the active plan's matching rule.

    Returns ``None`` (the overwhelmingly common case), raises an injected
    exception, blocks for a ``"hang"``, or returns a directive string
    (``"torn_write"`` / ``"crash"``) for the call site to act on.
    """
    plan = _ACTIVE
    if plan is None:
        return None
    return plan.fire(site)


__all__ = [
    "FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "FaultRule",
    "SimulatedCrashError",
    "TransientFaultError",
    "activate",
    "active_plan",
    "deactivate",
    "fault_point",
    "injected_faults",
]
