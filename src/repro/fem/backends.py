"""Pluggable sparse-solver backends.

Every linear solve in the package — the local stage's repeated
back-substitutions, the global ROM system, the reference full FEM and the
coarse package model — goes through one of the backends defined here.  A
backend bundles two capabilities behind the :class:`SparseBackend` interface:

* ``solve(matrix, rhs, options)`` — a one-shot solve returning the solution
  and a :class:`SolveStats` record, and
* ``factorize(matrix)`` — a reusable factorisation for many right-hand sides
  (the "decompose once" mode of the paper's one-shot local stage).

Backends shipped by default:

``direct-splu``
    SciPy's SuperLU direct factorisation (alias ``"direct"``).  Always
    available; the terminal fallback of every other backend.
``cg``
    Jacobi-preconditioned conjugate gradients (alias ``"cg+jacobi"``), for
    symmetric positive definite systems.  Falls back to a direct solve when
    it does not converge.
``gmres``
    Restarted GMRES with a Jacobi preconditioner, for the non-symmetric
    lifted global system (the paper's choice).
``cholmod``
    CHOLMOD sparse Cholesky via ``scikit-sparse``, when importable.
``pyamg``
    Algebraic multigrid via ``pyamg``, when importable.

The optional backends are auto-detected at import time; requesting an
unavailable one falls back along its :attr:`SparseBackend.fallback` chain
with a logged warning, and the substitution is recorded in
``SolveStats.method`` (e.g. ``"cholmod->direct-splu"``) by
:class:`~repro.fem.solver.LinearSolver`.
"""

from __future__ import annotations

import importlib.util
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import BackendError
from repro.utils.logging import get_logger
from repro.utils.validation import ValidationError

_logger = get_logger("fem.backends")


@dataclass
class SolveStats:
    """Diagnostics of a completed solve.

    ``array_backend`` records the dense array backend (``repro.backend``)
    that was active when the solve ran; the sparse solve itself always runs
    on scipy, but the assembly and reconstruction around it follow this
    backend, so manifests record it for provenance.
    """

    method: str
    iterations: int
    residual_norm: float
    converged: bool
    unknowns: int
    array_backend: str = "numpy"


class FactorizedOperator:
    """A sparse LU factorisation reused for many right-hand sides.

    The local stage of MORE-Stress solves the same lifted stiffness matrix
    against one right-hand side per Lagrange interpolation DoF; factorising
    once and back-substituting many times is what makes the one-shot stage
    cheap (paper §4.2).  Back-substitutions against an already-built operator
    are independent of each other, which is what lets the local stage fan
    them out across a worker pool.
    """

    def __init__(self, matrix: sp.spmatrix):
        matrix = matrix.tocsc()
        if matrix.shape[0] != matrix.shape[1]:
            raise ValidationError("matrix must be square to factorise")
        self._shape = matrix.shape
        self._lu = spla.splu(matrix)

    @property
    def shape(self) -> tuple[int, int]:
        """Shape of the factorised matrix."""
        return self._shape

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve against one vector or a block of right-hand sides.

        ``rhs`` may have shape ``(n,)`` or ``(n, k)``; the solution has the
        same shape.
        """
        rhs = np.asarray(rhs, dtype=float)
        if rhs.shape[0] != self._shape[0]:
            raise ValidationError(
                f"rhs has leading dimension {rhs.shape[0]}, expected {self._shape[0]}"
            )
        return self._lu.solve(rhs)


class _CholmodOperator:
    """CHOLMOD factorisation with the :class:`FactorizedOperator` interface."""

    def __init__(self, matrix: sp.spmatrix):
        from sksparse.cholmod import cholesky

        matrix = matrix.tocsc()
        if matrix.shape[0] != matrix.shape[1]:
            raise ValidationError("matrix must be square to factorise")
        self._shape = matrix.shape
        self._factor = cholesky(matrix)

    @property
    def shape(self) -> tuple[int, int]:
        """Shape of the factorised matrix."""
        return self._shape

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Back-substitute one vector or a block of right-hand sides."""
        rhs = np.asarray(rhs, dtype=float)
        if rhs.shape[0] != self._shape[0]:
            raise ValidationError(
                f"rhs has leading dimension {rhs.shape[0]}, expected {self._shape[0]}"
            )
        return self._factor(rhs)


def _jacobi_preconditioner(matrix: sp.spmatrix) -> spla.LinearOperator:
    diagonal = matrix.diagonal().astype(float).copy()
    abs_diagonal = np.abs(diagonal)
    scale = float(abs_diagonal.mean()) if abs_diagonal.size else 0.0
    if scale <= 0.0:
        # Entirely zero diagonal: fall back to the identity.
        inverse = np.ones_like(diagonal)
    else:
        # Clamp entries that are zero or negligible *relative to the mean
        # diagonal* (e.g. a nearly singular lifted row); inverting them
        # verbatim would blow the preconditioner up by many orders of
        # magnitude.  Clamped rows get the neutral mean-diagonal scaling.
        near_zero = abs_diagonal < 1e-12 * scale
        diagonal[near_zero] = scale
        inverse = 1.0 / diagonal

    def apply(vector: np.ndarray) -> np.ndarray:
        return inverse * vector

    return spla.LinearOperator(matrix.shape, matvec=apply)


class SparseBackend:
    """Interface of a sparse-solver backend.

    Attributes
    ----------
    name:
        Canonical registry name (what ``--solver-backend`` accepts and what
        ``SolveStats.method`` reports).
    fallback:
        Backends tried, in order, when this one is unavailable; the registry
        appends ``"direct-splu"`` as the terminal fallback.
    """

    name: str = ""
    fallback: tuple[str, ...] = ()

    @classmethod
    def is_available(cls) -> bool:
        """Whether the backend can run in this environment."""
        return True

    def factorize(self, matrix: sp.spmatrix) -> FactorizedOperator:
        """Factorise ``matrix`` once for repeated back-substitution.

        Iterative backends have no factorisation; they delegate to the
        direct backend (the local stage always decomposes once, per the
        paper).
        """
        return FactorizedOperator(matrix)

    def solve(
        self, matrix: sp.spmatrix, rhs: np.ndarray, options
    ) -> tuple[np.ndarray, SolveStats]:
        """Solve ``matrix @ x = rhs``; return ``(solution, stats)``."""
        raise NotImplementedError


class DirectSuperLUBackend(SparseBackend):
    """SciPy SuperLU direct factorisation (always available)."""

    name = "direct-splu"

    def solve(self, matrix, rhs, options):
        solution = self.factorize(matrix).solve(rhs)
        residual = float(np.linalg.norm(matrix @ solution - rhs))
        stats = SolveStats(
            method=self.name,
            iterations=1,
            residual_norm=residual,
            converged=True,
            unknowns=rhs.size,
        )
        return solution, stats


class _IterativeBackend(SparseBackend):
    """Shared plumbing of the Jacobi-preconditioned Krylov backends."""

    def _run(self, matrix, rhs, options):
        """Run the Krylov method; return ``(solution, iterations, info)``."""
        raise NotImplementedError

    def solve(self, matrix, rhs, options):
        matrix = matrix.tocsr()
        solution, iterations, info = self._run(matrix, rhs, options)
        residual = float(np.linalg.norm(matrix @ solution - rhs))
        rhs_norm = float(np.linalg.norm(rhs))
        converged = info == 0 or (
            rhs_norm > 0 and residual <= 10 * options.rtol * rhs_norm
        )
        stats = SolveStats(
            method=self.name,
            iterations=iterations,
            residual_norm=residual,
            converged=bool(converged),
            unknowns=rhs.size,
        )
        if not converged:
            # Fall back to a direct solve rather than silently returning a
            # wrong answer; callers see the event through the stats label.
            solution = FactorizedOperator(matrix).solve(rhs)
            residual = float(np.linalg.norm(matrix @ solution - rhs))
            stats = SolveStats(
                method=f"{self.name}+direct-fallback",
                iterations=iterations,
                residual_norm=residual,
                converged=True,
                unknowns=rhs.size,
            )
        return solution, stats


class JacobiCGBackend(_IterativeBackend):
    """Jacobi-preconditioned conjugate gradients (SPD systems only)."""

    name = "cg"

    def _run(self, matrix, rhs, options):
        iterations = 0

        def count_iterations(_):
            nonlocal iterations
            iterations += 1

        solution, info = spla.cg(
            matrix,
            rhs,
            rtol=options.rtol,
            maxiter=options.max_iterations,
            M=_jacobi_preconditioner(matrix),
            callback=count_iterations,
        )
        return solution, iterations, info


class JacobiGMRESBackend(_IterativeBackend):
    """Restarted GMRES with a Jacobi preconditioner (the paper's choice)."""

    name = "gmres"

    def _run(self, matrix, rhs, options):
        iterations = 0

        def count_iterations(_):
            nonlocal iterations
            iterations += 1

        solution, info = spla.gmres(
            matrix,
            rhs,
            rtol=options.rtol,
            maxiter=options.max_iterations,
            M=_jacobi_preconditioner(matrix),
            restart=options.gmres_restart,
            callback=count_iterations,
            callback_type="pr_norm",
        )
        return solution, iterations, info


class CholmodBackend(SparseBackend):
    """CHOLMOD sparse Cholesky via scikit-sparse (SPD systems only)."""

    name = "cholmod"
    fallback = ("direct-splu",)

    @classmethod
    def is_available(cls) -> bool:
        try:
            # Probe the actual submodule: a scikit-sparse wheel without a
            # working SuiteSparse build ships `sksparse` but not a loadable
            # `sksparse.cholmod`.
            return importlib.util.find_spec("sksparse.cholmod") is not None
        except Exception:
            return False

    def factorize(self, matrix):
        return _CholmodOperator(matrix)

    def solve(self, matrix, rhs, options):
        solution = self.factorize(matrix).solve(rhs)
        residual = float(np.linalg.norm(matrix @ solution - rhs))
        rhs_norm = float(np.linalg.norm(rhs))
        # CHOLMOD reads only one triangle of the matrix and never verifies
        # symmetry, so a non-symmetric input factorises "successfully" into a
        # wrong solution.  The residual check catches that (and any
        # ill-conditioning) and degrades to the direct solver.
        converged = rhs_norm == 0 or residual <= 10 * options.rtol * rhs_norm
        stats = SolveStats(
            method=self.name,
            iterations=1,
            residual_norm=residual,
            converged=bool(converged),
            unknowns=rhs.size,
        )
        if not converged:
            solution = FactorizedOperator(matrix).solve(rhs)
            residual = float(np.linalg.norm(matrix @ solution - rhs))
            stats = SolveStats(
                method=f"{self.name}+direct-fallback",
                iterations=1,
                residual_norm=residual,
                converged=True,
                unknowns=rhs.size,
            )
        return solution, stats


class PyAMGBackend(SparseBackend):
    """Smoothed-aggregation algebraic multigrid via pyamg."""

    name = "pyamg"
    fallback = ("cg", "direct-splu")

    @classmethod
    def is_available(cls) -> bool:
        return importlib.util.find_spec("pyamg") is not None

    def solve(self, matrix, rhs, options):
        import pyamg

        matrix = matrix.tocsr()
        solver = pyamg.smoothed_aggregation_solver(matrix)
        residuals: list[float] = []
        solution = solver.solve(
            rhs,
            tol=options.rtol,
            maxiter=options.max_iterations,
            residuals=residuals,
        )
        residual = float(np.linalg.norm(matrix @ solution - rhs))
        rhs_norm = float(np.linalg.norm(rhs))
        converged = rhs_norm == 0 or residual <= 10 * options.rtol * rhs_norm
        stats = SolveStats(
            method=self.name,
            iterations=max(0, len(residuals) - 1),
            residual_norm=residual,
            converged=bool(converged),
            unknowns=rhs.size,
        )
        if not converged:
            solution = FactorizedOperator(matrix).solve(rhs)
            residual = float(np.linalg.norm(matrix @ solution - rhs))
            stats = SolveStats(
                method=f"{self.name}+direct-fallback",
                iterations=stats.iterations,
                residual_norm=residual,
                converged=True,
                unknowns=rhs.size,
            )
        return solution, stats


_REGISTRY: dict[str, SparseBackend] = {
    backend.name: backend
    for backend in (
        DirectSuperLUBackend(),
        JacobiCGBackend(),
        JacobiGMRESBackend(),
        CholmodBackend(),
        PyAMGBackend(),
    )
}

#: Accepted spellings that map onto a canonical backend name.
BACKEND_ALIASES: dict[str, str] = {
    "direct": "direct-splu",
    "splu": "direct-splu",
    "cg+jacobi": "cg",
}


def backend_names() -> tuple[str, ...]:
    """All registered canonical backend names (available or not)."""
    return tuple(_REGISTRY)


def available_backends() -> tuple[str, ...]:
    """Canonical names of the backends usable in this environment."""
    return tuple(
        name for name, backend in _REGISTRY.items() if backend.is_available()
    )


def canonical_backend_name(name: str) -> str:
    """Normalize a backend name or alias; raise on unknown names."""
    key = str(name).strip().lower()
    key = BACKEND_ALIASES.get(key, key)
    if key not in _REGISTRY:
        known = sorted({*_REGISTRY, *BACKEND_ALIASES})
        raise BackendError(
            f"unknown solver backend {name!r}; known backends: {', '.join(known)}"
        )
    return key


def get_backend(name: str) -> SparseBackend:
    """Return the registered backend of ``name`` (even if unavailable)."""
    return _REGISTRY[canonical_backend_name(name)]


def resolve_backend(name: str) -> tuple[SparseBackend, str]:
    """Resolve a backend name to a usable backend instance.

    Returns ``(backend, requested)`` where ``requested`` is the canonical
    form of ``name``.  When the requested backend is unavailable the call
    walks its fallback chain (terminating at ``direct-splu``, which is always
    available) and logs the substitution; callers can detect it by comparing
    ``backend.name`` with ``requested``.
    """
    requested = canonical_backend_name(name)
    backend = _REGISTRY[requested]
    if backend.is_available():
        return backend, requested
    for candidate_name in (*backend.fallback, "direct-splu"):
        candidate = _REGISTRY[candidate_name]
        if candidate.is_available():
            _logger.warning(
                "solver backend %r is unavailable; falling back to %r",
                requested,
                candidate.name,
            )
            return candidate, requested
    raise BackendError(f"no usable solver backend for {name!r}")


__all__ = [
    "SolveStats",
    "FactorizedOperator",
    "SparseBackend",
    "DirectSuperLUBackend",
    "JacobiCGBackend",
    "JacobiGMRESBackend",
    "CholmodBackend",
    "PyAMGBackend",
    "BACKEND_ALIASES",
    "backend_names",
    "available_backends",
    "canonical_backend_name",
    "get_backend",
    "resolve_backend",
]
