"""Stress sampling on cut planes and regular grids.

The paper compares methods on the gridded von Mises stress evaluated on the
plane crossing the TSV array at half of the TSV height, with a fixed number of
sample points per unit block (100x100 in the paper, configurable here).  The
helpers below generate those grids in a way that is identical for the ROM, the
reference FEM and the linear superposition baseline, so the error metric never
mixes discretisation differences with method differences.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend import backend_manager as bm
from repro.fem.fields import FieldEvaluator
from repro.geometry.array_layout import TSVArrayLayout
from repro.utils.validation import check_positive_int


def midplane_grid_points(
    layout: TSVArrayLayout,
    points_per_block: int = 30,
    rows: slice | None = None,
    cols: slice | None = None,
) -> np.ndarray:
    """Sample points on the half-height cut plane of a TSV array.

    Parameters
    ----------
    layout:
        The array layout (provides pitch, origin and extents).
    points_per_block:
        Number of grid points per block and per direction (paper: 100).
    rows, cols:
        Optional block-index slices restricting the sampled region (used to
        exclude dummy padding blocks from the error metric).

    Returns
    -------
    numpy.ndarray
        Points of shape ``(n_blocks_sampled * points_per_block**2, 3)`` in
        global coordinates, ordered block-row-major then grid-row-major.
    """
    points_per_block = check_positive_int("points_per_block", points_per_block)
    rows = rows if rows is not None else slice(0, layout.rows)
    cols = cols if cols is not None else slice(0, layout.cols)
    pitch = layout.tsv.pitch
    origin_x, origin_y, origin_z = layout.origin
    z_mid = origin_z + 0.5 * layout.tsv.height

    # Cell-centred sample points inside one block (avoids sampling exactly on
    # block boundaries where stress is discontinuous across the interface).
    # Grid construction runs on the array backend; the result crosses the
    # bm.asnumpy() seam because sample points feed numpy-side point location.
    local = (bm.arange(points_per_block, dtype=bm.ftype) + 0.5) / points_per_block * pitch
    count = points_per_block * points_per_block

    points = []
    for row in range(*rows.indices(layout.rows)):
        for col in range(*cols.indices(layout.cols)):
            base_x = origin_x + col * pitch
            base_y = origin_y + row * pitch
            grid_x, grid_y = bm.meshgrid(base_x + local, base_y + local, indexing="ij")
            block_points = bm.column_stack(
                [grid_x.ravel(), grid_y.ravel(), bm.full((count,), z_mid, dtype=bm.ftype)]
            )
            points.append(block_points)
    return bm.asnumpy(bm.concatenate(points, axis=0))


@dataclass
class PlaneSampler:
    """Samples von Mises stress on the half-height plane of an array.

    Attributes
    ----------
    layout:
        The TSV array layout being analysed.
    points_per_block:
        Grid resolution per block and direction.
    restrict_to_tsv_region:
        If ``True`` (default) only the bounding box of TSV blocks is sampled,
        matching the paper's error metric which evaluates the TSV array itself
        and not the dummy padding.
    """

    layout: TSVArrayLayout
    points_per_block: int = 30
    restrict_to_tsv_region: bool = True

    def sample_points(self) -> np.ndarray:
        """Return the sampling points in global coordinates."""
        rows = cols = None
        if self.restrict_to_tsv_region:
            region = self.layout.tsv_region()
            if region is not None:
                rows, cols = region
        return midplane_grid_points(
            self.layout, self.points_per_block, rows=rows, cols=cols
        )

    def sampled_block_shape(self) -> tuple[int, int]:
        """Number of (rows, cols) of blocks covered by :meth:`sample_points`."""
        if self.restrict_to_tsv_region:
            region = self.layout.tsv_region()
            if region is not None:
                rows, cols = region
                return (
                    len(range(*rows.indices(self.layout.rows))),
                    len(range(*cols.indices(self.layout.cols))),
                )
        return self.layout.shape

    def von_mises(
        self, evaluator: FieldEvaluator, displacement: np.ndarray, delta_t: float
    ) -> np.ndarray:
        """Evaluate the von Mises stress at the sample points (flat array)."""
        return evaluator.von_mises_at(self.sample_points(), displacement, delta_t)

    def von_mises_blocks(
        self, evaluator: FieldEvaluator, displacement: np.ndarray, delta_t: float
    ) -> np.ndarray:
        """Von Mises stress reshaped to ``(rows, cols, n, n)`` per sampled block."""
        flat = self.von_mises(evaluator, displacement, delta_t)
        rows, cols = self.sampled_block_shape()
        n = self.points_per_block
        return flat.reshape(rows, cols, n, n)


__all__ = ["midplane_grid_points", "PlaneSampler"]
