"""Dirichlet boundary conditions: lifting and static condensation.

Two equivalent treatments are provided, matching the two places they are used
in the paper:

* :func:`lift_system` implements the "lifting" procedure of §4.2: rows of the
  stiffness matrix belonging to constrained DoFs are replaced by identity rows
  and the right-hand side receives the prescribed values.  The solution of the
  lifted system contains the prescribed values exactly.  This keeps the system
  at full size (handy for the global ROM stage where constrained and free DoFs
  interleave arbitrarily).
* :func:`reduce_system` eliminates the constrained DoFs instead, producing the
  smaller symmetric positive definite system
  ``A_ff x_f = b_f - A_fb u_b`` (paper Eq. 13).  This is what the local stage
  and the conjugate-gradient reference solver use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.utils.validation import ValidationError


@dataclass
class DirichletBC:
    """A set of prescribed displacement DoFs.

    Attributes
    ----------
    dofs:
        Constrained global DoF indices (unique).
    values:
        Prescribed displacement per constrained DoF (same length as ``dofs``).
    """

    dofs: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        dofs = np.asarray(self.dofs, dtype=np.int64).ravel()
        values = np.asarray(self.values, dtype=float).ravel()
        if dofs.size != values.size:
            raise ValidationError(
                f"dofs ({dofs.size}) and values ({values.size}) must have equal length"
            )
        order = np.argsort(dofs, kind="stable")
        dofs = dofs[order]
        values = values[order]
        unique_dofs, first = np.unique(dofs, return_index=True)
        if unique_dofs.size != dofs.size:
            # Later constraints silently win would be surprising; require consistency.
            for dof in unique_dofs:
                vals = values[dofs == dof]
                if not np.allclose(vals, vals[0]):
                    raise ValidationError(
                        f"conflicting Dirichlet values prescribed for DoF {dof}"
                    )
            dofs = unique_dofs
            values = values[first]
        self.dofs = dofs
        self.values = values

    @classmethod
    def fixed(cls, dofs: np.ndarray) -> "DirichletBC":
        """Homogeneous (zero displacement) constraint on ``dofs``."""
        dofs = np.asarray(dofs, dtype=np.int64).ravel()
        return cls(dofs=dofs, values=np.zeros(dofs.size))

    @classmethod
    def from_nodes(
        cls, node_ids: np.ndarray, values_per_node: np.ndarray | None = None
    ) -> "DirichletBC":
        """Constrain all three components of the given nodes.

        ``values_per_node`` may be ``None`` (clamped), a single 3-vector or an
        array of shape ``(len(node_ids), 3)``.
        """
        node_ids = np.asarray(node_ids, dtype=np.int64).ravel()
        dofs = np.concatenate([3 * node_ids, 3 * node_ids + 1, 3 * node_ids + 2])
        if values_per_node is None:
            values = np.zeros(dofs.size)
        else:
            values_per_node = np.asarray(values_per_node, dtype=float)
            if values_per_node.ndim == 1:
                values_per_node = np.broadcast_to(
                    values_per_node, (node_ids.size, 3)
                )
            values = np.concatenate(
                [values_per_node[:, 0], values_per_node[:, 1], values_per_node[:, 2]]
            )
        return cls(dofs=dofs, values=values)

    def merged_with(self, other: "DirichletBC") -> "DirichletBC":
        """Combine two constraint sets (consistency is validated)."""
        return DirichletBC(
            dofs=np.concatenate([self.dofs, other.dofs]),
            values=np.concatenate([self.values, other.values]),
        )

    @property
    def num_constrained(self) -> int:
        """Number of constrained DoFs."""
        return int(self.dofs.size)


@dataclass
class SplitSystem:
    """Blocks of a stiffness matrix split into free/constrained DoFs.

    This is the reusable piece of the local stage: ``a_ff`` is factorised once
    and then solved against many right-hand sides (one per Lagrange
    interpolation DoF plus one thermal load), as described in §4.2.
    """

    a_ff: sp.csr_matrix
    a_fb: sp.csr_matrix
    free_dofs: np.ndarray
    constrained_dofs: np.ndarray

    @property
    def num_free(self) -> int:
        """Number of free DoFs."""
        return int(self.free_dofs.size)

    def expand(self, free_values: np.ndarray, constrained_values: np.ndarray) -> np.ndarray:
        """Recombine free and constrained values into a full-length vector.

        Both arguments may be 1-D vectors or 2-D ``(n, k)`` blocks of multiple
        solutions; the result has the corresponding full shape.
        """
        free_values = np.asarray(free_values, dtype=float)
        constrained_values = np.asarray(constrained_values, dtype=float)
        total = self.num_free + self.constrained_dofs.size
        if free_values.ndim == 1:
            full = np.zeros(total, dtype=float)
            full[self.free_dofs] = free_values
            full[self.constrained_dofs] = constrained_values
            return full
        k = free_values.shape[1]
        full = np.zeros((total, k), dtype=float)
        full[self.free_dofs, :] = free_values
        full[self.constrained_dofs, :] = constrained_values
        return full


def _split_dofs(num_dofs: int, constrained: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    constrained = np.unique(np.asarray(constrained, dtype=np.int64))
    if constrained.size and (constrained[0] < 0 or constrained[-1] >= num_dofs):
        raise ValidationError("constrained DoF index out of range")
    mask = np.ones(num_dofs, dtype=bool)
    mask[constrained] = False
    return np.nonzero(mask)[0], constrained


def split_system(matrix: sp.spmatrix, bc: DirichletBC) -> SplitSystem:
    """Split a stiffness matrix into free/constrained blocks (paper Eq. 12)."""
    matrix = matrix.tocsr()
    free, constrained = _split_dofs(matrix.shape[0], bc.dofs)
    a_ff = matrix[free][:, free].tocsr()
    a_fb = matrix[free][:, constrained].tocsr()
    return SplitSystem(
        a_ff=a_ff, a_fb=a_fb, free_dofs=free, constrained_dofs=constrained
    )


def reduce_system(
    matrix: sp.spmatrix, rhs: np.ndarray, bc: DirichletBC
) -> tuple[sp.csr_matrix, np.ndarray, SplitSystem]:
    """Eliminate constrained DoFs (paper Eq. 13).

    Returns
    -------
    (a_ff, reduced_rhs, split)
        The SPD reduced matrix, the reduced right-hand side
        ``b_f - A_fb u_b`` and the :class:`SplitSystem` needed to expand the
        reduced solution back to full size.
    """
    split = split_system(matrix, bc)
    rhs = np.asarray(rhs, dtype=float).ravel()
    reduced = rhs[split.free_dofs] - split.a_fb @ bc.values
    return split.a_ff, reduced, split


def lift_system(
    matrix: sp.spmatrix, rhs: np.ndarray, bc: DirichletBC
) -> tuple[sp.csr_matrix, np.ndarray]:
    """Apply Dirichlet constraints by lifting (paper §4.2).

    Rows of ``matrix`` belonging to constrained DoFs are replaced by identity
    rows and the corresponding entries of ``rhs`` are set to the prescribed
    values.  The returned matrix is no longer symmetric, which is why the
    global ROM problem is solved with GMRES or a direct factorisation.
    """
    matrix = matrix.tocsr(copy=True)
    rhs = np.asarray(rhs, dtype=float).copy()
    if bc.num_constrained == 0:
        return matrix, rhs
    constrained = bc.dofs
    # Zero out the constrained rows in CSR storage without changing sparsity
    # of other rows.
    for dof in constrained:
        start, stop = matrix.indptr[dof], matrix.indptr[dof + 1]
        matrix.data[start:stop] = 0.0
    matrix = matrix + sp.csr_matrix(
        (np.ones(constrained.size), (constrained, constrained)), shape=matrix.shape
    )
    # The addition above may double-count existing (zeroed) diagonal entries;
    # rebuild the diagonal exactly.
    diag = matrix.diagonal()
    diag_fix = np.zeros(matrix.shape[0])
    diag_fix[constrained] = 1.0 - diag[constrained]
    matrix = matrix + sp.diags(diag_fix)
    rhs[constrained] = bc.values
    return matrix.tocsr(), rhs


__all__ = [
    "DirichletBC",
    "SplitSystem",
    "split_system",
    "reduce_system",
    "lift_system",
]
