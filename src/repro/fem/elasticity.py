"""Per-element material data for a tagged mesh.

The assembly and stress-recovery kernels need, for every element, the Lamé
parameters, the CTE and the 6x6 elasticity matrix.  This module resolves the
mesh's integer material tags against a :class:`~repro.materials.MaterialLibrary`
once and exposes the result as flat NumPy arrays for vectorised kernels.

Storage stays numpy (the resolved metadata is indexed by the sparse assembly
side and persisted in ROM caches); dense consumers convert it onto the active
array backend (``bm``) where the arithmetic happens.  Dtype policy follows
``bm.ftype``: all real-valued tables are float64.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend import backend_manager as bm
from repro.materials.library import MaterialLibrary
from repro.mesh.structured import StructuredHexMesh


@dataclass(frozen=True)
class ElementMaterialData:
    """Material constants resolved per element tag.

    Attributes
    ----------
    tags:
        The distinct tags, sorted ascending.
    d_matrices:
        Elasticity matrices, shape ``(num_tags, 6, 6)``; index ``i``
        corresponds to ``tags[i]``.
    lame_lambda, lame_mu, cte:
        Per-tag Lamé parameters and CTE, each shape ``(num_tags,)``.
    tag_index_of_element:
        For every element, the index into the per-tag arrays,
        shape ``(num_elements,)``.
    """

    tags: np.ndarray
    d_matrices: np.ndarray
    lame_lambda: np.ndarray
    lame_mu: np.ndarray
    cte: np.ndarray
    tag_index_of_element: np.ndarray

    @property
    def num_tags(self) -> int:
        """Number of distinct material tags present in the mesh."""
        return int(self.tags.size)

    def thermal_strain_unit(self):
        """Per-tag Voigt thermal strain for ``delta_t = 1``, shape ``(num_tags, 6)``.

        Computed on the active array backend (``bm``); on numpy this is the
        plain float64 array it always was.
        """
        eps = bm.zeros((self.num_tags, 6), dtype=bm.ftype)
        eps[:, :3] = bm.asarray(self.cte, dtype=bm.ftype)[:, None]
        return eps

    def element_lambda(self) -> np.ndarray:
        """Per-element first Lamé parameter."""
        return self.lame_lambda[self.tag_index_of_element]

    def element_mu(self) -> np.ndarray:
        """Per-element shear modulus."""
        return self.lame_mu[self.tag_index_of_element]

    def element_cte(self) -> np.ndarray:
        """Per-element CTE."""
        return self.cte[self.tag_index_of_element]


def material_arrays_for_mesh(
    mesh: StructuredHexMesh, materials: MaterialLibrary
) -> ElementMaterialData:
    """Resolve the mesh's material tags against a material library.

    Raises
    ------
    KeyError
        If a tag's role is missing from the library.
    """
    tags = np.unique(mesh.element_tags)
    d_matrices = np.zeros((tags.size, 6, 6), dtype=np.float64)
    lam = np.zeros(tags.size, dtype=np.float64)
    mu = np.zeros(tags.size, dtype=np.float64)
    cte = np.zeros(tags.size, dtype=np.float64)
    for index, tag in enumerate(tags):
        role = mesh.tag_roles[int(tag)]
        material = materials[role]
        d_matrices[index] = material.elasticity_matrix()
        lam[index] = material.lame_lambda
        mu[index] = material.lame_mu
        cte[index] = material.cte
    tag_to_index = {int(tag): index for index, tag in enumerate(tags)}
    tag_index_of_element = np.fromiter(
        (tag_to_index[int(tag)] for tag in mesh.element_tags),
        dtype=np.int64,
        count=mesh.num_elements,
    )
    return ElementMaterialData(
        tags=tags,
        d_matrices=d_matrices,
        lame_lambda=lam,
        lame_mu=mu,
        cte=cte,
        tag_index_of_element=tag_index_of_element,
    )


__all__ = ["ElementMaterialData", "material_arrays_for_mesh"]
