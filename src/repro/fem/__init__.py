"""Finite element kernel: hex8 thermo-elasticity, assembly, solvers and post-processing."""

from repro.fem.element import (
    gauss_points_2x2x2,
    shape_functions,
    shape_function_gradients,
    element_stiffness,
    element_thermal_load,
    strain_displacement_matrix,
)
from repro.fem.elasticity import ElementMaterialData, material_arrays_for_mesh
from repro.fem.assembly import assemble_stiffness, assemble_thermal_load, element_dof_map
from repro.fem.boundary import DirichletBC, lift_system, reduce_system, SplitSystem, split_system
from repro.fem.solver import LinearSolver, SolverOptions, FactorizedOperator, SolveStats
from repro.fem.backends import (
    SparseBackend,
    available_backends,
    backend_names,
    get_backend,
    resolve_backend,
)
from repro.fem.fields import FieldEvaluator, von_mises
from repro.fem.sampling import midplane_grid_points, PlaneSampler

__all__ = [
    "gauss_points_2x2x2",
    "shape_functions",
    "shape_function_gradients",
    "element_stiffness",
    "element_thermal_load",
    "strain_displacement_matrix",
    "ElementMaterialData",
    "material_arrays_for_mesh",
    "assemble_stiffness",
    "assemble_thermal_load",
    "element_dof_map",
    "DirichletBC",
    "lift_system",
    "reduce_system",
    "SplitSystem",
    "split_system",
    "LinearSolver",
    "SolverOptions",
    "FactorizedOperator",
    "SolveStats",
    "SparseBackend",
    "available_backends",
    "backend_names",
    "get_backend",
    "resolve_backend",
    "FieldEvaluator",
    "von_mises",
    "midplane_grid_points",
    "PlaneSampler",
]
