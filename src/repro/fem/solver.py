"""Sparse linear solvers.

The package needs three kinds of solves:

* the one-shot local stage factorises one SPD matrix and solves it against
  hundreds of right-hand sides (:class:`FactorizedOperator`);
* the reference full-FEM solver handles the largest systems and uses either a
  direct factorisation or preconditioned conjugate gradients;
* the global ROM system is modest in size but non-symmetric after lifting, so
  it is solved with GMRES (the paper's choice) or a direct factorisation.

The PETSc backend of the paper is replaced by SciPy equivalents; the solver
options dataclass keeps the choice explicit and testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.utils.validation import ValidationError


@dataclass(frozen=True)
class SolverOptions:
    """Options controlling a sparse linear solve.

    Attributes
    ----------
    method:
        ``"direct"`` (SuperLU), ``"cg"`` (Jacobi-preconditioned conjugate
        gradients, SPD systems only) or ``"gmres"`` (restarted GMRES with a
        Jacobi preconditioner).
    rtol:
        Relative residual tolerance for the iterative methods.
    max_iterations:
        Iteration cap for the iterative methods.
    gmres_restart:
        Restart length for GMRES.
    """

    method: str = "direct"
    rtol: float = 1e-8
    max_iterations: int = 5000
    gmres_restart: int = 100

    def __post_init__(self) -> None:
        if self.method not in ("direct", "cg", "gmres"):
            raise ValidationError(
                f"method must be 'direct', 'cg' or 'gmres', got {self.method!r}"
            )
        if self.rtol <= 0.0 or self.rtol >= 1.0:
            raise ValidationError(f"rtol must lie in (0, 1), got {self.rtol}")
        if self.max_iterations < 1:
            raise ValidationError("max_iterations must be >= 1")


@dataclass
class SolveStats:
    """Diagnostics of a completed solve."""

    method: str
    iterations: int
    residual_norm: float
    converged: bool
    unknowns: int


class FactorizedOperator:
    """A sparse LU factorisation reused for many right-hand sides.

    The local stage of MORE-Stress solves the same lifted stiffness matrix
    against one right-hand side per Lagrange interpolation DoF; factorising
    once and back-substituting many times is what makes the one-shot stage
    cheap (paper §4.2).
    """

    def __init__(self, matrix: sp.spmatrix):
        matrix = matrix.tocsc()
        if matrix.shape[0] != matrix.shape[1]:
            raise ValidationError("matrix must be square to factorise")
        self._shape = matrix.shape
        self._lu = spla.splu(matrix)

    @property
    def shape(self) -> tuple[int, int]:
        """Shape of the factorised matrix."""
        return self._shape

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve against one vector or a block of right-hand sides.

        ``rhs`` may have shape ``(n,)`` or ``(n, k)``; the solution has the
        same shape.
        """
        rhs = np.asarray(rhs, dtype=float)
        if rhs.shape[0] != self._shape[0]:
            raise ValidationError(
                f"rhs has leading dimension {rhs.shape[0]}, expected {self._shape[0]}"
            )
        return self._lu.solve(rhs)


def _jacobi_preconditioner(matrix: sp.spmatrix) -> spla.LinearOperator:
    diagonal = matrix.diagonal().astype(float).copy()
    abs_diagonal = np.abs(diagonal)
    scale = float(abs_diagonal.mean()) if abs_diagonal.size else 0.0
    if scale <= 0.0:
        # Entirely zero diagonal: fall back to the identity.
        inverse = np.ones_like(diagonal)
    else:
        # Clamp entries that are zero or negligible *relative to the mean
        # diagonal* (e.g. a nearly singular lifted row); inverting them
        # verbatim would blow the preconditioner up by many orders of
        # magnitude.  Clamped rows get the neutral mean-diagonal scaling.
        near_zero = abs_diagonal < 1e-12 * scale
        diagonal[near_zero] = scale
        inverse = 1.0 / diagonal

    def apply(vector: np.ndarray) -> np.ndarray:
        return inverse * vector

    return spla.LinearOperator(matrix.shape, matvec=apply)


class LinearSolver:
    """Front-end dispatching to the configured sparse solver."""

    def __init__(self, options: SolverOptions | None = None):
        self.options = options or SolverOptions()
        self.last_stats: SolveStats | None = None

    def solve(self, matrix: sp.spmatrix, rhs: np.ndarray) -> np.ndarray:
        """Solve ``matrix @ x = rhs`` and record :class:`SolveStats`."""
        rhs = np.asarray(rhs, dtype=float).ravel()
        if matrix.shape[0] != rhs.size:
            raise ValidationError(
                f"matrix of shape {matrix.shape} incompatible with rhs of size {rhs.size}"
            )
        method = self.options.method
        if method == "direct":
            solution = FactorizedOperator(matrix).solve(rhs)
            residual = float(np.linalg.norm(matrix @ solution - rhs))
            self.last_stats = SolveStats(
                method="direct",
                iterations=1,
                residual_norm=residual,
                converged=True,
                unknowns=rhs.size,
            )
            return solution
        if method == "cg":
            return self._solve_iterative(matrix, rhs, "cg")
        return self._solve_iterative(matrix, rhs, "gmres")

    def _solve_iterative(self, matrix, rhs, name: str) -> np.ndarray:
        matrix = matrix.tocsr()
        preconditioner = _jacobi_preconditioner(matrix)
        iterations = 0

        def count_iterations(_):
            nonlocal iterations
            iterations += 1

        if name == "cg":
            solution, info = spla.cg(
                matrix,
                rhs,
                rtol=self.options.rtol,
                maxiter=self.options.max_iterations,
                M=preconditioner,
                callback=count_iterations,
            )
        else:
            solution, info = spla.gmres(
                matrix,
                rhs,
                rtol=self.options.rtol,
                maxiter=self.options.max_iterations,
                M=preconditioner,
                restart=self.options.gmres_restart,
                callback=count_iterations,
                callback_type="pr_norm",
            )
        residual = float(np.linalg.norm(matrix @ solution - rhs))
        rhs_norm = float(np.linalg.norm(rhs))
        converged = info == 0 or (rhs_norm > 0 and residual <= 10 * self.options.rtol * rhs_norm)
        self.last_stats = SolveStats(
            method=name,
            iterations=iterations,
            residual_norm=residual,
            converged=bool(converged),
            unknowns=rhs.size,
        )
        if not converged:
            # Fall back to a direct solve rather than silently returning a
            # wrong answer; benchmarks record the event through last_stats.
            solution = FactorizedOperator(matrix).solve(rhs)
            residual = float(np.linalg.norm(matrix @ solution - rhs))
            # last_stats must describe the solution actually returned: the
            # fallback is direct and accurate, not the failed iterative run.
            self.last_stats = SolveStats(
                method=f"{name}+direct-fallback",
                iterations=iterations,
                residual_norm=residual,
                converged=True,
                unknowns=rhs.size,
            )
        return solution


__all__ = ["SolverOptions", "SolveStats", "FactorizedOperator", "LinearSolver"]
