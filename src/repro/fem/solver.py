"""Sparse linear solvers.

The package needs three kinds of solves:

* the one-shot local stage factorises one SPD matrix and solves it against
  hundreds of right-hand sides (:class:`FactorizedOperator`);
* the reference full-FEM solver handles the largest systems and uses either a
  direct factorisation or preconditioned conjugate gradients;
* the global ROM system is modest in size but non-symmetric after lifting, so
  it is solved with GMRES (the paper's choice) or a direct factorisation.

The actual numerics live in the pluggable backends of
:mod:`repro.fem.backends` (SuperLU, Jacobi-preconditioned CG/GMRES and the
optional CHOLMOD/pyamg backends); :class:`LinearSolver` is the front-end that
resolves the configured backend — with graceful fallback when an optional
backend is missing — and records :class:`SolveStats` for every solve.  The
PETSc backend of the paper is replaced by these SciPy equivalents; the solver
options dataclass keeps the choice explicit and testable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro import faults
from repro.backend import active_array_backend_name
from repro.fem.backends import (
    FactorizedOperator,
    SolveStats,
    _jacobi_preconditioner,  # noqa: F401  (re-exported for tests/back-compat)
    canonical_backend_name,
    resolve_backend,
)
from repro.utils.logging import get_logger
from repro.utils.validation import ValidationError

_logger = get_logger("fem.solver")

#: Legacy ``method`` values and the backend each one routes to.
_METHOD_BACKENDS = {"direct": "direct-splu", "cg": "cg", "gmres": "gmres"}


@dataclass(frozen=True)
class SolverOptions:
    """Options controlling a sparse linear solve.

    Attributes
    ----------
    method:
        ``"direct"`` (SuperLU), ``"cg"`` (Jacobi-preconditioned conjugate
        gradients, SPD systems only) or ``"gmres"`` (restarted GMRES with a
        Jacobi preconditioner).  Kept for backward compatibility; ``backend``
        takes precedence when set.
    backend:
        Name of a :mod:`repro.fem.backends` backend (``"direct-splu"``,
        ``"cg"``, ``"gmres"``, ``"cholmod"``, ``"pyamg"`` or an alias such as
        ``"direct"``).  ``None`` derives the backend from ``method``.
        Requesting an unavailable optional backend falls back along its
        fallback chain at solve time; the substitution is recorded in
        :attr:`SolveStats.method` as ``"requested->actual"``.
    rtol:
        Relative residual tolerance for the iterative methods.
    max_iterations:
        Iteration cap for the iterative methods.
    gmres_restart:
        Restart length for GMRES.
    """

    method: str = "direct"
    backend: str | None = None
    rtol: float = 1e-8
    max_iterations: int = 5000
    gmres_restart: int = 100

    def __post_init__(self) -> None:
        if self.method not in _METHOD_BACKENDS:
            raise ValidationError(
                f"method must be 'direct', 'cg' or 'gmres', got {self.method!r}"
            )
        if self.backend is not None:
            # Normalize aliases eagerly so equal configurations compare equal.
            object.__setattr__(
                self, "backend", canonical_backend_name(self.backend)
            )
        if self.rtol <= 0.0 or self.rtol >= 1.0:
            raise ValidationError(f"rtol must lie in (0, 1), got {self.rtol}")
        if self.max_iterations < 1:
            raise ValidationError("max_iterations must be >= 1")

    @property
    def effective_backend(self) -> str:
        """The backend name this configuration requests."""
        return self.backend or _METHOD_BACKENDS[self.method]


class LinearSolver:
    """Front-end dispatching to the configured sparse-solver backend."""

    def __init__(self, options: SolverOptions | None = None):
        self.options = options or SolverOptions()
        self.last_stats: SolveStats | None = None

    def solve(self, matrix: sp.spmatrix, rhs: np.ndarray) -> np.ndarray:
        """Solve ``matrix @ x = rhs`` and record :class:`SolveStats`."""
        rhs = np.asarray(rhs, dtype=float).ravel()
        if matrix.shape[0] != rhs.size:
            raise ValidationError(
                f"matrix of shape {matrix.shape} incompatible with rhs of size {rhs.size}"
            )
        backend, requested = resolve_backend(self.options.effective_backend)
        answered = backend
        try:
            # Each backend is a named fault site: an injected transient
            # failure exercises the fallback chain below.
            faults.fault_point(f"fem.backends.{backend.name}")
            solution, stats = backend.solve(matrix, rhs, self.options)
        except faults.TransientFaultError as exc:
            if backend.name == "direct-splu":
                # Bottom of the chain: a one-off failure retries in place.
                _logger.warning("solver: transient failure (%s); retrying", exc)
                solution, stats = backend.solve(matrix, rhs, self.options)
            else:
                _logger.warning(
                    "solver: transient failure in backend %s (%s); "
                    "falling back to direct-splu",
                    backend.name,
                    exc,
                )
                answered, _ = resolve_backend("direct-splu")
                solution, stats = answered.solve(matrix, rhs, self.options)
        if answered.name != requested:
            # A different backend answered (unavailable at resolution time,
            # or failed over mid-solve); record the substitution.
            stats.method = f"{requested}->{stats.method}"
        stats.array_backend = active_array_backend_name()
        self.last_stats = stats
        return solution


__all__ = ["SolverOptions", "SolveStats", "FactorizedOperator", "LinearSolver"]
