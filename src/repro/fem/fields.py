"""Field evaluation and stress recovery.

After a displacement solution is available (from the reference FEM or from
the reconstructed ROM solution), this module evaluates displacement, strain,
stress and von Mises stress at arbitrary points of the mesh, following the
constitutive law of the paper (Eq. 1):

.. math::

    \\sigma = \\lambda\\,\\mathrm{tr}(\\epsilon) I + 2\\mu\\,\\epsilon
              - \\alpha (3\\lambda + 2\\mu) \\Delta T\\, I

The dense interpolation/recovery math runs on the active array backend
(``bm``); point location and DoF gathers stay numpy, and every public method
returns host numpy arrays through the ``bm.asnumpy()`` seam (identity on the
default numpy backend, so results are bit-for-bit unchanged there).
"""

from __future__ import annotations

import numpy as np

from repro.backend import backend_manager as bm
from repro.fem.assembly import element_dof_map
from repro.fem.elasticity import ElementMaterialData, material_arrays_for_mesh
from repro.fem.element import shape_function_gradients, shape_functions
from repro.materials.library import MaterialLibrary
from repro.mesh.structured import StructuredHexMesh
from repro.utils.validation import ValidationError


def von_mises(stress_voigt: np.ndarray) -> np.ndarray:
    """Von Mises equivalent stress from Voigt stress vectors.

    Parameters
    ----------
    stress_voigt:
        Array of shape ``(..., 6)`` with components
        ``(sxx, syy, szz, syz, sxz, sxy)``.

    Returns
    -------
    numpy.ndarray
        Von Mises stress, shape ``(...,)``.
    """
    stress = bm.asarray(stress_voigt, dtype=bm.ftype)
    if stress.shape[-1] != 6:
        raise ValidationError(f"stress must have 6 components, got {tuple(stress.shape)}")
    sxx, syy, szz = stress[..., 0], stress[..., 1], stress[..., 2]
    syz, sxz, sxy = stress[..., 3], stress[..., 4], stress[..., 5]
    return bm.asnumpy(
        bm.sqrt(
            0.5 * ((sxx - syy) ** 2 + (syy - szz) ** 2 + (szz - sxx) ** 2)
            + 3.0 * (sxy**2 + syz**2 + sxz**2)
        )
    )


class FieldEvaluator:
    """Evaluates displacement and stress fields of a solved mesh.

    Parameters
    ----------
    mesh:
        The mesh the displacement vector refers to.
    materials:
        Material library used in the solve (needed for stress recovery).
    material_data:
        Optional pre-resolved material arrays.
    """

    def __init__(
        self,
        mesh: StructuredHexMesh,
        materials: MaterialLibrary,
        material_data: ElementMaterialData | None = None,
    ):
        self.mesh = mesh
        self.materials = materials
        self.material_data = material_data or material_arrays_for_mesh(mesh, materials)
        self._connectivity = mesh.element_connectivity()
        self._dof_map = element_dof_map(self._connectivity)
        self._sizes = mesh.element_sizes()

    # ------------------------------------------------------------------ #
    # displacement
    # ------------------------------------------------------------------ #
    def displacement_at(self, points: np.ndarray, displacement: np.ndarray) -> np.ndarray:
        """Interpolate the displacement vector field at arbitrary points.

        Parameters
        ----------
        points:
            Array of shape ``(n, 3)`` in mesh coordinates.
        displacement:
            Global displacement vector of length ``mesh.num_dofs``.

        Returns
        -------
        numpy.ndarray
            Displacements of shape ``(n, 3)``.
        """
        # backend-seam: host-side points/DOF arrays enter here; kernels below run on bm
        points = np.atleast_2d(np.asarray(points, dtype=float))
        displacement = self._check_displacement(displacement)
        element_ids, local = self.mesh.locate_points(points)
        n_values = shape_functions(local)  # (n, 8), on the array backend
        element_dofs = self._dof_map[element_ids]  # (n, 24)
        u_elements = displacement[element_dofs].reshape(points.shape[0], 8, 3)
        return bm.asnumpy(
            bm.einsum("pa,pac->pc", n_values, bm.asarray(u_elements, dtype=bm.ftype))
        )

    # ------------------------------------------------------------------ #
    # strain / stress
    # ------------------------------------------------------------------ #
    def strain_at(self, points: np.ndarray, displacement: np.ndarray) -> np.ndarray:
        """Evaluate the Voigt strain (engineering shear) at arbitrary points."""
        # backend-seam: host-side points/DOF arrays enter here; kernels below run on bm
        points = np.atleast_2d(np.asarray(points, dtype=float))
        displacement = self._check_displacement(displacement)
        element_ids, local = self.mesh.locate_points(points)
        grads = shape_function_gradients(local, self._sizes[element_ids])  # (n, 8, 3)
        element_dofs = self._dof_map[element_ids]
        u_elements = bm.asarray(
            displacement[element_dofs].reshape(points.shape[0], 8, 3), dtype=bm.ftype
        )

        strain = bm.zeros((points.shape[0], 6), dtype=bm.ftype)
        strain[:, 0] = bm.einsum("pa,pa->p", grads[:, :, 0], u_elements[:, :, 0])
        strain[:, 1] = bm.einsum("pa,pa->p", grads[:, :, 1], u_elements[:, :, 1])
        strain[:, 2] = bm.einsum("pa,pa->p", grads[:, :, 2], u_elements[:, :, 2])
        strain[:, 3] = bm.einsum("pa,pa->p", grads[:, :, 2], u_elements[:, :, 1]) + bm.einsum(
            "pa,pa->p", grads[:, :, 1], u_elements[:, :, 2]
        )
        strain[:, 4] = bm.einsum("pa,pa->p", grads[:, :, 2], u_elements[:, :, 0]) + bm.einsum(
            "pa,pa->p", grads[:, :, 0], u_elements[:, :, 2]
        )
        strain[:, 5] = bm.einsum("pa,pa->p", grads[:, :, 1], u_elements[:, :, 0]) + bm.einsum(
            "pa,pa->p", grads[:, :, 0], u_elements[:, :, 1]
        )
        return bm.asnumpy(strain)

    def stress_at(
        self, points: np.ndarray, displacement: np.ndarray, delta_t: float = 0.0
    ) -> np.ndarray:
        """Evaluate the Voigt stress at arbitrary points (paper Eq. 1).

        ``delta_t`` is the thermal load the displacement solution corresponds
        to; the thermal eigenstrain of the element material is subtracted
        before applying Hooke's law.
        """
        # backend-seam: host-side points/DOF arrays enter here; kernels below run on bm
        points = np.atleast_2d(np.asarray(points, dtype=float))
        strain = bm.asarray(self.strain_at(points, displacement), dtype=bm.ftype)
        element_ids, _ = self.mesh.locate_points(points)
        tag_index = self.material_data.tag_index_of_element[element_ids]
        lam = bm.asarray(self.material_data.lame_lambda[tag_index], dtype=bm.ftype)
        mu = bm.asarray(self.material_data.lame_mu[tag_index], dtype=bm.ftype)
        cte = bm.asarray(self.material_data.cte[tag_index], dtype=bm.ftype)

        trace = strain[:, 0] + strain[:, 1] + strain[:, 2]
        thermal = cte * float(delta_t) * (3.0 * lam + 2.0 * mu)
        stress = bm.zeros_like(strain)
        stress[:, 0] = lam * trace + 2.0 * mu * strain[:, 0] - thermal
        stress[:, 1] = lam * trace + 2.0 * mu * strain[:, 1] - thermal
        stress[:, 2] = lam * trace + 2.0 * mu * strain[:, 2] - thermal
        stress[:, 3] = mu * strain[:, 3]
        stress[:, 4] = mu * strain[:, 4]
        stress[:, 5] = mu * strain[:, 5]
        return bm.asnumpy(stress)

    def von_mises_at(
        self, points: np.ndarray, displacement: np.ndarray, delta_t: float = 0.0
    ) -> np.ndarray:
        """Evaluate the von Mises stress at arbitrary points."""
        return von_mises(self.stress_at(points, displacement, delta_t))

    def stress_at_centroids(
        self, displacement: np.ndarray, delta_t: float = 0.0
    ) -> np.ndarray:
        """Evaluate the stress at every element centroid, shape ``(num_elements, 6)``."""
        return self.stress_at(self.mesh.element_centroids(), displacement, delta_t)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _check_displacement(self, displacement: np.ndarray) -> np.ndarray:
        displacement = np.asarray(displacement, dtype=float).ravel()
        if displacement.size != self.mesh.num_dofs:
            raise ValidationError(
                f"displacement has {displacement.size} entries, "
                f"expected {self.mesh.num_dofs}"
            )
        return displacement


__all__ = ["FieldEvaluator", "von_mises"]
