"""Vectorised assembly of the global stiffness matrix and thermal load vector.

Assembly exploits the tensor-product structure of the meshes: the element
stiffness matrix of an axis-aligned hex8 element depends only on its box size
and its material, so elements are grouped by ``(dx, dy, dz, material tag)``
and each distinct element matrix is computed exactly once.  Scatter into the
sparse global matrix is chunked to bound peak memory on multi-million-DoF
reference meshes.

Backend seam: the dense element kernels (:func:`element_stiffness`,
:func:`element_thermal_load`) run on the active array backend (``bm``).
Everything from the scatter onward — DoF maps, ``np.unique`` grouping, the
scipy COO/CSR machinery, ``np.add.at`` — is numpy/scipy-only, so the kernel
results cross back to host numpy through ``bm.asnumpy()`` exactly where the
per-group tables are filled below.  On the default numpy backend
``bm.asnumpy`` is the identity, keeping assembly bit-for-bit unchanged.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.backend import backend_manager as bm
from repro.fem.element import element_stiffness, element_thermal_load
from repro.fem.elasticity import ElementMaterialData, material_arrays_for_mesh
from repro.materials.library import MaterialLibrary
from repro.mesh.structured import StructuredHexMesh

#: Number of elements scattered into the sparse matrix per chunk.
_DEFAULT_CHUNK = 20_000


def element_dof_map(connectivity: np.ndarray) -> np.ndarray:
    """Expand node connectivity into DoF connectivity.

    Parameters
    ----------
    connectivity:
        Node ids per element, shape ``(num_elements, 8)``.

    Returns
    -------
    numpy.ndarray
        DoF ids per element, shape ``(num_elements, 24)``, node-major ordering
        (``u0x, u0y, u0z, u1x, ...``) matching the element kernels.
    """
    connectivity = np.asarray(connectivity, dtype=np.int64)
    dofs = np.empty((connectivity.shape[0], 24), dtype=np.int64)
    for corner in range(8):
        base = 3 * connectivity[:, corner]
        dofs[:, 3 * corner + 0] = base
        dofs[:, 3 * corner + 1] = base + 1
        dofs[:, 3 * corner + 2] = base + 2
    return dofs


def _element_groups(
    mesh: StructuredHexMesh, material_data: ElementMaterialData
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Group elements by (dx, dy, dz, material tag).

    Returns
    -------
    (group_of_element, group_sizes, group_tag_index)
        ``group_of_element`` maps each element to its group id;
        ``group_sizes`` holds the representative box size per group
        (shape ``(num_groups, 3)``); ``group_tag_index`` the material tag index
        per group.
    """
    sizes = mesh.element_sizes()
    keys = np.column_stack(
        [sizes, material_data.tag_index_of_element.astype(float)]
    )
    _, first_index, group_of_element = np.unique(
        keys, axis=0, return_index=True, return_inverse=True
    )
    group_sizes = sizes[first_index]
    group_tag_index = material_data.tag_index_of_element[first_index]
    return group_of_element, group_sizes, group_tag_index


def assemble_stiffness(
    mesh: StructuredHexMesh,
    materials: MaterialLibrary,
    material_data: ElementMaterialData | None = None,
    chunk_size: int = _DEFAULT_CHUNK,
) -> sp.csr_matrix:
    """Assemble the global stiffness matrix of a mesh (paper Eq. 4 / Eq. 6).

    Parameters
    ----------
    mesh:
        The tagged structured mesh.
    materials:
        Material library resolving the mesh's roles.
    material_data:
        Optional pre-resolved material arrays (avoids recomputation when the
        load vector is assembled for the same mesh).
    chunk_size:
        Number of elements scattered per chunk (memory/time trade-off).

    Returns
    -------
    scipy.sparse.csr_matrix
        Symmetric positive semi-definite stiffness matrix of shape
        ``(num_dofs, num_dofs)``.
    """
    if material_data is None:
        material_data = material_arrays_for_mesh(mesh, materials)
    group_of_element, group_sizes, group_tag_index = _element_groups(mesh, material_data)

    num_groups = group_sizes.shape[0]
    ke_per_group = np.empty((num_groups, 24, 24), dtype=np.float64)
    for group in range(num_groups):
        d_matrix = material_data.d_matrices[group_tag_index[group]]
        # bm.asnumpy() seam: the element kernel runs on the array backend,
        # the sparse scatter below stays numpy/scipy.
        ke_per_group[group] = bm.asnumpy(
            element_stiffness(tuple(group_sizes[group]), d_matrix)
        )

    connectivity = mesh.element_connectivity()
    dof_map = element_dof_map(connectivity)
    ndofs = mesh.num_dofs

    matrix = sp.csr_matrix((ndofs, ndofs), dtype=float)
    num_elements = mesh.num_elements
    chunk_size = max(1, int(chunk_size))
    for start in range(0, num_elements, chunk_size):
        stop = min(start + chunk_size, num_elements)
        dofs = dof_map[start:stop]
        ke = ke_per_group[group_of_element[start:stop]]
        rows = np.repeat(dofs, 24, axis=1).ravel()
        cols = np.tile(dofs, (1, 24)).ravel()
        data = ke.reshape(stop - start, -1).ravel()
        chunk = sp.coo_matrix((data, (rows, cols)), shape=(ndofs, ndofs))
        matrix = matrix + chunk.tocsr()
    matrix.sum_duplicates()
    return matrix


def assemble_thermal_load(
    mesh: StructuredHexMesh,
    materials: MaterialLibrary,
    material_data: ElementMaterialData | None = None,
) -> np.ndarray:
    """Assemble the global thermal load vector for a unit temperature change.

    The physical load vector for a thermal load ``delta_t`` is
    ``delta_t * assemble_thermal_load(...)`` (paper Eq. 11 keeps ``delta_t``
    as an explicit scalar factor, which we follow).

    Returns
    -------
    numpy.ndarray
        Load vector of shape ``(num_dofs,)``.
    """
    if material_data is None:
        material_data = material_arrays_for_mesh(mesh, materials)
    group_of_element, group_sizes, group_tag_index = _element_groups(mesh, material_data)
    thermal_strain_unit = material_data.thermal_strain_unit()

    num_groups = group_sizes.shape[0]
    fe_per_group = np.empty((num_groups, 24), dtype=np.float64)
    for group in range(num_groups):
        tag_index = int(group_tag_index[group])
        # bm.asnumpy() seam: kernel on the array backend, scatter on numpy.
        fe_per_group[group] = bm.asnumpy(
            element_thermal_load(
                tuple(group_sizes[group]),
                material_data.d_matrices[tag_index],
                thermal_strain_unit[tag_index],
            )
        )

    connectivity = mesh.element_connectivity()
    dof_map = element_dof_map(connectivity)
    load = np.zeros(mesh.num_dofs, dtype=float)
    np.add.at(load, dof_map.ravel(), fe_per_group[group_of_element].ravel())
    return load


__all__ = ["assemble_stiffness", "assemble_thermal_load", "element_dof_map"]
