"""Trilinear hexahedral (hex8) element kernels.

The meshes in this package are axis-aligned tensor-product grids, so every
element is a rectangular box of size ``(dx, dy, dz)``.  The isoparametric map
is then diagonal, which keeps the element integration exact and fast while the
formulation below (shape functions, B matrices, 2x2x2 Gauss quadrature)
remains the standard hex8 formulation found in FEM texts (Larson & Bengzon,
the paper's reference [17]).

Voigt ordering used throughout: ``(xx, yy, zz, yz, xz, xy)`` with engineering
shear strains.

All dense arithmetic runs on the active array backend (``bm``); on the
default numpy backend every operation resolves to the identical ``np`` call,
so results are bit-for-bit unchanged.  Dtype policy: every kernel converts
its inputs to ``bm.ftype`` (float64) on entry, so callers cannot silently
drift the element math to float32 regardless of what they pass in.
"""

from __future__ import annotations

import math

import numpy as np

from repro.backend import backend_manager as bm

#: Local corner coordinates of the hex8 reference element, shape (8, 3).
#: Kept as a plain numpy constant: converting it at import time would freeze
#: the array backend before any selection has happened.
HEX8_LOCAL_CORNERS = np.array(
    [
        (-1.0, -1.0, -1.0),
        (+1.0, -1.0, -1.0),
        (+1.0, +1.0, -1.0),
        (-1.0, +1.0, -1.0),
        (-1.0, -1.0, +1.0),
        (+1.0, -1.0, +1.0),
        (+1.0, +1.0, +1.0),
        (-1.0, +1.0, +1.0),
    ]
)


def _local_corners():
    """The reference corners on the active backend, at the policy dtype."""
    return bm.asarray(HEX8_LOCAL_CORNERS, dtype=bm.ftype)


def gauss_points_2x2x2():
    """Return the 2x2x2 Gauss points and weights on ``[-1, 1]^3``.

    Returns
    -------
    (points, weights)
        ``points`` has shape ``(8, 3)``, ``weights`` shape ``(8,)`` (all 1.0).
    """
    g = 1.0 / math.sqrt(3.0)
    pts = bm.array(
        [(sx * g, sy * g, sz * g) for sz in (-1, 1) for sy in (-1, 1) for sx in (-1, 1)],
        dtype=bm.ftype,
    )
    return pts, bm.ones(8, dtype=bm.ftype)


def shape_functions(local_points):
    """Evaluate the 8 trilinear shape functions at local points.

    Parameters
    ----------
    local_points:
        Array of shape ``(n, 3)`` with coordinates in ``[-1, 1]^3``.

    Returns
    -------
    Shape ``(n, 8)``; row ``p`` holds ``N_a(xi_p)`` for the 8 corners.
    """
    pts = bm.atleast_2d(bm.asarray(local_points, dtype=bm.ftype))
    xi, eta, zeta = pts[:, 0:1], pts[:, 1:2], pts[:, 2:3]
    corners = _local_corners()
    return (
        (1.0 + xi * corners[:, 0])
        * (1.0 + eta * corners[:, 1])
        * (1.0 + zeta * corners[:, 2])
        / 8.0
    )


def shape_function_gradients(local_points, element_size):
    """Gradients of the shape functions with respect to *physical* coordinates.

    Parameters
    ----------
    local_points:
        Array of shape ``(n, 3)`` of local coordinates in ``[-1, 1]^3``.
    element_size:
        Either a single ``(dx, dy, dz)`` triple or an array of shape ``(n, 3)``
        giving the box size of the element containing each point.

    Returns
    -------
    Shape ``(n, 8, 3)``; entry ``[p, a, c]`` is ``dN_a/dx_c`` at point p.
    """
    pts = bm.atleast_2d(bm.asarray(local_points, dtype=bm.ftype))
    sizes = bm.asarray(element_size, dtype=bm.ftype)
    if sizes.ndim == 1:
        sizes = bm.broadcast_to(sizes, (pts.shape[0], 3))
    xi, eta, zeta = pts[:, 0:1], pts[:, 1:2], pts[:, 2:3]
    corners = _local_corners()
    cx, cy, cz = corners[:, 0], corners[:, 1], corners[:, 2]
    # Derivatives with respect to the local coordinates.
    dn_dxi = cx * (1.0 + eta * cy) * (1.0 + zeta * cz) / 8.0
    dn_deta = (1.0 + xi * cx) * cy * (1.0 + zeta * cz) / 8.0
    dn_dzeta = (1.0 + xi * cx) * (1.0 + eta * cy) * cz / 8.0
    grad = bm.stack([dn_dxi, dn_deta, dn_dzeta], axis=2)
    # Chain rule for the axis-aligned map x = x0 + (xi + 1) * dx / 2.
    jacobian_inv = 2.0 / sizes  # shape (n, 3)
    return grad * jacobian_inv[:, None, :]


def strain_displacement_matrix(grad):
    """Assemble B matrices from shape-function gradients.

    Parameters
    ----------
    grad:
        Gradients of shape ``(n, 8, 3)`` as returned by
        :func:`shape_function_gradients`.

    Returns
    -------
    B matrices of shape ``(n, 6, 24)`` mapping the 24 element displacement
    DoFs (node-major: ``u0x, u0y, u0z, u1x, ...``) to Voigt strains.
    """
    grad = bm.asarray(grad, dtype=bm.ftype)
    n = grad.shape[0]
    b = bm.zeros((n, 6, 24), dtype=bm.ftype)
    dx = grad[:, :, 0]
    dy = grad[:, :, 1]
    dz = grad[:, :, 2]
    cols = bm.arange(8, dtype=bm.itype) * 3
    b[:, 0, cols + 0] = dx
    b[:, 1, cols + 1] = dy
    b[:, 2, cols + 2] = dz
    # gamma_yz = du_y/dz + du_z/dy
    b[:, 3, cols + 1] = dz
    b[:, 3, cols + 2] = dy
    # gamma_xz = du_x/dz + du_z/dx
    b[:, 4, cols + 0] = dz
    b[:, 4, cols + 2] = dx
    # gamma_xy = du_x/dy + du_y/dx
    b[:, 5, cols + 0] = dy
    b[:, 5, cols + 1] = dx
    return b


def element_stiffness(element_size: tuple[float, float, float], d_matrix):
    """Compute the 24x24 stiffness matrix of an axis-aligned hex8 element.

    Parameters
    ----------
    element_size:
        Box dimensions ``(dx, dy, dz)``.
    d_matrix:
        6x6 elasticity matrix of the element material.

    Returns
    -------
    Symmetric element stiffness matrix of shape ``(24, 24)`` at ``bm.ftype``.
    """
    dx, dy, dz = (float(s) for s in element_size)
    det_j = dx * dy * dz / 8.0
    pts, weights = gauss_points_2x2x2()
    grad = shape_function_gradients(pts, bm.array([dx, dy, dz], dtype=bm.ftype))
    b = strain_displacement_matrix(grad)
    d = bm.asarray(d_matrix, dtype=bm.ftype)
    bt = bm.transpose(b, (0, 2, 1))
    ke = bm.einsum("gai,ij,gbj,g->ab", bt, d, bt, weights)
    ke = ke * det_j
    # Enforce exact symmetry against round-off.
    return 0.5 * (ke + bm.transpose(ke, (1, 0)))


def element_thermal_load(
    element_size: tuple[float, float, float],
    d_matrix,
    thermal_strain,
):
    """Compute the 24-entry thermal load vector of an axis-aligned hex8 element.

    The load corresponds to the right-hand side of the weak form (paper Eq. 5)
    for the given thermal strain (normally evaluated at ``delta_t = 1`` so the
    caller can scale by the actual thermal load).

    Parameters
    ----------
    element_size:
        Box dimensions ``(dx, dy, dz)``.
    d_matrix:
        6x6 elasticity matrix.
    thermal_strain:
        Voigt thermal strain vector (6,).

    Returns
    -------
    Element load vector of shape ``(24,)`` at ``bm.ftype``.
    """
    dx, dy, dz = (float(s) for s in element_size)
    det_j = dx * dy * dz / 8.0
    pts, weights = gauss_points_2x2x2()
    grad = shape_function_gradients(pts, bm.array([dx, dy, dz], dtype=bm.ftype))
    b = strain_displacement_matrix(grad)
    stress_like = bm.matmul(
        bm.asarray(d_matrix, dtype=bm.ftype), bm.asarray(thermal_strain, dtype=bm.ftype)
    )
    fe = bm.einsum("gij,i,g->j", b, stress_like, weights)
    return fe * det_j


__all__ = [
    "HEX8_LOCAL_CORNERS",
    "gauss_points_2x2x2",
    "shape_functions",
    "shape_function_gradients",
    "strain_displacement_matrix",
    "element_stiffness",
    "element_thermal_load",
]
