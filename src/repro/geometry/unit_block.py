"""The TSV unit block: one periodic cell of the TSV array (paper Fig. 3b).

The unit block is a ``pitch x pitch x height`` cuboid of silicon with a single
TSV (copper core + dielectric liner) in the middle.  "Dummy" unit blocks have
the same dimensions but no TSV; they are pure silicon and are used to pad a
sub-model so that its boundary is far enough from the TSV array (paper §4.4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.tsv import TSVGeometry
from repro.materials.library import ROLE_COPPER, ROLE_LINER, ROLE_SILICON


@dataclass(frozen=True)
class UnitBlockGeometry:
    """Geometry of one unit block of a TSV array.

    Attributes
    ----------
    tsv:
        The TSV geometry (pitch defines the block footprint).
    has_tsv:
        ``False`` for a dummy block (pure silicon), ``True`` for a TSV block.
    """

    tsv: TSVGeometry
    has_tsv: bool = True

    @property
    def size_x(self) -> float:
        """Block extent along x (equal to the pitch)."""
        return self.tsv.pitch

    @property
    def size_y(self) -> float:
        """Block extent along y (equal to the pitch)."""
        return self.tsv.pitch

    @property
    def size_z(self) -> float:
        """Block extent along z (equal to the TSV height)."""
        return self.tsv.height

    @property
    def dimensions(self) -> tuple[float, float, float]:
        """Block extents ``(pitch, pitch, height)``."""
        return (self.size_x, self.size_y, self.size_z)

    @property
    def center_xy(self) -> tuple[float, float]:
        """In-plane coordinates of the TSV axis within the block."""
        return (0.5 * self.size_x, 0.5 * self.size_y)

    def as_dummy(self) -> "UnitBlockGeometry":
        """Return the dummy (TSV-less) version of this block."""
        return UnitBlockGeometry(tsv=self.tsv, has_tsv=False)

    def material_role_at(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Classify in-plane points into material roles.

        Parameters
        ----------
        x, y:
            Arrays of in-plane coordinates *local to the block* (origin at the
            block corner).  The TSV cross-section does not vary along z, so z
            is irrelevant for the classification.

        Returns
        -------
        numpy.ndarray of str
            One of ``"copper"``, ``"liner"`` or ``"silicon"`` per point.
        """
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        roles = np.full(np.broadcast(x, y).shape, ROLE_SILICON, dtype=object)
        if not self.has_tsv:
            return roles
        cx, cy = self.center_xy
        r = np.hypot(x - cx, y - cy)
        roles[r <= self.tsv.outer_radius] = ROLE_LINER
        roles[r <= self.tsv.radius] = ROLE_COPPER
        return roles

    def volume_fractions(self, samples_per_axis: int = 200) -> dict[str, float]:
        """Estimate the volume fraction of each material role in the block.

        Uses a regular in-plane sampling grid (the geometry is prismatic so
        the z direction does not change the fractions).
        """
        coords = (np.arange(samples_per_axis) + 0.5) / samples_per_axis
        xs = coords * self.size_x
        ys = coords * self.size_y
        grid_x, grid_y = np.meshgrid(xs, ys, indexing="ij")
        roles = self.material_role_at(grid_x, grid_y)
        total = roles.size
        return {
            role: float(np.count_nonzero(roles == role)) / total
            for role in (ROLE_COPPER, ROLE_LINER, ROLE_SILICON)
        }


__all__ = ["UnitBlockGeometry"]
