"""TSV geometric parameters (paper Fig. 2).

A TSV is modelled as a copper cylinder of diameter ``d`` and height ``h``
through the silicon substrate, surrounded by a thin dielectric liner of
thickness ``t``.  Adjacent TSVs in a 90-degree array are separated by the
pitch ``p``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import ValidationError, check_positive


@dataclass(frozen=True)
class TSVGeometry:
    """Geometry of a single TSV and of the surrounding array cell.

    All lengths are in micrometres (the package-internal length unit).

    Attributes
    ----------
    diameter:
        Diameter ``d`` of the copper via body.
    height:
        Height ``h`` of the via (equal to the substrate thickness).
    liner_thickness:
        Thickness ``t`` of the dielectric liner around the copper body.
    pitch:
        Centre-to-centre pitch ``p`` of adjacent TSVs in the array.
    """

    diameter: float = 5.0
    height: float = 50.0
    liner_thickness: float = 0.5
    pitch: float = 15.0

    def __post_init__(self) -> None:
        check_positive("diameter", self.diameter)
        check_positive("height", self.height)
        check_positive("liner_thickness", self.liner_thickness)
        check_positive("pitch", self.pitch)
        if self.outer_diameter >= self.pitch:
            raise ValidationError(
                "TSV (including liner) does not fit in the unit cell: "
                f"d + 2t = {self.outer_diameter} >= pitch = {self.pitch}"
            )

    @property
    def radius(self) -> float:
        """Radius of the copper body."""
        return 0.5 * self.diameter

    @property
    def outer_radius(self) -> float:
        """Radius of the copper body plus the liner."""
        return 0.5 * self.diameter + self.liner_thickness

    @property
    def outer_diameter(self) -> float:
        """Diameter of the copper body plus the liner."""
        return self.diameter + 2.0 * self.liner_thickness

    @property
    def aspect_ratio(self) -> float:
        """Height over diameter of the copper body."""
        return self.height / self.diameter

    @property
    def fill_factor(self) -> float:
        """Area fraction of the unit cell occupied by the via (with liner)."""
        import math

        return math.pi * self.outer_radius**2 / self.pitch**2

    def with_pitch(self, pitch: float) -> "TSVGeometry":
        """Return the same TSV with a different array pitch."""
        return TSVGeometry(
            diameter=self.diameter,
            height=self.height,
            liner_thickness=self.liner_thickness,
            pitch=pitch,
        )

    @classmethod
    def paper_default(cls, pitch: float = 15.0) -> "TSVGeometry":
        """The TSV used throughout the paper: d=5 um, h=50 um, t=0.5 um."""
        return cls(diameter=5.0, height=50.0, liner_thickness=0.5, pitch=pitch)


__all__ = ["TSVGeometry"]
