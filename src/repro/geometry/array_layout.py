"""TSV array layouts: which unit block sits where.

The global stage of MORE-Stress treats the array as an abstract "mesh" of unit
blocks.  A layout records, for every block position ``(row, col)``, whether the
block contains a TSV or is a dummy (pure silicon) padding block, plus where the
array sits in global package coordinates (needed for sub-modeling).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.geometry.tsv import TSVGeometry
from repro.geometry.unit_block import UnitBlockGeometry
from repro.utils.validation import check_positive_int


class BlockKind(enum.Enum):
    """Kind of unit block occupying a layout cell."""

    TSV = "tsv"
    DUMMY = "dummy"


@dataclass
class TSVArrayLayout:
    """A rectangular (90-degree) array of unit blocks.

    Attributes
    ----------
    tsv:
        The TSV geometry shared by all blocks (pitch = block footprint).
    kinds:
        2-D array of :class:`BlockKind`, shape ``(rows, cols)``; entry
        ``[i, j]`` is the block whose lower-left corner sits at
        ``origin + (j * pitch, i * pitch)``.
    origin:
        Global package coordinates of the lower-left-bottom corner of block
        ``(0, 0)``.  For standalone arrays this is simply ``(0, 0, 0)``.
    """

    tsv: TSVGeometry
    kinds: np.ndarray
    origin: tuple[float, float, float] = (0.0, 0.0, 0.0)

    def __post_init__(self) -> None:
        kinds = np.asarray(self.kinds, dtype=object)
        if kinds.ndim != 2:
            raise ValueError(f"kinds must be a 2-D array, got shape {kinds.shape}")
        for kind in kinds.flat:
            if not isinstance(kind, BlockKind):
                raise TypeError(f"kinds entries must be BlockKind, got {kind!r}")
        self.kinds = kinds

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def full(
        cls,
        tsv: TSVGeometry,
        rows: int,
        cols: int | None = None,
        origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
    ) -> "TSVArrayLayout":
        """A dense ``rows x cols`` TSV array with no dummy blocks."""
        rows = check_positive_int("rows", rows)
        cols = rows if cols is None else check_positive_int("cols", cols)
        kinds = np.full((rows, cols), BlockKind.TSV, dtype=object)
        return cls(tsv=tsv, kinds=kinds, origin=origin)

    @classmethod
    def with_dummy_ring(
        cls,
        tsv: TSVGeometry,
        rows: int,
        cols: int | None = None,
        ring_width: int = 2,
        origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
    ) -> "TSVArrayLayout":
        """A TSV array padded with ``ring_width`` rings of dummy blocks.

        This is the configuration used for sub-modeling (paper §4.4): the
        dummy blocks keep the sub-model boundary far from the TSVs.
        """
        rows = check_positive_int("rows", rows)
        cols = rows if cols is None else check_positive_int("cols", cols)
        ring_width = check_positive_int("ring_width", ring_width, minimum=0)
        total_rows = rows + 2 * ring_width
        total_cols = cols + 2 * ring_width
        kinds = np.full((total_rows, total_cols), BlockKind.DUMMY, dtype=object)
        kinds[ring_width:ring_width + rows, ring_width:ring_width + cols] = BlockKind.TSV
        return cls(tsv=tsv, kinds=kinds, origin=origin)

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    @property
    def rows(self) -> int:
        """Number of block rows (y direction)."""
        return int(self.kinds.shape[0])

    @property
    def cols(self) -> int:
        """Number of block columns (x direction)."""
        return int(self.kinds.shape[1])

    @property
    def shape(self) -> tuple[int, int]:
        """``(rows, cols)`` of the layout."""
        return (self.rows, self.cols)

    @property
    def num_blocks(self) -> int:
        """Total number of unit blocks."""
        return self.rows * self.cols

    @property
    def num_tsv_blocks(self) -> int:
        """Number of blocks that contain a TSV."""
        return int(np.count_nonzero(self.kinds == BlockKind.TSV))

    @property
    def num_dummy_blocks(self) -> int:
        """Number of dummy (pure silicon) blocks."""
        return self.num_blocks - self.num_tsv_blocks

    @property
    def extent(self) -> tuple[float, float, float]:
        """Physical size of the whole layout ``(x, y, z)``."""
        return (
            self.cols * self.tsv.pitch,
            self.rows * self.tsv.pitch,
            self.tsv.height,
        )

    def kind_at(self, row: int, col: int) -> BlockKind:
        """Return the block kind at ``(row, col)``."""
        return self.kinds[row, col]

    def block_at(self, row: int, col: int) -> UnitBlockGeometry:
        """Return the unit block geometry at ``(row, col)``."""
        return UnitBlockGeometry(
            tsv=self.tsv, has_tsv=self.kind_at(row, col) is BlockKind.TSV
        )

    def block_origin(self, row: int, col: int) -> tuple[float, float, float]:
        """Global coordinates of the lower-left-bottom corner of a block."""
        ox, oy, oz = self.origin
        return (ox + col * self.tsv.pitch, oy + row * self.tsv.pitch, oz)

    def tsv_centers(self) -> np.ndarray:
        """Global ``(x, y)`` coordinates of all TSV axes, shape ``(n_tsv, 2)``."""
        centers = []
        half = 0.5 * self.tsv.pitch
        for row in range(self.rows):
            for col in range(self.cols):
                if self.kind_at(row, col) is BlockKind.TSV:
                    bx, by, _ = self.block_origin(row, col)
                    centers.append((bx + half, by + half))
        if not centers:
            return np.zeros((0, 2), dtype=float)
        return np.asarray(centers, dtype=float)

    def iter_blocks(self):
        """Yield ``(row, col, BlockKind)`` for every block in row-major order."""
        for row in range(self.rows):
            for col in range(self.cols):
                yield row, col, self.kind_at(row, col)

    def tsv_region(self) -> tuple[slice, slice] | None:
        """Return the (row, col) slices of the bounding box of TSV blocks.

        Returns ``None`` for a layout containing only dummy blocks.  For the
        sub-modeling error metric only the TSV region is of interest (the
        dummy padding is not part of the structure being analysed).
        """
        mask = self.kinds == BlockKind.TSV
        if not mask.any():
            return None
        rows = np.nonzero(mask.any(axis=1))[0]
        cols = np.nonzero(mask.any(axis=0))[0]
        return (
            slice(int(rows[0]), int(rows[-1]) + 1),
            slice(int(cols[0]), int(cols[-1]) + 1),
        )

    def translated(self, origin: tuple[float, float, float]) -> "TSVArrayLayout":
        """Return a copy of this layout at a different global origin."""
        return TSVArrayLayout(tsv=self.tsv, kinds=self.kinds.copy(), origin=origin)


__all__ = ["TSVArrayLayout", "BlockKind"]
