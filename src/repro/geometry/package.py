"""Chiplet package geometry for the sub-modeling scenario (paper Fig. 5b).

The second scenario of the paper embeds a 15x15 TSV array at five different
locations inside a chiplet consisting of a composite package substrate, a
silicon interposer (which carries the TSVs) and a silicon die.  The package
is solved once with a coarse mesh (no TSVs resolved); the resulting warpage
displacement field supplies Dirichlet boundary conditions for the sub-model.

The default dimensions here are scaled down relative to a production package
so that the coarse model stays cheap in pure Python, but the structure is the
same: a compliant, high-CTE substrate below a stiff silicon interposer and
die, which produces the characteristic warpage and the sharp background
stress variations near the die corner and the interposer corner that make
loc3/loc5 hard for the linear superposition method.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.array_layout import TSVArrayLayout
from repro.materials.library import ROLE_SILICON, ROLE_SUBSTRATE, ROLE_UNDERFILL
from repro.utils.validation import ValidationError, check_positive


@dataclass(frozen=True)
class PackageLayer:
    """One prismatic layer of the chiplet stack.

    Attributes
    ----------
    name:
        Layer name (``"substrate"``, ``"interposer"``, ``"die"``, ...).
    material_role:
        Role looked up in the :class:`~repro.materials.MaterialLibrary`.
    x_range, y_range:
        In-plane footprint ``(min, max)`` in package coordinates.
    z_range:
        Vertical extent ``(bottom, top)`` in package coordinates.
    """

    name: str
    material_role: str
    x_range: tuple[float, float]
    y_range: tuple[float, float]
    z_range: tuple[float, float]

    def __post_init__(self) -> None:
        for label, (lo, hi) in (
            ("x_range", self.x_range),
            ("y_range", self.y_range),
            ("z_range", self.z_range),
        ):
            if hi <= lo:
                raise ValidationError(f"{label} must be increasing, got {(lo, hi)}")

    @property
    def thickness(self) -> float:
        """Layer thickness along z."""
        return self.z_range[1] - self.z_range[0]

    def contains(self, x: np.ndarray, y: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Boolean mask of points inside the layer (boundaries inclusive)."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        z = np.asarray(z, dtype=float)
        return (
            (x >= self.x_range[0])
            & (x <= self.x_range[1])
            & (y >= self.y_range[0])
            & (y <= self.y_range[1])
            & (z >= self.z_range[0])
            & (z <= self.z_range[1])
        )


@dataclass(frozen=True)
class SubModelLocation:
    """A named placement of the TSV-array sub-model inside the interposer.

    Attributes
    ----------
    name:
        Location label (``"loc1"`` .. ``"loc5"`` in the paper).
    description:
        Human-readable description of where the array sits.
    origin:
        Package coordinates of the lower-left-bottom corner of the padded
        sub-model (dummy ring included).
    """

    name: str
    description: str
    origin: tuple[float, float, float]


@dataclass
class ChipletPackage:
    """A substrate + interposer + die chiplet stack.

    The interposer carries the TSV array; its thickness equals the TSV height
    so that the sub-model spans the full interposer thickness, exactly as in
    the paper's second scenario.
    """

    substrate_size: float = 1500.0
    substrate_thickness: float = 150.0
    interposer_size: float = 900.0
    interposer_thickness: float = 50.0
    die_size: float = 450.0
    die_thickness: float = 80.0
    underfill_thickness: float = 20.0

    def __post_init__(self) -> None:
        check_positive("substrate_size", self.substrate_size)
        check_positive("substrate_thickness", self.substrate_thickness)
        check_positive("interposer_size", self.interposer_size)
        check_positive("interposer_thickness", self.interposer_thickness)
        check_positive("die_size", self.die_size)
        check_positive("die_thickness", self.die_thickness)
        check_positive("underfill_thickness", self.underfill_thickness)
        if self.interposer_size > self.substrate_size:
            raise ValidationError("interposer must not be larger than the substrate")
        if self.die_size > self.interposer_size:
            raise ValidationError("die must not be larger than the interposer")

    # ------------------------------------------------------------------ #
    # layer stack
    # ------------------------------------------------------------------ #
    def layers(self) -> list[PackageLayer]:
        """Return the layer stack from bottom (substrate) to top (die)."""
        half_sub = 0.5 * self.substrate_size
        half_int = 0.5 * self.interposer_size
        half_die = 0.5 * self.die_size
        z0 = 0.0
        z1 = self.substrate_thickness
        z2 = z1 + self.underfill_thickness
        z3 = z2 + self.interposer_thickness
        z4 = z3 + self.die_thickness
        return [
            PackageLayer(
                name="substrate",
                material_role=ROLE_SUBSTRATE,
                x_range=(-half_sub, half_sub),
                y_range=(-half_sub, half_sub),
                z_range=(z0, z1),
            ),
            PackageLayer(
                name="underfill",
                material_role=ROLE_UNDERFILL,
                x_range=(-half_int, half_int),
                y_range=(-half_int, half_int),
                z_range=(z1, z2),
            ),
            PackageLayer(
                name="interposer",
                material_role=ROLE_SILICON,
                x_range=(-half_int, half_int),
                y_range=(-half_int, half_int),
                z_range=(z2, z3),
            ),
            PackageLayer(
                name="die",
                material_role=ROLE_SILICON,
                x_range=(-half_die, half_die),
                y_range=(-half_die, half_die),
                z_range=(z3, z4),
            ),
        ]

    def layer(self, name: str) -> PackageLayer:
        """Return a layer by name."""
        for layer in self.layers():
            if layer.name == name:
                return layer
        raise KeyError(f"package has no layer named {name!r}")

    @property
    def interposer_z_range(self) -> tuple[float, float]:
        """Vertical extent of the interposer (where TSV arrays live)."""
        return self.layer("interposer").z_range

    @property
    def total_height(self) -> float:
        """Total stack height."""
        return self.layers()[-1].z_range[1]

    @property
    def bounding_box(self) -> tuple[tuple[float, float], tuple[float, float], tuple[float, float]]:
        """Axis-aligned bounding box ``((xmin, xmax), (ymin, ymax), (zmin, zmax))``."""
        half_sub = 0.5 * self.substrate_size
        return ((-half_sub, half_sub), (-half_sub, half_sub), (0.0, self.total_height))

    def material_role_at(
        self, x: np.ndarray, y: np.ndarray, z: np.ndarray
    ) -> np.ndarray:
        """Classify points into layer material roles (``"void"`` if outside)."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        z = np.asarray(z, dtype=float)
        roles = np.full(np.broadcast(x, y, z).shape, "void", dtype=object)
        for layer in self.layers():
            mask = layer.contains(x, y, z)
            roles[mask] = layer.material_role
        return roles

    # ------------------------------------------------------------------ #
    # sub-model placement
    # ------------------------------------------------------------------ #
    def submodel_footprint(self, layout: TSVArrayLayout) -> tuple[float, float]:
        """In-plane size of the padded sub-model for a given layout."""
        ext_x, ext_y, _ = layout.extent
        return (ext_x, ext_y)

    def paper_locations(self, layout: TSVArrayLayout) -> list[SubModelLocation]:
        """Return the five sub-model locations of the paper's second scenario.

        * ``loc1`` — centre of the die shadow (smooth background stress);
        * ``loc2`` — under the middle of a die edge;
        * ``loc3`` — under the die corner (sharp background variation);
        * ``loc4`` — near the middle of an interposer edge;
        * ``loc5`` — at the interposer corner (sharpest background variation).
        """
        size_x, size_y = self.submodel_footprint(layout)
        z0 = self.interposer_z_range[0]
        half_die = 0.5 * self.die_size
        half_int = 0.5 * self.interposer_size
        margin = 0.05 * self.interposer_size

        def clamp_origin(cx: float, cy: float) -> tuple[float, float, float]:
            """Centre the sub-model at (cx, cy), clamped inside the interposer."""
            ox = cx - 0.5 * size_x
            oy = cy - 0.5 * size_y
            ox = min(max(ox, -half_int + margin), half_int - margin - size_x)
            oy = min(max(oy, -half_int + margin), half_int - margin - size_y)
            return (ox, oy, z0)

        return [
            SubModelLocation("loc1", "centre of the die shadow", clamp_origin(0.0, 0.0)),
            SubModelLocation(
                "loc2", "middle of a die edge", clamp_origin(half_die, 0.0)
            ),
            SubModelLocation(
                "loc3", "die corner", clamp_origin(half_die, half_die)
            ),
            SubModelLocation(
                "loc4",
                "middle of an interposer edge",
                clamp_origin(half_int - 0.6 * size_x, 0.0),
            ),
            SubModelLocation(
                "loc5",
                "interposer corner",
                clamp_origin(half_int - 0.6 * size_x, half_int - 0.6 * size_y),
            ),
        ]

    def location(self, name: str, layout: TSVArrayLayout) -> SubModelLocation:
        """Return one of the paper locations by name (``"loc1"``..``"loc5"``)."""
        for loc in self.paper_locations(layout):
            if loc.name == name:
                return loc
        raise KeyError(f"unknown sub-model location {name!r}")

    @classmethod
    def scaled_default(cls, scale: float = 1.0) -> "ChipletPackage":
        """Return the default package with in-plane dimensions scaled."""
        check_positive("scale", scale)
        return cls(
            substrate_size=1500.0 * scale,
            substrate_thickness=150.0,
            interposer_size=900.0 * scale,
            interposer_thickness=50.0,
            die_size=450.0 * scale,
            die_thickness=80.0,
            underfill_thickness=20.0,
        )


__all__ = ["ChipletPackage", "PackageLayer", "SubModelLocation"]
