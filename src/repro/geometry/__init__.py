"""Geometry descriptions: TSVs, unit blocks, array layouts, chiplet packages."""

from repro.geometry.tsv import TSVGeometry
from repro.geometry.unit_block import UnitBlockGeometry
from repro.geometry.array_layout import TSVArrayLayout, BlockKind
from repro.geometry.package import ChipletPackage, SubModelLocation, PackageLayer

__all__ = [
    "TSVGeometry",
    "UnitBlockGeometry",
    "TSVArrayLayout",
    "BlockKind",
    "ChipletPackage",
    "SubModelLocation",
    "PackageLayer",
]
