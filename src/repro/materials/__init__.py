"""Thermo-elastic material models and the default 2.5D/3D IC material library."""

from repro.materials.material import IsotropicMaterial, lame_parameters
from repro.materials.library import MaterialLibrary, MaterialAssignment
from repro.materials.temperature import ThermalLoad

__all__ = [
    "IsotropicMaterial",
    "lame_parameters",
    "MaterialLibrary",
    "MaterialAssignment",
    "ThermalLoad",
]
