"""Isotropic linear thermo-elastic material model.

The governing equation of the paper (Eq. 1) uses the Lamé parameters
``lambda`` and ``mu`` together with the coefficient of thermal expansion
``alpha``:

.. math::

    \\sigma(u) = \\lambda\\,\\mathrm{tr}(\\epsilon(u))\\,I + 2\\mu\\,\\epsilon(u)
                 - \\alpha (3\\lambda + 2\\mu)\\, \\Delta T\\, I

Materials are specified with the engineering constants (Young's modulus ``E``
and Poisson's ratio ``nu``) and converted with the paper's Eq. 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_in_range, check_non_negative, check_positive


def lame_parameters(young_modulus: float, poisson_ratio: float) -> tuple[float, float]:
    """Convert ``(E, nu)`` to the Lamé parameters ``(lambda, mu)`` (paper Eq. 2).

    Parameters
    ----------
    young_modulus:
        Young's modulus ``E`` (internal units: MPa).
    poisson_ratio:
        Poisson's ratio ``nu`` with ``-1 < nu < 0.5``.

    Returns
    -------
    (lambda, mu)
        First Lamé parameter and shear modulus in the same units as ``E``.
    """
    e = check_positive("young_modulus", young_modulus)
    nu = check_in_range("poisson_ratio", poisson_ratio, -1.0, 0.5, inclusive=False)
    lam = e * nu / (1.0 + nu) / (1.0 - 2.0 * nu)
    mu = e / 2.0 / (1.0 + nu)
    return lam, mu


@dataclass(frozen=True)
class IsotropicMaterial:
    """An isotropic, temperature-independent thermo-elastic material.

    Attributes
    ----------
    name:
        Human-readable identifier (also used as the key in material maps).
    young_modulus:
        Young's modulus ``E`` in MPa.
    poisson_ratio:
        Poisson's ratio ``nu``.
    cte:
        Coefficient of thermal expansion ``alpha`` in 1/degC.
    """

    name: str
    young_modulus: float
    poisson_ratio: float
    cte: float

    def __post_init__(self) -> None:
        check_positive("young_modulus", self.young_modulus)
        check_in_range("poisson_ratio", self.poisson_ratio, -1.0, 0.5, inclusive=False)
        check_non_negative("cte", self.cte)

    @property
    def lame_lambda(self) -> float:
        """First Lamé parameter ``lambda``."""
        return lame_parameters(self.young_modulus, self.poisson_ratio)[0]

    @property
    def lame_mu(self) -> float:
        """Shear modulus ``mu`` (second Lamé parameter)."""
        return lame_parameters(self.young_modulus, self.poisson_ratio)[1]

    @property
    def bulk_modulus(self) -> float:
        """Bulk modulus ``K = lambda + 2/3 mu``."""
        lam, mu = lame_parameters(self.young_modulus, self.poisson_ratio)
        return lam + 2.0 * mu / 3.0

    def elasticity_matrix(self) -> np.ndarray:
        """Return the 6x6 isotropic elasticity matrix ``D`` in Voigt notation.

        Voigt ordering is ``(xx, yy, zz, yz, xz, xy)`` with engineering shear
        strains, so ``sigma = D @ (strain - thermal_strain)``.
        """
        lam, mu = lame_parameters(self.young_modulus, self.poisson_ratio)
        d = np.zeros((6, 6), dtype=float)
        d[:3, :3] = lam
        d[0, 0] = d[1, 1] = d[2, 2] = lam + 2.0 * mu
        d[3, 3] = d[4, 4] = d[5, 5] = mu
        return d

    def thermal_strain(self, delta_t: float) -> np.ndarray:
        """Isotropic thermal strain vector for a temperature change ``delta_t``.

        Returns the Voigt strain ``alpha * delta_t * [1, 1, 1, 0, 0, 0]``.
        """
        eps = np.zeros(6, dtype=float)
        eps[:3] = self.cte * float(delta_t)
        return eps

    def thermal_stress_coefficient(self) -> float:
        """Return ``alpha * (3*lambda + 2*mu)``, the hydrostatic thermal stress per degC."""
        lam, mu = lame_parameters(self.young_modulus, self.poisson_ratio)
        return self.cte * (3.0 * lam + 2.0 * mu)

    def with_name(self, name: str) -> "IsotropicMaterial":
        """Return a copy of this material under a different name."""
        return IsotropicMaterial(
            name=name,
            young_modulus=self.young_modulus,
            poisson_ratio=self.poisson_ratio,
            cte=self.cte,
        )


__all__ = ["IsotropicMaterial", "lame_parameters"]
