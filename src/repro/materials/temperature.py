"""Thermal load definitions.

The thermal stress problem is driven by the uniform temperature difference
``delta_t`` between the stress-free fabrication temperature (annealing /
reflow, ~275 degC) and the operating/room temperature (~25 degC).  The paper
uses ``delta_t = -250`` degC for all experiments; this module keeps the two
temperatures explicit so that examples read like the physical scenario.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ThermalLoad:
    """Uniform thermal load between a reference and a target temperature.

    Attributes
    ----------
    reference_temperature:
        Stress-free temperature in degC (e.g. the annealing temperature).
    target_temperature:
        Temperature at which the stress is evaluated, in degC.
    """

    reference_temperature: float = 275.0
    target_temperature: float = 25.0

    @property
    def delta_t(self) -> float:
        """Temperature change ``target - reference`` (negative for cool-down)."""
        return float(self.target_temperature - self.reference_temperature)

    @classmethod
    def from_delta(cls, delta_t: float, reference_temperature: float = 275.0) -> "ThermalLoad":
        """Create a load directly from a temperature difference."""
        return cls(
            reference_temperature=reference_temperature,
            target_temperature=reference_temperature + float(delta_t),
        )

    @classmethod
    def paper_default(cls) -> "ThermalLoad":
        """The paper's fabrication cool-down: 275 degC -> 25 degC (delta_t = -250)."""
        return cls(reference_temperature=275.0, target_temperature=25.0)

    def scaled(self, factor: float) -> "ThermalLoad":
        """Return a load with the temperature difference scaled by ``factor``."""
        return ThermalLoad.from_delta(self.delta_t * float(factor),
                                      self.reference_temperature)


__all__ = ["ThermalLoad"]
