"""Default material library for TSV / 2.5D package simulations.

The values follow the ones commonly used in the TSV thermal-stress literature
the paper builds on (Jung et al. DAC'12, Li & Pan DAC'13): copper vias in a
silicon substrate with a thin SiO2 dielectric liner, plus the package-level
materials needed for the chiplet sub-modeling scenario (organic substrate,
underfill, solder).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.materials.material import IsotropicMaterial
from repro.utils.units import GPA

#: Canonical role names used by the meshers to tag elements.
ROLE_SILICON = "silicon"
ROLE_COPPER = "copper"
ROLE_LINER = "liner"
ROLE_SUBSTRATE = "substrate"
ROLE_UNDERFILL = "underfill"
ROLE_SOLDER = "solder"


def _default_materials() -> dict[str, IsotropicMaterial]:
    """Build the default material set (E in MPa, CTE in 1/degC)."""
    return {
        ROLE_SILICON: IsotropicMaterial(
            name=ROLE_SILICON,
            young_modulus=130.0 * GPA,
            poisson_ratio=0.28,
            cte=2.3e-6,
        ),
        ROLE_COPPER: IsotropicMaterial(
            name=ROLE_COPPER,
            young_modulus=110.0 * GPA,
            poisson_ratio=0.35,
            cte=17.0e-6,
        ),
        ROLE_LINER: IsotropicMaterial(
            name=ROLE_LINER,
            young_modulus=71.0 * GPA,
            poisson_ratio=0.16,
            cte=0.5e-6,
        ),
        ROLE_SUBSTRATE: IsotropicMaterial(
            name=ROLE_SUBSTRATE,
            young_modulus=26.0 * GPA,
            poisson_ratio=0.39,
            cte=15.0e-6,
        ),
        ROLE_UNDERFILL: IsotropicMaterial(
            name=ROLE_UNDERFILL,
            young_modulus=6.0 * GPA,
            poisson_ratio=0.35,
            cte=30.0e-6,
        ),
        ROLE_SOLDER: IsotropicMaterial(
            name=ROLE_SOLDER,
            young_modulus=41.0 * GPA,
            poisson_ratio=0.35,
            cte=21.0e-6,
        ),
    }


@dataclass
class MaterialLibrary:
    """A named collection of :class:`IsotropicMaterial` objects.

    The library maps *roles* (silicon, copper, liner, ...) to materials.  The
    mesher tags every element with a role, and the FEM kernel looks the role
    up here when computing element matrices, so swapping a material (e.g. a
    polymer liner instead of SiO2) is a one-line change.
    """

    materials: dict[str, IsotropicMaterial] = field(default_factory=_default_materials)

    @classmethod
    def default(cls) -> "MaterialLibrary":
        """Return the default Cu/Si/SiO2 + package material library."""
        return cls()

    def __contains__(self, role: str) -> bool:
        return role in self.materials

    def __getitem__(self, role: str) -> IsotropicMaterial:
        try:
            return self.materials[role]
        except KeyError as exc:
            raise KeyError(
                f"material role {role!r} not found; available: {sorted(self.materials)}"
            ) from exc

    def get(self, role: str) -> IsotropicMaterial:
        """Return the material registered under ``role``."""
        return self[role]

    def add(self, role: str, material: IsotropicMaterial) -> None:
        """Register (or replace) the material for ``role``."""
        self.materials[role] = material

    def roles(self) -> list[str]:
        """Return the sorted list of registered roles."""
        return sorted(self.materials)

    def subset(self, roles: list[str]) -> "MaterialLibrary":
        """Return a library restricted to ``roles`` (missing roles raise)."""
        return MaterialLibrary({role: self[role] for role in roles})

    def fingerprint(self) -> str:
        """Stable content hash over all roles and their elastic constants.

        Reduced order models bake the material constants into their element
        matrices, so a ROM is only valid for the exact library it was built
        with.  The fingerprint is stored in persisted ROM bundles and in the
        :class:`~repro.rom.cache.ROMCache` key; it changes whenever a role is
        added, removed or any of ``(E, nu, alpha)`` changes.
        """
        payload = {
            role: [
                material.name,
                material.young_modulus,
                material.poisson_ratio,
                material.cte,
            ]
            for role, material in self.materials.items()
        }
        encoded = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha256(encoded).hexdigest()[:20]


@dataclass(frozen=True)
class MaterialAssignment:
    """Mapping from integer element tags to material roles.

    Meshes store a compact integer tag per element; this class records what
    each tag means so that meshes stay lightweight while the FEM kernel can
    resolve tags to materials.
    """

    tag_to_role: tuple[tuple[int, str], ...]

    @classmethod
    def from_dict(cls, mapping: dict[int, str]) -> "MaterialAssignment":
        """Build an assignment from a ``{tag: role}`` dictionary."""
        return cls(tuple(sorted(mapping.items())))

    def as_dict(self) -> dict[int, str]:
        """Return the assignment as a ``{tag: role}`` dictionary."""
        return dict(self.tag_to_role)

    def role_of(self, tag: int) -> str:
        """Return the role for an element tag."""
        mapping = self.as_dict()
        if tag not in mapping:
            raise KeyError(f"element tag {tag} has no registered material role")
        return mapping[tag]


__all__ = [
    "MaterialLibrary",
    "MaterialAssignment",
    "ROLE_SILICON",
    "ROLE_COPPER",
    "ROLE_LINER",
    "ROLE_SUBSTRATE",
    "ROLE_UNDERFILL",
    "ROLE_SOLDER",
]
