"""Baseline solvers: reference full FEM, linear superposition, coarse chiplet model."""

from repro.baselines.full_fem import FullFEMReference, ReferenceSolution
from repro.baselines.linear_superposition import (
    LinearSuperpositionMethod,
    SuperpositionEstimate,
)
from repro.baselines.coarse_model import (
    CoarseChipletModel,
    CoarsePackageSolution,
    ROLE_VOID,
    VOID_MATERIAL,
)

__all__ = [
    "FullFEMReference",
    "ReferenceSolution",
    "LinearSuperpositionMethod",
    "SuperpositionEstimate",
    "CoarseChipletModel",
    "CoarsePackageSolution",
    "ROLE_VOID",
    "VOID_MATERIAL",
]
