"""Reference full-FEM solver of TSV arrays.

This plays the role ANSYS plays in the paper: the whole array (including any
dummy padding blocks) is meshed with the fine unit-block mesh and solved as
one monolithic thermo-elastic FEM problem.  Its solution is the ground truth
against which both MORE-Stress and the linear superposition method are
scored, and its runtime/memory are the "full FEM" columns of Tables 1 and 2.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.fem.assembly import assemble_stiffness, assemble_thermal_load
from repro.fem.boundary import DirichletBC, reduce_system
from repro.fem.elasticity import material_arrays_for_mesh
from repro.fem.fields import FieldEvaluator
from repro.fem.sampling import PlaneSampler
from repro.fem.solver import LinearSolver, SolveStats, SolverOptions
from repro.geometry.array_layout import TSVArrayLayout
from repro.materials.library import MaterialLibrary
from repro.mesh.array_mesher import mesh_tsv_array
from repro.mesh.resolution import MeshResolution
from repro.mesh.structured import StructuredHexMesh
from repro.utils.logging import get_logger
from repro.utils.memory import PeakMemoryTracker
from repro.utils.timing import StageTimings
from repro.utils.validation import ValidationError

_logger = get_logger("baselines.full_fem")


@dataclass
class ReferenceSolution:
    """Full-FEM solution of an array plus post-processing helpers."""

    layout: TSVArrayLayout
    mesh: StructuredHexMesh
    materials: MaterialLibrary
    displacement: np.ndarray
    delta_t: float
    timings: StageTimings
    peak_memory_bytes: int
    solver_stats: SolveStats | None = None
    _evaluator: FieldEvaluator | None = field(default=None, repr=False)

    @property
    def evaluator(self) -> FieldEvaluator:
        """Field evaluator bound to this solution's mesh."""
        if self._evaluator is None:
            self._evaluator = FieldEvaluator(self.mesh, self.materials)
        return self._evaluator

    @property
    def num_dofs(self) -> int:
        """Number of displacement DoFs of the fine array mesh."""
        return self.mesh.num_dofs

    def von_mises_midplane(
        self, points_per_block: int = 30, restrict_to_tsv_region: bool = True
    ) -> np.ndarray:
        """Gridded mid-plane von Mises stress, shape ``(rows, cols, p, p)``."""
        sampler = PlaneSampler(
            self.layout,
            points_per_block=points_per_block,
            restrict_to_tsv_region=restrict_to_tsv_region,
        )
        return sampler.von_mises_blocks(self.evaluator, self.displacement, self.delta_t)

    def von_mises_midplane_flat(
        self, points_per_block: int = 30, restrict_to_tsv_region: bool = True
    ) -> np.ndarray:
        """Flattened mid-plane von Mises stress (same ordering as the ROM)."""
        return self.von_mises_midplane(points_per_block, restrict_to_tsv_region).reshape(-1)

    def displacement_at(self, points: np.ndarray) -> np.ndarray:
        """Displacement vectors at arbitrary points of the array mesh."""
        return self.evaluator.displacement_at(points, self.displacement)

    def total_time(self) -> float:
        """Total wall-clock time of the reference solve."""
        return self.timings.total()


@dataclass
class FullFEMReference:
    """Monolithic fine-mesh FEM solver for whole TSV arrays.

    Parameters
    ----------
    materials:
        Material library.
    resolution:
        Unit-block mesh resolution (the array mesh tiles it).
    solver_options:
        Linear solver configuration.  ``"direct"`` is robust for the scaled
        benchmark sizes; ``"cg"`` trades time for memory on large arrays
        (mirroring the "iterative" solver setting the paper uses in ANSYS).
    """

    materials: MaterialLibrary
    resolution: MeshResolution | str = "coarse"
    solver_options: SolverOptions = field(default_factory=lambda: SolverOptions(method="direct"))

    def __post_init__(self) -> None:
        self.resolution = MeshResolution.from_spec(self.resolution)

    def solve_array(
        self,
        layout: TSVArrayLayout,
        delta_t: float,
        boundary: str = "clamped",
        displacement_field=None,
    ) -> ReferenceSolution:
        """Solve a TSV array with the fine mesh.

        Parameters
        ----------
        layout:
            The array layout (dummy blocks are meshed as pure silicon).
        delta_t:
            Thermal load in degC.
        boundary:
            ``"clamped"`` clamps the top and bottom surfaces (first paper
            scenario); ``"submodel"`` prescribes ``displacement_field`` on all
            outer boundary nodes (sub-modeling ground truth).
        displacement_field:
            Callable mapping global coordinates to displacements, required
            for ``boundary="submodel"``.
        """
        timings = StageTimings()
        with PeakMemoryTracker() as tracker:
            with timings.measure("mesh"):
                mesh = mesh_tsv_array(layout, self.resolution)
                material_data = material_arrays_for_mesh(mesh, self.materials)
            with timings.measure("assembly"):
                stiffness = assemble_stiffness(mesh, self.materials, material_data)
                load = float(delta_t) * assemble_thermal_load(
                    mesh, self.materials, material_data
                )
            with timings.measure("boundary_conditions"):
                bc = self._boundary_condition(mesh, boundary, displacement_field)
                reduced_matrix, reduced_rhs, split = reduce_system(stiffness, load, bc)
            solver = LinearSolver(self.solver_options)
            start = time.perf_counter()
            reduced_solution = solver.solve(reduced_matrix, reduced_rhs)
            timings.add("solve", time.perf_counter() - start)
            displacement = split.expand(reduced_solution, bc.values)

        _logger.info(
            "full FEM: %dx%d blocks, %d dofs, solve=%.2fs",
            layout.rows,
            layout.cols,
            mesh.num_dofs,
            timings.get("solve"),
        )
        return ReferenceSolution(
            layout=layout,
            mesh=mesh,
            materials=self.materials,
            displacement=displacement,
            delta_t=float(delta_t),
            timings=timings,
            peak_memory_bytes=tracker.peak_bytes,
            solver_stats=solver.last_stats,
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _boundary_condition(
        self, mesh: StructuredHexMesh, boundary: str, displacement_field
    ) -> DirichletBC:
        if boundary == "clamped":
            nodes = np.unique(
                np.concatenate(
                    [mesh.boundary_node_ids("z-"), mesh.boundary_node_ids("z+")]
                )
            )
            return DirichletBC.from_nodes(nodes)
        if boundary == "submodel":
            if displacement_field is None:
                raise ValidationError(
                    "displacement_field is required for the 'submodel' boundary"
                )
            nodes = mesh.all_boundary_node_ids()
            coords = mesh.node_coordinates()[nodes]
            values = np.asarray(displacement_field(coords), dtype=float)
            if values.shape != coords.shape:
                raise ValidationError(
                    f"displacement field returned shape {values.shape}, "
                    f"expected {coords.shape}"
                )
            return DirichletBC.from_nodes(nodes, values)
        raise ValidationError("boundary must be 'clamped' or 'submodel'")


__all__ = ["FullFEMReference", "ReferenceSolution"]
