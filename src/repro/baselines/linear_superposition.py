"""The linear superposition baseline (paper §2, references [3, 11]).

The method estimates the stress of a TSV array as

.. math::

    \\sigma(r) \\approx \\sigma_{bg}(r) + \\sum_{i} \\Delta\\sigma(r - r_i)

where ``sigma_bg`` is the background stress of the structure *without* TSVs
and ``delta sigma`` is the stress perturbation caused by one isolated TSV,
obtained once from a high-fidelity single-TSV FEM simulation.  Superposing
stress tensors is exact for point-wise linear elasticity in a homogeneous
medium, but it ignores (a) the coupling between adjacent TSVs — each TSV is a
material inhomogeneity that perturbs its neighbours' fields — and (b) local
variations of the background stress.  Both shortcomings grow at small pitch
and near package discontinuities, which is exactly what Tables 1 and 2 of the
paper show and what this implementation reproduces.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.fem.assembly import assemble_stiffness, assemble_thermal_load
from repro.fem.boundary import DirichletBC, reduce_system
from repro.fem.elasticity import material_arrays_for_mesh
from repro.fem.fields import FieldEvaluator, von_mises
from repro.fem.sampling import midplane_grid_points
from repro.fem.solver import LinearSolver, SolverOptions
from repro.geometry.array_layout import BlockKind, TSVArrayLayout
from repro.geometry.tsv import TSVGeometry
from repro.materials.library import MaterialLibrary
from repro.mesh.array_mesher import mesh_tsv_array
from repro.mesh.resolution import MeshResolution
from repro.utils.logging import get_logger
from repro.utils.memory import PeakMemoryTracker
from repro.utils.validation import ValidationError, check_positive_int

_logger = get_logger("baselines.linear_superposition")


@dataclass
class SuperpositionEstimate:
    """Result of a linear superposition estimate on the mid-plane grid."""

    layout: TSVArrayLayout
    von_mises_values: np.ndarray
    sampled_block_shape: tuple[int, int]
    points_per_block: int
    delta_t: float
    estimation_seconds: float
    peak_memory_bytes: int

    def von_mises_midplane(self) -> np.ndarray:
        """Gridded von Mises stress, shape ``(rows, cols, p, p)``."""
        rows, cols = self.sampled_block_shape
        p = self.points_per_block
        return self.von_mises_values.reshape(rows, cols, p, p)

    def von_mises_midplane_flat(self) -> np.ndarray:
        """Flattened von Mises stress (same ordering as ROM and reference)."""
        return self.von_mises_values


@dataclass
class _SingleTSVInfluence:
    """Pre-computed single-TSV stress perturbation data."""

    window_center: np.ndarray
    window_halfwidth: float
    tsv_evaluator: FieldEvaluator
    tsv_displacement: np.ndarray
    background_evaluator: FieldEvaluator
    background_displacement: np.ndarray
    background_center_stress: np.ndarray
    mid_z: float

    def delta_stress(self, offsets: np.ndarray) -> np.ndarray:
        """Stress perturbation for in-plane offsets from the TSV axis.

        Offsets outside the influence window contribute zero.
        """
        offsets = np.atleast_2d(np.asarray(offsets, dtype=float))
        result = np.zeros((offsets.shape[0], 6), dtype=float)
        inside = (np.abs(offsets[:, 0]) <= self.window_halfwidth) & (
            np.abs(offsets[:, 1]) <= self.window_halfwidth
        )
        if not np.any(inside):
            return result
        points = np.column_stack(
            [
                self.window_center[0] + offsets[inside, 0],
                self.window_center[1] + offsets[inside, 1],
                np.full(int(inside.sum()), self.mid_z),
            ]
        )
        # delta_t = 1 is used for both solves; the caller scales by delta_t.
        stress_with_tsv = self.tsv_evaluator.stress_at(points, self.tsv_displacement, 1.0)
        stress_without = self.background_evaluator.stress_at(
            points, self.background_displacement, 1.0
        )
        result[inside] = stress_with_tsv - stress_without
        return result


@dataclass
class LinearSuperpositionMethod:
    """Linear superposition estimator for TSV array thermal stress.

    Parameters
    ----------
    materials:
        Material library.
    resolution:
        Mesh resolution of the one-shot single-TSV simulation.
    window_blocks:
        Size (in unit blocks, odd) of the single-TSV simulation domain.  It
        also bounds the influence window of one TSV during superposition.
    solver_options:
        Linear solver used for the one-shot single-TSV FEM solves.
    """

    materials: MaterialLibrary
    resolution: MeshResolution | str = "coarse"
    window_blocks: int = 3
    solver_options: SolverOptions = field(default_factory=lambda: SolverOptions(method="direct"))
    _influence: dict[tuple, _SingleTSVInfluence] = field(default_factory=dict, repr=False)
    _preparation_seconds: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        self.resolution = MeshResolution.from_spec(self.resolution)
        check_positive_int("window_blocks", self.window_blocks)
        if self.window_blocks % 2 == 0:
            raise ValidationError("window_blocks must be odd so one TSV sits centred")

    # ------------------------------------------------------------------ #
    # one-shot single-TSV stage
    # ------------------------------------------------------------------ #
    def prepare(self, tsv: TSVGeometry) -> _SingleTSVInfluence:
        """Run (or reuse) the one-shot single-TSV simulations for a TSV geometry."""
        key = (tsv.diameter, tsv.height, tsv.liner_thickness, tsv.pitch)
        if key in self._influence:
            return self._influence[key]
        start = time.perf_counter()

        window = self.window_blocks
        center_index = window // 2
        single_layout = TSVArrayLayout.with_dummy_ring(
            tsv, rows=1, cols=1, ring_width=center_index
        )
        background_layout = TSVArrayLayout.with_dummy_ring(
            tsv, rows=1, cols=1, ring_width=center_index
        )
        background_layout.kinds[...] = BlockKind.DUMMY

        tsv_solution = self._solve_window(single_layout)
        background_solution = self._solve_window(background_layout)

        half_extent = 0.5 * window * tsv.pitch
        window_center = np.array([half_extent, half_extent])
        center_point = np.array([[half_extent, half_extent, 0.5 * tsv.height]])
        background_center_stress = background_solution[1].stress_at(
            center_point, background_solution[0], 1.0
        )[0]

        influence = _SingleTSVInfluence(
            window_center=window_center,
            window_halfwidth=half_extent,
            tsv_evaluator=tsv_solution[1],
            tsv_displacement=tsv_solution[0],
            background_evaluator=background_solution[1],
            background_displacement=background_solution[0],
            background_center_stress=background_center_stress,
            mid_z=0.5 * tsv.height,
        )
        self._influence[key] = influence
        self._preparation_seconds += time.perf_counter() - start
        _logger.info(
            "linear superposition one-shot stage finished in %.2fs",
            self._preparation_seconds,
        )
        return influence

    @property
    def preparation_seconds(self) -> float:
        """Accumulated wall-clock time of the one-shot single-TSV stage."""
        return self._preparation_seconds

    def _solve_window(self, layout: TSVArrayLayout) -> tuple[np.ndarray, FieldEvaluator]:
        """Solve one window problem (clamped top/bottom, delta_t = 1)."""
        mesh = mesh_tsv_array(layout, self.resolution)
        material_data = material_arrays_for_mesh(mesh, self.materials)
        stiffness = assemble_stiffness(mesh, self.materials, material_data)
        load = assemble_thermal_load(mesh, self.materials, material_data)
        clamped = np.unique(
            np.concatenate([mesh.boundary_node_ids("z-"), mesh.boundary_node_ids("z+")])
        )
        bc = DirichletBC.from_nodes(clamped)
        reduced_matrix, reduced_rhs, split = reduce_system(stiffness, load, bc)
        solver = LinearSolver(self.solver_options)
        displacement = split.expand(solver.solve(reduced_matrix, reduced_rhs), bc.values)
        return displacement, FieldEvaluator(mesh, self.materials, material_data)

    # ------------------------------------------------------------------ #
    # estimation
    # ------------------------------------------------------------------ #
    def estimate(
        self,
        layout: TSVArrayLayout,
        delta_t: float,
        points_per_block: int = 30,
        background_stress_field=None,
        restrict_to_tsv_region: bool = True,
    ) -> SuperpositionEstimate:
        """Estimate the mid-plane von Mises stress of an array by superposition.

        Parameters
        ----------
        layout:
            The TSV array layout (dummy blocks contribute no perturbation).
        delta_t:
            Thermal load in degC.
        points_per_block:
            Mid-plane grid resolution per block.
        background_stress_field:
            Optional callable mapping ``(m, 3)`` global points to ``(m, 6)``
            Voigt background stresses *per unit thermal load*; defaults to the
            uniform clamped-wafer background extracted from the one-shot
            single-TSV stage (first paper scenario).  For sub-modeling, pass
            the coarse package model's stress interpolator (second scenario).
        restrict_to_tsv_region:
            Sample only the bounding box of TSV blocks (the paper's metric).
        """
        influence = self.prepare(layout.tsv)
        start = time.perf_counter()
        with PeakMemoryTracker() as tracker:
            rows_cols = None
            if restrict_to_tsv_region:
                rows_cols = layout.tsv_region()
            rows_slice, cols_slice = rows_cols if rows_cols is not None else (
                slice(0, layout.rows),
                slice(0, layout.cols),
            )
            points = midplane_grid_points(
                layout, points_per_block, rows=rows_slice, cols=cols_slice
            )

            if background_stress_field is None:
                stress = np.tile(influence.background_center_stress, (points.shape[0], 1))
            else:
                stress = np.asarray(background_stress_field(points), dtype=float)
                if stress.shape != (points.shape[0], 6):
                    raise ValidationError(
                        f"background stress field returned shape {stress.shape}, "
                        f"expected {(points.shape[0], 6)}"
                    )
            stress = stress.copy()

            for center in layout.tsv_centers():
                offsets = points[:, :2] - center[None, :]
                stress += influence.delta_stress(offsets)

            stress *= float(delta_t)
            values = von_mises(stress)
        elapsed = time.perf_counter() - start

        rows = len(range(*rows_slice.indices(layout.rows)))
        cols = len(range(*cols_slice.indices(layout.cols)))
        return SuperpositionEstimate(
            layout=layout,
            von_mises_values=values,
            sampled_block_shape=(rows, cols),
            points_per_block=points_per_block,
            delta_t=float(delta_t),
            estimation_seconds=elapsed,
            peak_memory_bytes=tracker.peak_bytes,
        )


__all__ = ["LinearSuperpositionMethod", "SuperpositionEstimate"]
