"""Coarse package-level FEM model of a chiplet (paper §4.4 and §5.2).

For the sub-modeling scenario the paper first develops a *coarse* model of the
whole chiplet (substrate + interposer + die) in ANSYS, solves the package
warpage problem, and then applies the coarse displacements to the sub-model
boundary.  This module provides that coarse model with the package geometry of
:class:`~repro.geometry.package.ChipletPackage`.

The coarse mesh is a single structured grid over the package bounding box.
Regions outside the stepped stack (e.g. above the substrate but outside the
interposer footprint) are filled with an extremely compliant "void" material
with zero CTE — the standard ersatz-material trick — so the stepped geometry
is represented without unstructured meshing.  The rigid body motion is removed
with a 3-2-1 point constraint at the bottom face, leaving the package free to
warp, which produces the smooth-but-non-uniform background stress the second
scenario needs (largest gradients near the die corner and interposer corner).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.fem.assembly import assemble_stiffness, assemble_thermal_load
from repro.fem.boundary import DirichletBC, reduce_system
from repro.fem.elasticity import material_arrays_for_mesh
from repro.fem.fields import FieldEvaluator
from repro.fem.solver import LinearSolver, SolverOptions
from repro.geometry.package import ChipletPackage
from repro.materials.library import MaterialLibrary
from repro.materials.material import IsotropicMaterial
from repro.mesh.grading import uniform_interval
from repro.mesh.structured import StructuredHexMesh
from repro.utils.logging import get_logger
from repro.utils.timing import StageTimings
from repro.utils.validation import check_positive_int

_logger = get_logger("baselines.coarse_model")

#: Role name of the ersatz material filling space outside the package stack.
ROLE_VOID = "void"

#: Extremely compliant, zero-CTE filler for regions outside the stepped stack.
VOID_MATERIAL = IsotropicMaterial(
    name=ROLE_VOID, young_modulus=1.0e-3, poisson_ratio=0.3, cte=0.0
)


@dataclass
class CoarsePackageSolution:
    """Solved coarse package model with displacement/stress interpolators."""

    package: ChipletPackage
    mesh: StructuredHexMesh
    materials: MaterialLibrary
    displacement: np.ndarray
    delta_t: float
    timings: StageTimings
    _evaluator: FieldEvaluator | None = field(default=None, repr=False)

    @property
    def evaluator(self) -> FieldEvaluator:
        """Field evaluator bound to the coarse mesh."""
        if self._evaluator is None:
            self._evaluator = FieldEvaluator(self.mesh, self.materials)
        return self._evaluator

    def displacement_field(self):
        """Return a callable mapping global points to coarse displacements.

        The callable has the signature expected by the sub-modeling boundary
        condition builders of both the ROM global stage and the reference
        full-FEM solver.
        """

        def interpolate(points: np.ndarray) -> np.ndarray:
            return self.evaluator.displacement_at(points, self.displacement)

        return interpolate

    def stress_field_per_unit_load(self):
        """Return a callable mapping points to Voigt stress per unit ``delta_t``.

        Used as the background stress of the linear superposition baseline in
        the sub-modeling scenario.
        """
        scale = 1.0 / self.delta_t if self.delta_t != 0.0 else 0.0

        def interpolate(points: np.ndarray) -> np.ndarray:
            stress = self.evaluator.stress_at(points, self.displacement, self.delta_t)
            return stress * scale

        return interpolate

    def warpage(self) -> float:
        """Peak-to-valley vertical deflection of the package top surface."""
        top_nodes = self.mesh.boundary_node_ids("z+")
        uz = self.displacement.reshape(-1, 3)[top_nodes, 2]
        return float(uz.max() - uz.min())


@dataclass
class CoarseChipletModel:
    """Coarse FEM model of a chiplet package.

    Parameters
    ----------
    package:
        The package geometry.
    materials:
        Material library (a compliant zero-CTE void material is added
        automatically for the space outside the stepped stack).
    inplane_cells:
        Number of coarse cells across the substrate in x and y.
    cells_per_layer:
        Number of coarse cells through the thickness of each layer, keyed by
        layer name; unspecified layers default to 2.
    solver_options:
        Linear solver options for the coarse solve.
    """

    package: ChipletPackage
    materials: MaterialLibrary = field(default_factory=MaterialLibrary.default)
    inplane_cells: int = 20
    cells_per_layer: dict[str, int] = field(default_factory=dict)
    solver_options: SolverOptions = field(default_factory=lambda: SolverOptions(method="direct"))

    def __post_init__(self) -> None:
        check_positive_int("inplane_cells", self.inplane_cells)
        if ROLE_VOID not in self.materials:
            # Work on a copy: adding the void role to the caller's library
            # would leak a side effect into every other consumer of that
            # library (and change its material fingerprint).
            self.materials = MaterialLibrary(dict(self.materials.materials))
            self.materials.add(ROLE_VOID, VOID_MATERIAL)

    # ------------------------------------------------------------------ #
    # meshing
    # ------------------------------------------------------------------ #
    def build_mesh(self) -> StructuredHexMesh:
        """Build the coarse structured mesh of the package bounding box."""
        (xmin, xmax), (ymin, ymax), _ = self.package.bounding_box
        xs = uniform_interval(xmax - xmin, self.inplane_cells, start=xmin)
        ys = uniform_interval(ymax - ymin, self.inplane_cells, start=ymin)

        z_pieces = []
        z_cursor = None
        for layer in self.package.layers():
            cells = self.cells_per_layer.get(layer.name, 2)
            piece = uniform_interval(layer.thickness, cells, start=layer.z_range[0])
            if z_cursor is None:
                z_pieces.append(piece)
            else:
                z_pieces.append(piece[1:])
            z_cursor = layer.z_range[1]
        zs = np.concatenate(z_pieces)

        # Classify element centroids into layers (void outside the stack).
        cx = 0.5 * (xs[:-1] + xs[1:])
        cy = 0.5 * (ys[:-1] + ys[1:])
        cz = 0.5 * (zs[:-1] + zs[1:])
        grid_x, grid_y, grid_z = np.meshgrid(cx, cy, cz, indexing="ij")
        roles = self.package.material_role_at(grid_x, grid_y, grid_z)
        roles[roles == "void"] = ROLE_VOID

        role_names = sorted({str(role) for role in roles.ravel()})
        role_to_tag = {role: tag for tag, role in enumerate(role_names)}
        tags_grid = np.vectorize(lambda role: role_to_tag[str(role)])(roles)
        # Element ordering: x fastest, then y, then z.
        element_tags = tags_grid.transpose(2, 1, 0).ravel()
        tag_roles = {tag: role for role, tag in role_to_tag.items()}
        return StructuredHexMesh(
            xs=xs, ys=ys, zs=zs, element_tags=element_tags, tag_roles=tag_roles
        )

    # ------------------------------------------------------------------ #
    # solving
    # ------------------------------------------------------------------ #
    def solve(self, delta_t: float) -> CoarsePackageSolution:
        """Solve the coarse package warpage problem for a thermal load."""
        timings = StageTimings()
        with timings.measure("mesh"):
            mesh = self.build_mesh()
            material_data = material_arrays_for_mesh(mesh, self.materials)
        with timings.measure("assembly"):
            stiffness = assemble_stiffness(mesh, self.materials, material_data)
            load = float(delta_t) * assemble_thermal_load(mesh, self.materials, material_data)
        with timings.measure("boundary_conditions"):
            bc = self._rigid_body_constraints(mesh)
            reduced_matrix, reduced_rhs, split = reduce_system(stiffness, load, bc)
        solver = LinearSolver(self.solver_options)
        start = time.perf_counter()
        reduced_solution = solver.solve(reduced_matrix, reduced_rhs)
        timings.add("solve", time.perf_counter() - start)
        displacement = split.expand(reduced_solution, bc.values)
        _logger.info(
            "coarse package model: %d dofs, solve=%.2fs",
            mesh.num_dofs,
            timings.get("solve"),
        )
        return CoarsePackageSolution(
            package=self.package,
            mesh=mesh,
            materials=self.materials,
            displacement=displacement,
            delta_t=float(delta_t),
            timings=timings,
        )

    def _rigid_body_constraints(self, mesh: StructuredHexMesh) -> DirichletBC:
        """3-2-1 point constraints on the bottom face (free warpage)."""
        bottom = mesh.boundary_node_ids("z-")
        coords = mesh.node_coordinates()[bottom]
        center = coords[:, :2].mean(axis=0)

        def closest_to(target_xy: np.ndarray) -> int:
            distances = np.linalg.norm(coords[:, :2] - target_xy[None, :], axis=1)
            return int(bottom[int(np.argmin(distances))])

        (xmin, xmax), (ymin, ymax), _ = self.package.bounding_box
        node_a = closest_to(center)
        node_b = closest_to(np.array([xmax, center[1]]))
        node_c = closest_to(np.array([center[0], ymax]))

        dofs = np.array(
            [
                3 * node_a, 3 * node_a + 1, 3 * node_a + 2,  # fix x, y, z
                3 * node_b + 1, 3 * node_b + 2,              # fix y, z
                3 * node_c + 2,                              # fix z
            ],
            dtype=np.int64,
        )
        return DirichletBC.fixed(dofs)


__all__ = [
    "CoarseChipletModel",
    "CoarsePackageSolution",
    "ROLE_VOID",
    "VOID_MATERIAL",
]
