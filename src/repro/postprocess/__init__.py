"""Full-field post-processing: reconstruction, export and hotspot analytics.

The solver stack produces reduced solutions; this package turns them into the
artifacts downstream consumers need:

* :func:`reconstruct_array_field` — streamed, memory-bounded reconstruction of
  the whole-array displacement / Voigt-stress / von Mises field on a
  structured per-block sample grid (one sampler per block *kind*, one block's
  fine field in memory at a time),
* :class:`ArrayField` — the resulting structured grid, with lossless ``.npz``
  persistence and a legacy ``.vtk`` export readable by ParaView/VisIt,
* :func:`analyze_hotspots` — per-TSV peak von Mises stress, its 3-D location,
  per-block keep-out radii and an array-level top-K hotspot table.
"""

from repro.postprocess.fields import ArrayField, reconstruct_array_field
from repro.postprocess.hotspots import HotspotReport, TSVHotspot, analyze_hotspots
from repro.postprocess.vtk import read_vtk_rectilinear, write_vtk_rectilinear

__all__ = [
    "ArrayField",
    "reconstruct_array_field",
    "HotspotReport",
    "TSVHotspot",
    "analyze_hotspots",
    "read_vtk_rectilinear",
    "write_vtk_rectilinear",
]
