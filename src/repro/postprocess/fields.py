"""Streamed whole-array field reconstruction on a structured sample grid.

The reduced solution stores one small DoF vector per block; the full
displacement/stress field only ever exists block by block (paper Eq. 15).
:func:`reconstruct_array_field` exploits exactly that: the expensive sampler
precomputation (point location, shape-function gradients, material lookup)
happens once per block *kind*, blocks are evaluated independently (fanned out
with :func:`~repro.utils.parallel.parallel_map`) and each block writes its
values straight into the preallocated output grid.  Peak memory is therefore
the output grid plus O(one block's fine field) per worker — independent of
the array size, which is what makes 100x100-array exports tractable.  A
sharded solve (:mod:`repro.shard`) streams through this path unchanged: the
Schwarz iteration produces the same global DoF vector as the monolithic
solve, so reconstruction never sees shards — only per-block DoFs.

The resulting :class:`ArrayField` is a structured (rectilinear) point grid:
1-D global coordinate arrays ``x``/``y``/``z`` and point data of shape
``(nx, ny, nz, ...)``.  Its mid-plane slice reproduces the paper's error
metric samples (:meth:`GlobalSolution.von_mises_midplane`) bit for bit when
``z_planes`` is odd.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.backend import backend_manager as bm
from repro.fem.fields import von_mises
from repro.geometry.array_layout import BlockKind
from repro.rom.global_stage import GlobalSolution
from repro.rom.reconstruction import (
    BlockFieldSampler,
    block_volume_points,
    cell_centred_offsets,
)
from repro.utils.parallel import parallel_map
from repro.utils.serialization import load_npz_bundle, save_npz_bundle
from repro.utils.validation import ValidationError, check_positive_int

#: Version of the persisted ArrayField bundle layout.
FIELD_SCHEMA_VERSION = 1

#: Voigt component names, in storage order.
VOIGT_COMPONENTS = ("xx", "yy", "zz", "yz", "xz", "xy")


@dataclass
class ArrayField:
    """Whole-array displacement / stress / von Mises field on a structured grid.

    Attributes
    ----------
    x, y, z:
        1-D global point coordinates; the grid is their tensor product.
        ``x`` spans block columns, ``y`` block rows, ``z`` the TSV height.
    displacement:
        Displacement vectors, shape ``(nx, ny, nz, 3)``.
    stress:
        Voigt stress ``(sxx, syy, szz, syz, sxz, sxy)``, shape
        ``(nx, ny, nz, 6)``.
    von_mises:
        Von Mises equivalent stress, shape ``(nx, ny, nz)``.
    tsv_mask:
        Which sampled blocks contain a TSV, shape ``(block_rows, block_cols)``.
    delta_t:
        Thermal load the field corresponds to.
    points_per_block:
        In-plane sample points per block and axis.
    pitch:
        Block pitch (um), kept for block-centre geometry (hotspot radii).
    """

    x: np.ndarray
    y: np.ndarray
    z: np.ndarray
    displacement: np.ndarray
    stress: np.ndarray
    von_mises: np.ndarray
    tsv_mask: np.ndarray
    delta_t: float
    points_per_block: int
    pitch: float

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=float).ravel()
        self.y = np.asarray(self.y, dtype=float).ravel()
        self.z = np.asarray(self.z, dtype=float).ravel()
        self.tsv_mask = np.asarray(self.tsv_mask, dtype=bool)
        if self.tsv_mask.ndim != 2:
            raise ValidationError(
                f"tsv_mask must be 2-D (block rows x cols), got shape {self.tsv_mask.shape}"
            )
        check_positive_int("points_per_block", self.points_per_block)
        shape = self.shape
        if self.x.size != self.block_cols * self.points_per_block:
            raise ValidationError(
                f"x has {self.x.size} points, expected "
                f"{self.block_cols} blocks x {self.points_per_block} points"
            )
        if self.y.size != self.block_rows * self.points_per_block:
            raise ValidationError(
                f"y has {self.y.size} points, expected "
                f"{self.block_rows} blocks x {self.points_per_block} points"
            )
        for name, array, expected in (
            ("displacement", self.displacement, shape + (3,)),
            ("stress", self.stress, shape + (6,)),
            ("von_mises", self.von_mises, shape),
        ):
            array = np.asarray(array, dtype=float)
            if array.shape != expected:
                raise ValidationError(
                    f"{name} has shape {array.shape}, expected {expected}"
                )
            setattr(self, name, array)

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, int, int]:
        """Point-grid shape ``(nx, ny, nz)``."""
        return (self.x.size, self.y.size, self.z.size)

    @property
    def num_points(self) -> int:
        """Total number of sample points."""
        nx, ny, nz = self.shape
        return nx * ny * nz

    @property
    def z_planes(self) -> int:
        """Number of sampled planes through the TSV height."""
        return self.z.size

    @property
    def block_rows(self) -> int:
        """Number of sampled block rows."""
        return int(self.tsv_mask.shape[0])

    @property
    def block_cols(self) -> int:
        """Number of sampled block columns."""
        return int(self.tsv_mask.shape[1])

    def block_values(self, array: np.ndarray, row: int, col: int) -> np.ndarray:
        """Slice one block's values out of a point-data array."""
        p = self.points_per_block
        return array[col * p : (col + 1) * p, row * p : (row + 1) * p]

    def block_center(self, row: int, col: int) -> tuple[float, float]:
        """In-plane centre of a sampled block (the TSV axis for TSV blocks)."""
        p = self.points_per_block
        cx = 0.5 * (self.x[col * p] + self.x[(col + 1) * p - 1])
        cy = 0.5 * (self.y[row * p] + self.y[(row + 1) * p - 1])
        return (float(cx), float(cy))

    # ------------------------------------------------------------------ #
    # mid-plane slicing (the paper's error-metric samples)
    # ------------------------------------------------------------------ #
    @property
    def midplane_index(self) -> int:
        """Index of the half-height z plane.

        Only exists for an odd number of cell-centred ``z_planes``; raises
        :class:`ValidationError` otherwise.
        """
        if self.z.size % 2 == 0:
            raise ValidationError(
                f"the field has {self.z.size} z planes (even); the half-height "
                "plane is only sampled for an odd number of planes"
            )
        return self.z.size // 2

    def midplane_von_mises_blocks(self) -> np.ndarray:
        """Mid-plane von Mises stress as ``(rows, cols, p, p)`` blocks.

        Identical (bit for bit) to
        :meth:`~repro.rom.global_stage.GlobalSolution.von_mises_midplane`
        over the same block region.
        """
        p = self.points_per_block
        plane = self.von_mises[:, :, self.midplane_index]  # (nx, ny)
        blocks = plane.reshape(self.block_cols, p, self.block_rows, p)
        return blocks.transpose(2, 0, 1, 3)  # (rows, cols, ix, iy)

    def midplane_von_mises_flat(self) -> np.ndarray:
        """Mid-plane von Mises stress in the reference sampler's flat order."""
        return self.midplane_von_mises_blocks().reshape(-1)

    @property
    def peak_von_mises(self) -> float:
        """Largest von Mises stress anywhere on the sampled grid (MPa)."""
        return float(self.von_mises.max())

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def summary(self) -> dict[str, Any]:
        """JSON-compatible description of the field (for run manifests)."""
        return {
            "shape": [int(n) for n in self.shape],
            "block_shape": [self.block_rows, self.block_cols],
            "points_per_block": int(self.points_per_block),
            "z_planes": int(self.z_planes),
            "delta_t": float(self.delta_t),
            "peak_von_mises": self.peak_von_mises,
        }

    def save(self, path: str | Path) -> Path:
        """Persist the field to a compressed ``.npz`` bundle; returns the path."""
        arrays = {
            "x": self.x,
            "y": self.y,
            "z": self.z,
            "displacement": self.displacement,
            "stress": self.stress,
            "von_mises": self.von_mises,
            "tsv_mask": self.tsv_mask,
        }
        metadata = {
            "field_schema_version": FIELD_SCHEMA_VERSION,
            "delta_t": float(self.delta_t),
            "points_per_block": int(self.points_per_block),
            "pitch": float(self.pitch),
            "voigt_components": list(VOIGT_COMPONENTS),
        }
        return save_npz_bundle(path, arrays, metadata)

    @classmethod
    def load(cls, path: str | Path) -> "ArrayField":
        """Load a field previously written by :meth:`save`."""
        arrays, metadata = load_npz_bundle(path)
        version = metadata.get("field_schema_version")
        if version != FIELD_SCHEMA_VERSION:
            raise ValidationError(
                f"unsupported field bundle version {version!r} "
                f"(this build reads version {FIELD_SCHEMA_VERSION})"
            )
        return cls(
            x=arrays["x"],
            y=arrays["y"],
            z=arrays["z"],
            displacement=arrays["displacement"],
            stress=arrays["stress"],
            von_mises=arrays["von_mises"],
            tsv_mask=arrays["tsv_mask"],
            delta_t=float(metadata["delta_t"]),
            points_per_block=int(metadata["points_per_block"]),
            pitch=float(metadata["pitch"]),
        )


def reconstruct_array_field(
    solution: GlobalSolution,
    points_per_block: int = 30,
    z_planes: int = 5,
    jobs: int | None = None,
    restrict_to_tsv_region: bool = True,
    sampler_cache: "dict[tuple[BlockKind, int, int], BlockFieldSampler] | None" = None,
) -> ArrayField:
    """Reconstruct the whole-array field from a reduced global solution.

    Parameters
    ----------
    solution:
        A solved :class:`~repro.rom.global_stage.GlobalSolution`.
    points_per_block:
        Cell-centred in-plane sample points per block and axis.
    z_planes:
        Cell-centred planes through the TSV height.  Use an odd count so the
        half-height plane (the paper's error-metric plane) is part of the grid.
    jobs:
        Worker count for the per-block fan-out (``None`` = one per available
        CPU).  Blocks write to disjoint output slabs, so results are
        bit-identical to ``jobs=1``.
    restrict_to_tsv_region:
        Sample only the bounding box of TSV blocks (default), matching
        :meth:`GlobalSolution.von_mises_midplane`; ``False`` samples dummy
        padding too.
    sampler_cache:
        Optional dict keyed on ``(kind, points_per_block, z_planes)`` shared
        across calls that use the same ROMs (e.g. the cases of a load sweep),
        so the geometric sampler precomputation runs once per kind and grid
        rather than once per case.

    Returns
    -------
    ArrayField
        The structured-grid field.  Peak memory is the output grid plus one
        block's fine field per worker, regardless of array size.
    """
    check_positive_int("points_per_block", points_per_block)
    check_positive_int("z_planes", z_planes)
    layout = solution.layout
    if restrict_to_tsv_region:
        region = solution.layout.tsv_region()
        row_range, col_range = (
            region
            if region is not None
            else (slice(0, layout.rows), slice(0, layout.cols))
        )
    else:
        row_range, col_range = slice(0, layout.rows), slice(0, layout.cols)
    rows = list(range(*row_range.indices(layout.rows)))
    cols = list(range(*col_range.indices(layout.cols)))

    # One sampler per block *kind*: every block of a kind shares the mesh and
    # the sample points, so the geometric precomputation happens once — and
    # only once per run when the caller shares a cache across cases.
    kinds_present = {layout.kind_at(row, col) for row in rows for col in cols}
    cache = sampler_cache if sampler_cache is not None else {}
    samplers: dict[BlockKind, BlockFieldSampler] = {}
    for kind in kinds_present:
        key = (kind, points_per_block, z_planes)
        if key not in cache:
            rom = solution.roms[kind]
            points = block_volume_points(rom, points_per_block, z_planes)
            cache[key] = BlockFieldSampler(rom, solution.materials, points)
        samplers[kind] = cache[key]

    pitch = layout.tsv.pitch
    height = layout.tsv.height
    origin_x, origin_y, origin_z = layout.origin
    p, q = points_per_block, z_planes
    # The same cell-centred offsets the samplers evaluate at, shifted to each
    # block's global position.
    local = cell_centred_offsets(pitch, p)
    x = origin_x + cols[0] * pitch + (np.arange(len(cols) * p) // p) * pitch + np.tile(local, len(cols))
    y = origin_y + rows[0] * pitch + (np.arange(len(rows) * p) // p) * pitch + np.tile(local, len(rows))
    z = origin_z + cell_centred_offsets(height, q)

    shape = (len(cols) * p, len(rows) * p, q)
    displacement = np.empty(shape + (3,), dtype=float)
    stress = np.empty(shape + (6,), dtype=float)
    vm = np.empty(shape, dtype=float)

    def fill_block(block: tuple[int, int]) -> None:
        out_row, out_col = block
        row, col = rows[out_row], cols[out_col]
        kind = layout.kind_at(row, col)
        sampler = samplers[kind]
        # One block's fine field at a time — the only O(block) allocation.
        u_fine = solution.roms[kind].reconstruct_displacement(
            solution.block_reduced_displacement(row, col), solution.delta_t
        )
        # bm.asnumpy() seam: block reconstruction runs on the array backend
        # inside the samplers; the preallocated output grids are host numpy.
        block_u = bm.asnumpy(sampler.displacement_from_fine(u_fine))
        block_stress = bm.asnumpy(sampler.stress_from_fine(u_fine, solution.delta_t))
        block_vm = bm.asnumpy(von_mises(block_stress))
        sx = slice(out_col * p, (out_col + 1) * p)
        sy = slice(out_row * p, (out_row + 1) * p)
        displacement[sx, sy] = block_u.reshape(p, p, q, 3)
        stress[sx, sy] = block_stress.reshape(p, p, q, 6)
        vm[sx, sy] = block_vm.reshape(p, p, q)

    blocks = [(r, c) for r in range(len(rows)) for c in range(len(cols))]
    parallel_map(fill_block, blocks, jobs=jobs)

    tsv_mask = np.array(
        [[layout.kind_at(row, col) is BlockKind.TSV for col in cols] for row in rows],
        dtype=bool,
    )
    return ArrayField(
        x=x,
        y=y,
        z=z,
        displacement=displacement,
        stress=stress,
        von_mises=vm,
        tsv_mask=tsv_mask,
        delta_t=solution.delta_t,
        points_per_block=p,
        pitch=pitch,
    )


__all__ = [
    "ArrayField",
    "reconstruct_array_field",
    "FIELD_SCHEMA_VERSION",
    "VOIGT_COMPONENTS",
]
