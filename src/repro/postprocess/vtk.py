"""Legacy VTK export of :class:`~repro.postprocess.fields.ArrayField`.

The legacy ASCII ``RECTILINEAR_GRID`` format is the lowest common denominator
every visualization tool reads (ParaView, VisIt, PyVista, mayavi) without any
optional dependency on our side.  Point data comprises the von Mises scalar,
the displacement vector and the six Voigt stress components as scalars.

A minimal reader is provided so exports can be validated in tests/CI without
a VTK library; it reads exactly the subset the writer emits.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

import numpy as np

from repro.postprocess.fields import VOIGT_COMPONENTS, ArrayField
from repro.utils.validation import ValidationError

#: Number formatting used for coordinates and point data (lossless for float64).
_FMT = "%.17g"


def _flat_point_order(array: np.ndarray) -> np.ndarray:
    """Reorder ``(nx, ny, nz, ...)`` point data to VTK's x-fastest flat order."""
    # VTK iterates x fastest, then y, then z; our arrays are indexed [x, y, z].
    return np.ascontiguousarray(np.moveaxis(array, (0, 1, 2), (2, 1, 0))).reshape(
        array.shape[0] * array.shape[1] * array.shape[2], -1
    )


def write_vtk_rectilinear(
    path: str | Path, field: ArrayField, title: str = "repro field export"
) -> Path:
    """Write an :class:`ArrayField` as a legacy ASCII VTK rectilinear grid."""
    path = Path(path)
    if path.suffix != ".vtk":
        path = path.with_suffix(path.suffix + ".vtk")
    path.parent.mkdir(parents=True, exist_ok=True)
    nx, ny, nz = field.shape
    # Export stream, not a durable artifact: the VTK file is a regenerable
    # visualization export (rebuilt from the .npz bundle at any time) whose
    # size can reach hundreds of MB, so it is streamed section by section
    # instead of being buffered for an atomic rename.  Readers that need
    # crash-safe artifacts use the checksummed .npz bundle next to it.
    # repro-lint: disable=REP001 -- export stream: regenerable visualization output, streamed to bound memory; the durable artifact is the .npz bundle
    with path.open("w", encoding="ascii") as handle:
        handle.write("# vtk DataFile Version 3.0\n")
        handle.write(f"{title.splitlines()[0] if title else 'repro field export'}\n")
        handle.write("ASCII\n")
        handle.write("DATASET RECTILINEAR_GRID\n")
        handle.write(f"DIMENSIONS {nx} {ny} {nz}\n")
        for name, coords in (("X", field.x), ("Y", field.y), ("Z", field.z)):
            handle.write(f"{name}_COORDINATES {coords.size} double\n")
            np.savetxt(handle, coords[None, :], fmt=_FMT)
        handle.write(f"POINT_DATA {field.num_points}\n")
        handle.write("SCALARS von_mises double 1\n")
        handle.write("LOOKUP_TABLE default\n")
        np.savetxt(handle, _flat_point_order(field.von_mises), fmt=_FMT)
        handle.write("VECTORS displacement double\n")
        np.savetxt(handle, _flat_point_order(field.displacement), fmt=_FMT)
        for index, component in enumerate(VOIGT_COMPONENTS):
            handle.write(f"SCALARS stress_{component} double 1\n")
            handle.write("LOOKUP_TABLE default\n")
            np.savetxt(
                handle, _flat_point_order(field.stress[..., index]), fmt=_FMT
            )
    return path


def _read_values(lines: list[str], start: int, count: int) -> tuple[np.ndarray, int]:
    """Read ``count`` whitespace-separated floats starting at ``lines[start]``."""
    values: list[float] = []
    index = start
    while len(values) < count:
        if index >= len(lines):
            raise ValidationError(
                f"VTK file ended while reading values ({len(values)}/{count} read)"
            )
        values.extend(float(token) for token in lines[index].split())
        index += 1
    if len(values) != count:
        raise ValidationError(
            f"VTK value block has {len(values)} numbers, expected {count}"
        )
    return np.asarray(values, dtype=float), index


def read_vtk_rectilinear(path: str | Path) -> dict[str, Any]:
    """Parse a legacy VTK rectilinear grid written by :func:`write_vtk_rectilinear`.

    Returns
    -------
    dict
        ``{"dimensions": (nx, ny, nz), "coordinates": (x, y, z),
        "point_data": {name: array}}`` with point-data arrays shaped
        ``(nx, ny, nz)`` (scalars) or ``(nx, ny, nz, 3)`` (vectors) in this
        package's ``[x, y, z]`` index convention.
    """
    lines = Path(path).read_text(encoding="ascii").splitlines()
    if len(lines) < 5 or not lines[0].startswith("# vtk DataFile"):
        raise ValidationError(f"{path} is not a legacy VTK file")
    if lines[2].strip() != "ASCII":
        raise ValidationError(f"only ASCII VTK files are supported, got {lines[2]!r}")
    if lines[3].split() != ["DATASET", "RECTILINEAR_GRID"]:
        raise ValidationError(f"expected a RECTILINEAR_GRID dataset, got {lines[3]!r}")
    tokens = lines[4].split()
    if len(tokens) != 4 or tokens[0] != "DIMENSIONS":
        raise ValidationError(f"expected DIMENSIONS, got {lines[4]!r}")
    nx, ny, nz = (int(token) for token in tokens[1:])
    num_points = nx * ny * nz

    coordinates: dict[str, np.ndarray] = {}
    index = 5
    for axis, size in (("X", nx), ("Y", ny), ("Z", nz)):
        header = lines[index].split()
        if len(header) != 3 or header[0] != f"{axis}_COORDINATES":
            raise ValidationError(
                f"expected {axis}_COORDINATES, got {lines[index]!r}"
            )
        if int(header[1]) != size:
            raise ValidationError(
                f"{axis}_COORDINATES has {header[1]} entries, expected {size}"
            )
        coordinates[axis], index = _read_values(lines, index + 1, size)

    if index >= len(lines) or lines[index].split()[:1] != ["POINT_DATA"]:
        raise ValidationError("expected a POINT_DATA section")
    declared = int(lines[index].split()[1])
    if declared != num_points:
        raise ValidationError(
            f"POINT_DATA declares {declared} points, dimensions give {num_points}"
        )
    index += 1

    point_data: dict[str, np.ndarray] = {}
    while index < len(lines):
        tokens = lines[index].split()
        if not tokens:
            index += 1
            continue
        if tokens[0] == "SCALARS":
            name = tokens[1]
            index += 1  # LOOKUP_TABLE line
            if index >= len(lines) or not lines[index].startswith("LOOKUP_TABLE"):
                raise ValidationError(f"SCALARS {name} is missing its LOOKUP_TABLE")
            values, index = _read_values(lines, index + 1, num_points)
            point_data[name] = values.reshape(nz, ny, nx).transpose(2, 1, 0)
        elif tokens[0] == "VECTORS":
            name = tokens[1]
            values, index = _read_values(lines, index + 1, 3 * num_points)
            point_data[name] = (
                values.reshape(nz, ny, nx, 3).transpose(2, 1, 0, 3)
            )
        else:
            raise ValidationError(f"unsupported VTK point-data attribute {tokens[0]!r}")

    return {
        "dimensions": (nx, ny, nz),
        "coordinates": (coordinates["X"], coordinates["Y"], coordinates["Z"]),
        "point_data": point_data,
    }


__all__ = ["write_vtk_rectilinear", "read_vtk_rectilinear"]
