"""Hotspot analytics over a reconstructed :class:`ArrayField`.

Downstream consumers of array-scale stress fields (keep-out-zone generation,
structural-aware placement, reliability screening) do not want raw grids —
they want *where it hurts*: the peak von Mises stress of every TSV, its 3-D
location, and how far from each TSV axis the stress stays above a threshold
(the keep-out radius).  :func:`analyze_hotspots` computes exactly that from
an :class:`~repro.postprocess.fields.ArrayField` and renders the array-level
top-K table with :class:`~repro.analysis.reporting.ResultTable`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.analysis.reporting import ResultTable
from repro.postprocess.fields import ArrayField
from repro.utils.validation import ValidationError, check_positive_int


@dataclass(frozen=True)
class TSVHotspot:
    """Stress summary of one TSV block.

    Attributes
    ----------
    row, col:
        Block indices inside the sampled region.
    peak_von_mises:
        Largest sampled von Mises stress of the block (MPa).
    location:
        Global ``(x, y, z)`` coordinates of that peak (um).
    keep_out_radius:
        Largest in-plane distance from the TSV axis at which the von Mises
        stress still reaches the report threshold (um); ``0`` if the block
        never exceeds it.
    """

    row: int
    col: int
    peak_von_mises: float
    location: tuple[float, float, float]
    keep_out_radius: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "row": self.row,
            "col": self.col,
            "peak_von_mises": self.peak_von_mises,
            "location": list(self.location),
            "keep_out_radius": self.keep_out_radius,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TSVHotspot":
        return cls(
            row=int(data["row"]),
            col=int(data["col"]),
            peak_von_mises=float(data["peak_von_mises"]),
            location=tuple(float(v) for v in data["location"]),
            keep_out_radius=float(data["keep_out_radius"]),
        )


@dataclass
class HotspotReport:
    """Per-TSV hotspot records of one field, sorted by decreasing peak stress."""

    threshold: float
    pitch: float
    hotspots: tuple[TSVHotspot, ...]

    def __post_init__(self) -> None:
        self.hotspots = tuple(
            sorted(
                self.hotspots,
                key=lambda spot: (-spot.peak_von_mises, spot.row, spot.col),
            )
        )

    @property
    def num_tsvs(self) -> int:
        """Number of TSV blocks analysed."""
        return len(self.hotspots)

    @property
    def peak_von_mises(self) -> float:
        """Array-level peak von Mises stress (MPa)."""
        if not self.hotspots:
            raise ValidationError("the report contains no TSV blocks")
        return self.hotspots[0].peak_von_mises

    def top(self, k: int = 10) -> tuple[TSVHotspot, ...]:
        """The ``k`` most stressed TSVs."""
        check_positive_int("k", k)
        return self.hotspots[:k]

    def table(self, k: int = 10) -> ResultTable:
        """Array-level top-K hotspot table."""
        table = ResultTable(
            columns=["rank", "block", "peak vM [MPa]", "location (x, y, z) [um]", "keep-out [um]"],
            title=(
                f"Top {min(k, self.num_tsvs)} of {self.num_tsvs} TSVs "
                f"(threshold {self.threshold:.1f} MPa)"
            ),
        )
        for rank, spot in enumerate(self.top(k), start=1):
            x, y, z = spot.location
            table.add_row(
                **{
                    "rank": rank,
                    "block": f"({spot.row}, {spot.col})",
                    "peak vM [MPa]": f"{spot.peak_von_mises:.1f}",
                    "location (x, y, z) [um]": f"({x:.2f}, {y:.2f}, {z:.2f})",
                    "keep-out [um]": f"{spot.keep_out_radius:.2f}",
                }
            )
        return table

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation (for run manifests)."""
        return {
            "threshold": self.threshold,
            "pitch": self.pitch,
            "hotspots": [spot.to_dict() for spot in self.hotspots],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HotspotReport":
        return cls(
            threshold=float(data["threshold"]),
            pitch=float(data["pitch"]),
            hotspots=tuple(TSVHotspot.from_dict(item) for item in data["hotspots"]),
        )


def analyze_hotspots(
    field: ArrayField,
    threshold: float | None = None,
    threshold_fraction: float = 0.8,
) -> HotspotReport:
    """Per-TSV peak stress, peak location and keep-out radius of a field.

    Parameters
    ----------
    field:
        The reconstructed array field.
    threshold:
        Absolute von Mises threshold (MPa) defining the keep-out zone.
        Defaults to ``threshold_fraction`` of the array-level peak over TSV
        blocks, so the report adapts to the thermal load automatically.
    threshold_fraction:
        Fraction of the peak used when ``threshold`` is ``None``.

    Returns
    -------
    HotspotReport
        One record per TSV block, sorted by decreasing peak stress.
    """
    if not (0.0 < threshold_fraction <= 1.0):
        raise ValidationError(
            f"threshold_fraction must be in (0, 1], got {threshold_fraction}"
        )
    tsv_blocks = [
        (row, col)
        for row in range(field.block_rows)
        for col in range(field.block_cols)
        if field.tsv_mask[row, col]
    ]
    if not tsv_blocks:
        raise ValidationError("the field contains no TSV blocks to analyse")

    if threshold is None:
        peak = max(
            float(field.block_values(field.von_mises, row, col).max())
            for row, col in tsv_blocks
        )
        threshold = threshold_fraction * peak
    threshold = float(threshold)
    if threshold < 0.0:
        raise ValidationError(f"threshold must be non-negative, got {threshold}")

    p, q = field.points_per_block, field.z_planes
    hotspots = []
    for row, col in tsv_blocks:
        block_vm = field.block_values(field.von_mises, row, col)  # (p, p, q)
        flat_index = int(np.argmax(block_vm))
        ix, iy, iz = np.unravel_index(flat_index, (p, p, q))
        location = (
            float(field.x[col * p + ix]),
            float(field.y[row * p + iy]),
            float(field.z[iz]),
        )
        center_x, center_y = field.block_center(row, col)
        over = block_vm >= threshold
        if over.any():
            ox, oy, _ = np.nonzero(over)
            dx = field.x[col * p + ox] - center_x
            dy = field.y[row * p + oy] - center_y
            keep_out = float(np.sqrt(dx * dx + dy * dy).max())
        else:
            keep_out = 0.0
        hotspots.append(
            TSVHotspot(
                row=row,
                col=col,
                peak_von_mises=float(block_vm.max()),
                location=location,
                keep_out_radius=keep_out,
            )
        )
    return HotspotReport(threshold=threshold, pitch=field.pitch, hotspots=tuple(hotspots))


__all__ = ["TSVHotspot", "HotspotReport", "analyze_hotspots"]
