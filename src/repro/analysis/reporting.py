"""Plain-text result tables in the spirit of the paper's Tables 1-3.

The experiment drivers collect per-case records (method, runtime, memory,
error) and format them as aligned text tables, so benchmark output can be
compared against the paper's tables side by side and archived in
``EXPERIMENTS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.utils.validation import ValidationError


def format_seconds(seconds: float) -> str:
    """Human-friendly duration (ms below one second, then s / min / h)."""
    seconds = float(seconds)
    if seconds < 1.0:
        return f"{seconds * 1e3:.0f} ms"
    if seconds < 60.0:
        return f"{seconds:.2f} s"
    if seconds < 3600.0:
        return f"{seconds / 60.0:.1f} min"
    return f"{seconds / 3600.0:.2f} h"


def format_bytes(num_bytes: float) -> str:
    """Human-friendly memory size.  Negative sizes are invalid and rejected."""
    value = float(num_bytes)
    if value < 0.0:
        raise ValidationError(f"a byte count cannot be negative, got {num_bytes!r}")
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return f"{value:.2f} {unit}"
        value /= 1024.0
    return f"{value:.2f} GiB"


@dataclass
class ResultTable:
    """A simple column-oriented results table.

    Example
    -------
    >>> table = ResultTable(columns=["case", "time", "error"])
    >>> table.add_row(case="10x10", time="2.5 s", error="0.93%")
    >>> print(table.to_text())  # doctest: +SKIP
    """

    columns: list[str]
    title: str = ""
    rows: list[dict[str, Any]] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append a row; missing columns render as empty cells."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns {sorted(unknown)}; table has {self.columns}")
        self.rows.append(dict(values))

    def add_rows(self, rows: Iterable[dict[str, Any]]) -> None:
        """Append many rows."""
        for row in rows:
            self.add_row(**row)

    def column(self, name: str) -> list[Any]:
        """Return the values of one column (missing cells become ``None``)."""
        if name not in self.columns:
            raise KeyError(f"unknown column {name!r}")
        return [row.get(name) for row in self.rows]

    def to_text(self) -> str:
        """Render the table as aligned plain text."""
        cells = [[str(row.get(col, "")) for col in self.columns] for row in self.rows]
        widths = [
            max(len(col), *(len(row[idx]) for row in cells)) if cells else len(col)
            for idx, col in enumerate(self.columns)
        ]
        lines = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(col.ljust(width) for col, width in zip(self.columns, widths))
        lines.append(header)
        lines.append("-+-".join("-" * width for width in widths))
        for row in cells:
            lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Render the table as GitHub-flavoured markdown."""
        lines = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join([" --- "] * len(self.columns)) + "|")
        for row in self.rows:
            lines.append(
                "| " + " | ".join(str(row.get(col, "")) for col in self.columns) + " |"
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.rows)


__all__ = ["ResultTable", "format_seconds", "format_bytes"]
