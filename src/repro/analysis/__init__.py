"""Error metrics and result reporting."""

from repro.analysis.metrics import normalized_mae, error_map, relative_max_error
from repro.analysis.reporting import ResultTable, format_seconds, format_bytes

__all__ = [
    "normalized_mae",
    "error_map",
    "relative_max_error",
    "ResultTable",
    "format_seconds",
    "format_bytes",
]
