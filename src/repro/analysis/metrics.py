"""Accuracy metrics.

The paper's error metric (§5.2) is the mean absolute error between a method's
gridded mid-plane von Mises stress and the ground truth, normalized by the
maximum ground-truth von Mises stress (because stress is proportional to the
thermal load, the normalized number is load-independent).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import ValidationError


def _as_matching_arrays(predicted: np.ndarray, reference: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    predicted = np.asarray(predicted, dtype=float)
    reference = np.asarray(reference, dtype=float)
    if predicted.shape != reference.shape:
        raise ValidationError(
            f"prediction shape {predicted.shape} does not match "
            f"reference shape {reference.shape}"
        )
    if predicted.size == 0:
        raise ValidationError("cannot compute an error over empty arrays")
    # NaN/Inf would silently survive max(|.|) and the division and poison the
    # metric; fail loudly and name the offending array instead.
    for name, array in (("prediction", predicted), ("reference", reference)):
        if not np.all(np.isfinite(array)):
            bad = int(np.count_nonzero(~np.isfinite(array)))
            raise ValidationError(
                f"{name} field contains {bad} non-finite value(s) (NaN/Inf); "
                "error metrics are undefined over non-finite fields"
            )
    return predicted, reference


def normalized_mae(predicted: np.ndarray, reference: np.ndarray) -> float:
    """Mean absolute error normalized by the maximum reference value (paper §5.2).

    Parameters
    ----------
    predicted, reference:
        Arrays of identical shape (typically the gridded mid-plane von Mises
        stress of a method and of the ground-truth solver).

    Returns
    -------
    float
        ``mean(|predicted - reference|) / max(|reference|)``.
    """
    predicted, reference = _as_matching_arrays(predicted, reference)
    scale = float(np.max(np.abs(reference)))
    if scale == 0.0:
        raise ValidationError("reference field is identically zero; MAE undefined")
    return float(np.mean(np.abs(predicted - reference)) / scale)


def relative_max_error(predicted: np.ndarray, reference: np.ndarray) -> float:
    """Maximum absolute error normalized by the maximum reference value."""
    predicted, reference = _as_matching_arrays(predicted, reference)
    scale = float(np.max(np.abs(reference)))
    if scale == 0.0:
        raise ValidationError("reference field is identically zero; error undefined")
    return float(np.max(np.abs(predicted - reference)) / scale)


def error_map(predicted: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Point-wise absolute error normalized by the maximum reference value.

    Useful for inspecting *where* a method's error concentrates: the paper
    notes that MORE-Stress errors concentrate near the array boundary while
    superposition errors spread over the whole domain.
    """
    predicted, reference = _as_matching_arrays(predicted, reference)
    scale = float(np.max(np.abs(reference)))
    if scale == 0.0:
        raise ValidationError("reference field is identically zero; error undefined")
    return np.abs(predicted - reference) / scale


__all__ = ["normalized_mae", "relative_max_error", "error_map"]
