"""REP003 — backend purity in ``bm``-ported modules.

The array-backend seam (:mod:`repro.backend`) only delivers portability if
the ported numerical modules stay pure: every array op goes through ``bm``,
and host-side numpy appears only at documented ``bm.asnumpy()`` boundaries.
A stray ``np.sqrt`` in a kernel silently forces a device→host round-trip on
the torch backend (or crashes on non-numpy arrays).

Scope: the rule checks each *innermost function* in the target modules.  A
function that uses ``bm`` must not also use raw ``np.`` / ``numpy.``
attributes, except on lines annotated ``# backend-seam`` (on the line or the
comment line directly above).  Functions that never touch ``bm`` are host-side
helpers and are left alone, as are type annotations and module-level
constants (which are evaluated once at import, on the host, by design).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import (
    Finding,
    Module,
    Project,
    Rule,
    annotation_nodes,
    register_rule,
    walk_scoped,
)

#: Modules ported to the ``bm`` array-backend seam.
TARGET_SUFFIXES = (
    "repro/fem/element.py",
    "repro/fem/fields.py",
    "repro/fem/sampling.py",
    "repro/rom/reconstruction.py",
    "repro/postprocess/fields.py",
)

SEAM_MARKER = "backend-seam"

_NUMPY_NAMES = {"np", "numpy"}


def _line_is_seam(module: Module, line: int) -> bool:
    if SEAM_MARKER in module.line(line):
        return True
    above = module.line(line - 1).strip()
    return above.startswith("#") and SEAM_MARKER in above


def _is_function(node: ast.AST) -> bool:
    return isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))


@register_rule
class BackendPurityRule(Rule):
    id = "REP003"
    name = "backend-purity"
    severity = "error"
    description = (
        "bm-ported modules must not mix raw numpy into bm-using functions "
        "except at '# backend-seam' annotated asnumpy() boundaries"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if not any(module.is_at(suffix) for suffix in TARGET_SUFFIXES):
                continue
            yield from self._check_module(module)

    def _check_module(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._check_function(module, node)

    def _check_function(
        self,
        module: Module,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        # Innermost scope only: nested functions are their own scope.
        scoped = list(walk_scoped(func, skip=_is_function))
        skip_ids = annotation_nodes(func)
        uses_bm = any(
            isinstance(node, ast.Name) and node.id == "bm" for node in scoped
        )
        if not uses_bm:
            return
        for node in scoped:
            if not isinstance(node, ast.Attribute):
                continue
            if id(node) in skip_ids or id(node.value) in skip_ids:
                continue
            if (
                isinstance(node.value, ast.Name)
                and node.value.id in _NUMPY_NAMES
                and not _line_is_seam(module, node.lineno)
            ):
                yield self.finding(
                    module,
                    node.lineno,
                    f"raw numpy ({node.value.id}.{node.attr}) in bm-using "
                    f"function {func.name}() — route through bm, or annotate "
                    f"the host boundary with '# {SEAM_MARKER}'",
                )


__all__ = ["BackendPurityRule"]
