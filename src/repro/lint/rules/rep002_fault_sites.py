"""REP002 — fault-site coverage.

The chaos harness can only exercise failures that are wired as
:func:`repro.faults.fault_point` sites.  This rule keeps the wiring honest
in both directions:

* **Durable-write helpers must carry a site.**  In the serialization module,
  any function that performs the commit step of an atomic write (an
  ``os.replace``) must either call ``fault_point`` or accept a ``fault_site``
  parameter, so crash-consistency tests can target it.  (The quarantine
  helper is a recognised exception — it *is* the failure handler.)
* **Chaos globs must match something.**  Every ``site`` glob used in a
  :class:`repro.faults.FaultRule` inside ``repro/chaos.py`` must fnmatch at
  least one statically-registered site; a typo'd glob otherwise injects
  nothing and the scenario silently tests the happy path.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import Iterator

from repro.lint.core import (
    Finding,
    Module,
    Project,
    Rule,
    call_keyword,
    const_str,
    dotted_name,
    register_rule,
)
from repro.lint.fault_sites import extract_fault_sites

SERIALIZATION_SUFFIX = "repro/utils/serialization.py"
CHAOS_SUFFIX = "repro/chaos.py"


def _function_has_site(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    args = func.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.arg == "fault_site":
            return True
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None and name.rpartition(".")[2] == "fault_point":
                return True
            if call_keyword(node, "fault_site") is not None:
                return True
    return False


def _commits_durable_write(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            if dotted_name(node.func) == "os.replace":
                return True
    return False


def _iter_chaos_globs(module: Module) -> Iterator[tuple[str, int]]:
    """``site`` globs from FaultRule(...) calls and {"site": ...} literals."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None and name.rpartition(".")[2] == "FaultRule":
                site = const_str(call_keyword(node, "site"))
                if site is None and node.args:
                    site = const_str(node.args[0])
                if site is not None:
                    yield site, node.lineno
        elif isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if const_str(key) == "site":
                    site = const_str(value)
                    if site is not None:
                        yield site, value.lineno


@register_rule
class FaultSiteCoverageRule(Rule):
    id = "REP002"
    name = "fault-site-coverage"
    severity = "error"
    description = (
        "durable-write helpers must expose a fault_point site; chaos-scenario "
        "site globs must match >=1 statically-registered site"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        registered = extract_fault_sites(project)

        serialization = project.module_at(SERIALIZATION_SUFFIX)
        if serialization is not None:
            for node in ast.walk(serialization.tree):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if _commits_durable_write(node) and not _function_has_site(node):
                    yield self.finding(
                        serialization,
                        node.lineno,
                        f"durable-write helper {node.name}() commits with "
                        "os.replace but has no fault_point site / fault_site "
                        "parameter — crash-consistency tests cannot target it",
                    )

        chaos = project.module_at(CHAOS_SUFFIX)
        if chaos is not None and registered:
            site_ids = list(registered)
            for glob, line in _iter_chaos_globs(chaos):
                if not any(fnmatch(site, glob) for site in site_ids):
                    yield self.finding(
                        chaos,
                        line,
                        f"fault glob {glob!r} matches no registered fault site "
                        "— the scenario injects nothing (known sites: "
                        + ", ".join(sorted(site_ids))
                        + ")",
                    )


__all__ = ["FaultSiteCoverageRule"]
