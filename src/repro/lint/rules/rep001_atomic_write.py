"""REP001 — atomic-write discipline.

Every durable artifact must be written through the fsync'd write-to-temp /
rename helpers in :mod:`repro.utils.serialization` (``atomic_write_bytes``,
``dump_json``, ``save_npz_bundle``).  A bare ``open(path, "w")``,
``json.dump``, ``Path.write_text`` or ``np.savez`` anywhere else can tear on
crash and silently undoes the chaos harness's guarantees.

The rule flags, outside the serialization module itself:

* ``open(...)`` / ``path.open(...)`` with a write/append/create mode,
* ``json.dump(...)`` (``json.dumps`` is fine — it produces a string),
* ``numpy`` save functions (``np.save`` / ``np.savez`` / ``np.savez_compressed``
  / ``np.savetxt`` *with a path argument*; streaming ``np.savetxt`` into an
  already-open handle is the caller's write, and is judged at the ``open``),
* ``Path.write_text`` / ``Path.write_bytes`` style calls.

Memory-bounded *export streams* (e.g. the VTK writer, which streams a
multi-hundred-MB regenerable visualization artifact) are a recognised
exception — mark them with an inline suppression explaining the
classification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import (
    Finding,
    Module,
    Project,
    Rule,
    call_keyword,
    dotted_name,
    register_rule,
)

#: The module that owns the atomic-write primitives; exempt by definition.
EXEMPT_SUFFIXES = ("repro/utils/serialization.py",)

_WRITE_MODES = ("w", "a", "x", "r+", "+")

_NUMPY_SAVERS = {"save", "savez", "savez_compressed", "savetxt"}


def _is_write_mode(mode: str) -> bool:
    return mode.startswith(("w", "a", "x")) or "+" in mode


def _open_mode(call: ast.Call, arg_index: int) -> str | None:
    """The literal mode argument of an ``open``-style call, if present."""
    if len(call.args) > arg_index:
        node = call.args[arg_index]
    else:
        node = call_keyword(call, "mode")
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


@register_rule
class AtomicWriteRule(Rule):
    id = "REP001"
    name = "atomic-write-discipline"
    severity = "error"
    description = (
        "durable writes must use repro.utils.serialization (atomic_write_bytes, "
        "dump_json, save_npz_bundle); bare open(.., 'w')/json.dump/np.savez "
        "can tear on crash"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if any(module.is_at(suffix) for suffix in EXEMPT_SUFFIXES):
                continue
            yield from self._check_module(module)

    def _check_module(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            finding = self._classify_call(module, node)
            if finding is not None:
                yield finding

    def _classify_call(self, module: Module, call: ast.Call) -> Finding | None:
        # Bare builtin open(path, "w"/"a"/"x")
        if isinstance(call.func, ast.Name):
            if call.func.id == "open":
                mode = _open_mode(call, 1)
                if mode is not None and _is_write_mode(mode):
                    return self.finding(
                        module,
                        call.lineno,
                        f"non-atomic write: open(..., {mode!r}) outside "
                        "utils.serialization — use atomic_write_bytes/dump_json",
                    )
            return None
        if not isinstance(call.func, ast.Attribute):
            return None
        # Method calls: resolve the leaf name even when the receiver is a
        # call result (``Path(x).write_text(...)`` has no dotted name).
        tail = call.func.attr
        head = dotted_name(call.func.value) or type(call.func.value).__name__
        name = f"{head}.{tail}"
        # path.open("w") method calls
        if tail == "open":
            mode = _open_mode(call, 0)
            if mode is not None and _is_write_mode(mode):
                return self.finding(
                    module,
                    call.lineno,
                    f"non-atomic write: {head}.open({mode!r}) outside "
                    "utils.serialization — use atomic_write_bytes/dump_json",
                )
            return None
        # json.dump(obj, handle)
        if name == "json.dump":
            return self.finding(
                module,
                call.lineno,
                "non-atomic write: json.dump to an open handle — use "
                "utils.serialization.dump_json (atomic, fsync'd, checksummed)",
            )
        # Path.write_text / write_bytes style calls
        if tail in {"write_text", "write_bytes"}:
            return self.finding(
                module,
                call.lineno,
                f"non-atomic write: {tail}() can tear on crash — use "
                "utils.serialization.atomic_write_bytes",
            )
        # numpy savers with a path-like first argument
        if head in {"np", "numpy"} and tail in _NUMPY_SAVERS:
            if tail == "savetxt" and self._is_stream_target(call):
                return None
            return self.finding(
                module,
                call.lineno,
                f"non-atomic write: {head}.{tail} outside utils.serialization "
                "— use save_npz_bundle (atomic, checksummed) or stream into "
                "an atomically-managed handle",
            )
        return None

    @staticmethod
    def _is_stream_target(call: ast.Call) -> bool:
        """``np.savetxt(handle, ...)`` into a variable is a stream write."""
        if not call.args:
            return False
        target = call.args[0]
        # A bare name (an open handle) is a stream; a string/Path literal or
        # a Path(...) construction is a durable path target.
        if isinstance(target, ast.Constant):
            return False
        if isinstance(target, ast.Call):
            return False
        return True


__all__ = ["AtomicWriteRule"]
