"""REP004 — error-taxonomy completeness.

The service wire contract (:mod:`repro.errors`) maps every failure to a
stable ``code`` and ``http_status``.  That only holds if (a) every taxonomy
class is actually registered in ``ERROR_CLASSES_BY_CODE`` and (b) code
reachable from the service layer and the CLI raises taxonomy errors, never
bare ``Exception`` / ``RuntimeError`` — a bare raise surfaces as an opaque
500 with no machine-readable code.

Checks:

* In ``repro/errors.py``: every class that subclasses the taxonomy root and
  defines a ``code`` must appear in the registry tuple feeding
  ``ERROR_CLASSES_BY_CODE``.
* In ``repro/service/**`` and ``repro/cli.py``: every ``raise X(...)`` where
  ``X`` resolves to a known non-taxonomy exception name is an error.
  Re-raises (``raise``), raising caught variables, and
  ``argparse.ArgumentTypeError`` (argparse maps it to a usage error, exit
  code 2) are allowed.  Deliberate non-taxonomy raises (injected fault
  types, internal control-flow sentinels) carry inline suppressions.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import (
    Finding,
    Module,
    Project,
    Rule,
    dotted_name,
    register_rule,
)

ERRORS_SUFFIX = "repro/errors.py"
TAXONOMY_ROOT = "ReproError"
REGISTRY_NAME = "ERROR_CLASSES_BY_CODE"

#: Non-taxonomy exceptions that are fine to raise from scoped modules.
ALLOWED_RAISES = {
    "ArgumentTypeError",  # argparse converts to a usage error (exit 2)
    "LintUsageError",  # the lint CLI maps it to the usage exit code (2)
    "error_from_envelope",  # taxonomy factory: rehydrates a registered class
    "StopIteration",
    "KeyboardInterrupt",
    "SystemExit",
    "TimeoutError",  # stdlib futures timeout, caught in-process by callers
}

#: Builtin / stdlib exception names we can resolve statically.  Anything not
#: in the taxonomy and not allowed is a finding; unknown names (local classes)
#: are reported too, which is the point — they have no wire code.
_SCOPE_MARKERS = ("repro/service/", "repro/cli.py")


def _in_scope(rel: str) -> bool:
    return any(marker in rel or rel.endswith(marker) for marker in _SCOPE_MARKERS)


def _taxonomy_classes(errors_module: Module) -> dict[str, ast.ClassDef]:
    """Classes transitively subclassing the taxonomy root, by name."""
    classes = {
        node.name: node
        for node in ast.walk(errors_module.tree)
        if isinstance(node, ast.ClassDef)
    }
    taxonomy: dict[str, ast.ClassDef] = {}

    def descends(name: str, seen: frozenset[str]) -> bool:
        if name == TAXONOMY_ROOT:
            return True
        node = classes.get(name)
        if node is None or name in seen:
            return False
        return any(
            isinstance(base, ast.Name) and descends(base.id, seen | {name})
            for base in node.bases
        )

    for name, node in classes.items():
        if descends(name, frozenset()):
            taxonomy[name] = node
    return taxonomy


def _registered_names(errors_module: Module) -> set[str] | None:
    """Class names in the tuple/list/dict feeding the code registry."""
    for node in ast.walk(errors_module.tree):
        if not isinstance(node, ast.Assign):
            continue
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if REGISTRY_NAME not in targets and not any(
            t.startswith("_ERROR") or t.startswith("ERROR") for t in targets
        ):
            continue
        names = {
            child.id
            for child in ast.walk(node.value)
            if isinstance(child, ast.Name)
        }
        if names:
            return names
    return None


def _defines_code(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "code" for t in stmt.targets):
                return True
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == "code":
                return True
    return False


@register_rule
class ErrorTaxonomyRule(Rule):
    id = "REP004"
    name = "error-taxonomy-completeness"
    severity = "error"
    description = (
        "service/- and cli-reachable raises must use registered ReproError "
        "subclasses (stable code + http_status); no bare Exception"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        errors_module = project.module_at(ERRORS_SUFFIX)
        taxonomy: set[str] = set()
        if errors_module is not None:
            classes = _taxonomy_classes(errors_module)
            taxonomy = set(classes)
            registered = _registered_names(errors_module)
            if registered is not None:
                for name, node in sorted(classes.items()):
                    if name == TAXONOMY_ROOT:
                        continue
                    if _defines_code(node) and name not in registered:
                        yield self.finding(
                            errors_module,
                            node.lineno,
                            f"taxonomy class {name} defines a wire code but is "
                            f"missing from {REGISTRY_NAME} — "
                            "error_from_envelope cannot rehydrate it",
                        )

        if not taxonomy:
            # Without the taxonomy module there is nothing to resolve against.
            return

        for module in project.modules:
            if not _in_scope(module.rel):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Raise) or node.exc is None:
                    continue
                yield from self._check_raise(module, node, taxonomy)

    def _check_raise(
        self, module: Module, node: ast.Raise, taxonomy: set[str]
    ) -> Iterator[Finding]:
        exc = node.exc
        if isinstance(exc, ast.Call):
            name = dotted_name(exc.func)
        else:
            # `raise err` re-raising a variable: allowed (origin is checked
            # where the exception was constructed).
            return
        if name is None:
            return
        leaf = name.rpartition(".")[2]
        if leaf in taxonomy or leaf in ALLOWED_RAISES:
            return
        yield self.finding(
            module,
            node.lineno,
            f"raise {leaf}(...) from service-reachable code — not a "
            "registered ReproError subclass, so it surfaces as an opaque "
            "500 with no stable error code",
        )


__all__ = ["ErrorTaxonomyRule"]
