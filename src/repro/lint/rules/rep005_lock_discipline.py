"""REP005 — lock discipline in the threaded service layer.

The service layer shares mutable state between HTTP handler threads, worker
threads and the watchdog thread.  The convention is per-class: state touched
under a ``threading.Lock``/``RLock`` belongs to that lock, always.  A read
outside the lock sees torn state; a ``+=`` outside the lock loses updates.

For every class (in the scoped modules) that owns a threading primitive:

* **Guard discovery** — an attribute is *guarded by lock L* when, outside
  ``__init__``, it is mutated (assigned, ``+=``, subscript-stored, or the
  receiver of a mutating method such as ``.append``/``.pop``) inside a
  ``with self.L:`` block.
* **Consistency** — every other access to a guarded attribute (mutation *or*
  plain read) outside ``__init__`` must hold the same lock.  Private helpers
  whose callers hold the lock carry an inline suppression naming the caller,
  which documents the invariant in the source.
* **Unprotected counters** — any ``self.x += ...`` outside every lock (and
  outside ``__init__``) in a lock-owning class is a lost-update bug even if
  the attribute is not otherwise guarded.
* **Nested acquisition order** — taking lock B while holding A fixes the
  order A→B for the class; a ``with self.B: ... with self.A:`` elsewhere is
  a deadlock waiting for contention, and is reported.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.lint.core import (
    Finding,
    Module,
    Project,
    Rule,
    dotted_name,
    register_rule,
)

#: Threaded modules whose classes are held to the lock-discipline contract.
TARGET_SUFFIXES = (
    "repro/service/pool.py",
    "repro/service/jobs.py",
    "repro/rom/cache.py",
    "repro/service/watchdog.py",
)

_LOCK_FACTORIES = {"Lock", "RLock"}
_THREAD_PRIMITIVES = {"Lock", "RLock", "Event", "Condition", "Semaphore", "BoundedSemaphore"}
_INIT_METHODS = {"__init__", "__post_init__", "__new__"}
_MUTATING_METHODS = {
    "append",
    "add",
    "discard",
    "remove",
    "pop",
    "popitem",
    "clear",
    "update",
    "extend",
    "insert",
    "setdefault",
}


@dataclass
class _Access:
    attr: str
    line: int
    locks: tuple[str, ...]  # locks held (innermost last)
    is_mutation: bool
    method: str


@dataclass
class _ClassModel:
    name: str
    lock_attrs: set[str] = field(default_factory=set)
    primitive_attrs: set[str] = field(default_factory=set)
    accesses: list[_Access] = field(default_factory=list)
    lock_orders: dict[tuple[str, str], int] = field(default_factory=dict)


def _self_attr(node: ast.AST) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _with_lock_attrs(stmt: ast.With) -> list[str]:
    attrs = []
    for item in stmt.items:
        attr = _self_attr(item.context_expr)
        if attr is not None:
            attrs.append(attr)
    return attrs


class _MethodScanner:
    """Collect self-attribute accesses with the lock stack held at each."""

    def __init__(self, model: _ClassModel, method: str) -> None:
        self.model = model
        self.method = method

    def scan(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        for stmt in func.body:
            self._visit(stmt, ())

    def _visit(self, node: ast.AST, locks: tuple[str, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # nested scope: analysed separately / out of scope
        if isinstance(node, (ast.With, ast.AsyncWith)):
            held = [a for a in _with_lock_attrs(node) if a in self.model.lock_attrs]
            new_locks = locks
            for lock in held:
                for outer in new_locks:
                    if outer != lock:
                        self.model.lock_orders.setdefault(
                            (outer, lock), node.lineno
                        )
                new_locks = new_locks + (lock,)
            for item in node.items:
                self._visit(item.context_expr, locks)
                if item.optional_vars is not None:
                    self._visit(item.optional_vars, locks)
            for child in node.body:
                self._visit(child, new_locks)
            return
        self._record(node, locks)
        for child in ast.iter_child_nodes(node):
            self._visit(child, locks)

    def _record(self, node: ast.AST, locks: tuple[str, ...]) -> None:
        attr: str | None = None
        is_mutation = False
        if isinstance(node, ast.Assign):
            for target in node.targets:
                self._record_target(target, locks)
            return
        if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            self._record_target(node.target, locks)
            return
        if isinstance(node, ast.Call):
            # self.attr.append(...) style mutation
            func_attr = node.func
            if (
                isinstance(func_attr, ast.Attribute)
                and func_attr.attr in _MUTATING_METHODS
            ):
                attr = _self_attr(func_attr.value)
                if attr is not None:
                    is_mutation = True
        elif isinstance(node, ast.Subscript):
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                attr = _self_attr(node.value)
                if attr is not None:
                    is_mutation = True
        elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            attr = _self_attr(node)
            if attr is None:
                return
        if attr is not None:
            self.model.accesses.append(
                _Access(attr, node.lineno, locks, is_mutation, self.method)
            )

    def _record_target(self, target: ast.AST, locks: tuple[str, ...]) -> None:
        attr = _self_attr(target)
        if attr is not None:
            self.model.accesses.append(
                _Access(attr, target.lineno, locks, True, self.method)
            )
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_target(element, locks)
        elif isinstance(target, ast.Subscript):
            attr = _self_attr(target.value)
            if attr is not None:
                self.model.accesses.append(
                    _Access(attr, target.lineno, locks, True, self.method)
                )


def _build_model(node: ast.ClassDef) -> _ClassModel:
    model = _ClassModel(name=node.name)
    # Pass 1: find lock / primitive attributes (usually assigned in __init__).
    for child in ast.walk(node):
        if isinstance(child, ast.Assign) and isinstance(child.value, ast.Call):
            factory = dotted_name(child.value.func)
            if factory is None:
                continue
            leaf = factory.rpartition(".")[2]
            for target in child.targets:
                attr = _self_attr(target)
                if attr is None:
                    continue
                if leaf in _LOCK_FACTORIES:
                    model.lock_attrs.add(attr)
                    model.primitive_attrs.add(attr)
                elif leaf in _THREAD_PRIMITIVES:
                    model.primitive_attrs.add(attr)
    # Pass 2: scan direct methods (not nested classes).
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if stmt.name in _INIT_METHODS:
                continue
            _MethodScanner(model, stmt.name).scan(stmt)
    return model


@register_rule
class LockDisciplineRule(Rule):
    id = "REP005"
    name = "lock-discipline"
    severity = "error"
    description = (
        "lock-guarded attributes must only be touched under their lock; "
        "counters in threaded classes need a lock; nested lock order must "
        "be consistent"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if not any(module.is_at(suffix) for suffix in TARGET_SUFFIXES):
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    yield from self._check_class(module, node)

    def _check_class(self, module: Module, node: ast.ClassDef) -> Iterator[Finding]:
        model = _build_model(node)
        if not model.primitive_attrs:
            return

        # AST shapes overlap (a subscript store is seen via the Assign target
        # and again as the Subscript node): dedup per (attr, line), keeping
        # the mutation record when both a load and a mutation land there.
        deduped: dict[tuple[str, int], _Access] = {}
        for access in model.accesses:
            key = (access.attr, access.line)
            existing = deduped.get(key)
            if existing is None or (access.is_mutation and not existing.is_mutation):
                deduped[key] = access
        accesses = list(deduped.values())

        # Guard discovery: attribute -> lock it was mutated under.
        guards: dict[str, str] = {}
        for access in accesses:
            if access.is_mutation and access.locks:
                guards.setdefault(access.attr, access.locks[-1])

        for access in accesses:
            if access.attr in model.primitive_attrs:
                continue
            guard = guards.get(access.attr)
            if guard is not None and guard not in access.locks:
                verb = "mutated" if access.is_mutation else "read"
                yield self.finding(
                    module,
                    access.line,
                    f"{model.name}.{access.attr} is guarded by "
                    f"self.{guard} but {verb} without it in {access.method}()",
                )
            elif (
                guard is None
                and access.is_mutation
                and not access.locks
                and self._is_counter_mutation(module, access)
            ):
                yield self.finding(
                    module,
                    access.line,
                    f"unprotected counter update {model.name}.{access.attr} "
                    f"in threaded class (lost updates under contention) — "
                    "guard it with one of: "
                    + ", ".join(f"self.{a}" for a in sorted(model.lock_attrs)),
                )

        # Nested-order consistency.
        for (outer, inner), line in sorted(model.lock_orders.items()):
            if (inner, outer) in model.lock_orders:
                other = model.lock_orders[(inner, outer)]
                if line < other:
                    continue  # report each inverted pair once, at 2nd site
                yield self.finding(
                    module,
                    line,
                    f"inconsistent lock order in {model.name}: "
                    f"self.{inner} -> self.{outer} here but "
                    f"self.{outer} -> self.{inner} at line {other} — "
                    "deadlock under contention",
                )

    @staticmethod
    def _is_counter_mutation(module: Module, access: _Access) -> bool:
        """Only AugAssign (`+=`) mutations count as counter updates."""
        text = module.line(access.line)
        return "+=" in text or "-=" in text


__all__ = ["LockDisciplineRule"]
