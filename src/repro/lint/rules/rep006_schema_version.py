"""REP006 — schema-version discipline.

A ``*_VERSION`` literal is a public promise: bumping it without a migration
branch strands every artifact already on disk, and without a migration test
the branch rots.  For every module-level ``SCHEMA_VERSION`` /
``ENVELOPE_VERSION`` style constant with a value above 1 the rule requires:

* a companion ``SUPPORTED_*_VERSIONS`` sequence in the same module that
  still lists at least one *older* version (the migration branch exists), and
* a ``test_*migration*`` test function whose body (or module) references the
  constant or its companion by name (the migration branch is exercised).

Version 1 constants are exempt — there is nothing to migrate from yet.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.core import Finding, Module, Project, Rule, register_rule

_VERSION_NAME_RE = re.compile(r"^[A-Z0-9_]*(SCHEMA|ENVELOPE)_VERSION$")
_SUPPORTED_NAME_RE = re.compile(r"^SUPPORTED_[A-Z0-9_]*VERSIONS$")
_MIGRATION_FUNC_RE = re.compile(r"^test_.*migration", re.IGNORECASE)


def _module_version_constants(module: Module) -> list[tuple[str, int, int]]:
    """``(name, value, line)`` for schema-version literals in a module."""
    found = []
    for node in module.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Name)
                and _VERSION_NAME_RE.match(target.id)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, int)
            ):
                found.append((target.id, node.value.value, node.lineno))
    return found


def _supported_versions(module: Module) -> dict[str, list[int]]:
    supported: dict[str, list[int]] = {}
    for node in module.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if not (
                isinstance(target, ast.Name)
                and _SUPPORTED_NAME_RE.match(target.id)
            ):
                continue
            if isinstance(node.value, (ast.Tuple, ast.List)):
                values = [
                    element.value
                    for element in node.value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, int)
                ]
                supported[target.id] = values
    return supported


def _migration_tests(project: Project) -> list[tuple[Module, ast.FunctionDef]]:
    tests = []
    for module in project.test_modules:
        for node in ast.walk(module.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and _MIGRATION_FUNC_RE.match(node.name):
                tests.append((module, node))
    return tests


@register_rule
class SchemaVersionRule(Rule):
    id = "REP006"
    name = "schema-version-discipline"
    severity = "error"
    description = (
        "schema_version literals above 1 require a SUPPORTED_*_VERSIONS "
        "migration branch and a test_*migration* test referencing them"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        migration_tests = _migration_tests(project)
        for module in project.modules:
            constants = _module_version_constants(module)
            if not constants:
                continue
            supported = _supported_versions(module)
            for name, value, line in constants:
                if value <= 1:
                    continue
                yield from self._check_constant(
                    project, module, name, value, line, supported, migration_tests
                )

    def _check_constant(
        self,
        project: Project,
        module: Module,
        name: str,
        value: int,
        line: int,
        supported: dict[str, list[int]],
        migration_tests: list[tuple[Module, ast.FunctionDef]],
    ) -> Iterator[Finding]:
        older = [
            v
            for versions in supported.values()
            for v in versions
            if v < value
        ]
        if not supported or not older:
            yield self.finding(
                module,
                line,
                f"{name} = {value} has no SUPPORTED_*_VERSIONS migration "
                "branch listing an older version — artifacts written by "
                "previous builds become unreadable",
            )
        referenced = False
        names_to_find = {name, *supported.keys()}
        for test_module, func in migration_tests:
            segment = ast.get_source_segment(test_module.source, func) or ""
            if any(target in segment for target in names_to_find) or any(
                target in test_module.source for target in names_to_find
            ):
                referenced = True
                break
        if not referenced:
            yield self.finding(
                module,
                line,
                f"{name} = {value} is not exercised by any test_*migration* "
                "test — add one that loads an older-version artifact and "
                "asserts the migration result",
            )


__all__ = ["SchemaVersionRule"]
