"""Rule modules register themselves on import (see ``core.register_rule``)."""

from repro.lint.rules import (  # noqa: F401
    rep001_atomic_write,
    rep002_fault_sites,
    rep003_backend_purity,
    rep004_error_taxonomy,
    rep005_lock_discipline,
    rep006_schema_version,
)
