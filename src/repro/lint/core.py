"""Core machinery of the ``repro.lint`` invariant analyzer.

The analyzer is a small, dependency-free static-analysis framework built on
the stdlib :mod:`ast` module.  It exists to mechanically enforce the
contracts the rest of the package only documents:

* durable writes go through the fsync'd atomic helpers
  (:mod:`repro.utils.serialization`) and carry a :func:`repro.faults.fault_point`
  site,
* ``bm``-ported numerical modules never touch raw numpy outside annotated
  ``# backend-seam`` boundaries,
* service-reachable ``raise`` statements use the registered error taxonomy,
* shared mutable state is only touched under its owning lock,
* schema-version literals never move without a migration branch and test.

Pieces
------
``Finding``
    One diagnostic: rule id, severity, location, message.  Findings are
    line-independent for baseline matching (``rule:path:message``) so a
    baseline survives unrelated edits to the same file.
``Rule``
    Base class.  Concrete rules subclass it, set ``id``/``name``/
    ``severity``/``description`` and implement ``check(project)``.  Rules are
    project-scoped (not per-file) so cross-file rules — fault-site coverage,
    taxonomy completeness — are first-class.
``Project``
    The parsed tree: every ``.py`` file under the requested roots, plus the
    repository's ``tests/`` directory (parsed separately, used only as
    evidence by rules such as REP006).
``Suppressions``
    Inline ``# repro-lint: disable=RULE[,RULE] -- justification`` comments.
    The justification text is *required*: a suppression without one does not
    take effect and additionally raises a ``REP000`` finding, so silent
    opt-outs cannot accumulate.
``Baseline``
    A committed JSON file of grandfathered findings.  Every entry must carry
    a non-empty ``justification``; stale entries (no longer matching any
    finding) are reported so the file shrinks over time.
``run_lint``
    The driver: parse, run rules, apply suppressions and baseline, return a
    :class:`LintReport` that renders as human diff-style text or as the
    version-3 response envelope payload.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

#: Rule id reserved for the analyzer's own discipline findings
#: (suppressions without justification, malformed baseline entries).
META_RULE_ID = "REP000"

SEVERITIES = ("error", "warning")


class LintUsageError(Exception):
    """A usage problem (unknown rule, unreadable baseline): CLI exit code 2."""


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule."""

    rule: str
    severity: str
    path: str
    line: int
    message: str
    source_line: str = ""

    def key(self) -> str:
        """Line-independent identity used for baseline matching."""
        return f"{self.rule}:{self.path}:{self.message}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def render(self) -> str:
        header = f"{self.path}:{self.line}: {self.rule} {self.severity}: {self.message}"
        if self.source_line.strip():
            return f"{header}\n    > {self.source_line.strip()}"
        return header


_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+?)\s*(?:--\s*(\S.*))?$"
)


@dataclass
class _SuppressionEntry:
    rules: tuple[str, ...]
    justification: str | None
    comment_line: int


class Suppressions:
    """Inline suppression comments of one module.

    A trailing comment suppresses its own line; a standalone comment line
    suppresses the next non-comment, non-blank line (so a suppression can sit
    above a long statement).  Suppressions without a ``-- justification`` are
    inert and produce a ``REP000`` finding.
    """

    def __init__(self, rel_path: str, lines: Sequence[str]) -> None:
        self.rel_path = rel_path
        self._by_line: dict[int, list[_SuppressionEntry]] = {}
        self.meta_findings: list[Finding] = []
        for index, text in enumerate(lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            rules = tuple(
                token.strip() for token in match.group(1).split(",") if token.strip()
            )
            justification = match.group(2)
            entry = _SuppressionEntry(rules, justification, index)
            if not justification:
                self.meta_findings.append(
                    Finding(
                        rule=META_RULE_ID,
                        severity="error",
                        path=rel_path,
                        line=index,
                        message=(
                            "suppression without justification: write "
                            "'# repro-lint: disable="
                            + ",".join(rules)
                            + " -- <reason>' (the suppression is ignored until "
                            "a reason is given)"
                        ),
                        source_line=text,
                    )
                )
                continue
            target = index
            if text[: match.start()].strip() == "":
                # Standalone comment: applies to the next code line.
                target = index + 1
                while target <= len(lines) and (
                    not lines[target - 1].strip()
                    or lines[target - 1].lstrip().startswith("#")
                ):
                    target += 1
            self._by_line.setdefault(target, []).append(entry)

    def match(self, finding: Finding) -> _SuppressionEntry | None:
        for entry in self._by_line.get(finding.line, []):
            if finding.rule in entry.rules:
                return entry
        return None


@dataclass
class Module:
    """One parsed source file."""

    path: Path
    rel: str
    source: str
    lines: list[str]
    tree: ast.Module
    suppressions: Suppressions

    def line(self, number: int) -> str:
        if 1 <= number <= len(self.lines):
            return self.lines[number - 1]
        return ""

    def is_at(self, rel_suffix: str) -> bool:
        """Whether this module lives at ``rel_suffix`` (posix, root-relative).

        Matched as a path suffix so the analyzer works both on the real tree
        (``src/repro/...``) and on fixture trees laid out the same way.
        """
        return self.rel == rel_suffix or self.rel.endswith("/" + rel_suffix)


def _parse_file(path: Path, root: Path) -> Module | None:
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError):
        return None
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError:
        return None
    try:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    lines = source.splitlines()
    return Module(
        path=path,
        rel=rel,
        source=source,
        lines=lines,
        tree=tree,
        suppressions=Suppressions(rel, lines),
    )


class Project:
    """All parsed modules the analyzer looks at.

    ``modules`` are the lint *targets*; ``test_modules`` (the repository's
    ``tests/`` tree, when present) are parsed as read-only *evidence* for
    rules that cross-check tests, and never receive findings themselves.
    """

    def __init__(
        self,
        root: Path,
        modules: list[Module],
        test_modules: list[Module],
    ) -> None:
        self.root = root
        self.modules = modules
        self.test_modules = test_modules

    @classmethod
    def from_paths(cls, root: Path, paths: Sequence[Path]) -> "Project":
        root = root.resolve()
        seen: set[Path] = set()
        modules: list[Module] = []
        for target in paths:
            target = target if target.is_absolute() else root / target
            if target.is_dir():
                candidates = sorted(target.rglob("*.py"))
            elif target.is_file():
                candidates = [target]
            else:
                raise LintUsageError(f"lint target does not exist: {target}")
            for candidate in candidates:
                resolved = candidate.resolve()
                if resolved in seen or "__pycache__" in resolved.parts:
                    continue
                seen.add(resolved)
                module = _parse_file(candidate, root)
                if module is not None:
                    modules.append(module)
        test_modules: list[Module] = []
        tests_dir = root / "tests"
        if tests_dir.is_dir():
            for candidate in sorted(tests_dir.rglob("*.py")):
                if "__pycache__" in candidate.parts:
                    continue
                module = _parse_file(candidate, root)
                if module is not None:
                    test_modules.append(module)
        return cls(root, modules, test_modules)

    def module_at(self, rel_suffix: str) -> Module | None:
        for module in self.modules:
            if module.is_at(rel_suffix):
                return module
        return None


class Rule:
    """Base class for analyzer rules."""

    id: str = ""
    name: str = ""
    severity: str = "error"
    description: str = ""

    def check(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: Module, line: int, message: str) -> Finding:
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=module.rel,
            line=line,
            message=message,
            source_line=module.line(line),
        )


RULE_REGISTRY: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    if cls.severity not in SEVERITIES:
        raise ValueError(f"rule {cls.id} has invalid severity {cls.severity!r}")
    RULE_REGISTRY[cls.id] = cls
    return cls


def all_rules() -> list[Rule]:
    _ensure_rules_loaded()
    return [RULE_REGISTRY[rule_id]() for rule_id in sorted(RULE_REGISTRY)]


def rules_by_id(rule_ids: Sequence[str] | None) -> list[Rule]:
    _ensure_rules_loaded()
    if not rule_ids:
        return all_rules()
    selected: list[Rule] = []
    for rule_id in rule_ids:
        normalized = rule_id.strip().upper()
        if normalized not in RULE_REGISTRY:
            raise LintUsageError(
                f"unknown rule {rule_id!r} (known: {', '.join(sorted(RULE_REGISTRY))})"
            )
        selected.append(RULE_REGISTRY[normalized]())
    return selected


def _ensure_rules_loaded() -> None:
    # Import for the registration side effect; idempotent.
    from repro.lint import rules  # noqa: F401


# --------------------------------------------------------------------------
# Baseline
# --------------------------------------------------------------------------

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"


@dataclass
class BaselineEntry:
    rule: str
    path: str
    message: str
    justification: str

    def key(self) -> str:
        return f"{self.rule}:{self.path}:{self.message}"


class Baseline:
    """Committed grandfathered findings, each with a written justification."""

    def __init__(self, entries: list[BaselineEntry], path: Path | None = None) -> None:
        self.entries = entries
        self.path = path
        self._by_key = {entry.key(): entry for entry in entries}
        self._matched: set[str] = set()

    @classmethod
    def empty(cls) -> "Baseline":
        return cls([])

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise LintUsageError(f"cannot read baseline {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise LintUsageError(f"baseline {path} is not valid JSON: {exc}") from exc
        if not isinstance(document, Mapping) or document.get("version") != BASELINE_VERSION:
            raise LintUsageError(
                f"baseline {path}: expected an object with version {BASELINE_VERSION}"
            )
        raw_entries = document.get("findings")
        if not isinstance(raw_entries, list):
            raise LintUsageError(f"baseline {path}: 'findings' must be a list")
        entries: list[BaselineEntry] = []
        for index, raw in enumerate(raw_entries):
            if not isinstance(raw, Mapping):
                raise LintUsageError(f"baseline {path}: findings[{index}] not an object")
            justification = str(raw.get("justification") or "").strip()
            if not justification:
                raise LintUsageError(
                    f"baseline {path}: findings[{index}] has no justification — "
                    "every grandfathered finding must say why it is acceptable"
                )
            entries.append(
                BaselineEntry(
                    rule=str(raw.get("rule", "")),
                    path=str(raw.get("path", "")),
                    message=str(raw.get("message", "")),
                    justification=justification,
                )
            )
        return cls(entries, path=path)

    def match(self, finding: Finding) -> BaselineEntry | None:
        entry = self._by_key.get(finding.key())
        if entry is not None:
            self._matched.add(entry.key())
        return entry

    def stale_entries(self) -> list[BaselineEntry]:
        return [e for e in self.entries if e.key() not in self._matched]


# --------------------------------------------------------------------------
# Report + driver
# --------------------------------------------------------------------------


@dataclass
class LintReport:
    """Outcome of one analyzer run."""

    root: Path
    rules: list[Rule]
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[tuple[Finding, str]] = field(default_factory=list)
    baselined: list[tuple[Finding, str]] = field(default_factory=list)
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    files_checked: int = 0

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_payload(self) -> dict[str, Any]:
        """The ``data`` payload for the version-3 response envelope."""
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "rules": [
                {
                    "id": rule.id,
                    "name": rule.name,
                    "severity": rule.severity,
                    "description": rule.description,
                }
                for rule in self.rules
            ],
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [
                dict(f.to_dict(), justification=reason)
                for f, reason in self.suppressed
            ],
            "baselined": [
                dict(f.to_dict(), justification=reason)
                for f, reason in self.baselined
            ],
            "stale_baseline": [
                {"rule": e.rule, "path": e.path, "message": e.message}
                for e in self.stale_baseline
            ],
        }

    def render_text(self) -> str:
        parts: list[str] = []
        for finding in self.findings:
            parts.append(finding.render())
        if self.stale_baseline:
            parts.append("")
            parts.append("stale baseline entries (no longer found — remove them):")
            for entry in self.stale_baseline:
                parts.append(f"  - {entry.rule} {entry.path}: {entry.message}")
        summary = (
            f"{len(self.findings)} finding(s) "
            f"({len(self.suppressed)} suppressed, {len(self.baselined)} baselined) "
            f"across {self.files_checked} file(s)"
        )
        if parts:
            parts.append("")
        parts.append(summary)
        return "\n".join(parts)


def run_lint(
    root: Path,
    paths: Sequence[Path] | None = None,
    *,
    rule_ids: Sequence[str] | None = None,
    baseline: Baseline | None = None,
) -> LintReport:
    """Parse ``paths`` under ``root`` and run the selected rules."""
    if paths is None:
        default = root / "src" / "repro"
        if not default.is_dir():
            raise LintUsageError(
                f"no lint targets given and {default} does not exist"
            )
        paths = [default]
    project = Project.from_paths(root, list(paths))
    rules = rules_by_id(rule_ids)
    baseline = baseline or Baseline.empty()

    raw_findings: list[Finding] = []
    for module in project.modules:
        raw_findings.extend(module.suppressions.meta_findings)
    for rule in rules:
        raw_findings.extend(rule.check(project))

    report = LintReport(root=root, rules=rules, files_checked=len(project.modules))
    modules_by_rel = {module.rel: module for module in project.modules}
    for finding in sorted(raw_findings, key=lambda f: (f.path, f.line, f.rule)):
        module = modules_by_rel.get(finding.path)
        if module is not None and finding.rule != META_RULE_ID:
            suppression = module.suppressions.match(finding)
            if suppression is not None:
                report.suppressed.append((finding, suppression.justification or ""))
                continue
        entry = baseline.match(finding)
        if entry is not None:
            report.baselined.append((finding, entry.justification))
            continue
        report.findings.append(finding)
    report.stale_baseline = baseline.stale_entries()
    return report


# --------------------------------------------------------------------------
# Shared AST helpers used by the rules
# --------------------------------------------------------------------------


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute/name chains; ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def iter_functions(
    tree: ast.AST,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def annotation_nodes(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[int]:
    """ids of every AST node inside the function's type annotations."""
    ids: set[int] = set()
    annotations: list[ast.AST] = []
    args = func.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.annotation is not None:
            annotations.append(arg.annotation)
    for extra in (args.vararg, args.kwarg):
        if extra is not None and extra.annotation is not None:
            annotations.append(extra.annotation)
    if func.returns is not None:
        annotations.append(func.returns)
    for node in ast.walk(func):
        if isinstance(node, ast.AnnAssign) and node.annotation is not None:
            annotations.append(node.annotation)
    for annotation in annotations:
        for node in ast.walk(annotation):
            ids.add(id(node))
    return ids


def call_keyword(call: ast.Call, name: str) -> ast.expr | None:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def const_str(node: ast.AST | None) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def walk_scoped(
    node: ast.AST,
    *,
    skip: Callable[[ast.AST], bool],
) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nodes where ``skip`` is true."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if skip(child):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


__all__ = [
    "Baseline",
    "BaselineEntry",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "LintReport",
    "LintUsageError",
    "META_RULE_ID",
    "Module",
    "Project",
    "Rule",
    "RULE_REGISTRY",
    "Suppressions",
    "all_rules",
    "dotted_name",
    "register_rule",
    "rules_by_id",
    "run_lint",
]
