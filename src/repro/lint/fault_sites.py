"""Static extraction of fault-injection sites and the generated registry.

The chaos harness (:mod:`repro.faults`) names every injection point with a
string site id — ``fault_point("service.jobs.persist")`` — and fault plans
select sites with fnmatch globs.  Nothing ties the two together at runtime:
a typo'd glob silently injects nothing.  This module extracts every site
statically so that:

* REP002 can fail when a durable-write helper has no site and when a chaos
  scenario's glob matches no registered site, and
* ``repro lint --write-registry`` can emit a committed, human-readable
  registry (``docs/fault_sites.json`` + ``docs/fault_sites.md``) whose
  freshness is asserted by a regenerate-and-diff test.

Sites are discovered from three syntactic shapes:

1. ``fault_point("literal.site")`` calls (f-string sites such as
   ``f"fem.backends.{name}"`` register as glob patterns, e.g.
   ``fem.backends.*``),
2. ``fault_site="literal.site"`` keyword arguments at call sites,
3. ``fault_site: str = "literal.site"`` defaulted function parameters
   (helpers that let callers override the site but ship a default).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.lint.core import Module, Project, dotted_name

REGISTRY_VERSION = 1


@dataclass
class FaultSite:
    """One statically-discovered injection site."""

    site: str
    kind: str  # "literal" | "pattern"
    locations: list[tuple[str, int]] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "kind": self.kind,
            "locations": [
                {"path": path, "line": line} for path, line in self.locations
            ],
        }


def _fstring_to_glob(node: ast.JoinedStr) -> str | None:
    """Render an f-string site as a glob, interpolations becoming ``*``."""
    parts: list[str] = []
    for value in node.values:
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            parts.append(value.value)
        elif isinstance(value, ast.FormattedValue):
            parts.append("*")
        else:
            return None
    return "".join(parts)


def _site_from_expr(node: ast.AST | None) -> tuple[str, str] | None:
    """``(site, kind)`` from a site expression, or ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, "literal"
    if isinstance(node, ast.JoinedStr):
        glob = _fstring_to_glob(node)
        if glob is not None:
            return glob, "pattern"
    return None


def iter_module_sites(module: Module) -> Iterator[tuple[str, str, int]]:
    """Yield ``(site, kind, line)`` for every site declared in a module."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None and name.rpartition(".")[2] == "fault_point":
                if node.args:
                    extracted = _site_from_expr(node.args[0])
                    if extracted is not None:
                        yield extracted[0], extracted[1], node.lineno
            for keyword in node.keywords:
                if keyword.arg == "fault_site":
                    extracted = _site_from_expr(keyword.value)
                    if extracted is not None:
                        yield extracted[0], extracted[1], node.lineno
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            all_args = [*args.posonlyargs, *args.args, *args.kwonlyargs]
            defaults = [
                *([None] * (len(args.posonlyargs) + len(args.args) - len(args.defaults))),
                *args.defaults,
                *args.kw_defaults,
            ]
            for arg, default in zip(all_args, defaults):
                if arg.arg == "fault_site" and default is not None:
                    extracted = _site_from_expr(default)
                    if extracted is not None:
                        yield extracted[0], extracted[1], node.lineno


def extract_fault_sites(project: Project) -> dict[str, FaultSite]:
    """All declared sites across the project, keyed by site id."""
    sites: dict[str, FaultSite] = {}
    for module in project.modules:
        for site, kind, line in iter_module_sites(module):
            entry = sites.setdefault(site, FaultSite(site=site, kind=kind))
            if kind == "pattern":
                entry.kind = "pattern"
            entry.locations.append((module.rel, line))
    for entry in sites.values():
        entry.locations.sort()
    return sites


def build_registry(project: Project) -> dict:
    """The committed JSON registry document."""
    sites = extract_fault_sites(project)
    return {
        "version": REGISTRY_VERSION,
        "sites": [sites[key].to_dict() for key in sorted(sites)],
    }


def render_markdown(registry: dict) -> str:
    """Human-readable companion to the JSON registry."""
    lines = [
        "# Fault-injection site registry",
        "",
        "Generated by `repro lint --write-registry docs` from static analysis",
        "of `fault_point()` calls, `fault_site=` keywords, and `fault_site`",
        "parameter defaults. Do not edit by hand — regenerate instead",
        "(`tests/test_fault_site_registry.py` asserts freshness).",
        "",
        "| Site | Kind | Declared at |",
        "| --- | --- | --- |",
    ]
    for entry in registry["sites"]:
        locations = "<br>".join(
            f"`{loc['path']}:{loc['line']}`" for loc in entry["locations"]
        )
        lines.append(f"| `{entry['site']}` | {entry['kind']} | {locations} |")
    lines.append("")
    lines.append(
        "Chaos-scenario fault plans select sites with fnmatch globs; REP002 "
        "fails the build when a glob matches none of the sites above."
    )
    lines.append("")
    return "\n".join(lines)


def write_registry(project: Project, out_dir) -> list[str]:
    """Write ``fault_sites.json`` and ``fault_sites.md`` into ``out_dir``."""
    from pathlib import Path

    from repro.utils.serialization import atomic_write_bytes, dump_json

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    registry = build_registry(project)
    json_path = out / "fault_sites.json"
    md_path = out / "fault_sites.md"
    dump_json(json_path, registry, fault_site="lint.registry.write")
    atomic_write_bytes(
        md_path,
        render_markdown(registry).encode("utf-8"),
        fault_site="lint.registry.write",
    )
    return [str(json_path), str(md_path)]


__all__ = [
    "FaultSite",
    "REGISTRY_VERSION",
    "build_registry",
    "extract_fault_sites",
    "iter_module_sites",
    "render_markdown",
    "write_registry",
]
