"""``repro.lint`` — AST-based invariant analyzer for the repro codebase.

Mechanically enforces the contracts the stack's reliability rests on:
atomic-write discipline (REP001), fault-site coverage (REP002), backend
purity (REP003), error-taxonomy completeness (REP004), lock discipline
(REP005) and schema-version discipline (REP006).  See
``docs/INVARIANTS.md`` for the rule reference and suppression workflow.
"""

from repro.lint.core import (
    Baseline,
    BaselineEntry,
    DEFAULT_BASELINE_NAME,
    Finding,
    LintReport,
    LintUsageError,
    META_RULE_ID,
    Project,
    Rule,
    RULE_REGISTRY,
    all_rules,
    register_rule,
    rules_by_id,
    run_lint,
)
from repro.lint.fault_sites import (
    build_registry,
    extract_fault_sites,
    render_markdown,
    write_registry,
)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "LintReport",
    "LintUsageError",
    "META_RULE_ID",
    "Project",
    "RULE_REGISTRY",
    "Rule",
    "all_rules",
    "build_registry",
    "extract_fault_sites",
    "register_rule",
    "render_markdown",
    "rules_by_id",
    "run_lint",
    "write_registry",
]
