"""Declarative simulation specifications.

A :class:`SimulationSpec` is a frozen, validated, fully serializable
description of one MORE-Stress workload: the TSV technology and array size
(:class:`GeometrySpec`), the material library (:class:`MaterialsSpec`), the
fine-mesh / interpolation fidelity (:class:`MeshSpec`), the solver
configuration (:class:`SolverSpec`), one or many :class:`LoadCase`\\ s, and an
optional sub-modeling context (:class:`SubModelSpec`).

Specs are *data*: ``to_dict``/``from_dict`` and ``to_json``/``from_json`` are
lossless (``from_json(to_json(spec)) == spec``), every document carries a
``schema_version``, and malformed input fails with a :class:`SpecError`
naming the offending field (``"load_cases[2].delta_t: ..."``), never with a
bare ``KeyError`` or a silently ignored key.  The same spec document drives
the Python executor (:func:`repro.api.run`), the CLI (``repro run spec.json``)
and the experiment drivers, so a run description can be stored, diffed,
queued and shipped between processes.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field, fields
from typing import Any, Mapping, Sequence

from repro.backend import (
    ARRAY_BACKEND_ALIASES,
    array_backend_names,
    canonical_array_backend_name,
)
# Deprecated alias: SpecError now lives in the unified exception taxonomy
# (repro.errors); importing it from here keeps working.
from repro.errors import SpecError
from repro.fem.backends import BACKEND_ALIASES, backend_names
from repro.fem.solver import SolverOptions
from repro.geometry.tsv import TSVGeometry
from repro.materials.library import (
    ROLE_COPPER,
    ROLE_LINER,
    ROLE_SILICON,
    ROLE_SOLDER,
    ROLE_SUBSTRATE,
    ROLE_UNDERFILL,
    IsotropicMaterial,
    MaterialLibrary,
)
from repro.mesh.resolution import MeshResolution
from repro.rom.interpolation import InterpolationScheme
from repro.utils.units import GPA
from repro.utils.validation import (
    ValidationError,
    check_in_range,
    check_non_negative,
    check_positive,
    check_positive_int,
)

#: Version of the spec document layout.  Bumped when the layout changes;
#: ``from_dict`` accepts every version in :data:`SUPPORTED_SCHEMA_VERSIONS`
#: and refuses anything else.  Version history:
#:
#: * 1 — initial layout (no ``solver.array_backend``).
#: * 2 — adds ``solver.array_backend``; purely additive, so version-1
#:   documents load unchanged with the field at its ``"numpy"`` default.
#: * 3 — adds ``solver.shard`` (out-of-core sharded global stage); purely
#:   additive, older documents load unchanged with sharding disabled.
SCHEMA_VERSION = 3

#: Spec document versions this build can read.
SUPPORTED_SCHEMA_VERSIONS = (1, 2, 3)

#: Material roles that may be overridden (the roles the meshers tag).
KNOWN_MATERIAL_ROLES = (
    ROLE_SILICON,
    ROLE_COPPER,
    ROLE_LINER,
    ROLE_SUBSTRATE,
    ROLE_UNDERFILL,
    ROLE_SOLDER,
)

#: Named sub-model placements of the chiplet package (paper Fig. 5b);
#: see :meth:`repro.geometry.package.ChipletPackage.paper_locations`.
KNOWN_SUBMODEL_LOCATIONS = ("loc1", "loc2", "loc3", "loc4", "loc5")

_MISSING = object()


# --------------------------------------------------------------------------- #
# parsing helpers
# --------------------------------------------------------------------------- #
def _as_mapping(data: Any, path: str) -> Mapping[str, Any]:
    if not isinstance(data, Mapping):
        raise SpecError(f"{path}: expected an object, got {type(data).__name__}")
    return data


def _reject_unknown(data: Mapping[str, Any], allowed: Sequence[str], path: str) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise SpecError(
            f"{path}.{unknown[0]}: unknown field (allowed fields: {sorted(allowed)})"
        )


def _get(data: Mapping[str, Any], key: str, path: str, default: Any = _MISSING) -> Any:
    if key in data:
        return data[key]
    if default is _MISSING:
        raise SpecError(f"{path}.{key}: required field is missing")
    return default


def _number(value: Any, path: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SpecError(f"{path}: expected a number, got {value!r}")
    return float(value)


def _integer(value: Any, path: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(f"{path}: expected an integer, got {value!r}")
    return int(value)


def _string(value: Any, path: str) -> str:
    if not isinstance(value, str):
        raise SpecError(f"{path}: expected a string, got {value!r}")
    return value


def _optional(value: Any, convert, path: str):
    return None if value is None else convert(value, path)


def _int_triple(value: Any, path: str) -> tuple[int, int, int]:
    if not isinstance(value, (list, tuple)) or len(value) != 3:
        raise SpecError(f"{path}: expected a list of 3 integers, got {value!r}")
    return tuple(_integer(item, f"{path}[{index}]") for index, item in enumerate(value))


def _construct(cls, kwargs: dict[str, Any], path: str):
    """Build a spec dataclass, re-raising validation errors with the path."""
    try:
        return cls(**kwargs)
    except SpecError:
        raise
    except ValidationError as exc:
        raise SpecError(f"{path}: {exc}") from exc


def _check_finite(name: str, value: float) -> float:
    value = float(value)
    if not math.isfinite(value):
        raise ValidationError(f"{name} must be a finite number, got {value!r}")
    return value


# --------------------------------------------------------------------------- #
# geometry
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class GeometrySpec:
    """TSV technology and default array size.

    Lengths are micrometres, exactly as in :class:`TSVGeometry`.  ``rows`` and
    ``cols`` give the default array size of the run's load cases; individual
    :class:`LoadCase`\\ s may override them (the reduced order models depend
    only on the technology, not on the array size, so one spec can sweep
    sizes and still build the ROMs once).
    """

    diameter: float = 5.0
    height: float = 50.0
    liner_thickness: float = 0.5
    pitch: float = 15.0
    rows: int = 4
    cols: int | None = None

    def __post_init__(self) -> None:
        check_positive_int("rows", self.rows)
        if self.cols is not None:
            check_positive_int("cols", self.cols)
        # TSVGeometry validates the lengths (including the pitch-fit check).
        self.build_tsv()

    def build_tsv(self) -> TSVGeometry:
        """The :class:`TSVGeometry` this spec describes."""
        return TSVGeometry(
            diameter=self.diameter,
            height=self.height,
            liner_thickness=self.liner_thickness,
            pitch=self.pitch,
        )

    @property
    def resolved_cols(self) -> int:
        """``cols`` with the square-array default applied."""
        return self.rows if self.cols is None else self.cols

    def to_dict(self) -> dict[str, Any]:
        return {
            "diameter": self.diameter,
            "height": self.height,
            "liner_thickness": self.liner_thickness,
            "pitch": self.pitch,
            "rows": self.rows,
            "cols": self.cols,
        }

    @classmethod
    def from_dict(cls, data: Any, path: str = "geometry") -> "GeometrySpec":
        data = _as_mapping(data, path)
        allowed = [f.name for f in fields(cls)]
        _reject_unknown(data, allowed, path)
        kwargs = {
            key: _number(_get(data, key, path, getattr(cls, key)), f"{path}.{key}")
            for key in ("diameter", "height", "liner_thickness", "pitch")
        }
        kwargs["rows"] = _integer(_get(data, "rows", path, cls.rows), f"{path}.rows")
        kwargs["cols"] = _optional(
            _get(data, "cols", path, None), _integer, f"{path}.cols"
        )
        return _construct(cls, kwargs, path)


# --------------------------------------------------------------------------- #
# materials
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class MaterialOverride:
    """Replacement elastic constants for one material role.

    Units are the human-facing ones of ``repro info``: Young's modulus in GPa
    and CTE in ppm/degC (the library stores MPa and 1/degC internally).
    """

    role: str
    young_modulus_gpa: float
    poisson_ratio: float
    cte_ppm: float

    def __post_init__(self) -> None:
        if self.role not in KNOWN_MATERIAL_ROLES:
            raise ValidationError(
                f"role must be one of {sorted(KNOWN_MATERIAL_ROLES)}, got {self.role!r}"
            )
        check_positive("young_modulus_gpa", self.young_modulus_gpa)
        check_in_range("poisson_ratio", self.poisson_ratio, -1.0, 0.5, inclusive=False)
        check_non_negative("cte_ppm", self.cte_ppm)

    def build_material(self) -> IsotropicMaterial:
        """The :class:`IsotropicMaterial` (internal units) this override describes."""
        return IsotropicMaterial(
            name=self.role,
            young_modulus=self.young_modulus_gpa * GPA,
            poisson_ratio=self.poisson_ratio,
            cte=self.cte_ppm * 1e-6,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "role": self.role,
            "young_modulus_gpa": self.young_modulus_gpa,
            "poisson_ratio": self.poisson_ratio,
            "cte_ppm": self.cte_ppm,
        }

    @classmethod
    def from_dict(cls, data: Any, path: str) -> "MaterialOverride":
        data = _as_mapping(data, path)
        allowed = [f.name for f in fields(cls)]
        _reject_unknown(data, allowed, path)
        kwargs = {
            "role": _string(_get(data, "role", path), f"{path}.role"),
            "young_modulus_gpa": _number(
                _get(data, "young_modulus_gpa", path), f"{path}.young_modulus_gpa"
            ),
            "poisson_ratio": _number(
                _get(data, "poisson_ratio", path), f"{path}.poisson_ratio"
            ),
            "cte_ppm": _number(_get(data, "cte_ppm", path), f"{path}.cte_ppm"),
        }
        return _construct(cls, kwargs, path)


@dataclass(frozen=True)
class MaterialsSpec:
    """Material library description: a named base plus per-role overrides."""

    base: str = "default"
    overrides: tuple[MaterialOverride, ...] = ()

    def __post_init__(self) -> None:
        if self.base != "default":
            raise ValidationError(
                f"base must be 'default' (the Cu/Si/SiO2 library), got {self.base!r}"
            )
        object.__setattr__(self, "overrides", tuple(self.overrides))
        seen: set[str] = set()
        for override in self.overrides:
            if not isinstance(override, MaterialOverride):
                raise ValidationError(
                    f"overrides entries must be MaterialOverride, got {override!r}"
                )
            if override.role in seen:
                raise ValidationError(f"role {override.role!r} is overridden twice")
            seen.add(override.role)

    def build_library(self) -> MaterialLibrary:
        """Materialize the base library with all overrides applied."""
        library = MaterialLibrary.default()
        for override in self.overrides:
            library.add(override.role, override.build_material())
        return library

    def to_dict(self) -> dict[str, Any]:
        return {
            "base": self.base,
            "overrides": [override.to_dict() for override in self.overrides],
        }

    @classmethod
    def from_dict(cls, data: Any, path: str = "materials") -> "MaterialsSpec":
        data = _as_mapping(data, path)
        _reject_unknown(data, ["base", "overrides"], path)
        raw_overrides = _get(data, "overrides", path, [])
        if not isinstance(raw_overrides, (list, tuple)):
            raise SpecError(f"{path}.overrides: expected a list, got {raw_overrides!r}")
        overrides = tuple(
            MaterialOverride.from_dict(item, f"{path}.overrides[{index}]")
            for index, item in enumerate(raw_overrides)
        )
        kwargs = {
            "base": _string(_get(data, "base", path, cls.base), f"{path}.base"),
            "overrides": overrides,
        }
        return _construct(cls, kwargs, path)


# --------------------------------------------------------------------------- #
# mesh / interpolation fidelity
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class MeshSpec:
    """Fine-mesh resolution, interpolation scheme and sampling grid.

    ``resolution`` is either a preset name (``"tiny"`` .. ``"paper"``) or an
    explicit :class:`MeshResolution`; both serialize losslessly.
    """

    resolution: str | MeshResolution = "coarse"
    nodes_per_axis: tuple[int, int, int] = (4, 4, 4)
    points_per_block: int = 30

    def __post_init__(self) -> None:
        if isinstance(self.resolution, str):
            if self.resolution not in MeshResolution.preset_names():
                raise ValidationError(
                    f"resolution must be one of {MeshResolution.preset_names()} "
                    f"or an explicit resolution object, got {self.resolution!r}"
                )
        elif not isinstance(self.resolution, MeshResolution):
            raise ValidationError(
                f"resolution must be a preset name or a MeshResolution, "
                f"got {self.resolution!r}"
            )
        object.__setattr__(self, "nodes_per_axis", tuple(self.nodes_per_axis))
        if len(self.nodes_per_axis) != 3:
            raise ValidationError(
                f"nodes_per_axis must have 3 entries, got {self.nodes_per_axis!r}"
            )
        for count in self.nodes_per_axis:
            check_positive_int("nodes_per_axis", count, minimum=2)
        check_positive_int("points_per_block", self.points_per_block, minimum=2)

    def build_resolution(self) -> MeshResolution:
        """The :class:`MeshResolution` this spec describes."""
        return MeshResolution.from_spec(self.resolution)

    def build_scheme(self) -> InterpolationScheme:
        """The :class:`InterpolationScheme` this spec describes."""
        return InterpolationScheme(self.nodes_per_axis)

    def to_dict(self) -> dict[str, Any]:
        if isinstance(self.resolution, MeshResolution):
            resolution: Any = {
                "n_core": self.resolution.n_core,
                "n_liner": self.resolution.n_liner,
                "n_outer": self.resolution.n_outer,
                "n_z": self.resolution.n_z,
                "outer_ratio": self.resolution.outer_ratio,
                "z_refinement": self.resolution.z_refinement,
            }
        else:
            resolution = self.resolution
        return {
            "resolution": resolution,
            "nodes_per_axis": list(self.nodes_per_axis),
            "points_per_block": self.points_per_block,
        }

    @classmethod
    def from_dict(cls, data: Any, path: str = "mesh") -> "MeshSpec":
        data = _as_mapping(data, path)
        _reject_unknown(data, ["resolution", "nodes_per_axis", "points_per_block"], path)
        raw_resolution = _get(data, "resolution", path, cls.resolution)
        if isinstance(raw_resolution, str):
            resolution: str | MeshResolution = raw_resolution
        elif isinstance(raw_resolution, Mapping):
            sub_path = f"{path}.resolution"
            allowed = ("n_core", "n_liner", "n_outer", "n_z", "outer_ratio", "z_refinement")
            _reject_unknown(raw_resolution, allowed, sub_path)
            kwargs = {
                key: _integer(_get(raw_resolution, key, sub_path), f"{sub_path}.{key}")
                for key in ("n_core", "n_liner", "n_outer", "n_z")
            }
            kwargs.update(
                {
                    key: _number(
                        _get(raw_resolution, key, sub_path, getattr(MeshResolution, key)),
                        f"{sub_path}.{key}",
                    )
                    for key in ("outer_ratio", "z_refinement")
                }
            )
            resolution = _construct(MeshResolution, kwargs, sub_path)
        else:
            raise SpecError(
                f"{path}.resolution: expected a preset name or an object, "
                f"got {raw_resolution!r}"
            )
        kwargs = {
            "resolution": resolution,
            "nodes_per_axis": _int_triple(
                _get(data, "nodes_per_axis", path, list(cls.nodes_per_axis)),
                f"{path}.nodes_per_axis",
            ),
            "points_per_block": _integer(
                _get(data, "points_per_block", path, cls.points_per_block),
                f"{path}.points_per_block",
            ),
        }
        return _construct(cls, kwargs, path)


# --------------------------------------------------------------------------- #
# sharding
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShardSpec:
    """Out-of-core sharded global stage (:mod:`repro.rom.shard`).

    The array layout is partitioned into overlapping rectangular shards that
    are assembled, factorized and solved independently under a bounded
    in-flight window, then reconciled Schwarz-style on the overlap DoFs —
    peak memory tracks one shard's system, never the monolithic
    factorization.

    Exactly one selection mode applies: an explicit ``grid`` always shards
    on that ``(grid_rows, grid_cols)`` tiling, while ``memory_budget_bytes``
    alone enables *auto* mode — the planner shards (choosing the smallest
    grid whose per-shard assembly estimate fits the budget) only when the
    monolithic estimate exceeds it, so small arrays keep the direct path.
    """

    grid: tuple[int, int] | None = None
    overlap: int = 2
    tolerance: float = 1e-10
    max_iterations: int = 100
    memory_budget_bytes: int | None = None
    max_inflight: int | None = None

    def __post_init__(self) -> None:
        if self.grid is not None:
            grid = tuple(self.grid)
            if len(grid) != 2:
                raise ValidationError(
                    f"grid must be a (rows, cols) pair or null, got {self.grid!r}"
                )
            for value in grid:
                if not isinstance(value, int) or isinstance(value, bool):
                    raise ValidationError(
                        f"grid entries must be integers, got {value!r}"
                    )
                check_positive_int("grid", value)
            object.__setattr__(self, "grid", grid)
        if self.grid is None and self.memory_budget_bytes is None:
            raise ValidationError(
                "shard spec needs a grid (explicit tiling) or "
                "memory_budget_bytes (auto mode); both are null"
            )
        check_positive_int("overlap", self.overlap)
        check_in_range("tolerance", self.tolerance, 0.0, 1.0, inclusive=False)
        check_positive_int("max_iterations", self.max_iterations)
        if self.memory_budget_bytes is not None:
            check_positive_int("memory_budget_bytes", self.memory_budget_bytes)
        if self.max_inflight is not None:
            check_positive_int("max_inflight", self.max_inflight)

    def to_dict(self) -> dict[str, Any]:
        return {
            "grid": None if self.grid is None else list(self.grid),
            "overlap": self.overlap,
            "tolerance": self.tolerance,
            "max_iterations": self.max_iterations,
            "memory_budget_bytes": self.memory_budget_bytes,
            "max_inflight": self.max_inflight,
        }

    @classmethod
    def from_dict(cls, data: Any, path: str = "solver.shard") -> "ShardSpec":
        data = _as_mapping(data, path)
        allowed = [f.name for f in fields(cls)]
        _reject_unknown(data, allowed, path)
        raw_grid = _get(data, "grid", path, None)
        grid: tuple[int, int] | None
        if raw_grid is None:
            grid = None
        else:
            if not isinstance(raw_grid, (list, tuple)) or len(raw_grid) != 2:
                raise SpecError(
                    f"{path}.grid: expected a [rows, cols] pair or null, "
                    f"got {raw_grid!r}"
                )
            grid = (
                _integer(raw_grid[0], f"{path}.grid[0]"),
                _integer(raw_grid[1], f"{path}.grid[1]"),
            )
        kwargs = {
            "grid": grid,
            "overlap": _integer(
                _get(data, "overlap", path, cls.overlap), f"{path}.overlap"
            ),
            "tolerance": _number(
                _get(data, "tolerance", path, cls.tolerance), f"{path}.tolerance"
            ),
            "max_iterations": _integer(
                _get(data, "max_iterations", path, cls.max_iterations),
                f"{path}.max_iterations",
            ),
            "memory_budget_bytes": _optional(
                _get(data, "memory_budget_bytes", path, None),
                _integer,
                f"{path}.memory_budget_bytes",
            ),
            "max_inflight": _optional(
                _get(data, "max_inflight", path, None),
                _integer,
                f"{path}.max_inflight",
            ),
        }
        return _construct(cls, kwargs, path)


# --------------------------------------------------------------------------- #
# solver
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SolverSpec:
    """Global-stage solver configuration plus the local-stage worker count.

    ``array_backend`` selects the dense array backend (``repro.backend``)
    the kernels run on; the default ``"numpy"`` keeps pre-version-2 spec
    documents loading (and producing bit-identical results) unchanged.
    ``shard`` (version 3) opts the global stage into the out-of-core
    sharded solver; ``None`` keeps the monolithic path.
    """

    method: str = "gmres"
    backend: str | None = None
    rtol: float = 1e-9
    max_iterations: int = 5000
    gmres_restart: int = 100
    jobs: int | None = None
    array_backend: str = "numpy"
    shard: ShardSpec | None = None

    def __post_init__(self) -> None:
        if self.shard is not None and not isinstance(self.shard, ShardSpec):
            raise ValidationError(
                f"shard must be a ShardSpec or None, got {self.shard!r}"
            )
        if self.backend is not None:
            known = sorted({*backend_names(), *BACKEND_ALIASES})
            if self.backend not in known:
                raise ValidationError(
                    f"backend must be one of {known} or null, got {self.backend!r}"
                )
        try:
            canonical = canonical_array_backend_name(self.array_backend)
        except ValidationError as exc:
            known_arrays = sorted({*array_backend_names(), *ARRAY_BACKEND_ALIASES})
            raise ValidationError(
                f"array_backend must be one of {known_arrays}, "
                f"got {self.array_backend!r}"
            ) from exc
        object.__setattr__(self, "array_backend", canonical)
        # SolverOptions validates method/rtol/max_iterations eagerly.
        self.build_options()
        if self.jobs is not None:
            check_positive_int("jobs", self.jobs)

    def build_options(self) -> SolverOptions:
        """The :class:`SolverOptions` this spec describes."""
        return SolverOptions(
            method=self.method,
            backend=self.backend,
            rtol=self.rtol,
            max_iterations=self.max_iterations,
            gmres_restart=self.gmres_restart,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "method": self.method,
            "backend": self.backend,
            "rtol": self.rtol,
            "max_iterations": self.max_iterations,
            "gmres_restart": self.gmres_restart,
            "jobs": self.jobs,
            "array_backend": self.array_backend,
            "shard": None if self.shard is None else self.shard.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Any, path: str = "solver") -> "SolverSpec":
        data = _as_mapping(data, path)
        allowed = [f.name for f in fields(cls)]
        _reject_unknown(data, allowed, path)
        kwargs = {
            "method": _string(_get(data, "method", path, cls.method), f"{path}.method"),
            "backend": _optional(
                _get(data, "backend", path, None), _string, f"{path}.backend"
            ),
            "rtol": _number(_get(data, "rtol", path, cls.rtol), f"{path}.rtol"),
            "max_iterations": _integer(
                _get(data, "max_iterations", path, cls.max_iterations),
                f"{path}.max_iterations",
            ),
            "gmres_restart": _integer(
                _get(data, "gmres_restart", path, cls.gmres_restart),
                f"{path}.gmres_restart",
            ),
            "jobs": _optional(_get(data, "jobs", path, None), _integer, f"{path}.jobs"),
            "array_backend": _string(
                _get(data, "array_backend", path, cls.array_backend),
                f"{path}.array_backend",
            ),
        }
        raw_shard = _get(data, "shard", path, None)
        kwargs["shard"] = (
            None
            if raw_shard is None
            else ShardSpec.from_dict(raw_shard, f"{path}.shard")
        )
        return _construct(cls, kwargs, path)


# --------------------------------------------------------------------------- #
# load cases
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class LoadCase:
    """One simulation case: a thermal load plus optional per-case overrides.

    ``rows``/``cols`` override the spec-level array size (the ROMs are shared
    across sizes); ``location`` places the case at a named package location
    and is only valid when the spec has a :class:`SubModelSpec`.
    """

    name: str = ""
    delta_t: float = -250.0
    rows: int | None = None
    cols: int | None = None
    location: str | None = None

    def __post_init__(self) -> None:
        _check_finite("delta_t", self.delta_t)
        if self.rows is not None:
            check_positive_int("rows", self.rows)
        if self.cols is not None:
            check_positive_int("cols", self.cols)
        if self.location is not None and self.location not in KNOWN_SUBMODEL_LOCATIONS:
            raise ValidationError(
                f"location must be one of {list(KNOWN_SUBMODEL_LOCATIONS)} or null, "
                f"got {self.location!r}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "delta_t": self.delta_t,
            "rows": self.rows,
            "cols": self.cols,
            "location": self.location,
        }

    @classmethod
    def from_dict(cls, data: Any, path: str) -> "LoadCase":
        data = _as_mapping(data, path)
        allowed = [f.name for f in fields(cls)]
        _reject_unknown(data, allowed, path)
        kwargs = {
            "name": _string(_get(data, "name", path, ""), f"{path}.name"),
            "delta_t": _number(
                _get(data, "delta_t", path, cls.delta_t), f"{path}.delta_t"
            ),
            "rows": _optional(_get(data, "rows", path, None), _integer, f"{path}.rows"),
            "cols": _optional(_get(data, "cols", path, None), _integer, f"{path}.cols"),
            "location": _optional(
                _get(data, "location", path, None), _string, f"{path}.location"
            ),
        }
        return _construct(cls, kwargs, path)


# --------------------------------------------------------------------------- #
# sub-modeling
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SubModelSpec:
    """Sub-modeling context: chiplet package, coarse model and dummy padding.

    When present, every load case is solved as a dummy-padded sub-model at a
    named package location (paper §4.4); ``location`` supplies the default
    for cases that do not name one.
    """

    dummy_ring_width: int = 1
    coarse_inplane_cells: int = 18
    package_scale: float = 1.0
    location: str = "loc1"

    def __post_init__(self) -> None:
        check_positive_int("dummy_ring_width", self.dummy_ring_width, minimum=0)
        check_positive_int("coarse_inplane_cells", self.coarse_inplane_cells, minimum=2)
        check_positive("package_scale", self.package_scale)
        if self.location not in KNOWN_SUBMODEL_LOCATIONS:
            raise ValidationError(
                f"location must be one of {list(KNOWN_SUBMODEL_LOCATIONS)}, "
                f"got {self.location!r}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "dummy_ring_width": self.dummy_ring_width,
            "coarse_inplane_cells": self.coarse_inplane_cells,
            "package_scale": self.package_scale,
            "location": self.location,
        }

    @classmethod
    def from_dict(cls, data: Any, path: str = "submodel") -> "SubModelSpec":
        data = _as_mapping(data, path)
        allowed = [f.name for f in fields(cls)]
        _reject_unknown(data, allowed, path)
        kwargs = {
            "dummy_ring_width": _integer(
                _get(data, "dummy_ring_width", path, cls.dummy_ring_width),
                f"{path}.dummy_ring_width",
            ),
            "coarse_inplane_cells": _integer(
                _get(data, "coarse_inplane_cells", path, cls.coarse_inplane_cells),
                f"{path}.coarse_inplane_cells",
            ),
            "package_scale": _number(
                _get(data, "package_scale", path, cls.package_scale),
                f"{path}.package_scale",
            ),
            "location": _string(
                _get(data, "location", path, cls.location), f"{path}.location"
            ),
        }
        return _construct(cls, kwargs, path)


# --------------------------------------------------------------------------- #
# outputs
# --------------------------------------------------------------------------- #
#: Field-export formats the post-processing stage can materialize.
KNOWN_OUTPUT_FORMATS = ("vtk", "npz")


@dataclass(frozen=True)
class OutputSpec:
    """Requested post-processing outputs of a run (paper-and-beyond artifacts).

    When present, every load case gets a full-field reconstruction
    (:mod:`repro.postprocess`): a structured grid of displacement, Voigt
    stress and von Mises stress sampled ``points_per_block`` x
    ``points_per_block`` x ``z_planes`` per block, exported in the requested
    ``formats``, plus (optionally) a per-TSV hotspot report.

    ``points_per_block`` defaults to the mesh spec's sampling density;
    ``z_planes`` must be odd so the half-height plane of the paper's error
    metric is one of the sampled planes.
    """

    formats: tuple[str, ...] = ("vtk", "npz")
    points_per_block: int | None = None
    z_planes: int = 5
    hotspots: bool = True
    hotspot_threshold_fraction: float = 0.8
    top_k: int = 10

    def __post_init__(self) -> None:
        object.__setattr__(self, "formats", tuple(self.formats))
        if not self.formats:
            raise ValidationError(
                f"formats must contain at least one of {list(KNOWN_OUTPUT_FORMATS)}"
            )
        seen: set[str] = set()
        for fmt in self.formats:
            if fmt not in KNOWN_OUTPUT_FORMATS:
                raise ValidationError(
                    f"formats entries must be one of {list(KNOWN_OUTPUT_FORMATS)}, "
                    f"got {fmt!r}"
                )
            if fmt in seen:
                raise ValidationError(f"format {fmt!r} is listed twice")
            seen.add(fmt)
        if self.points_per_block is not None:
            check_positive_int("points_per_block", self.points_per_block, minimum=2)
        check_positive_int("z_planes", self.z_planes)
        if self.z_planes % 2 == 0:
            raise ValidationError(
                "z_planes must be odd so the half-height plane is sampled, "
                f"got {self.z_planes}"
            )
        check_in_range(
            "hotspot_threshold_fraction",
            self.hotspot_threshold_fraction,
            0.0,
            1.0,
            inclusive=False,
        )
        check_positive_int("top_k", self.top_k)

    def resolved_points_per_block(self, mesh: "MeshSpec") -> int:
        """``points_per_block`` with the mesh-spec default applied."""
        if self.points_per_block is not None:
            return self.points_per_block
        return mesh.points_per_block

    def to_dict(self) -> dict[str, Any]:
        return {
            "formats": list(self.formats),
            "points_per_block": self.points_per_block,
            "z_planes": self.z_planes,
            "hotspots": self.hotspots,
            "hotspot_threshold_fraction": self.hotspot_threshold_fraction,
            "top_k": self.top_k,
        }

    @classmethod
    def from_dict(cls, data: Any, path: str = "output") -> "OutputSpec":
        data = _as_mapping(data, path)
        allowed = [f.name for f in fields(cls)]
        _reject_unknown(data, allowed, path)
        raw_formats = _get(data, "formats", path, list(cls.formats))
        if not isinstance(raw_formats, (list, tuple)):
            raise SpecError(f"{path}.formats: expected a list, got {raw_formats!r}")
        formats = tuple(
            _string(item, f"{path}.formats[{index}]")
            for index, item in enumerate(raw_formats)
        )
        raw_hotspots = _get(data, "hotspots", path, cls.hotspots)
        if not isinstance(raw_hotspots, bool):
            raise SpecError(
                f"{path}.hotspots: expected a boolean, got {raw_hotspots!r}"
            )
        kwargs = {
            "formats": formats,
            "points_per_block": _optional(
                _get(data, "points_per_block", path, None),
                _integer,
                f"{path}.points_per_block",
            ),
            "z_planes": _integer(
                _get(data, "z_planes", path, cls.z_planes), f"{path}.z_planes"
            ),
            "hotspots": raw_hotspots,
            "hotspot_threshold_fraction": _number(
                _get(
                    data,
                    "hotspot_threshold_fraction",
                    path,
                    cls.hotspot_threshold_fraction,
                ),
                f"{path}.hotspot_threshold_fraction",
            ),
            "top_k": _integer(_get(data, "top_k", path, cls.top_k), f"{path}.top_k"),
        }
        return _construct(cls, kwargs, path)


# --------------------------------------------------------------------------- #
# the spec
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ResolvedCase:
    """A :class:`LoadCase` with every default filled in by the spec."""

    name: str
    delta_t: float
    rows: int
    cols: int
    location: str | None


@dataclass(frozen=True)
class SimulationSpec:
    """A complete, serializable description of one MORE-Stress run."""

    geometry: GeometrySpec = field(default_factory=GeometrySpec)
    materials: MaterialsSpec = field(default_factory=MaterialsSpec)
    mesh: MeshSpec = field(default_factory=MeshSpec)
    solver: SolverSpec = field(default_factory=SolverSpec)
    load_cases: tuple[LoadCase, ...] = (LoadCase(),)
    submodel: SubModelSpec | None = None
    output: OutputSpec | None = None
    name: str = "simulation"

    def __post_init__(self) -> None:
        for attr, expected in (
            ("geometry", GeometrySpec),
            ("materials", MaterialsSpec),
            ("mesh", MeshSpec),
            ("solver", SolverSpec),
        ):
            if not isinstance(getattr(self, attr), expected):
                raise ValidationError(
                    f"{attr} must be a {expected.__name__}, got {getattr(self, attr)!r}"
                )
        if self.submodel is not None and not isinstance(self.submodel, SubModelSpec):
            raise ValidationError(
                f"submodel must be a SubModelSpec or None, got {self.submodel!r}"
            )
        if self.output is not None and not isinstance(self.output, OutputSpec):
            raise ValidationError(
                f"output must be an OutputSpec or None, got {self.output!r}"
            )
        object.__setattr__(self, "load_cases", tuple(self.load_cases))
        if not self.load_cases:
            raise ValidationError("load_cases must contain at least one case")
        seen: set[str] = set()
        for index, case in enumerate(self.load_cases):
            if not isinstance(case, LoadCase):
                raise ValidationError(
                    f"load_cases[{index}] must be a LoadCase, got {case!r}"
                )
            if case.location is not None and self.submodel is None:
                raise ValidationError(
                    f"load_cases[{index}].location is set but the spec has no submodel"
                )
            if case.name:
                if case.name in seen:
                    raise ValidationError(
                        f"load_cases[{index}].name {case.name!r} is not unique"
                    )
                seen.add(case.name)
        if self.submodel is not None:
            interposer_thickness = 50.0  # ChipletPackage default (z-independent of scale)
            if abs(self.geometry.height - interposer_thickness) > 1e-9:
                raise ValidationError(
                    "geometry.height must equal the interposer thickness "
                    f"({interposer_thickness}) for sub-modeling, got {self.geometry.height}"
                )

    # ------------------------------------------------------------------ #
    # resolution
    # ------------------------------------------------------------------ #
    def resolved_cases(self) -> list[ResolvedCase]:
        """Load cases with names, array sizes and locations fully defaulted."""
        resolved: list[ResolvedCase] = []
        used = {case.name for case in self.load_cases if case.name}
        for index, case in enumerate(self.load_cases):
            name = case.name
            if not name:
                name = f"case{index}"
                suffix = 0
                while name in used:
                    suffix += 1
                    name = f"case{index}_{suffix}"
                used.add(name)
            rows = case.rows if case.rows is not None else self.geometry.rows
            if case.cols is not None:
                cols = case.cols
            elif case.rows is not None:
                cols = case.rows
            else:
                cols = self.geometry.resolved_cols
            location = case.location
            if location is None and self.submodel is not None:
                location = self.submodel.location
            resolved.append(
                ResolvedCase(
                    name=name,
                    delta_t=float(case.delta_t),
                    rows=rows,
                    cols=cols,
                    location=location,
                )
            )
        return resolved

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """Lossless plain-data representation (JSON-compatible)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "name": self.name,
            "geometry": self.geometry.to_dict(),
            "materials": self.materials.to_dict(),
            "mesh": self.mesh.to_dict(),
            "solver": self.solver.to_dict(),
            "load_cases": [case.to_dict() for case in self.load_cases],
            "submodel": None if self.submodel is None else self.submodel.to_dict(),
            "output": None if self.output is None else self.output.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Any, path: str = "spec") -> "SimulationSpec":
        """Parse a spec document; errors name the offending field."""
        data = _as_mapping(data, path)
        allowed = [
            "schema_version",
            "name",
            "geometry",
            "materials",
            "mesh",
            "solver",
            "load_cases",
            "submodel",
            "output",
        ]
        _reject_unknown(data, allowed, path)
        version = _get(data, "schema_version", path, SCHEMA_VERSION)
        if version not in SUPPORTED_SCHEMA_VERSIONS:
            raise SpecError(
                f"{path}.schema_version: unsupported version {version!r} "
                f"(this build reads versions {list(SUPPORTED_SCHEMA_VERSIONS)})"
            )
        raw_cases = _get(data, "load_cases", path, [LoadCase().to_dict()])
        if not isinstance(raw_cases, (list, tuple)):
            raise SpecError(f"{path}.load_cases: expected a list, got {raw_cases!r}")
        load_cases = tuple(
            LoadCase.from_dict(item, f"{path}.load_cases[{index}]")
            for index, item in enumerate(raw_cases)
        )
        raw_submodel = _get(data, "submodel", path, None)
        submodel = (
            None
            if raw_submodel is None
            else SubModelSpec.from_dict(raw_submodel, f"{path}.submodel")
        )
        raw_output = _get(data, "output", path, None)
        output = (
            None
            if raw_output is None
            else OutputSpec.from_dict(raw_output, f"{path}.output")
        )
        kwargs = {
            "name": _string(_get(data, "name", path, "simulation"), f"{path}.name"),
            "geometry": GeometrySpec.from_dict(
                _get(data, "geometry", path, {}), f"{path}.geometry"
            ),
            "materials": MaterialsSpec.from_dict(
                _get(data, "materials", path, {}), f"{path}.materials"
            ),
            "mesh": MeshSpec.from_dict(_get(data, "mesh", path, {}), f"{path}.mesh"),
            "solver": SolverSpec.from_dict(
                _get(data, "solver", path, {}), f"{path}.solver"
            ),
            "load_cases": load_cases,
            "submodel": submodel,
            "output": output,
        }
        return _construct(cls, kwargs, path)

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize to a JSON document (stable key order)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, document: str) -> "SimulationSpec":
        """Parse a JSON document produced by :meth:`to_json` (or hand-written)."""
        try:
            data = json.loads(document)
        except json.JSONDecodeError as exc:
            raise SpecError(f"spec: invalid JSON ({exc})") from exc
        return cls.from_dict(data)

    def spec_hash(self) -> str:
        """Stable content hash of the canonical JSON form (provenance key)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:20]


__all__ = [
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "KNOWN_MATERIAL_ROLES",
    "KNOWN_OUTPUT_FORMATS",
    "KNOWN_SUBMODEL_LOCATIONS",
    "SpecError",
    "GeometrySpec",
    "MaterialOverride",
    "MaterialsSpec",
    "MeshSpec",
    "ShardSpec",
    "SolverSpec",
    "LoadCase",
    "SubModelSpec",
    "OutputSpec",
    "ResolvedCase",
    "SimulationSpec",
]
