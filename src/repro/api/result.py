"""Uniform run results with provenance, persistence and reload.

:func:`repro.api.run` returns a :class:`RunResult`: one :class:`CaseResult`
per load case (the sampled mid-plane von Mises field plus solver/timing
diagnostics) and a provenance manifest recording the spec, its content hash,
the package version and the solver backends actually used.  ``save()``
persists everything to a results directory (``manifest.json`` + one ``.npz``
bundle of stress fields) and ``load()`` reconstructs an equivalent result, so
a run can be archived, shipped and re-inspected without re-solving.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro._version import __version__
from repro.api.envelope import unwrap, wrap
from repro.api.spec import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    SimulationSpec,
    SpecError,
)
from repro.postprocess.fields import ArrayField
from repro.postprocess.hotspots import HotspotReport
from repro.utils.serialization import (
    load_json,
    load_npz_bundle,
    dump_json,
    save_npz_bundle,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.rom.workflow import SimulationResult

_MANIFEST_NAME = "manifest.json"
_FIELDS_NAME = "fields.npz"
_EXPORT_SUBDIR = "fields"
_HOTSPOTS_NAME = "hotspots.json"


def _safe_name(name: str) -> str:
    """A filesystem-safe version of a case name."""
    return re.sub(r"[^A-Za-z0-9_.-]+", "_", name) or "case"


def _case_stem(index: int, name: str) -> str:
    """File stem of one case's field exports (shared by save/export/load)."""
    return f"case{index}_{_safe_name(name)}"


@dataclass(frozen=True, eq=False)
class CaseResult:
    """Result of one load case of a spec-driven run.

    Attributes
    ----------
    name, delta_t, rows, cols, location:
        The resolved case this result belongs to.
    von_mises:
        Sampled mid-plane von Mises stress over the TSV region, shape
        ``(rows, cols, p, p)`` with ``p`` = ``mesh.points_per_block``.
    group:
        Index of the execution group this case was solved in.  Cases sharing
        a group were solved with **one** assembly + factorisation
        (:meth:`GlobalStage.solve_many`).
    solver_method:
        The solver/backed actually used (from :class:`SolveStats`), e.g.
        ``"gmres"`` or ``"direct-batched"``.
    shard:
        Sharded-solve provenance (shard grid, overlap, Schwarz iterations,
        per-shard peak RSS — :meth:`repro.rom.shard.ShardRunStats.to_dict`)
        when the case ran out-of-core, otherwise ``None``.
    field_data:
        The full volumetric :class:`~repro.postprocess.fields.ArrayField` of
        this case when the spec requested one (:class:`OutputSpec`),
        otherwise ``None``.  Persisted by :meth:`RunResult.save` and
        reloaded by :meth:`RunResult.load`.
    hotspots:
        Per-TSV :class:`~repro.postprocess.hotspots.HotspotReport` when the
        spec's output requested hotspot analytics, otherwise ``None``.
    simulation:
        The live :class:`~repro.rom.workflow.SimulationResult` with full
        reconstruction helpers.  ``None`` on results re-loaded from disk.
    """

    name: str
    delta_t: float
    rows: int
    cols: int
    location: str | None
    von_mises: np.ndarray
    num_global_dofs: int
    local_stage_seconds: float
    global_stage_seconds: float
    peak_memory_bytes: int
    solver_method: str
    group: int
    shard: dict[str, Any] | None = None
    field_data: ArrayField | None = field(default=None, repr=False)
    hotspots: HotspotReport | None = field(default=None, repr=False)
    simulation: "SimulationResult | None" = field(default=None, repr=False)

    @property
    def peak_von_mises(self) -> float:
        """Largest sampled von Mises stress of this case (MPa)."""
        return float(self.von_mises.max())

    @property
    def mean_von_mises(self) -> float:
        """Mean sampled von Mises stress of this case (MPa)."""
        return float(self.von_mises.mean())

    def summary(self) -> dict[str, Any]:
        """The JSON-compatible manifest entry of this case."""
        return {
            "name": self.name,
            "delta_t": self.delta_t,
            "rows": self.rows,
            "cols": self.cols,
            "location": self.location,
            "group": self.group,
            "num_global_dofs": self.num_global_dofs,
            "local_stage_seconds": self.local_stage_seconds,
            "global_stage_seconds": self.global_stage_seconds,
            "peak_memory_bytes": self.peak_memory_bytes,
            "solver_method": self.solver_method,
            "shard": self.shard,
            "field_shape": [int(n) for n in self.von_mises.shape],
            "peak_von_mises": self.peak_von_mises,
            "mean_von_mises": self.mean_von_mises,
            "field": None if self.field_data is None else self.field_data.summary(),
            "hotspots": None if self.hotspots is None else self.hotspots.to_dict(),
        }


@dataclass(eq=False)
class RunResult:
    """All case results of one spec-driven run plus its provenance manifest."""

    spec: SimulationSpec
    cases: tuple[CaseResult, ...]
    num_case_groups: int
    materials_overridden: bool = False
    rom_cache_stats: dict[str, int] | None = None
    repro_version: str = __version__
    spec_hash: str = ""
    #: Array backend that was requested (CLI > spec > env precedence applied)
    #: and the backend actually used after availability fallback.
    array_backend_requested: str = "numpy"
    array_backend: str = "numpy"

    def __post_init__(self) -> None:
        self.cases = tuple(self.cases)
        if not self.spec_hash:
            self.spec_hash = self.spec.spec_hash()

    # ------------------------------------------------------------------ #
    # lookup helpers
    # ------------------------------------------------------------------ #
    def case(self, name: str) -> CaseResult:
        """Return the case result with the given (resolved) name."""
        for case in self.cases:
            if case.name == name:
                return case
        raise KeyError(
            f"run has no case named {name!r}; cases: {[c.name for c in self.cases]}"
        )

    @property
    def backends_used(self) -> list[str]:
        """Sorted set of solver methods that actually ran."""
        return sorted({case.solver_method for case in self.cases})

    @property
    def total_global_stage_seconds(self) -> float:
        """Wall-clock global-stage time summed over execution groups."""
        per_group: dict[int, float] = {}
        for case in self.cases:
            per_group[case.group] = case.global_stage_seconds
        return float(sum(per_group.values()))

    @property
    def local_stage_seconds(self) -> float:
        """Wall-clock time of the (shared) one-shot local stage."""
        return max((case.local_stage_seconds for case in self.cases), default=0.0)

    # ------------------------------------------------------------------ #
    # provenance manifest
    # ------------------------------------------------------------------ #
    def manifest(self) -> dict[str, Any]:
        """JSON-compatible provenance record of this run."""
        return {
            "schema_version": SCHEMA_VERSION,
            "repro_version": self.repro_version,
            "spec": self.spec.to_dict(),
            "spec_hash": self.spec_hash,
            "backends_used": self.backends_used,
            "array_backend": {
                "requested": self.array_backend_requested,
                "resolved": self.array_backend,
            },
            "num_case_groups": self.num_case_groups,
            "materials_overridden": self.materials_overridden,
            "rom_cache": self.rom_cache_stats,
            "totals": {
                "local_stage_seconds": self.local_stage_seconds,
                "global_stage_seconds": self.total_global_stage_seconds,
            },
            "cases": [case.summary() for case in self.cases],
        }

    def envelope(self) -> dict[str, Any]:
        """The manifest wrapped in the versioned response envelope.

        This is the exact document :meth:`save` persists as ``manifest.json``
        and the job service returns from ``/v1/jobs/{id}/result`` — one
        shape for disk, wire and CLI ``--json`` output.
        """
        return wrap("run_result", self.manifest())

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def export_fields(
        self,
        directory: str | Path,
        formats: tuple[str, ...] | None = None,
    ) -> list[Path]:
        """Write the full-field exports of every case carrying a field.

        Parameters
        ----------
        directory:
            Destination directory (created if missing).
        formats:
            Export formats, a subset of ``("vtk", "npz")``.  Defaults to the
            spec's :class:`OutputSpec` formats (or both when the spec has no
            output section).

        Returns
        -------
        list of pathlib.Path
            All files written.  Empty when no case carries a field.  When any
            case carries a hotspot report, a ``hotspots.json`` with the
            complete per-TSV records of every case is written alongside the
            fields (top-K selection is a presentation concern —
            :meth:`HotspotReport.table` — not a persistence one).
        """
        from repro.postprocess.vtk import write_vtk_rectilinear

        directory = Path(directory)
        if formats is None:
            formats = (
                self.spec.output.formats if self.spec.output is not None else ("vtk", "npz")
            )
        unknown = set(formats) - {"vtk", "npz"}
        if unknown:
            raise SpecError(
                f"unknown export formats {sorted(unknown)}; choose from ['npz', 'vtk']"
            )
        written: list[Path] = []
        hotspot_docs: dict[str, Any] = {}
        for index, case in enumerate(self.cases):
            if case.field_data is None:
                continue
            directory.mkdir(parents=True, exist_ok=True)
            stem = _case_stem(index, case.name)
            if "npz" in formats:
                written.append(case.field_data.save(directory / stem))
            if "vtk" in formats:
                written.append(
                    write_vtk_rectilinear(
                        directory / f"{stem}.vtk",
                        case.field_data,
                        title=f"{self.spec.name}/{case.name} delta_t={case.delta_t:g}",
                    )
                )
            if case.hotspots is not None:
                hotspot_docs[case.name] = case.hotspots.to_dict()
        if hotspot_docs:
            written.append(
                dump_json(
                    directory / _HOTSPOTS_NAME,
                    {"spec_hash": self.spec_hash, "cases": hotspot_docs},
                )
            )
        return written

    def save(self, directory: str | Path) -> Path:
        """Persist manifest + stress fields to ``directory``; returns it.

        Cases carrying a full :class:`ArrayField` additionally write their
        exports under ``<directory>/fields/`` — the requested formats plus
        always ``.npz`` (the lossless bundle :meth:`load` reads back).
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        dump_json(directory / _MANIFEST_NAME, self.envelope())
        arrays = {
            f"von_mises_{index}": case.von_mises
            for index, case in enumerate(self.cases)
        }
        save_npz_bundle(
            directory / _FIELDS_NAME, arrays, metadata={"spec_hash": self.spec_hash}
        )
        if any(case.field_data is not None for case in self.cases):
            requested = (
                self.spec.output.formats if self.spec.output is not None else ()
            )
            formats = tuple(sorted({*requested, "npz"}))
            self.export_fields(directory / _EXPORT_SUBDIR, formats=formats)
        return directory

    @classmethod
    def load(cls, directory: str | Path) -> "RunResult":
        """Reconstruct a :class:`RunResult` written by :meth:`save`.

        Re-loaded case results carry the persisted fields and diagnostics;
        the live ``simulation`` objects are not persisted and read as ``None``.
        """
        directory = Path(directory)
        manifest_path = directory / _MANIFEST_NAME
        if not manifest_path.exists():
            raise SpecError(f"no {_MANIFEST_NAME} found in {directory}")
        # Envelope-version-3 manifests carry the payload under "data";
        # version-1/2 manifests were written flat and unwrap as themselves.
        manifest = unwrap(
            load_json(manifest_path), expected_kind="run_result", path="manifest"
        )
        version = manifest.get("schema_version")
        if version not in SUPPORTED_SCHEMA_VERSIONS:
            raise SpecError(
                f"manifest.schema_version: unsupported version {version!r} "
                f"(this build reads versions {list(SUPPORTED_SCHEMA_VERSIONS)})"
            )
        spec = SimulationSpec.from_dict(manifest["spec"])
        arrays, _ = load_npz_bundle(directory / _FIELDS_NAME)
        cases = []
        for index, entry in enumerate(manifest["cases"]):
            key = f"von_mises_{index}"
            if key not in arrays:
                raise SpecError(f"{_FIELDS_NAME} is missing array {key!r}")
            field_data = None
            if entry.get("field") is not None:
                stem = _case_stem(index, entry["name"])
                bundle = directory / _EXPORT_SUBDIR / f"{stem}.npz"
                if bundle.exists():
                    field_data = ArrayField.load(bundle)
            hotspots = (
                HotspotReport.from_dict(entry["hotspots"])
                if entry.get("hotspots") is not None
                else None
            )
            cases.append(
                CaseResult(
                    name=entry["name"],
                    delta_t=float(entry["delta_t"]),
                    rows=int(entry["rows"]),
                    cols=int(entry["cols"]),
                    location=entry["location"],
                    von_mises=arrays[key],
                    num_global_dofs=int(entry["num_global_dofs"]),
                    local_stage_seconds=float(entry["local_stage_seconds"]),
                    global_stage_seconds=float(entry["global_stage_seconds"]),
                    peak_memory_bytes=int(entry["peak_memory_bytes"]),
                    solver_method=entry["solver_method"],
                    group=int(entry["group"]),
                    shard=entry.get("shard"),
                    field_data=field_data,
                    hotspots=hotspots,
                )
            )
        # Version-1 manifests predate the array-backend record; default to
        # numpy, which is what those runs used.
        array_backend_entry = manifest.get("array_backend") or {}
        return cls(
            spec=spec,
            cases=tuple(cases),
            num_case_groups=int(manifest["num_case_groups"]),
            materials_overridden=bool(manifest["materials_overridden"]),
            rom_cache_stats=manifest.get("rom_cache"),
            repro_version=manifest["repro_version"],
            spec_hash=manifest["spec_hash"],
            array_backend_requested=array_backend_entry.get("requested", "numpy"),
            array_backend=array_backend_entry.get("resolved", "numpy"),
        )


__all__ = ["CaseResult", "RunResult"]
