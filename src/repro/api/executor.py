"""Spec executor: plan and run a :class:`SimulationSpec` at the lowest cost.

:func:`run` is the single entry point every workload routes through — the
CLI's ``simulate``/``run`` commands, the experiment drivers and the legacy
:class:`~repro.rom.workflow.MoreStressSimulator` convenience methods (which
are thin adapters over :func:`execute_cases`).  The executor

1. builds the material library, TSV geometry and simulator from the spec
   (reduced order models are built **once** per run — they depend only on the
   geometry/mesh/scheme/material fingerprint, not on array size or load),
2. groups load cases by ``(rows, cols, location)``: cases in a group share
   the same global system, so a multi-case group is solved with **one**
   assembly + factorisation via :meth:`GlobalStage.solve_many` while a
   single-case group takes the plain :meth:`GlobalStage.solve` path
   (bit-identical to a direct ``simulate_array`` call),
3. for sub-model specs, solves the coarse package model once per distinct
   thermal load and applies its displacements to the padded layouts, and
4. returns a :class:`RunResult` with per-case stress fields, diagnostics and
   a provenance manifest that ``save()``\\ s to disk.
"""

from __future__ import annotations

import os
from contextlib import nullcontext
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

from repro.backend import (
    ARRAY_BACKEND_ENV_VAR,
    resolve_array_backend,
    use_array_backend,
)
from repro.geometry.array_layout import TSVArrayLayout
from repro.materials.library import MaterialLibrary
from repro.materials.temperature import ThermalLoad
from repro.api.result import CaseResult, RunResult
from repro.api.spec import ResolvedCase, SimulationSpec
from repro.postprocess.fields import reconstruct_array_field
from repro.postprocess.hotspots import analyze_hotspots
from repro.rom.cache import ROMCache
from repro.rom.global_stage import GlobalStage
from repro.utils.logging import get_logger
from repro.utils.memory import PeakMemoryTracker
from repro.utils.timing import Timer

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.baselines.coarse_model import CoarsePackageSolution
    from repro.rom.workflow import MoreStressSimulator, SimulationResult

_logger = get_logger("api.executor")


def execute_cases(
    simulator: "MoreStressSimulator",
    layout: TSVArrayLayout,
    delta_ts: Sequence[float | ThermalLoad],
    boundary: str = "clamped",
    displacement_fields=None,
    batched: bool | None = None,
) -> "list[SimulationResult]":
    """Solve one layout for one or many thermal loads (the shared engine).

    This is the single execution path behind :func:`run`,
    :meth:`MoreStressSimulator.simulate_array` and
    :meth:`MoreStressSimulator.simulate_load_sweep`: build (or fetch cached)
    ROMs, assemble the global stage and solve.  ``batched=False`` forces the
    plain per-case solve, ``batched=True`` the factorize-once
    :meth:`GlobalStage.solve_many` path; the default batches whenever more
    than one load is given.
    """
    from repro.rom.workflow import SimulationResult

    loads = [
        load.delta_t if isinstance(load, ThermalLoad) else float(load)
        for load in delta_ts
    ]
    if batched is None:
        batched = len(loads) > 1
    # The simulator's array backend (if any) is active for ROM construction
    # and the global solve alike; the worker pool of the local stage is
    # thread-based, so workers share the activation.
    backend_context = (
        use_array_backend(simulator.array_backend)
        if simulator.array_backend is not None
        else nullcontext()
    )
    with backend_context:
        include_dummy = layout.num_dummy_blocks > 0
        roms = simulator.build_roms(include_dummy=include_dummy)

        stage = GlobalStage(
            roms=roms,
            materials=simulator.materials,
            solver_options=simulator.solver_options,
        )
        timer = Timer()
        with PeakMemoryTracker() as tracker, timer:
            if batched:
                solutions = stage.solve_many(
                    layout,
                    loads,
                    boundary_condition=boundary,
                    displacement_fields=displacement_fields,
                )
            else:
                displacement_field = displacement_fields
                if isinstance(displacement_field, (list, tuple)):
                    displacement_field = (
                        displacement_field[0] if displacement_field else None
                    )
                solutions = [
                    stage.solve(
                        layout,
                        delta_t=loads[0],
                        boundary_condition=boundary,
                        displacement_field=displacement_field,
                    )
                ]
    return [
        SimulationResult(
            solution=solution,
            local_stage_seconds=simulator.local_stage_seconds,
            global_stage_seconds=timer.elapsed,
            peak_memory_bytes=tracker.peak_bytes,
        )
        for solution in solutions
    ]


def _group_cases(
    cases: list[ResolvedCase],
) -> list[tuple[tuple[int, int, str | None], list[tuple[int, ResolvedCase]]]]:
    """Group cases by ``(rows, cols, location)`` preserving first-seen order."""
    groups: dict[tuple[int, int, str | None], list[tuple[int, ResolvedCase]]] = {}
    for index, case in enumerate(cases):
        groups.setdefault((case.rows, case.cols, case.location), []).append(
            (index, case)
        )
    return list(groups.items())


def _requested_array_backend(override: str | None, spec_value: str) -> str:
    """Apply the array-backend selection precedence.

    CLI/keyword override > explicit (non-default) spec value > the
    ``REPRO_ARRAY_BACKEND`` environment variable > the spec default.  Because
    the spec default is ``"numpy"``, an explicit ``"numpy"`` in a spec is
    indistinguishable from the default and can be overridden by the
    environment; forcing numpy under a conflicting environment requires the
    override argument (the CLI flag).
    """
    if override:
        return override
    if spec_value != "numpy":
        return spec_value
    env_value = os.environ.get(ARRAY_BACKEND_ENV_VAR, "").strip()
    return env_value or spec_value


def run(
    spec: SimulationSpec,
    *,
    materials: MaterialLibrary | None = None,
    rom_cache: "ROMCache | str | Path | None" = None,
    jobs: int | None = None,
    coarse_solution: "CoarsePackageSolution | None" = None,
    array_backend: str | None = None,
    progress: Callable[[int, int, str], None] | None = None,
) -> RunResult:
    """Execute a :class:`SimulationSpec` and return its :class:`RunResult`.

    Parameters
    ----------
    spec:
        The run description (see :mod:`repro.api.spec`).
    materials:
        Optional material-library override replacing the spec's
        :class:`MaterialsSpec` (an escape hatch for callers that already hold
        a custom library, e.g. the experiment drivers).  The override is
        recorded in the result manifest.
    rom_cache:
        Optional persistent :class:`ROMCache` (or directory) shared across
        runs; cache paths are machine-specific, so they live outside the spec.
    jobs:
        Worker-count override for the parallel local stage; defaults to
        ``spec.solver.jobs``.
    coarse_solution:
        Optional pre-solved coarse package model reused for every sub-model
        case (the experiment drivers solve it once and share it with the
        reference methods); by default the executor solves the coarse model
        itself, once per distinct thermal load.
    array_backend:
        Array-backend override (the CLI ``--array-backend`` flag routes
        here); beats both ``spec.solver.array_backend`` and the
        ``REPRO_ARRAY_BACKEND`` environment variable.  Both the requested
        and the resolved (post-fallback) backend are recorded in the result.
    progress:
        Optional per-case completion callback, called as
        ``progress(done_cases, total_cases, case_name)`` after each case's
        result (including any requested post-processing) is materialized.
        The job service threads its status updates — and cooperative
        cancellation/timeout, which raise from inside the callback — through
        here; an exception raised by the callback aborts the run.
    """
    from repro.baselines.coarse_model import CoarseChipletModel
    from repro.geometry.package import ChipletPackage
    from repro.rom.submodeling import place_submodel
    from repro.rom.workflow import MoreStressSimulator

    requested = _requested_array_backend(array_backend, spec.solver.array_backend)
    backend_obj, requested = resolve_array_backend(requested)
    resolved_backend = backend_obj.name

    library = spec.materials.build_library() if materials is None else materials
    simulator = MoreStressSimulator(
        spec.geometry.build_tsv(),
        library,
        mesh_resolution=spec.mesh.build_resolution(),
        nodes_per_axis=spec.mesh.nodes_per_axis,
        solver_options=spec.solver.build_options(),
        rom_cache=rom_cache,
        jobs=jobs if jobs is not None else spec.solver.jobs,
        array_backend=resolved_backend,
    )

    # Sub-modeling context: the chiplet package and the coarse solutions
    # (solved lazily, once per distinct thermal load) that supply the cut
    # boundary displacements.
    package = None
    coarse_solutions: dict[float, "CoarsePackageSolution"] = {}
    if spec.submodel is not None:
        package = ChipletPackage.scaled_default(spec.submodel.package_scale)
        coarse_model = CoarseChipletModel(
            package, library, inplane_cells=spec.submodel.coarse_inplane_cells
        )

        def coarse_for(delta_t: float) -> "CoarsePackageSolution":
            if coarse_solution is not None:
                return coarse_solution
            if delta_t not in coarse_solutions:
                _logger.info("executor: solving coarse package at delta_t=%g", delta_t)
                coarse_solutions[delta_t] = coarse_model.solve(delta_t)
            return coarse_solutions[delta_t]

    cases = spec.resolved_cases()
    groups = _group_cases(cases)
    _logger.info(
        "executor: %d case(s) in %d group(s) [spec %s]",
        len(cases),
        len(groups),
        spec.spec_hash(),
    )

    case_results: list[CaseResult | None] = [None] * len(cases)
    # Shared across all cases of the run (the ROMs are, too): the geometric
    # sampler precomputation happens once per block kind, not once per case.
    field_sampler_cache: dict = {}
    for group_index, ((rows, cols, location), members) in enumerate(groups):
        if spec.submodel is None:
            layout = TSVArrayLayout.full(simulator.tsv, rows=rows, cols=cols)
            boundary = "clamped"
            displacement_fields = None
        else:
            assert package is not None and location is not None
            _, layout = place_submodel(
                simulator.tsv,
                package,
                rows=rows,
                cols=cols,
                ring_width=spec.submodel.dummy_ring_width,
                location=location,
            )
            boundary = "submodel"
            fields = [coarse_for(case.delta_t).displacement_field() for _, case in members]
            displacement_fields = fields[0] if len(fields) == 1 else fields

        delta_ts = [case.delta_t for _, case in members]
        results = execute_cases(
            simulator,
            layout,
            delta_ts,
            boundary=boundary,
            displacement_fields=displacement_fields,
            batched=len(members) > 1,
        )
        for (case_index, case), result in zip(members, results):
            stats = result.solution.solver_stats
            field_data = None
            hotspot_report = None
            if spec.output is not None:
                # Streamed full-field reconstruction: one sampler per block
                # kind, one block's fine field in memory at a time.  Runs
                # under the resolved array backend like the solve itself.
                with use_array_backend(resolved_backend):
                    field_data = reconstruct_array_field(
                        result.solution,
                        points_per_block=spec.output.resolved_points_per_block(spec.mesh),
                        z_planes=spec.output.z_planes,
                        jobs=simulator.jobs,
                        sampler_cache=field_sampler_cache,
                    )
                if spec.output.hotspots:
                    hotspot_report = analyze_hotspots(
                        field_data,
                        threshold_fraction=spec.output.hotspot_threshold_fraction,
                    )
            case_results[case_index] = CaseResult(
                name=case.name,
                delta_t=case.delta_t,
                rows=rows,
                cols=cols,
                location=location,
                von_mises=result.von_mises_midplane(spec.mesh.points_per_block),
                num_global_dofs=result.num_global_dofs,
                local_stage_seconds=result.local_stage_seconds,
                global_stage_seconds=result.global_stage_seconds,
                peak_memory_bytes=result.peak_memory_bytes,
                solver_method=stats.method if stats is not None else "unknown",
                group=group_index,
                field_data=field_data,
                hotspots=hotspot_report,
                simulation=result,
            )
            if progress is not None:
                done = sum(1 for entry in case_results if entry is not None)
                progress(done, len(cases), case.name)

    cache = simulator.rom_cache
    rom_cache_stats = (
        {"hits": cache.hits, "misses": cache.misses} if cache is not None else None
    )
    return RunResult(
        spec=spec,
        cases=tuple(result for result in case_results if result is not None),
        num_case_groups=len(groups),
        materials_overridden=materials is not None,
        rom_cache_stats=rom_cache_stats,
        array_backend_requested=requested,
        array_backend=resolved_backend,
    )


__all__ = ["run", "execute_cases"]
